//! # jigsaw-sql — the Jigsaw SQL dialect front-end
//!
//! The paper's user-facing language (Figures 1 and 5):
//!
//! ```sql
//! DECLARE PARAMETER @current_week AS RANGE 0 TO 52 STEP BY 1;
//! DECLARE PARAMETER @feature_release AS SET (12, 36, 44);
//! SELECT DemandModel(@current_week, @feature_release) AS demand, ...
//! INTO results;
//! OPTIMIZE SELECT @feature_release, ... FROM results
//! WHERE MAX(EXPECT overload) < 0.01
//! GROUP BY feature_release, ...
//! FOR MAX @purchase1, MAX @purchase2
//! ```
//!
//! plus the interactive `GRAPH OVER @param EXPECT col WITH style, …`
//! directive and `CHAIN` parameters for Markov scenarios.
//!
//! Pipeline: [`lexer`] → [`parser`] → [`ast`] → [`analyze`] (lowering to
//! [`jigsaw_pdb::Plan`]s, [`jigsaw_blackbox::ParamSpace`]s and
//! [`jigsaw_core::optimizer::OptimizeGoal`]s) → [`scenario`] execution.
//! [`chainq`] adapts `CHAIN` scenarios to the core Markov-jump runner.

#![warn(missing_docs)]

pub mod analyze;
pub mod ast;
pub mod chainq;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod scenario;
pub mod token;

pub use analyze::ChainInfo;
pub use ast::Script;
pub use chainq::QueryChainModel;
pub use error::{Pos, Result, SqlError};
pub use parser::{parse_expr, parse_script};
pub use pretty::{print_expr, print_select};
pub use scenario::{compile, BatchOutcome, Scenario};
