//! Pretty-printer: AST → canonical SQL text.
//!
//! Primarily a testing tool: `parse(print(parse(src))) == parse(src)` is the
//! roundtrip property the proptest suite checks, which exercises the parser
//! over a large space of machine-generated expressions.

use crate::ast::*;

/// Render an expression with minimal (safe, fully parenthesized) syntax.
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Int(v) => v.to_string(),
        Expr::Float(v) => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                format!("{v:.1}")
            } else {
                format!("{v}")
            }
        }
        Expr::Str(s) => format!("'{s}'"),
        Expr::Bool(b) => if *b { "TRUE" } else { "FALSE" }.into(),
        Expr::Null => "NULL".into(),
        Expr::Col(c) => c.clone(),
        Expr::Param(p) => format!("@{p}"),
        Expr::CountStar => "COUNT(*)".into(),
        Expr::Call { name, args } => {
            let args: Vec<String> = args.iter().map(print_expr).collect();
            format!("{name}({})", args.join(", "))
        }
        Expr::Bin { op, l, r } => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Mod => "%",
            };
            format!("({} {sym} {})", print_expr(l), print_expr(r))
        }
        Expr::Cmp { op, l, r } => {
            let sym = match op {
                CmpOp::Eq => "=",
                CmpOp::Ne => "<>",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            };
            format!("({} {sym} {})", print_expr(l), print_expr(r))
        }
        Expr::And(l, r) => format!("({} AND {})", print_expr(l), print_expr(r)),
        Expr::Or(l, r) => format!("({} OR {})", print_expr(l), print_expr(r)),
        Expr::Not(e) => format!("(NOT {})", print_expr(e)),
        Expr::Neg(e) => format!("(-{})", print_expr(e)),
        Expr::Case { whens, otherwise } => {
            let mut s = String::from("CASE");
            for (c, v) in whens {
                s.push_str(&format!(" WHEN {} THEN {}", print_expr(c), print_expr(v)));
            }
            if let Some(e) = otherwise {
                s.push_str(&format!(" ELSE {}", print_expr(e)));
            }
            s.push_str(" END");
            s
        }
    }
}

/// Render a `SELECT` statement.
pub fn print_select(q: &SelectStmt) -> String {
    let mut s = String::from("SELECT ");
    let items: Vec<String> = q
        .items
        .iter()
        .map(|it| match &it.alias {
            Some(a) => format!("{} AS {a}", print_expr(&it.expr)),
            None => print_expr(&it.expr),
        })
        .collect();
    s.push_str(&items.join(", "));
    match &q.from {
        Some(FromClause::Table(t)) => s.push_str(&format!(" FROM {t}")),
        Some(FromClause::Subquery(sub)) => s.push_str(&format!(" FROM ({})", print_select(sub))),
        None => {}
    }
    if let Some(w) = &q.where_clause {
        s.push_str(&format!(" WHERE {}", print_expr(w)));
    }
    if !q.group_by.is_empty() {
        s.push_str(&format!(" GROUP BY {}", q.group_by.join(", ")));
    }
    if let Some(t) = &q.into {
        s.push_str(&format!(" INTO {t}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_script};

    #[test]
    fn expr_roundtrip_examples() {
        for src in [
            "1 + 2 * 3",
            "CASE WHEN capacity < demand THEN 1 ELSE 0 END",
            "DemandModel(@week, @feature)",
            "NOT (a = 1 AND b <> 2)",
            "-x % 4",
            "COUNT(*)",
        ] {
            let ast = parse_expr(src).unwrap();
            let printed = print_expr(&ast);
            let reparsed = parse_expr(&printed)
                .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
            assert_eq!(ast, reparsed, "roundtrip of `{src}` via `{printed}`");
        }
    }

    #[test]
    fn select_roundtrip() {
        let src =
            "SELECT SUM(base) AS total FROM users WHERE region = 'us' GROUP BY class INTO out";
        let q = parse_script(src).unwrap().scenario().unwrap().clone();
        let printed = print_select(&q);
        let q2 = parse_script(&printed).unwrap().scenario().unwrap().clone();
        assert_eq!(q, q2, "via `{printed}`");
    }

    #[test]
    fn float_literals_keep_a_decimal_point() {
        assert_eq!(print_expr(&Expr::Float(2.0)), "2.0");
        let reparsed = parse_expr("2.0").unwrap();
        assert_eq!(reparsed, Expr::Float(2.0));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::parser::parse_expr;
    use proptest::prelude::*;

    /// Generate small random expressions over a fixed vocabulary.
    fn arb_expr() -> impl Strategy<Value = Expr> {
        // Literals are non-negative: `-1` canonically parses as Neg(Int(1)),
        // and the generator covers negation through explicit Neg nodes.
        let leaf = prop_oneof![
            (0i64..1000).prop_map(Expr::Int),
            (0u8..4).prop_map(|i| Expr::Col(["a", "b", "demand", "capacity"][i as usize].into())),
            (0u8..3).prop_map(|i| Expr::Param(["week", "p1", "p2"][i as usize].into())),
            Just(Expr::Null),
            Just(Expr::Bool(true)),
        ];
        leaf.prop_recursive(3, 24, 3, |inner| {
            prop_oneof![
                (
                    inner.clone(),
                    inner.clone(),
                    prop_oneof![
                        Just(BinOp::Add),
                        Just(BinOp::Sub),
                        Just(BinOp::Mul),
                        Just(BinOp::Div),
                        Just(BinOp::Mod)
                    ]
                )
                    .prop_map(|(l, r, op)| Expr::Bin {
                        op,
                        l: Box::new(l),
                        r: Box::new(r)
                    }),
                (
                    inner.clone(),
                    inner.clone(),
                    prop_oneof![
                        Just(CmpOp::Eq),
                        Just(CmpOp::Ne),
                        Just(CmpOp::Lt),
                        Just(CmpOp::Le),
                        Just(CmpOp::Gt),
                        Just(CmpOp::Ge)
                    ]
                )
                    .prop_map(|(l, r, op)| Expr::Cmp {
                        op,
                        l: Box::new(l),
                        r: Box::new(r)
                    }),
                (inner.clone(), inner.clone())
                    .prop_map(|(l, r)| Expr::And(Box::new(l), Box::new(r))),
                (inner.clone(), inner.clone())
                    .prop_map(|(l, r)| Expr::Or(Box::new(l), Box::new(r))),
                inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
                inner.clone().prop_map(|e| Expr::Neg(Box::new(e))),
                (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, v, e)| Expr::Case {
                    whens: vec![(c, v)],
                    otherwise: Some(Box::new(e)),
                }),
                proptest::collection::vec(inner, 1..3)
                    .prop_map(|args| Expr::Call { name: "F".into(), args }),
            ]
        })
    }

    proptest! {
        #[test]
        fn print_parse_roundtrip(e in arb_expr()) {
            let printed = print_expr(&e);
            let reparsed = parse_expr(&printed)
                .unwrap_or_else(|err| panic!("reparse `{printed}`: {err}"));
            prop_assert_eq!(e, reparsed);
        }
    }
}
