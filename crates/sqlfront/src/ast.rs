//! Abstract syntax of the Jigsaw dialect.

/// A scalar expression (name-based; resolution happens in analysis).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// NULL.
    Null,
    /// Column reference.
    Col(String),
    /// `@parameter` reference.
    Param(String),
    /// Function call — black box or aggregate, disambiguated in analysis.
    Call {
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `COUNT(*)`.
    CountStar,
    /// Binary arithmetic (`+ - * / %`).
    Bin {
        /// Operator symbol.
        op: BinOp,
        /// Left operand.
        l: Box<Expr>,
        /// Right operand.
        r: Box<Expr>,
    },
    /// Comparison.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        l: Box<Expr>,
        /// Right operand.
        r: Box<Expr>,
    },
    /// `AND`.
    And(Box<Expr>, Box<Expr>),
    /// `OR`.
    Or(Box<Expr>, Box<Expr>),
    /// `NOT`.
    Not(Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// `CASE WHEN … THEN … [ELSE …] END`.
    Case {
        /// `(condition, value)` arms.
        whens: Vec<(Expr, Expr)>,
        /// `ELSE` value.
        otherwise: Option<Box<Expr>>,
    },
}

/// Arithmetic operators (shared shape with the PDB layer).
pub type BinOp = jigsaw_pdb::BinOp;
/// Comparison operators (shared shape with the PDB layer).
pub type CmpOp = jigsaw_pdb::CmpOp;

/// One item of a `SELECT` list.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The expression.
    pub expr: Expr,
    /// `AS alias` (defaults to a generated name in analysis).
    pub alias: Option<String>,
}

/// A `FROM` source.
#[derive(Debug, Clone, PartialEq)]
pub enum FromClause {
    /// A named table.
    Table(String),
    /// A parenthesized subquery.
    Subquery(Box<SelectStmt>),
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// Optional source (absent = one-row scan).
    pub from: Option<FromClause>,
    /// Optional predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` columns.
    pub group_by: Vec<String>,
    /// `INTO table` target.
    pub into: Option<String>,
}

/// Parameter domain declarations.
#[derive(Debug, Clone, PartialEq)]
pub enum DomainAst {
    /// `RANGE lo TO hi STEP BY step`.
    Range {
        /// Low bound.
        lo: i64,
        /// High bound.
        hi: i64,
        /// Stride.
        step: i64,
    },
    /// `SET (v, …)`.
    Set(Vec<i64>),
    /// `CHAIN source FROM @step_param : <expr> INITIAL VALUE v`.
    Chain {
        /// Result column feeding the chain.
        source: String,
        /// The step parameter the chain advances over.
        step_param: String,
        /// Initial chain value.
        initial: f64,
    },
}

/// `DECLARE PARAMETER @name AS <domain>;`
#[derive(Debug, Clone, PartialEq)]
pub struct DeclareStmt {
    /// Parameter name (no `@`).
    pub name: String,
    /// Domain.
    pub domain: DomainAst,
}

/// Metric selector in `OPTIMIZE` / `GRAPH`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricAst {
    /// `EXPECT col`.
    Expect,
    /// `EXPECT_STDDEV col`.
    StdDev,
}

/// Outer fold in an `OPTIMIZE` constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OuterAggAst {
    /// `MAX(…)`.
    Max,
    /// `MIN(…)`.
    Min,
    /// `AVG(…)`.
    Avg,
}

/// One constraint: `OUTER(METRIC col) cmp number`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintAst {
    /// Outer fold.
    pub outer: OuterAggAst,
    /// Metric.
    pub metric: MetricAst,
    /// Column name.
    pub column: String,
    /// Comparison operator (`<`, `<=`, `>`, `>=`).
    pub cmp: CmpOp,
    /// Threshold.
    pub threshold: f64,
}

/// `FOR MAX @p` / `FOR MIN @p` objective.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectiveAst {
    /// `true` for MAX.
    pub maximize: bool,
    /// Parameter name.
    pub param: String,
}

/// The batch `OPTIMIZE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeStmt {
    /// Selected decision parameters.
    pub select_params: Vec<String>,
    /// Results table name.
    pub from: String,
    /// Conjunctive constraints.
    pub constraints: Vec<ConstraintAst>,
    /// `GROUP BY` names (decision parameters; `@`-less per Figure 1).
    pub group_by: Vec<String>,
    /// Lexicographic objectives.
    pub objectives: Vec<ObjectiveAst>,
}

/// One series of a `GRAPH` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSeries {
    /// Metric.
    pub metric: MetricAst,
    /// Column.
    pub column: String,
    /// `WITH` style words.
    pub style: Vec<String>,
}

/// The interactive `GRAPH OVER` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStmt {
    /// X-axis parameter.
    pub over: String,
    /// Series.
    pub series: Vec<GraphSeries>,
}

/// Any statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Parameter declaration.
    Declare(DeclareStmt),
    /// Scenario query.
    Select(SelectStmt),
    /// Batch optimization goal.
    Optimize(OptimizeStmt),
    /// Interactive graph directive.
    Graph(GraphStmt),
}

/// A full script: declarations, one scenario `SELECT`, one directive.
#[derive(Debug, Clone, PartialEq)]
pub struct Script {
    /// All statements in source order.
    pub stmts: Vec<Stmt>,
}

impl Script {
    /// The declarations.
    pub fn declares(&self) -> impl Iterator<Item = &DeclareStmt> {
        self.stmts.iter().filter_map(|s| match s {
            Stmt::Declare(d) => Some(d),
            _ => None,
        })
    }

    /// The scenario `SELECT` (the first one).
    pub fn scenario(&self) -> Option<&SelectStmt> {
        self.stmts.iter().find_map(|s| match s {
            Stmt::Select(q) => Some(q),
            _ => None,
        })
    }

    /// The `OPTIMIZE` directive, if present.
    pub fn optimize(&self) -> Option<&OptimizeStmt> {
        self.stmts.iter().find_map(|s| match s {
            Stmt::Optimize(o) => Some(o),
            _ => None,
        })
    }

    /// The `GRAPH` directive, if present.
    pub fn graph(&self) -> Option<&GraphStmt> {
        self.stmts.iter().find_map(|s| match s {
            Stmt::Graph(g) => Some(g),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_accessors() {
        let script = Script {
            stmts: vec![
                Stmt::Declare(DeclareStmt {
                    name: "w".into(),
                    domain: DomainAst::Range { lo: 0, hi: 5, step: 1 },
                }),
                Stmt::Select(SelectStmt {
                    items: vec![],
                    from: None,
                    where_clause: None,
                    group_by: vec![],
                    into: Some("results".into()),
                }),
            ],
        };
        assert_eq!(script.declares().count(), 1);
        assert!(script.scenario().is_some());
        assert!(script.optimize().is_none());
        assert!(script.graph().is_none());
    }
}
