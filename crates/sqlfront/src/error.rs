//! Parse and analysis errors.

use std::fmt;

/// A source location (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// Line number, starting at 1.
    pub line: u32,
    /// Column number, starting at 1.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Errors from the Jigsaw SQL dialect front-end.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexical error (bad character, unterminated string, …).
    Lex {
        /// Location.
        pos: Pos,
        /// Explanation.
        msg: String,
    },
    /// Grammar violation.
    Parse {
        /// Location.
        pos: Pos,
        /// Explanation.
        msg: String,
    },
    /// Semantic violation (unknown names, unsupported shapes, …).
    Analyze(String),
    /// Error bubbled up from the PDB layer.
    Pdb(jigsaw_pdb::PdbError),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { pos, msg } => write!(f, "lex error at {pos}: {msg}"),
            SqlError::Parse { pos, msg } => write!(f, "parse error at {pos}: {msg}"),
            SqlError::Analyze(msg) => write!(f, "analysis error: {msg}"),
            SqlError::Pdb(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<jigsaw_pdb::PdbError> for SqlError {
    fn from(e: jigsaw_pdb::PdbError) -> Self {
        SqlError::Pdb(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, SqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = SqlError::Parse { pos: Pos { line: 3, col: 14 }, msg: "expected SELECT".into() };
        assert_eq!(e.to_string(), "parse error at 3:14: expected SELECT");
    }

    #[test]
    fn pdb_errors_convert() {
        let e: SqlError = jigsaw_pdb::PdbError::UnknownTable("t".into()).into();
        assert!(e.to_string().contains("unknown table"));
    }
}
