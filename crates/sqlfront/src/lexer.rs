//! Hand-written lexer.

use crate::error::{Pos, Result, SqlError};
use crate::token::{SpannedTok, Tok, KEYWORDS};

/// Tokenize a source string. `--` starts a line comment (the paper's query
/// listings use them as section markers).
pub fn lex(src: &str) -> Result<Vec<SpannedTok>> {
    let mut out = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let pos = Pos { line, col };
        match c {
            ' ' | '\t' | '\r' | '\n' => bump!(),
            '-' if chars.get(i + 1) == Some(&'-') => {
                while i < chars.len() && chars[i] != '\n' {
                    bump!();
                }
            }
            '(' => {
                out.push(SpannedTok { tok: Tok::LParen, pos });
                bump!();
            }
            ')' => {
                out.push(SpannedTok { tok: Tok::RParen, pos });
                bump!();
            }
            ',' => {
                out.push(SpannedTok { tok: Tok::Comma, pos });
                bump!();
            }
            ';' => {
                out.push(SpannedTok { tok: Tok::Semi, pos });
                bump!();
            }
            ':' => {
                out.push(SpannedTok { tok: Tok::Colon, pos });
                bump!();
            }
            '*' => {
                out.push(SpannedTok { tok: Tok::Star, pos });
                bump!();
            }
            '+' => {
                out.push(SpannedTok { tok: Tok::Plus, pos });
                bump!();
            }
            '-' => {
                out.push(SpannedTok { tok: Tok::Minus, pos });
                bump!();
            }
            '/' => {
                out.push(SpannedTok { tok: Tok::Slash, pos });
                bump!();
            }
            '%' => {
                out.push(SpannedTok { tok: Tok::Percent, pos });
                bump!();
            }
            '=' => {
                out.push(SpannedTok { tok: Tok::Eq, pos });
                bump!();
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                out.push(SpannedTok { tok: Tok::Ne, pos });
                bump!();
                bump!();
            }
            '<' => {
                bump!();
                match chars.get(i) {
                    Some('=') => {
                        out.push(SpannedTok { tok: Tok::Le, pos });
                        bump!();
                    }
                    Some('>') => {
                        out.push(SpannedTok { tok: Tok::Ne, pos });
                        bump!();
                    }
                    _ => out.push(SpannedTok { tok: Tok::Lt, pos }),
                }
            }
            '>' => {
                bump!();
                if chars.get(i) == Some(&'=') {
                    out.push(SpannedTok { tok: Tok::Ge, pos });
                    bump!();
                } else {
                    out.push(SpannedTok { tok: Tok::Gt, pos });
                }
            }
            '\'' => {
                bump!();
                let mut s = String::new();
                loop {
                    match chars.get(i) {
                        None => {
                            return Err(SqlError::Lex { pos, msg: "unterminated string".into() })
                        }
                        Some('\'') => {
                            bump!();
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            bump!();
                        }
                    }
                }
                out.push(SpannedTok { tok: Tok::Str(s), pos });
            }
            '@' => {
                bump!();
                let mut name = String::new();
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    name.push(chars[i]);
                    bump!();
                }
                if name.is_empty() {
                    return Err(SqlError::Lex {
                        pos,
                        msg: "`@` must be followed by a name".into(),
                    });
                }
                out.push(SpannedTok { tok: Tok::Param(name), pos });
            }
            c if c.is_ascii_digit()
                || (c == '.' && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())) =>
            {
                let mut text = String::new();
                let mut is_float = false;
                while i < chars.len()
                    && (chars[i].is_ascii_digit()
                        || chars[i] == '.'
                        || chars[i] == 'e'
                        || chars[i] == 'E'
                        || ((chars[i] == '+' || chars[i] == '-')
                            && matches!(text.chars().last(), Some('e') | Some('E'))))
                {
                    if chars[i] == '.' || chars[i] == 'e' || chars[i] == 'E' {
                        is_float = true;
                    }
                    text.push(chars[i]);
                    bump!();
                }
                let tok =
                    if is_float {
                        Tok::Float(text.parse().map_err(|_| SqlError::Lex {
                            pos,
                            msg: format!("bad number `{text}`"),
                        })?)
                    } else {
                        Tok::Int(text.parse().map_err(|_| SqlError::Lex {
                            pos,
                            msg: format!("bad integer `{text}`"),
                        })?)
                    };
                out.push(SpannedTok { tok, pos });
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut word = String::new();
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    word.push(chars[i]);
                    bump!();
                }
                let upper = word.to_ascii_uppercase();
                match KEYWORDS.iter().find(|k| **k == upper) {
                    Some(k) => out.push(SpannedTok { tok: Tok::Kw(k), pos }),
                    None => out.push(SpannedTok { tok: Tok::Ident(word), pos }),
                }
            }
            other => {
                return Err(SqlError::Lex { pos, msg: format!("unexpected character `{other}`") })
            }
        }
    }
    out.push(SpannedTok { tok: Tok::Eof, pos: Pos { line, col } });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn declare_statement() {
        let t = toks("DECLARE PARAMETER @current_week AS RANGE 0 TO 52 STEP BY 1;");
        assert_eq!(
            t,
            vec![
                Tok::Kw("DECLARE"),
                Tok::Kw("PARAMETER"),
                Tok::Param("current_week".into()),
                Tok::Kw("AS"),
                Tok::Kw("RANGE"),
                Tok::Int(0),
                Tok::Kw("TO"),
                Tok::Int(52),
                Tok::Kw("STEP"),
                Tok::Kw("BY"),
                Tok::Int(1),
                Tok::Semi,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            toks("select Select SELECT")[..3],
            [Tok::Kw("SELECT"), Tok::Kw("SELECT"), Tok::Kw("SELECT")]
        );
    }

    #[test]
    fn comments_skipped() {
        let t = toks("-- DEFINITION --\nSELECT");
        assert_eq!(t, vec![Tok::Kw("SELECT"), Tok::Eof]);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("< <= > >= = <> !=")[..7],
            [Tok::Lt, Tok::Le, Tok::Gt, Tok::Ge, Tok::Eq, Tok::Ne, Tok::Ne]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42 0.01 1e-3")[..3], [Tok::Int(42), Tok::Float(0.01), Tok::Float(1e-3)]);
    }

    #[test]
    fn strings_and_idents() {
        assert_eq!(
            toks("results 'red bold'")[..2],
            [Tok::Ident("results".into()), Tok::Str("red bold".into())]
        );
    }

    #[test]
    fn positions_track_lines() {
        let spanned = lex("SELECT\n  demand").unwrap();
        assert_eq!(spanned[1].pos.line, 2);
        assert_eq!(spanned[1].pos.col, 3);
    }

    #[test]
    fn error_on_bad_char() {
        assert!(matches!(lex("SELECT ~"), Err(SqlError::Lex { .. })));
    }

    #[test]
    fn error_on_unterminated_string() {
        assert!(matches!(lex("'oops"), Err(SqlError::Lex { .. })));
    }

    #[test]
    fn error_on_bare_at() {
        assert!(matches!(lex("@ week"), Err(SqlError::Lex { .. })));
    }
}
