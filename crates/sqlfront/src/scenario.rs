//! Compiled scenarios: the glue between parsed scripts and the engines.

use std::sync::Arc;

use jigsaw_blackbox::ParamSpace;
use jigsaw_core::optimizer::{selector, OptimizeGoal, Selection, SweepResult, SweepRunner};
use jigsaw_core::JigsawConfig;
use jigsaw_pdb::{BoundPlan, Catalog, Engine, PlanSim};
use jigsaw_prng::SeedSet;

use crate::analyze::{analyze_declares, lower_optimize, lower_select, ChainInfo};
use crate::ast::{GraphStmt, Script};
use crate::error::{Result, SqlError};
use crate::parser::parse_script;

/// A fully analyzed scenario script, ready to execute.
#[derive(Debug)]
pub struct Scenario {
    /// The parsed script.
    pub script: Script,
    /// Parameter space from the `DECLARE` statements.
    pub space: ParamSpace,
    /// The scenario query, bound against the catalog.
    pub plan: BoundPlan,
    /// Output column names.
    pub columns: Vec<String>,
    /// Lowered `OPTIMIZE` goal, when the script has one.
    pub goal: Option<OptimizeGoal>,
    /// The `GRAPH` directive, when the script has one.
    pub graph: Option<GraphStmt>,
    /// Chain metadata, when a `CHAIN` parameter is declared.
    pub chain: Option<ChainInfo>,
}

/// Result of a batch (`OPTIMIZE`) execution.
pub struct BatchOutcome {
    /// The full sweep.
    pub sweep: SweepResult,
    /// The winning decision, if the goal was feasible.
    pub selection: Option<Selection>,
}

/// Parse and analyze a script against a catalog.
pub fn compile(src: &str, catalog: &Catalog) -> Result<Scenario> {
    let script = parse_script(src)?;
    let decls: Vec<_> = script.declares().collect();
    let (space, chain) = analyze_declares(&decls)?;
    let select = script
        .scenario()
        .ok_or_else(|| SqlError::Analyze("script has no scenario SELECT".into()))?;
    let plan = lower_select(select, catalog)?;
    let param_names: Vec<String> = space.names().iter().map(|s| s.to_string()).collect();
    let plan = plan.bind(catalog, &param_names)?;
    let columns: Vec<String> = plan.schema.names().into_iter().map(String::from).collect();
    let goal = match script.optimize() {
        Some(o) => Some(lower_optimize(o)?),
        None => None,
    };
    if let Some(g) = &goal {
        for c in &g.constraints {
            if !columns.contains(&c.column) {
                return Err(SqlError::Analyze(format!(
                    "OPTIMIZE references unknown column `{}`",
                    c.column
                )));
            }
        }
        for p in &g.decision_params {
            if space.index_of(p).is_none() {
                return Err(SqlError::Analyze(format!(
                    "OPTIMIZE references undeclared parameter @{p}"
                )));
            }
        }
    }
    let graph = script.graph().cloned();
    if let Some(g) = &graph {
        if space.index_of(&g.over).is_none() {
            return Err(SqlError::Analyze(format!(
                "GRAPH OVER references undeclared parameter @{}",
                g.over
            )));
        }
        for s in &g.series {
            if !columns.contains(&s.column) {
                return Err(SqlError::Analyze(format!(
                    "GRAPH references unknown column `{}`",
                    s.column
                )));
            }
        }
    }
    Ok(Scenario { script, space, plan, columns, goal, graph, chain })
}

impl Scenario {
    /// Wrap the scenario as a [`jigsaw_pdb::Simulation`] on the given engine.
    pub fn simulation(
        &self,
        engine: Arc<dyn Engine>,
        catalog: Arc<Catalog>,
        seeds: SeedSet,
    ) -> PlanSim {
        PlanSim::new(engine, self.plan.clone(), catalog, self.space.clone(), seeds)
    }

    /// Execute the batch pipeline: sweep the parameter space with
    /// fingerprint reuse, then apply the `OPTIMIZE` selector.
    pub fn run_batch(
        &self,
        engine: Arc<dyn Engine>,
        catalog: Arc<Catalog>,
        seeds: SeedSet,
        cfg: JigsawConfig,
    ) -> Result<BatchOutcome> {
        let sim = self.simulation(engine, catalog, seeds);
        let sweep = SweepRunner::new(cfg).run(&sim)?;
        // A NaN constraint metric is a typed error (the selector refuses to
        // fold it away), which `?` forwards as `SqlError::Pdb` so servers
        // answer ERR instead of publishing an unvalidated selection.
        let selection = match &self.goal {
            Some(goal) => selector::select(&self.space, &sweep, goal, &self.columns)?,
            None => None,
        };
        Ok(BatchOutcome { sweep, selection })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jigsaw_blackbox::FnBlackBox;
    use jigsaw_pdb::DirectEngine;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        // Deterministic toy models so the optimizer outcome is exact:
        // risk rises with week unless the purchase happened by week 20.
        c.add_function(Arc::new(FnBlackBox::new("Risk", 2, |p: &[f64], _| {
            if p[1] <= 20.0 {
                0.0
            } else {
                p[0] / 100.0
            }
        })));
        c
    }

    const SRC: &str = "
        DECLARE PARAMETER @week AS RANGE 0 TO 49 STEP BY 1;
        DECLARE PARAMETER @purchase AS RANGE 0 TO 40 STEP BY 10;
        SELECT Risk(@week, @purchase) AS risk INTO results;
        OPTIMIZE SELECT @purchase FROM results
        WHERE MAX(EXPECT risk) < 0.01
        GROUP BY purchase
        FOR MAX @purchase";

    #[test]
    fn compile_extracts_everything() {
        let cat = catalog();
        let s = compile(SRC, &cat).unwrap();
        assert_eq!(s.space.len(), 250);
        assert_eq!(s.columns, vec!["risk"]);
        assert!(s.goal.is_some());
        assert!(s.graph.is_none());
        assert!(s.chain.is_none());
    }

    #[test]
    fn end_to_end_batch_optimization() {
        let cat = Arc::new(catalog());
        let s = compile(SRC, &cat).unwrap();
        let out = s
            .run_batch(
                Arc::new(DirectEngine::new()),
                cat,
                SeedSet::new(1),
                JigsawConfig::paper().with_n_samples(20),
            )
            .unwrap();
        let sel = out.selection.expect("feasible");
        assert_eq!(sel.assignment, vec![("purchase".to_string(), 20.0)]);
        assert_eq!(out.sweep.points.len(), 250);
    }

    #[test]
    fn unknown_constraint_column_rejected() {
        let cat = catalog();
        let bad = SRC.replace("EXPECT risk", "EXPECT nope");
        let err = compile(&bad, &cat).unwrap_err();
        assert!(err.to_string().contains("unknown column"), "{err}");
    }

    #[test]
    fn undeclared_graph_param_rejected() {
        let cat = catalog();
        let src = "
            DECLARE PARAMETER @week AS RANGE 0 TO 9 STEP BY 1;
            SELECT Risk(@week, @week) AS risk INTO results;
            GRAPH OVER @nope EXPECT risk";
        let err = compile(src, &cat).unwrap_err();
        assert!(err.to_string().contains("undeclared parameter"), "{err}");
    }

    #[test]
    fn missing_select_rejected() {
        let cat = catalog();
        let err = compile("DECLARE PARAMETER @w AS RANGE 0 TO 1 STEP BY 1;", &cat).unwrap_err();
        assert!(err.to_string().contains("no scenario SELECT"));
    }
}
