//! Markov models defined by `CHAIN` queries (paper Figure 5).
//!
//! ```sql
//! DECLARE PARAMETER @release_week AS CHAIN release_week
//!     FROM @current_week : @current_week - 1 INITIAL VALUE 52;
//! SELECT ReleaseWeekModel(demand) AS release_week, demand
//! FROM (SELECT DemandModel(@current_week, @release_week) AS demand)
//! INTO results
//! ```
//!
//! Each step `t` evaluates the query with `@current_week = t` and the chain
//! parameter holding the previous step's `release_week` output. This module
//! adapts such a compiled scenario into a [`MarkovModel`], so the core
//! Markov-jump runner (Algorithm 4) can accelerate it.
//!
//! Seed discipline: the jump algorithm supplies a per-`(instance, step)`
//! seed; we build a single-world seed set from it, so the query's call-site
//! derivation stays identical no matter how the engine reached that step.

use std::sync::Arc;

use jigsaw_blackbox::MarkovModel;
use jigsaw_core::markov::{MarkovJumpConfig, MarkovJumpResult, MarkovJumpRunner};
use jigsaw_pdb::{BoundPlan, BundleCell, Catalog, Engine, ExecContext};
use jigsaw_prng::Seed;

use crate::analyze::ChainInfo;
use crate::error::{Result, SqlError};
use crate::scenario::Scenario;

/// A `CHAIN` scenario exposed as a Markov model.
pub struct QueryChainModel {
    plan: BoundPlan,
    catalog: Arc<Catalog>,
    engine: Arc<dyn Engine>,
    /// Index of the step parameter in the parameter vector.
    step_idx: usize,
    /// Index of the chain parameter in the parameter vector.
    chain_idx: usize,
    /// Column producing the next chain value.
    source_col: usize,
    /// Column reported as the model output.
    output_col: usize,
    /// Full parameter template (non-step/chain params at initial values).
    template: Vec<f64>,
    initial: f64,
    name: String,
}

impl QueryChainModel {
    /// Adapt a compiled scenario with a `CHAIN` declaration.
    ///
    /// The model output is the first result column other than the chain
    /// source (Figure 5's `demand`).
    pub fn from_scenario(
        scenario: &Scenario,
        catalog: Arc<Catalog>,
        engine: Arc<dyn Engine>,
    ) -> Result<Self> {
        let chain: &ChainInfo = scenario
            .chain
            .as_ref()
            .ok_or_else(|| SqlError::Analyze("scenario has no CHAIN parameter".into()))?;
        let step_idx = scenario.space.index_of(&chain.step_param).ok_or_else(|| {
            SqlError::Analyze(format!("unknown step param @{}", chain.step_param))
        })?;
        let chain_idx = scenario
            .space
            .index_of(&chain.param)
            .ok_or_else(|| SqlError::Analyze(format!("unknown chain param @{}", chain.param)))?;
        let source_col =
            scenario.columns.iter().position(|c| *c == chain.source_column).ok_or_else(|| {
                SqlError::Analyze(format!(
                    "chain source column `{}` not produced",
                    chain.source_column
                ))
            })?;
        let output_col =
            scenario.columns.iter().position(|c| *c != chain.source_column).ok_or_else(|| {
                SqlError::Analyze("chain query must produce a non-chain output column".into())
            })?;
        // Template: every parameter at the first value of its domain; the
        // step and chain slots are overwritten per evaluation.
        let template = if scenario.space.is_empty() {
            return Err(SqlError::Analyze("empty parameter space".into()));
        } else {
            scenario.space.point_at(0)
        };
        Ok(QueryChainModel {
            plan: scenario.plan.clone(),
            catalog,
            engine,
            step_idx,
            chain_idx,
            source_col,
            output_col,
            template,
            initial: chain.initial,
            name: format!("chain:{}", chain.source_column),
        })
    }

    /// Evaluate the query for one `(step, chain, seed)` triple, returning
    /// `(output, next_chain)`.
    fn eval_query(&self, step: usize, chain: f64, seed: Seed) -> (f64, f64) {
        let mut params = self.template.clone();
        params[self.step_idx] = step as f64;
        params[self.chain_idx] = chain;
        let ctx = ExecContext::new(jigsaw_prng::SeedSet::new(seed.0), params, 1);
        let table = self
            .engine
            .execute(&self.plan, &self.catalog, &ctx)
            .expect("chain query execution failed");
        assert_eq!(table.len(), 1, "chain queries must produce one row");
        let row = &table.rows[0];
        let get = |c: usize| -> f64 {
            match &row.cells[c] {
                BundleCell::Det(v) => v.as_f64().unwrap_or(f64::NAN),
                BundleCell::Stoch(xs) => xs[0],
            }
        };
        (get(self.output_col), get(self.source_col))
    }

    /// Run the chain with the Markov-jump accelerator.
    pub fn run_jump(&self, cfg: MarkovJumpConfig, master: Seed, steps: usize) -> MarkovJumpResult {
        MarkovJumpRunner::new(cfg).run(self, master, steps)
    }
}

impl MarkovModel for QueryChainModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn initial_chain(&self) -> f64 {
        self.initial
    }

    fn output(&self, step: usize, chain: f64, seed: Seed) -> f64 {
        self.eval_query(step, chain, seed).0
    }

    fn next_chain(&self, step: usize, chain: f64, _output: f64, seed: Seed) -> f64 {
        // The runner hands a transition seed derived from the step seed;
        // evaluating the query under it keeps transitions reproducible
        // regardless of how the engine reached this step.
        self.eval_query(step, chain, seed).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::compile;
    use jigsaw_blackbox::FnBlackBox;
    use jigsaw_core::markov::run_naive;
    use jigsaw_pdb::DirectEngine;

    /// Figure 5 in miniature: demand grows with the week and is boosted
    /// after release; release triggers once demand crosses 25.
    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_function(Arc::new(FnBlackBox::new("DemandModel", 2, |p: &[f64], s| {
            let (week, release) = (p[0], p[1]);
            let boost = if week > release { 5.0 } else { 0.0 };
            week + boost + (s.0 % 8) as f64 * 0.01
        })));
        c.add_function(Arc::new(FnBlackBox::new("ReleaseWeekModel", 2, |p: &[f64], _| {
            let (demand, prev) = (p[0], p[1]);
            if prev > 900.0 && demand >= 25.0 {
                // Not yet released and demand crossed: release now-ish.
                demand.floor()
            } else {
                prev
            }
        })));
        c
    }

    const SRC: &str = "
        DECLARE PARAMETER @current_week AS RANGE 0 TO 52 STEP BY 1;
        DECLARE PARAMETER @release_week AS CHAIN release_week
            FROM @current_week : @current_week - 1 INITIAL VALUE 999;
        SELECT ReleaseWeekModel(demand, @release_week) AS release_week, demand
        FROM (SELECT DemandModel(@current_week, @release_week) AS demand)
        INTO results";

    fn model() -> (QueryChainModel, Arc<Catalog>) {
        let cat = Arc::new(catalog());
        let scenario = compile(SRC, &cat).unwrap();
        let m =
            QueryChainModel::from_scenario(&scenario, cat.clone(), Arc::new(DirectEngine::new()))
                .unwrap();
        (m, cat)
    }

    #[test]
    fn chain_wiring_resolves() {
        let (m, _) = model();
        assert_eq!(m.initial_chain(), 999.0);
        assert_eq!(m.name(), "chain:release_week");
    }

    #[test]
    fn outputs_follow_release_dynamics() {
        let (m, _) = model();
        // Before release: output ~ week.
        let out = m.output(3, 999.0, Seed(1));
        assert!(out < 4.0, "{out}");
        // After release at week 20: boosted by 5.
        let boosted = m.output(30, 20.0, Seed(1));
        assert!(boosted >= 35.0, "{boosted}");
    }

    #[test]
    fn jump_matches_naive_stepping() {
        let (m, _) = model();
        let cfg = MarkovJumpConfig::paper().with_n(40).with_m(6);
        let jump = m.run_jump(cfg, Seed(11), 40);
        let (naive, naive_stats) = run_naive(&m, Seed(11), 40, 40);
        let exact =
            jump.outputs.iter().zip(&naive).filter(|(a, b)| (**a - **b).abs() < 1e-9).count();
        assert!(exact >= 38, "{exact}/40 exact");
        assert!(jump.stats.model_invocations < naive_stats.model_invocations);
    }

    #[test]
    fn scenario_without_chain_rejected() {
        let cat = Arc::new(catalog());
        let scenario = compile(
            "DECLARE PARAMETER @w AS RANGE 0 TO 5 STEP BY 1;
             SELECT DemandModel(@w, @w) AS demand INTO results",
            &cat,
        )
        .unwrap();
        assert!(QueryChainModel::from_scenario(
            &scenario,
            cat.clone(),
            Arc::new(DirectEngine::new())
        )
        .is_err());
    }
}
