//! Semantic analysis: AST → parameter spaces, PDB plans, optimizer goals.

use jigsaw_blackbox::{ParamDecl, ParamSpace};
use jigsaw_core::optimizer::{
    Comparison, Constraint, Direction, Objective, OptimizeGoal, OuterAgg,
};
use jigsaw_pdb::{AggFunc, AggSpec, Catalog, Expr as PExpr, Metric, Plan};

use crate::ast::*;
use crate::error::{Result, SqlError};

/// Chain metadata extracted from a `CHAIN` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainInfo {
    /// The chain parameter name (`@release_week`).
    pub param: String,
    /// The result column that feeds the chain.
    pub source_column: String,
    /// The step parameter (`@current_week`).
    pub step_param: String,
    /// Initial chain value.
    pub initial: f64,
}

/// Lower declarations into a parameter space, extracting chain metadata.
pub fn analyze_declares(decls: &[&DeclareStmt]) -> Result<(ParamSpace, Option<ChainInfo>)> {
    let mut params = Vec::with_capacity(decls.len());
    let mut chain = None;
    for d in decls {
        match &d.domain {
            DomainAst::Range { lo, hi, step } => {
                if *step <= 0 {
                    return Err(SqlError::Analyze(format!(
                        "@{}: STEP BY must be positive",
                        d.name
                    )));
                }
                params.push(ParamDecl::range(d.name.clone(), *lo, *hi, *step));
            }
            DomainAst::Set(vs) => {
                if vs.is_empty() {
                    return Err(SqlError::Analyze(format!("@{}: SET must be non-empty", d.name)));
                }
                params.push(ParamDecl::set(d.name.clone(), vs.clone()));
            }
            DomainAst::Chain { source, step_param, initial } => {
                if chain.is_some() {
                    return Err(SqlError::Analyze(
                        "at most one CHAIN parameter is supported".into(),
                    ));
                }
                chain = Some(ChainInfo {
                    param: d.name.clone(),
                    source_column: source.clone(),
                    step_param: step_param.clone(),
                    initial: *initial,
                });
                params.push(ParamDecl::chain(d.name.clone(), source.clone(), *initial));
            }
        }
    }
    Ok((ParamSpace::new(params), chain))
}

/// Is this call head an aggregate function?
fn agg_func(name: &str) -> Option<AggFunc> {
    match name.to_ascii_uppercase().as_str() {
        "SUM" => Some(AggFunc::Sum),
        "COUNT" => Some(AggFunc::Count),
        "AVG" => Some(AggFunc::Avg),
        "MIN" => Some(AggFunc::Min),
        "MAX" => Some(AggFunc::Max),
        _ => None,
    }
}

fn contains_aggregate(e: &Expr) -> bool {
    match e {
        Expr::CountStar => true,
        Expr::Call { name, args } => {
            agg_func(name).is_some() || args.iter().any(contains_aggregate)
        }
        Expr::Bin { l, r, .. } | Expr::Cmp { l, r, .. } => {
            contains_aggregate(l) || contains_aggregate(r)
        }
        Expr::And(l, r) | Expr::Or(l, r) => contains_aggregate(l) || contains_aggregate(r),
        Expr::Not(e) | Expr::Neg(e) => contains_aggregate(e),
        Expr::Case { whens, otherwise } => {
            whens.iter().any(|(c, v)| contains_aggregate(c) || contains_aggregate(v))
                || otherwise.as_ref().map(|e| contains_aggregate(e)).unwrap_or(false)
        }
        _ => false,
    }
}

/// Column names an expression references.
fn referenced_columns(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Col(c) => out.push(c.clone()),
        Expr::Call { args, .. } => args.iter().for_each(|a| referenced_columns(a, out)),
        Expr::Bin { l, r, .. } | Expr::Cmp { l, r, .. } => {
            referenced_columns(l, out);
            referenced_columns(r, out);
        }
        Expr::And(l, r) | Expr::Or(l, r) => {
            referenced_columns(l, out);
            referenced_columns(r, out);
        }
        Expr::Not(e) | Expr::Neg(e) => referenced_columns(e, out),
        Expr::Case { whens, otherwise } => {
            for (c, v) in whens {
                referenced_columns(c, out);
                referenced_columns(v, out);
            }
            if let Some(e) = otherwise {
                referenced_columns(e, out);
            }
        }
        _ => {}
    }
}

/// Lower an AST expression to a PDB expression (aggregates rejected here;
/// they are peeled off at the select-item level).
fn lower_expr(e: &Expr) -> Result<PExpr> {
    Ok(match e {
        Expr::Int(v) => PExpr::lit_i(*v),
        Expr::Float(v) => PExpr::lit_f(*v),
        Expr::Str(s) => PExpr::Lit(jigsaw_pdb::Value::Str(s.clone())),
        Expr::Bool(b) => PExpr::Lit(jigsaw_pdb::Value::Bool(*b)),
        Expr::Null => PExpr::Lit(jigsaw_pdb::Value::Null),
        Expr::Col(c) => PExpr::col(c.clone()),
        Expr::Param(p) => PExpr::param(p.clone()),
        Expr::CountStar => {
            return Err(SqlError::Analyze("COUNT(*) is only valid as a select item".into()))
        }
        Expr::Call { name, args } => {
            if agg_func(name).is_some() {
                return Err(SqlError::Analyze(format!(
                    "aggregate {name}(…) must be a top-level select item"
                )));
            }
            PExpr::call(name.clone(), args.iter().map(lower_expr).collect::<Result<Vec<_>>>()?)
        }
        Expr::Bin { op, l, r } => PExpr::bin(*op, lower_expr(l)?, lower_expr(r)?),
        Expr::Cmp { op, l, r } => PExpr::cmp(*op, lower_expr(l)?, lower_expr(r)?),
        Expr::And(l, r) => PExpr::And(Box::new(lower_expr(l)?), Box::new(lower_expr(r)?)),
        Expr::Or(l, r) => PExpr::Or(Box::new(lower_expr(l)?), Box::new(lower_expr(r)?)),
        Expr::Not(e) => PExpr::Not(Box::new(lower_expr(e)?)),
        Expr::Neg(e) => PExpr::Neg(Box::new(lower_expr(e)?)),
        Expr::Case { whens, otherwise } => PExpr::Case {
            whens: whens
                .iter()
                .map(|(c, v)| Ok((lower_expr(c)?, lower_expr(v)?)))
                .collect::<Result<Vec<_>>>()?,
            otherwise: match otherwise {
                Some(e) => Some(Box::new(lower_expr(e)?)),
                None => None,
            },
        },
    })
}

/// Output column name for select item `i`.
fn item_name(item: &SelectItem, i: usize) -> String {
    item.alias.clone().unwrap_or_else(|| match &item.expr {
        Expr::Col(c) => c.clone(),
        Expr::Call { name, .. } => name.to_ascii_lowercase(),
        _ => format!("col{i}"),
    })
}

/// Lower a `SELECT` statement to a logical plan.
///
/// Supports the paper's dialect conveniences:
/// * select items may reference *earlier sibling aliases* (Figure 1's
///   `CASE WHEN capacity < demand …`), realized as cascading projections;
/// * aggregates (`SUM`/`COUNT`/`AVG`/`MIN`/`MAX`) as top-level items with
///   `GROUP BY` on deterministic columns.
pub fn lower_select(stmt: &SelectStmt, catalog: &Catalog) -> Result<Plan> {
    // Source.
    let (input, input_columns): (Plan, Vec<String>) = match &stmt.from {
        None => (Plan::OneRow, vec![]),
        Some(FromClause::Table(t)) => {
            let table = catalog.table(t)?;
            let cols = table.schema().names().into_iter().map(String::from).collect();
            (Plan::Scan { table: t.clone() }, cols)
        }
        Some(FromClause::Subquery(sub)) => {
            let plan = lower_select(sub, catalog)?;
            let cols = sub.items.iter().enumerate().map(|(i, it)| item_name(it, i)).collect();
            (plan, cols)
        }
    };

    // WHERE applies over the source columns.
    let input = match &stmt.where_clause {
        Some(pred) => input.filter(lower_expr(pred)?),
        None => input,
    };

    let has_agg = stmt.items.iter().any(|it| contains_aggregate(&it.expr));
    if has_agg {
        let group_by: Vec<(String, PExpr)> =
            stmt.group_by.iter().map(|g| (g.clone(), PExpr::col(g.clone()))).collect();
        let mut aggs = Vec::new();
        for (i, item) in stmt.items.iter().enumerate() {
            let name = item_name(item, i);
            match &item.expr {
                Expr::CountStar => aggs.push(AggSpec { name, func: AggFunc::Count, arg: None }),
                Expr::Call { name: fname, args } if agg_func(fname).is_some() => {
                    if args.len() != 1 {
                        return Err(SqlError::Analyze(format!(
                            "{fname} takes exactly one argument"
                        )));
                    }
                    aggs.push(AggSpec {
                        name,
                        func: agg_func(fname).expect("checked"),
                        arg: Some(lower_expr(&args[0])?),
                    });
                }
                Expr::Col(c) if stmt.group_by.contains(c) => {
                    // Emitted through the group-by key list.
                }
                other => {
                    return Err(SqlError::Analyze(format!(
                        "select item `{other:?}` in an aggregate query must be an aggregate \
                         or a GROUP BY column"
                    )))
                }
            }
        }
        return Ok(input.aggregate(group_by, aggs));
    }

    // Non-aggregate: cascade projections so items may reference earlier
    // sibling aliases.
    let names: Vec<String> =
        stmt.items.iter().enumerate().map(|(i, it)| item_name(it, i)).collect();
    let mut depth = vec![0usize; stmt.items.len()];
    for (i, item) in stmt.items.iter().enumerate() {
        let mut refs = Vec::new();
        referenced_columns(&item.expr, &mut refs);
        for r in refs {
            if let Some(j) = names[..i].iter().position(|n| *n == r) {
                depth[i] = depth[i].max(depth[j] + 1);
            } else if !input_columns.contains(&r) {
                return Err(SqlError::Analyze(format!("unknown column `{r}`")));
            }
        }
    }
    let max_depth = depth.iter().copied().max().unwrap_or(0);
    let mut plan = input;
    for d in 0..=max_depth {
        let mut exprs: Vec<(String, PExpr)> = Vec::new();
        if d < max_depth {
            // Intermediate layer: keep the original input columns visible
            // for later layers, then the items computed so far.
            for c in &input_columns {
                exprs.push((c.clone(), PExpr::col(c.clone())));
            }
        }
        for (i, item) in stmt.items.iter().enumerate() {
            if depth[i] == d {
                exprs.push((names[i].clone(), lower_expr(&item.expr)?));
            } else if depth[i] < d {
                exprs.push((names[i].clone(), PExpr::col(names[i].clone())));
            }
        }
        plan = plan.project(exprs);
    }
    // The final layer must present items in declaration order.
    if max_depth > 0 {
        let reorder: Vec<(String, PExpr)> =
            names.iter().map(|n| (n.clone(), PExpr::col(n.clone()))).collect();
        plan = plan.project(reorder);
    }
    Ok(plan)
}

/// Lower an `OPTIMIZE` statement to an optimizer goal.
pub fn lower_optimize(stmt: &OptimizeStmt) -> Result<OptimizeGoal> {
    let decision_params =
        if stmt.group_by.is_empty() { stmt.select_params.clone() } else { stmt.group_by.clone() };
    let constraints = stmt
        .constraints
        .iter()
        .map(|c| {
            Ok(Constraint {
                column: c.column.clone(),
                metric: match c.metric {
                    MetricAst::Expect => Metric::Expect,
                    MetricAst::StdDev => Metric::StdDev,
                },
                outer: match c.outer {
                    OuterAggAst::Max => OuterAgg::Max,
                    OuterAggAst::Min => OuterAgg::Min,
                    OuterAggAst::Avg => OuterAgg::Avg,
                },
                cmp: match c.cmp {
                    CmpOp::Lt => Comparison::Lt,
                    CmpOp::Le => Comparison::Le,
                    CmpOp::Gt => Comparison::Gt,
                    CmpOp::Ge => Comparison::Ge,
                    other => {
                        return Err(SqlError::Analyze(format!(
                            "constraint comparison {other:?} not supported"
                        )))
                    }
                },
                threshold: c.threshold,
            })
        })
        .collect::<Result<Vec<_>>>()?;
    let objectives = stmt
        .objectives
        .iter()
        .map(|o| Objective {
            param: o.param.clone(),
            direction: if o.maximize { Direction::Max } else { Direction::Min },
        })
        .collect();
    Ok(OptimizeGoal { decision_params, constraints, objectives })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_script;
    use jigsaw_blackbox::FnBlackBox;
    use std::sync::Arc;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_function(Arc::new(FnBlackBox::new("DemandModel", 2, |p: &[f64], _| p[0])));
        c.add_function(Arc::new(FnBlackBox::new("CapacityModel", 3, |p: &[f64], _| p[0])));
        c
    }

    #[test]
    fn declares_to_space() {
        let script = parse_script(
            "DECLARE PARAMETER @w AS RANGE 0 TO 9 STEP BY 1;
             DECLARE PARAMETER @f AS SET (1,2,3);",
        )
        .unwrap();
        let decls: Vec<_> = script.declares().collect();
        let (space, chain) = analyze_declares(&decls).unwrap();
        assert_eq!(space.len(), 30);
        assert!(chain.is_none());
    }

    #[test]
    fn chain_extraction() {
        let script = parse_script(
            "DECLARE PARAMETER @w AS RANGE 0 TO 9 STEP BY 1;
             DECLARE PARAMETER @r AS CHAIN rel FROM @w : @w - 1 INITIAL VALUE 9;",
        )
        .unwrap();
        let decls: Vec<_> = script.declares().collect();
        let (space, chain) = analyze_declares(&decls).unwrap();
        let chain = chain.unwrap();
        assert_eq!(chain.param, "r");
        assert_eq!(chain.source_column, "rel");
        assert_eq!(chain.step_param, "w");
        assert_eq!(space.len(), 10, "chain dim not enumerated");
    }

    #[test]
    fn figure1_select_lowers_with_sibling_aliases() {
        let script = parse_script(
            "SELECT DemandModel(@w, @f) AS demand,
                    CapacityModel(@w, @p1, @p2) AS capacity,
                    CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload
             INTO results",
        )
        .unwrap();
        let plan = lower_select(script.scenario().unwrap(), &catalog()).unwrap();
        let params: Vec<String> = ["w", "f", "p1", "p2"].iter().map(|s| s.to_string()).collect();
        let bound = plan.bind(&catalog(), &params).unwrap();
        assert_eq!(bound.schema.names(), vec!["demand", "capacity", "overload"]);
        assert!(bound.schema.column(2).uncertain);
        assert_eq!(bound.n_sites, 2);
    }

    #[test]
    fn aggregate_lowering() {
        let mut cat = catalog();
        cat.add_table(
            "users",
            jigsaw_pdb::TableBuilder::new()
                .column("class", jigsaw_pdb::ColumnType::Int)
                .column("base", jigsaw_pdb::ColumnType::Float)
                .row(vec![1.into(), 1.0.into()])
                .row(vec![1.into(), 2.0.into()])
                .row(vec![2.into(), 5.0.into()])
                .build(),
        );
        let script = parse_script(
            "SELECT class, SUM(base) AS total, COUNT(*) AS n FROM users GROUP BY class INTO out",
        )
        .unwrap();
        let plan = lower_select(script.scenario().unwrap(), &cat).unwrap();
        let bound = plan.bind(&cat, &[]).unwrap();
        assert_eq!(bound.schema.names(), vec!["class", "total", "n"]);
    }

    #[test]
    fn unknown_column_caught_early() {
        let script = parse_script("SELECT nope AS x INTO out").unwrap();
        let err = lower_select(script.scenario().unwrap(), &catalog()).unwrap_err();
        assert!(err.to_string().contains("unknown column"), "{err}");
    }

    #[test]
    fn nonaggregate_item_in_group_query_rejected() {
        let mut cat = catalog();
        cat.add_table(
            "t",
            jigsaw_pdb::TableBuilder::new().column("a", jigsaw_pdb::ColumnType::Int).build(),
        );
        let script = parse_script("SELECT a, SUM(a) AS s FROM t INTO out").unwrap();
        // `a` is not in GROUP BY.
        assert!(lower_select(script.scenario().unwrap(), &cat).is_err());
    }

    #[test]
    fn optimize_lowering() {
        let script = parse_script(
            "OPTIMIZE SELECT @f, @p1 FROM results
             WHERE MAX(EXPECT overload) < 0.01 AND MIN(EXPECT capacity) >= 100
             GROUP BY f, p1
             FOR MAX @p1, MIN @f",
        )
        .unwrap();
        let goal = lower_optimize(script.optimize().unwrap()).unwrap();
        assert_eq!(goal.decision_params, vec!["f", "p1"]);
        assert_eq!(goal.constraints.len(), 2);
        assert_eq!(goal.constraints[1].threshold, 100.0);
        assert_eq!(goal.objectives[0].direction, Direction::Max);
        assert_eq!(goal.objectives[1].direction, Direction::Min);
    }
}
