//! Tokens of the Jigsaw SQL dialect.

use crate::error::Pos;

/// Keywords are matched case-insensitively and carried in canonical
/// uppercase form.
pub const KEYWORDS: &[&str] = &[
    "DECLARE",
    "PARAMETER",
    "AS",
    "RANGE",
    "TO",
    "STEP",
    "BY",
    "SET",
    "CHAIN",
    "FROM",
    "INITIAL",
    "VALUE",
    "SELECT",
    "INTO",
    "WHERE",
    "GROUP",
    "ORDER",
    "LIMIT",
    "CASE",
    "WHEN",
    "THEN",
    "ELSE",
    "END",
    "AND",
    "OR",
    "NOT",
    "NULL",
    "TRUE",
    "FALSE",
    "OPTIMIZE",
    "FOR",
    "MAX",
    "MIN",
    "GRAPH",
    "OVER",
    "EXPECT",
    "EXPECT_STDDEV",
    "WITH",
    "SUM",
    "COUNT",
    "AVG",
    "JOIN",
    "ON",
    "ASC",
    "DESC",
];

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Keyword (canonical uppercase).
    Kw(&'static str),
    /// Identifier (table, column, function names).
    Ident(String),
    /// `@parameter` reference (name without the `@`).
    Param(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

impl Tok {
    /// Human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Kw(k) => format!("keyword {k}"),
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::Param(p) => format!("parameter @{p}"),
            Tok::Int(i) => format!("integer {i}"),
            Tok::Float(x) => format!("number {x}"),
            Tok::Str(s) => format!("string '{s}'"),
            Tok::Eof => "end of input".to_string(),
            other => format!("{other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_is_informative() {
        assert_eq!(Tok::Kw("SELECT").describe(), "keyword SELECT");
        assert_eq!(Tok::Param("week".into()).describe(), "parameter @week");
        assert_eq!(Tok::Eof.describe(), "end of input");
    }

    #[test]
    fn keywords_are_upper_and_unique() {
        use std::collections::HashSet;
        let set: HashSet<_> = KEYWORDS.iter().collect();
        assert_eq!(set.len(), KEYWORDS.len());
        assert!(KEYWORDS.iter().all(|k| k.chars().all(|c| !c.is_lowercase())));
    }
}
