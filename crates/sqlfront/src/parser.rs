//! Recursive-descent parser for the Jigsaw dialect.

use crate::ast::*;
use crate::error::{Pos, Result, SqlError};
use crate::lexer::lex;
use crate::token::{SpannedTok, Tok};

/// Parse a full script (declarations + scenario + directive).
pub fn parse_script(src: &str) -> Result<Script> {
    let mut p = Parser::new(lex(src)?);
    let mut stmts = Vec::new();
    while !p.at(&Tok::Eof) {
        stmts.push(p.statement()?);
        // Statements are `;`-separated; trailing semicolon optional.
        while p.eat(&Tok::Semi) {}
    }
    Ok(Script { stmts })
}

/// Parse a single expression (used by tests and the pretty-printer
/// roundtrip property).
pub fn parse_expr(src: &str) -> Result<Expr> {
    let mut p = Parser::new(lex(src)?);
    let e = p.expr()?;
    p.expect(&Tok::Eof)?;
    Ok(e)
}

struct Parser {
    toks: Vec<SpannedTok>,
    i: usize,
}

impl Parser {
    fn new(toks: Vec<SpannedTok>) -> Self {
        Parser { toks, i: 0 }
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.i].tok
    }

    fn pos(&self) -> Pos {
        self.toks[self.i].pos
    }

    fn advance(&mut self) -> Tok {
        let t = self.toks[self.i].tok.clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn at(&self, t: &Tok) -> bool {
        self.peek() == t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.at(t) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {}, found {}", t.describe(), self.peek().describe())))
        }
    }

    fn err(&self, msg: String) -> SqlError {
        SqlError::Parse { pos: self.pos(), msg }
    }

    fn ident(&mut self) -> Result<String> {
        match self.advance() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {}", other.describe()))),
        }
    }

    fn param(&mut self) -> Result<String> {
        match self.advance() {
            Tok::Param(s) => Ok(s),
            other => Err(self.err(format!("expected @parameter, found {}", other.describe()))),
        }
    }

    fn int(&mut self) -> Result<i64> {
        let neg = self.eat(&Tok::Minus);
        match self.advance() {
            Tok::Int(v) => Ok(if neg { -v } else { v }),
            other => Err(self.err(format!("expected integer, found {}", other.describe()))),
        }
    }

    fn number(&mut self) -> Result<f64> {
        let neg = self.eat(&Tok::Minus);
        let v = match self.advance() {
            Tok::Int(v) => v as f64,
            Tok::Float(v) => v,
            other => return Err(self.err(format!("expected number, found {}", other.describe()))),
        };
        Ok(if neg { -v } else { v })
    }

    fn statement(&mut self) -> Result<Stmt> {
        match self.peek() {
            Tok::Kw("DECLARE") => self.declare().map(Stmt::Declare),
            Tok::Kw("SELECT") => self.select().map(Stmt::Select),
            Tok::Kw("OPTIMIZE") => self.optimize().map(Stmt::Optimize),
            Tok::Kw("GRAPH") => self.graph().map(Stmt::Graph),
            other => Err(self.err(format!(
                "expected DECLARE, SELECT, OPTIMIZE or GRAPH, found {}",
                other.describe()
            ))),
        }
    }

    fn declare(&mut self) -> Result<DeclareStmt> {
        self.expect(&Tok::Kw("DECLARE"))?;
        self.expect(&Tok::Kw("PARAMETER"))?;
        let name = self.param()?;
        self.expect(&Tok::Kw("AS"))?;
        let domain = match self.peek() {
            Tok::Kw("RANGE") => {
                self.advance();
                let lo = self.int()?;
                self.expect(&Tok::Kw("TO"))?;
                let hi = self.int()?;
                self.expect(&Tok::Kw("STEP"))?;
                self.expect(&Tok::Kw("BY"))?;
                let step = self.int()?;
                DomainAst::Range { lo, hi, step }
            }
            Tok::Kw("SET") => {
                self.advance();
                self.expect(&Tok::LParen)?;
                let mut values = vec![self.int()?];
                while self.eat(&Tok::Comma) {
                    values.push(self.int()?);
                }
                self.expect(&Tok::RParen)?;
                DomainAst::Set(values)
            }
            Tok::Kw("CHAIN") => {
                self.advance();
                let source = self.ident()?;
                self.expect(&Tok::Kw("FROM"))?;
                let step_param = self.param()?;
                self.expect(&Tok::Colon)?;
                // The linkage expression (e.g. `@current_week - 1`) is
                // parsed and discarded: this dialect supports the canonical
                // previous-step linkage only.
                let _ = self.expr()?;
                self.expect(&Tok::Kw("INITIAL"))?;
                self.expect(&Tok::Kw("VALUE"))?;
                let initial = self.number()?;
                DomainAst::Chain { source, step_param, initial }
            }
            other => {
                return Err(
                    self.err(format!("expected RANGE, SET or CHAIN, found {}", other.describe()))
                )
            }
        };
        Ok(DeclareStmt { name, domain })
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect(&Tok::Kw("SELECT"))?;
        let mut items = vec![self.select_item()?];
        while self.eat(&Tok::Comma) {
            items.push(self.select_item()?);
        }
        let mut into = None;
        if self.eat(&Tok::Kw("INTO")) {
            into = Some(self.ident()?);
        }
        let from = if self.eat(&Tok::Kw("FROM")) {
            Some(match self.peek() {
                Tok::LParen => {
                    self.advance();
                    let sub = self.select()?;
                    self.expect(&Tok::RParen)?;
                    FromClause::Subquery(Box::new(sub))
                }
                _ => FromClause::Table(self.ident()?),
            })
        } else {
            None
        };
        let where_clause = if self.eat(&Tok::Kw("WHERE")) { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat(&Tok::Kw("GROUP")) {
            self.expect(&Tok::Kw("BY"))?;
            group_by.push(self.ident()?);
            while self.eat(&Tok::Comma) {
                group_by.push(self.ident()?);
            }
        }
        if into.is_none() && self.eat(&Tok::Kw("INTO")) {
            into = Some(self.ident()?);
        }
        Ok(SelectStmt { items, from, where_clause, group_by, into })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        let expr = self.expr()?;
        let alias = if self.eat(&Tok::Kw("AS")) { Some(self.ident()?) } else { None };
        Ok(SelectItem { expr, alias })
    }

    fn optimize(&mut self) -> Result<OptimizeStmt> {
        self.expect(&Tok::Kw("OPTIMIZE"))?;
        self.expect(&Tok::Kw("SELECT"))?;
        let mut select_params = vec![self.param()?];
        while self.eat(&Tok::Comma) {
            select_params.push(self.param()?);
        }
        self.expect(&Tok::Kw("FROM"))?;
        let from = self.ident()?;
        self.expect(&Tok::Kw("WHERE"))?;
        let mut constraints = vec![self.constraint()?];
        while self.eat(&Tok::Kw("AND")) {
            constraints.push(self.constraint()?);
        }
        let mut group_by = Vec::new();
        if self.eat(&Tok::Kw("GROUP")) {
            self.expect(&Tok::Kw("BY"))?;
            group_by.push(self.group_name()?);
            while self.eat(&Tok::Comma) {
                group_by.push(self.group_name()?);
            }
        }
        self.expect(&Tok::Kw("FOR"))?;
        let mut objectives = vec![self.objective()?];
        while self.eat(&Tok::Comma) {
            objectives.push(self.objective()?);
        }
        Ok(OptimizeStmt { select_params, from, constraints, group_by, objectives })
    }

    /// GROUP BY names in Figure 1 appear without the `@`; accept both.
    fn group_name(&mut self) -> Result<String> {
        match self.advance() {
            Tok::Ident(s) => Ok(s),
            Tok::Param(s) => Ok(s),
            other => Err(self.err(format!("expected name, found {}", other.describe()))),
        }
    }

    fn constraint(&mut self) -> Result<ConstraintAst> {
        let outer = match self.advance() {
            Tok::Kw("MAX") => OuterAggAst::Max,
            Tok::Kw("MIN") => OuterAggAst::Min,
            Tok::Kw("AVG") => OuterAggAst::Avg,
            other => {
                return Err(self.err(format!("expected MAX/MIN/AVG, found {}", other.describe())))
            }
        };
        self.expect(&Tok::LParen)?;
        let metric = self.metric()?;
        let column = self.ident()?;
        self.expect(&Tok::RParen)?;
        let cmp = match self.advance() {
            Tok::Lt => CmpOp::Lt,
            Tok::Le => CmpOp::Le,
            Tok::Gt => CmpOp::Gt,
            Tok::Ge => CmpOp::Ge,
            other => {
                return Err(self.err(format!("expected comparison, found {}", other.describe())))
            }
        };
        let threshold = self.number()?;
        Ok(ConstraintAst { outer, metric, column, cmp, threshold })
    }

    fn metric(&mut self) -> Result<MetricAst> {
        match self.advance() {
            Tok::Kw("EXPECT") => Ok(MetricAst::Expect),
            Tok::Kw("EXPECT_STDDEV") => Ok(MetricAst::StdDev),
            other => {
                Err(self
                    .err(format!("expected EXPECT or EXPECT_STDDEV, found {}", other.describe())))
            }
        }
    }

    fn objective(&mut self) -> Result<ObjectiveAst> {
        let maximize = match self.advance() {
            Tok::Kw("MAX") => true,
            Tok::Kw("MIN") => false,
            other => {
                return Err(self.err(format!("expected MAX or MIN, found {}", other.describe())))
            }
        };
        let param = self.param()?;
        Ok(ObjectiveAst { maximize, param })
    }

    fn graph(&mut self) -> Result<GraphStmt> {
        self.expect(&Tok::Kw("GRAPH"))?;
        self.expect(&Tok::Kw("OVER"))?;
        let over = self.param()?;
        let mut series = vec![self.graph_series()?];
        while self.eat(&Tok::Comma) {
            series.push(self.graph_series()?);
        }
        Ok(GraphStmt { over, series })
    }

    fn graph_series(&mut self) -> Result<GraphSeries> {
        let metric = self.metric()?;
        let column = self.ident()?;
        let mut style = Vec::new();
        if self.eat(&Tok::Kw("WITH")) {
            // Style words until a separator.
            while let Tok::Ident(w) = self.peek() {
                style.push(w.clone());
                self.advance();
            }
        }
        Ok(GraphSeries { metric, column, style })
    }

    // -- expressions ------------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut e = self.and_expr()?;
        while self.eat(&Tok::Kw("OR")) {
            e = Expr::Or(Box::new(e), Box::new(self.and_expr()?));
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut e = self.not_expr()?;
        while self.eat(&Tok::Kw("AND")) {
            e = Expr::And(Box::new(e), Box::new(self.not_expr()?));
        }
        Ok(e)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat(&Tok::Kw("NOT")) {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let l = self.add_expr()?;
        let op = match self.peek() {
            Tok::Eq => CmpOp::Eq,
            Tok::Ne => CmpOp::Ne,
            Tok::Lt => CmpOp::Lt,
            Tok::Le => CmpOp::Le,
            Tok::Gt => CmpOp::Gt,
            Tok::Ge => CmpOp::Ge,
            _ => return Ok(l),
        };
        self.advance();
        let r = self.add_expr()?;
        Ok(Expr::Cmp { op, l: Box::new(l), r: Box::new(r) })
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut e = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.advance();
            e = Expr::Bin { op, l: Box::new(e), r: Box::new(self.mul_expr()?) };
        }
        Ok(e)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut e = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                _ => break,
            };
            self.advance();
            e = Expr::Bin { op, l: Box::new(e), r: Box::new(self.unary_expr()?) };
        }
        Ok(e)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.eat(&Tok::Minus) {
            Ok(Expr::Neg(Box::new(self.unary_expr()?)))
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.advance() {
            Tok::Int(v) => Ok(Expr::Int(v)),
            Tok::Float(v) => Ok(Expr::Float(v)),
            Tok::Str(s) => Ok(Expr::Str(s)),
            Tok::Kw("TRUE") => Ok(Expr::Bool(true)),
            Tok::Kw("FALSE") => Ok(Expr::Bool(false)),
            Tok::Kw("NULL") => Ok(Expr::Null),
            Tok::Param(p) => Ok(Expr::Param(p)),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Kw("CASE") => {
                let mut whens = Vec::new();
                while self.eat(&Tok::Kw("WHEN")) {
                    let c = self.expr()?;
                    self.expect(&Tok::Kw("THEN"))?;
                    let v = self.expr()?;
                    whens.push((c, v));
                }
                if whens.is_empty() {
                    return Err(self.err("CASE requires at least one WHEN arm".into()));
                }
                let otherwise =
                    if self.eat(&Tok::Kw("ELSE")) { Some(Box::new(self.expr()?)) } else { None };
                self.expect(&Tok::Kw("END"))?;
                Ok(Expr::Case { whens, otherwise })
            }
            // Aggregate keywords and plain identifiers can both head calls.
            Tok::Kw(k @ ("SUM" | "COUNT" | "AVG" | "MAX" | "MIN" | "EXPECT" | "EXPECT_STDDEV")) => {
                self.call_or_name(k.to_string())
            }
            Tok::Ident(name) => self.call_or_name(name),
            other => Err(self.err(format!("unexpected {}", other.describe()))),
        }
    }

    fn call_or_name(&mut self, name: String) -> Result<Expr> {
        if self.eat(&Tok::LParen) {
            if name.eq_ignore_ascii_case("COUNT") && self.eat(&Tok::Star) {
                self.expect(&Tok::RParen)?;
                return Ok(Expr::CountStar);
            }
            let mut args = Vec::new();
            if !self.at(&Tok::RParen) {
                args.push(self.expr()?);
                while self.eat(&Tok::Comma) {
                    args.push(self.expr()?);
                }
            }
            self.expect(&Tok::RParen)?;
            Ok(Expr::Call { name, args })
        } else {
            Ok(Expr::Col(name))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure1_script() {
        let src = r#"
            -- DEFINITION --
            DECLARE PARAMETER @current_week AS RANGE 0 TO 52 STEP BY 1;
            DECLARE PARAMETER @purchase1 AS RANGE 0 TO 52 STEP BY 4;
            DECLARE PARAMETER @purchase2 AS RANGE 0 TO 52 STEP BY 4;
            DECLARE PARAMETER @feature_release AS SET (12,36,44);
            SELECT DemandModel(@current_week, @feature_release) AS demand,
                   CapacityModel(@current_week, @purchase1, @purchase2) AS capacity,
                   CASE WHEN capacity < demand THEN 1 ELSE 0 END AS overload
            INTO results;
            -- BATCH MODE --
            OPTIMIZE SELECT @feature_release, @purchase1, @purchase2
            FROM results
            WHERE MAX(EXPECT overload) < 0.01
            GROUP BY feature_release, purchase1, purchase2
            FOR MAX @purchase1, MAX @purchase2
        "#;
        let script = parse_script(src).unwrap();
        assert_eq!(script.declares().count(), 4);
        let q = script.scenario().unwrap();
        assert_eq!(q.items.len(), 3);
        assert_eq!(q.items[2].alias.as_deref(), Some("overload"));
        assert_eq!(q.into.as_deref(), Some("results"));
        let o = script.optimize().unwrap();
        assert_eq!(o.select_params, vec!["feature_release", "purchase1", "purchase2"]);
        assert_eq!(o.constraints.len(), 1);
        assert_eq!(o.constraints[0].threshold, 0.01);
        assert_eq!(o.objectives.len(), 2);
        assert!(o.objectives.iter().all(|x| x.maximize));
    }

    #[test]
    fn parses_figure5_chain_script() {
        let src = r#"
            DECLARE PARAMETER @current_week AS RANGE 0 TO 52 STEP BY 1;
            DECLARE PARAMETER @release_week
                AS CHAIN release_week
                FROM @current_week : @current_week - 1
                INITIAL VALUE 52;
            SELECT ReleaseWeekModel(demand) AS release_week, demand
            FROM (SELECT DemandModel(@current_week, @release_week) AS demand)
            INTO results
        "#;
        let script = parse_script(src).unwrap();
        let decls: Vec<_> = script.declares().collect();
        match &decls[1].domain {
            DomainAst::Chain { source, step_param, initial } => {
                assert_eq!(source, "release_week");
                assert_eq!(step_param, "current_week");
                assert_eq!(*initial, 52.0);
            }
            other => panic!("expected chain, got {other:?}"),
        }
        let q = script.scenario().unwrap();
        assert!(matches!(q.from, Some(FromClause::Subquery(_))));
    }

    #[test]
    fn parses_graph_statement() {
        let src = r#"
            GRAPH OVER @current_week
                EXPECT overload WITH bold red,
                EXPECT capacity WITH blue y2,
                EXPECT_STDDEV demand WITH orange y2
        "#;
        let script = parse_script(src).unwrap();
        let g = script.graph().unwrap();
        assert_eq!(g.over, "current_week");
        assert_eq!(g.series.len(), 3);
        assert_eq!(g.series[0].style, vec!["bold", "red"]);
        assert_eq!(g.series[2].metric, MetricAst::StdDev);
    }

    #[test]
    fn expression_precedence() {
        // 1 + 2 * 3 parses as 1 + (2 * 3).
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e {
            Expr::Bin { op: BinOp::Add, r, .. } => {
                assert!(matches!(*r, Expr::Bin { op: BinOp::Mul, .. }))
            }
            other => panic!("{other:?}"),
        }
        // Comparison binds looser than arithmetic, AND looser still.
        let e = parse_expr("a + 1 < b AND c > 2").unwrap();
        assert!(matches!(e, Expr::And(..)));
    }

    #[test]
    fn parens_override_precedence() {
        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert!(matches!(e, Expr::Bin { op: BinOp::Mul, .. }));
    }

    #[test]
    fn count_star_and_aggregates() {
        assert_eq!(parse_expr("COUNT(*)").unwrap(), Expr::CountStar);
        let e = parse_expr("SUM(x)").unwrap();
        assert_eq!(e, Expr::Call { name: "SUM".into(), args: vec![Expr::Col("x".into())] });
    }

    #[test]
    fn where_and_group_by() {
        let s = parse_script(
            "SELECT SUM(req) AS total FROM users WHERE region = 'us' GROUP BY class INTO out",
        )
        .unwrap();
        let q = s.scenario().unwrap();
        assert!(q.where_clause.is_some());
        assert_eq!(q.group_by, vec!["class"]);
        assert_eq!(q.into.as_deref(), Some("out"));
    }

    #[test]
    fn error_messages_carry_position() {
        let err = parse_script("SELECT FROM x").unwrap_err();
        match err {
            SqlError::Parse { pos, .. } => assert_eq!(pos.line, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn nested_case() {
        let e = parse_expr("CASE WHEN a > 1 THEN CASE WHEN b > 2 THEN 1 ELSE 2 END ELSE 3 END")
            .unwrap();
        assert!(matches!(e, Expr::Case { .. }));
    }

    #[test]
    fn unary_minus() {
        let e = parse_expr("-x * 2").unwrap();
        assert!(matches!(e, Expr::Bin { op: BinOp::Mul, .. }));
    }
}
