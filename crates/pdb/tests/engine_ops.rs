//! Operator-level engine tests: every plan node exercised on both engines,
//! including the semantics only tuple bundles can express (per-world
//! presence) and the declared limitations of the naive engine.

use std::sync::Arc;

use jigsaw_blackbox::FnBlackBox;
use jigsaw_pdb::{
    AggFunc, AggSpec, BundleCell, Catalog, CmpOp, ColumnType, DbmsEngine, DirectEngine, Engine,
    ExecContext, Expr, PdbError, Plan, Presence, TableBuilder, Value,
};
use jigsaw_prng::SeedSet;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        "sales",
        TableBuilder::new()
            .column("region", ColumnType::Str)
            .column("amount", ColumnType::Float)
            .column("year", ColumnType::Int)
            .row(vec!["east".into(), 10.0.into(), 2020.into()])
            .row(vec!["east".into(), 20.0.into(), 2021.into()])
            .row(vec!["west".into(), 5.0.into(), 2020.into()])
            .row(vec!["west".into(), 40.0.into(), 2021.into()])
            .build(),
    );
    c.add_table(
        "regions",
        TableBuilder::new()
            .column("name", ColumnType::Str)
            .column("mult", ColumnType::Float)
            .row(vec!["east".into(), 2.0.into()])
            .row(vec!["west".into(), 3.0.into()])
            .build(),
    );
    // A stochastic jitter in [0, 1): seed-determined fraction.
    c.add_function(Arc::new(FnBlackBox::new("Jitter", 1, |p: &[f64], s| {
        p[0] + (s.0 % 997) as f64 / 997.0
    })));
    c
}

fn ctx(n: usize) -> ExecContext {
    ExecContext::new(SeedSet::new(17), vec![], n)
}

fn engines() -> Vec<Box<dyn Engine>> {
    vec![Box::new(DirectEngine::new()), Box::new(DbmsEngine::new())]
}

#[test]
fn deterministic_filter_sort_limit() {
    let cat = catalog();
    let plan = Plan::Scan { table: "sales".into() }.filter(Expr::cmp(
        CmpOp::Eq,
        Expr::col("year"),
        Expr::lit_i(2021),
    ));
    let plan = Plan::Sort {
        input: Box::new(plan),
        keys: vec![(Expr::col("amount"), true)], // descending
    };
    let plan = Plan::Limit { input: Box::new(plan), n: 1 };
    let bound = plan.bind(&cat, &[]).unwrap();
    for e in engines() {
        let out = e.execute(&bound, &cat, &ctx(3)).unwrap();
        assert_eq!(out.len(), 1, "{}", e.name());
        assert_eq!(out.rows[0].cells[0], BundleCell::Det(Value::Str("west".into())));
        assert_eq!(out.rows[0].cells[1], BundleCell::Det(Value::Float(40.0)));
    }
}

#[test]
fn hash_join_multiplies_rows_correctly() {
    let cat = catalog();
    let plan = Plan::HashJoin {
        left: Box::new(Plan::Scan { table: "sales".into() }),
        right: Box::new(Plan::Scan { table: "regions".into() }),
        left_key: Expr::col("region"),
        right_key: Expr::col("name"),
    }
    .project(vec![(
        "scaled",
        Expr::bin(jigsaw_pdb::BinOp::Mul, Expr::col("amount"), Expr::col("mult")),
    )])
    .aggregate(
        vec![],
        vec![AggSpec { name: "total".into(), func: AggFunc::Sum, arg: Some(Expr::col("scaled")) }],
    );
    let bound = plan.bind(&cat, &[]).unwrap();
    // east: (10+20)*2 = 60; west: (5+40)*3 = 135; total 195.
    for e in engines() {
        let out = e.execute(&bound, &cat, &ctx(2)).unwrap();
        assert_eq!(out.len(), 1);
        match &out.rows[0].cells[0] {
            BundleCell::Stoch(xs) => assert!(xs.iter().all(|&x| x == 195.0), "{}", e.name()),
            other => panic!("{}: {other:?}", e.name()),
        }
    }
}

#[test]
fn group_by_aggregation_matches_hand_computation() {
    let cat = catalog();
    let plan = Plan::Scan { table: "sales".into() }.aggregate(
        vec![("region".to_string(), Expr::col("region"))],
        vec![
            AggSpec { name: "total".into(), func: AggFunc::Sum, arg: Some(Expr::col("amount")) },
            AggSpec { name: "n".into(), func: AggFunc::Count, arg: None },
            AggSpec { name: "hi".into(), func: AggFunc::Max, arg: Some(Expr::col("amount")) },
            AggSpec { name: "lo".into(), func: AggFunc::Min, arg: Some(Expr::col("amount")) },
            AggSpec { name: "avg".into(), func: AggFunc::Avg, arg: Some(Expr::col("amount")) },
        ],
    );
    let bound = plan.bind(&cat, &[]).unwrap();
    for e in engines() {
        let out = e.execute(&bound, &cat, &ctx(1)).unwrap();
        assert_eq!(out.len(), 2, "{}", e.name());
        let find = |region: &str| {
            out.rows
                .iter()
                .find(|r| r.cells[0].value_at(0) == Value::Str(region.into()))
                .unwrap_or_else(|| panic!("missing group {region}"))
        };
        let east = find("east");
        assert_eq!(east.cells[1].f64_at(0), Some(30.0));
        assert_eq!(east.cells[2].f64_at(0), Some(2.0));
        assert_eq!(east.cells[3].f64_at(0), Some(20.0));
        assert_eq!(east.cells[4].f64_at(0), Some(10.0));
        assert_eq!(east.cells[5].f64_at(0), Some(15.0));
        let west = find("west");
        assert_eq!(west.cells[1].f64_at(0), Some(45.0));
    }
}

#[test]
fn stochastic_filter_creates_presence_masks_on_dbms_engine() {
    let cat = catalog();
    // Keep tuples whose jittered amount stays below 10.5: row "west"/5.0
    // always passes, "east"/10.0 passes only in worlds with jitter < 0.5.
    let plan = Plan::Scan { table: "sales".into() }
        .filter(Expr::cmp(CmpOp::Eq, Expr::col("year"), Expr::lit_i(2020)))
        .filter(Expr::cmp(
            CmpOp::Lt,
            Expr::call("Jitter", vec![Expr::col("amount")]),
            Expr::lit_f(10.5),
        ));
    let bound = plan.bind(&cat, &[]).unwrap();
    let n = 64;
    let out = DbmsEngine::new().execute(&bound, &cat, &ctx(n)).unwrap();
    // Row west (5.0 + jitter < 10.5 always) fully present; row east mixed.
    let east = out
        .rows
        .iter()
        .find(|r| r.cells[1].f64_at(0) == Some(10.0))
        .expect("east row present in some worlds");
    match &east.presence {
        Presence::Mask(m) => {
            let alive = m.iter().filter(|&&b| b).count();
            assert!(alive > 0 && alive < n, "expected a genuine mixture, got {alive}/{n}");
        }
        Presence::All => panic!("east row should not be present in every world"),
    }
    // And the naive engine must refuse this plan shape (world-varying
    // cardinality) rather than guess.
    let err = DirectEngine::new().execute(&bound, &cat, &ctx(n)).unwrap_err();
    assert!(matches!(err, PdbError::Unsupported(_)), "{err}");
}

#[test]
fn stochastic_filter_feeding_aggregate_agrees_across_engines() {
    let cat = catalog();
    // COUNT of surviving tuples per world: aggregation collapses the
    // cardinality difference, so both engines can run it.
    let plan = Plan::Scan { table: "sales".into() }
        .filter(Expr::cmp(
            CmpOp::Lt,
            Expr::call("Jitter", vec![Expr::col("amount")]),
            Expr::lit_f(10.5),
        ))
        .aggregate(
            vec![],
            vec![AggSpec { name: "survivors".into(), func: AggFunc::Count, arg: None }],
        );
    let bound = plan.bind(&cat, &[]).unwrap();
    let a = DirectEngine::new().execute(&bound, &cat, &ctx(32)).unwrap();
    let b = DbmsEngine::new().execute(&bound, &cat, &ctx(32)).unwrap();
    assert_eq!(a.rows[0].cells[0], b.rows[0].cells[0]);
    // Sales 5.0 and 10.0 can survive; 20.0 and 40.0 never do.
    if let BundleCell::Stoch(xs) = &a.rows[0].cells[0] {
        assert!(xs.iter().all(|&x| (1.0..=2.0).contains(&x)), "{xs:?}");
    } else {
        panic!("expected stochastic count");
    }
}

#[test]
fn nested_loop_join_with_predicate() {
    let cat = catalog();
    let plan = Plan::Join {
        left: Box::new(Plan::Scan { table: "sales".into() }),
        right: Box::new(Plan::Scan { table: "sales".into() }),
        pred: Some(Expr::And(
            Box::new(Expr::cmp(CmpOp::Eq, Expr::ColIdx(2), Expr::ColIdx(5))),
            Box::new(Expr::cmp(CmpOp::Lt, Expr::ColIdx(1), Expr::ColIdx(4))),
        )),
    }
    .aggregate(vec![], vec![AggSpec { name: "pairs".into(), func: AggFunc::Count, arg: None }]);
    let bound = plan.bind(&cat, &[]).unwrap();
    // Same-year pairs with strictly increasing amount: (east10,west?) 2020:
    // 5<10 → (west,east); 2021: 20<40 → (east,west). 2 pairs.
    for e in engines() {
        let out = e.execute(&bound, &cat, &ctx(2)).unwrap();
        assert_eq!(out.rows[0].cells[0].f64_at(0), Some(2.0), "{}", e.name());
    }
}

#[test]
fn world_windows_compose_identically() {
    // ExecContext::with_worlds must behave like a slice of the full run —
    // the property the optimizer's fingerprint-then-complete split relies on.
    let cat = catalog();
    let plan = Plan::OneRow
        .project(vec![("x", Expr::call("Jitter", vec![Expr::lit_f(0.0)]))])
        .bind(&cat, &[])
        .unwrap();
    let full = DbmsEngine::new().execute(&plan, &cat, &ctx(20)).unwrap();
    let head = DbmsEngine::new().execute(&plan, &cat, &ctx(20).with_worlds(0, 8)).unwrap();
    let tail = DbmsEngine::new().execute(&plan, &cat, &ctx(20).with_worlds(8, 12)).unwrap();
    let (f, h, t) = match (&full.rows[0].cells[0], &head.rows[0].cells[0], &tail.rows[0].cells[0]) {
        (BundleCell::Stoch(f), BundleCell::Stoch(h), BundleCell::Stoch(t)) => (f, h, t),
        other => panic!("{other:?}"),
    };
    let glued: Vec<f64> = h.iter().chain(t.iter()).copied().collect();
    assert_eq!(*f, glued);
}

#[test]
fn empty_input_aggregates() {
    let cat = catalog();
    let plan = Plan::Scan { table: "sales".into() }
        .filter(Expr::cmp(CmpOp::Eq, Expr::col("year"), Expr::lit_i(1999)))
        .aggregate(
            vec![],
            vec![
                AggSpec { name: "n".into(), func: AggFunc::Count, arg: None },
                AggSpec { name: "s".into(), func: AggFunc::Sum, arg: Some(Expr::col("amount")) },
            ],
        );
    let bound = plan.bind(&cat, &[]).unwrap();
    for e in engines() {
        let out = e.execute(&bound, &cat, &ctx(4)).unwrap();
        assert_eq!(out.len(), 1, "{}: global aggregate always yields one row", e.name());
        assert_eq!(out.rows[0].cells[0].f64_at(0), Some(0.0));
        assert_eq!(out.rows[0].cells[1].f64_at(0), Some(0.0));
    }
}
