//! Column and relation schemas.

use std::fmt;

/// Logical column type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// Boolean.
    Bool,
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
}

/// One column of a relation.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Column name (unique within a schema).
    pub name: String,
    /// Logical type.
    pub ty: ColumnType,
    /// True when values are stochastic (per-possible-world). In MCDB terms:
    /// this attribute is produced by a VG-function rather than stored.
    pub uncertain: bool,
}

impl Column {
    /// A deterministic column.
    pub fn det(name: impl Into<String>, ty: ColumnType) -> Self {
        Column { name: name.into(), ty, uncertain: false }
    }

    /// A stochastic (per-world) column; always `Float` in this engine.
    pub fn stoch(name: impl Into<String>) -> Self {
        Column { name: name.into(), ty: ColumnType::Float, uncertain: true }
    }
}

/// An ordered list of named, typed columns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Build from columns. Duplicate names are permitted (join outputs
    /// concatenate schemas); [`Schema::index_of`] resolves to the first
    /// match, and base tables enforce uniqueness separately.
    pub fn new(columns: Vec<Column>) -> Self {
        Schema { columns }
    }

    /// True when every column name is distinct.
    pub fn has_unique_names(&self) -> bool {
        for (i, a) in self.columns.iter().enumerate() {
            if self.columns[i + 1..].iter().any(|b| b.name == a.name) {
                return false;
            }
        }
        true
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// The column at `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Names in order.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {:?}{}", c.name, c.ty, if c.uncertain { "~" } else { "" })?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_lookup() {
        let s = Schema::new(vec![Column::det("id", ColumnType::Int), Column::stoch("demand")]);
        assert_eq!(s.index_of("id"), Some(0));
        assert_eq!(s.index_of("demand"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.len(), 2);
        assert!(s.column(1).uncertain);
    }

    #[test]
    fn duplicate_names_detected_but_allowed() {
        let s = Schema::new(vec![
            Column::det("x", ColumnType::Int),
            Column::det("x", ColumnType::Float),
        ]);
        assert!(!s.has_unique_names());
        // index_of resolves to the first occurrence.
        assert_eq!(s.index_of("x"), Some(0));
    }

    #[test]
    fn display_marks_uncertain() {
        let s = Schema::new(vec![Column::stoch("d")]);
        assert_eq!(s.to_string(), "(d: Float~)");
    }
}
