//! Scalar expressions: AST, name binding, and two evaluators.
//!
//! Expressions appear in `SELECT` lists, `WHERE` predicates, join
//! conditions, and aggregate arguments. The same bound AST is evaluated by
//! both engines:
//!
//! * **scalar** ([`Expr::eval_scalar`]) — one `(tuple, world)` at a time on
//!   boxed [`Value`]s. This is the row-at-a-time path of the *direct*
//!   (Ruby-analog) engine.
//! * **bundled** ([`Expr::eval_bundle`]) — one tuple across *all* worlds of
//!   a batch at once, producing a [`BundleCell`]. Deterministic
//!   sub-expressions stay scalar; stochastic ones become per-world vectors.
//!   This is the MCDB-style path of the *DBMS* engine. With
//!   [`BatchCtx::columnar`] set, the stochastic arms run struct-of-arrays
//!   slice kernels (operands classified once as constant-vs-column, then
//!   plain slice loops the autovectorizer can chew on); cleared, they run
//!   the historical per-world `f64_at` dispatch loops. Both orders of
//!   operation are identical, so the outputs are bit-identical — the
//!   per-world path is kept as the oracle the property tests compare
//!   against.
//!
//! Black-box calls are the bridge to the stochastic world: each call site is
//! assigned a stable id during binding, and the call for world `k` runs
//! under `seeds.seed(k).derive(site_id)` — both evaluators derive seeds
//! identically, so the engines produce bit-identical possible worlds (an
//! invariant the integration tests assert).

use jigsaw_blackbox::BlackBox;
use jigsaw_prng::SeedSet;

use crate::bundle::{BundleCell, BundleRow};
use crate::catalog::Catalog;
use crate::error::{PdbError, Result};
use crate::schema::Schema;
use crate::value::Value;

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn apply(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

/// A scalar expression. Build unbound (names), then [`Expr::bind`] against a
/// schema/parameter list to resolve references and assign call sites.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal constant.
    Lit(Value),
    /// Column reference by name (unbound).
    Col(String),
    /// Column reference by position (bound).
    ColIdx(usize),
    /// `@param` reference by name (unbound).
    Param(String),
    /// Parameter reference by position (bound).
    ParamIdx(usize),
    /// Black-box (VG-function) call. `site` is assigned at bind time and
    /// namespaces the call's randomness.
    Call {
        /// Function name in the catalog.
        name: String,
        /// Argument expressions (must be deterministic per world).
        args: Vec<Expr>,
        /// Call-site id; `u64::MAX` while unbound.
        site: u64,
    },
    /// Binary arithmetic.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        l: Box<Expr>,
        /// Right operand.
        r: Box<Expr>,
    },
    /// Comparison producing a boolean.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        l: Box<Expr>,
        /// Right operand.
        r: Box<Expr>,
    },
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// `CASE WHEN c1 THEN v1 [WHEN …] ELSE e END`.
    Case {
        /// `(condition, value)` arms, tested in order.
        whens: Vec<(Expr, Expr)>,
        /// `ELSE` value; NULL when absent.
        otherwise: Option<Box<Expr>>,
    },
}

impl Expr {
    /// Literal float shorthand.
    pub fn lit_f(x: f64) -> Expr {
        Expr::Lit(Value::Float(x))
    }

    /// Literal int shorthand.
    pub fn lit_i(x: i64) -> Expr {
        Expr::Lit(Value::Int(x))
    }

    /// Column shorthand.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Col(name.into())
    }

    /// Parameter shorthand.
    pub fn param(name: impl Into<String>) -> Expr {
        Expr::Param(name.into())
    }

    /// Call shorthand (unbound site).
    pub fn call(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call { name: name.into(), args, site: u64::MAX }
    }

    /// Binary-op shorthand.
    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Bin { op, l: Box::new(l), r: Box::new(r) }
    }

    /// Comparison shorthand.
    pub fn cmp(op: CmpOp, l: Expr, r: Expr) -> Expr {
        Expr::Cmp { op, l: Box::new(l), r: Box::new(r) }
    }

    /// Resolve names against `schema` and `params`, assign call-site ids
    /// from `next_site`, and verify function arity against `catalog`.
    pub fn bind(
        &self,
        schema: &Schema,
        params: &[String],
        catalog: &Catalog,
        next_site: &mut u64,
    ) -> Result<Expr> {
        Ok(match self {
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Col(name) => {
                let idx =
                    schema.index_of(name).ok_or_else(|| PdbError::UnknownColumn(name.clone()))?;
                Expr::ColIdx(idx)
            }
            Expr::ColIdx(i) => Expr::ColIdx(*i),
            Expr::Param(name) => {
                let idx = params
                    .iter()
                    .position(|p| p == name)
                    .ok_or_else(|| PdbError::UnknownParam(name.clone()))?;
                Expr::ParamIdx(idx)
            }
            Expr::ParamIdx(i) => Expr::ParamIdx(*i),
            Expr::Call { name, args, .. } => {
                let f = catalog.function(name)?;
                if f.arity() != args.len() {
                    return Err(PdbError::ArityMismatch {
                        function: name.clone(),
                        expected: f.arity(),
                        got: args.len(),
                    });
                }
                let site = *next_site;
                *next_site += 1;
                let args = args
                    .iter()
                    .map(|a| a.bind(schema, params, catalog, next_site))
                    .collect::<Result<Vec<_>>>()?;
                Expr::Call { name: name.clone(), args, site }
            }
            Expr::Bin { op, l, r } => Expr::bin(
                *op,
                l.bind(schema, params, catalog, next_site)?,
                r.bind(schema, params, catalog, next_site)?,
            ),
            Expr::Cmp { op, l, r } => Expr::cmp(
                *op,
                l.bind(schema, params, catalog, next_site)?,
                r.bind(schema, params, catalog, next_site)?,
            ),
            Expr::And(l, r) => Expr::And(
                Box::new(l.bind(schema, params, catalog, next_site)?),
                Box::new(r.bind(schema, params, catalog, next_site)?),
            ),
            Expr::Or(l, r) => Expr::Or(
                Box::new(l.bind(schema, params, catalog, next_site)?),
                Box::new(r.bind(schema, params, catalog, next_site)?),
            ),
            Expr::Not(e) => Expr::Not(Box::new(e.bind(schema, params, catalog, next_site)?)),
            Expr::Neg(e) => Expr::Neg(Box::new(e.bind(schema, params, catalog, next_site)?)),
            Expr::Case { whens, otherwise } => Expr::Case {
                whens: whens
                    .iter()
                    .map(|(c, v)| {
                        Ok((
                            c.bind(schema, params, catalog, next_site)?,
                            v.bind(schema, params, catalog, next_site)?,
                        ))
                    })
                    .collect::<Result<Vec<_>>>()?,
                otherwise: match otherwise {
                    Some(e) => Some(Box::new(e.bind(schema, params, catalog, next_site)?)),
                    None => None,
                },
            },
        })
    }

    /// True when the expression's value can vary across worlds (contains a
    /// black-box call or references an uncertain column).
    pub fn is_stochastic(&self, schema: &Schema) -> bool {
        match self {
            Expr::Lit(_) | Expr::Param(_) | Expr::ParamIdx(_) => false,
            Expr::Col(name) => {
                schema.index_of(name).map(|i| schema.column(i).uncertain).unwrap_or(false)
            }
            Expr::ColIdx(i) => schema.column(*i).uncertain,
            Expr::Call { .. } => true,
            Expr::Bin { l, r, .. } | Expr::Cmp { l, r, .. } => {
                l.is_stochastic(schema) || r.is_stochastic(schema)
            }
            Expr::And(l, r) | Expr::Or(l, r) => l.is_stochastic(schema) || r.is_stochastic(schema),
            Expr::Not(e) | Expr::Neg(e) => e.is_stochastic(schema),
            Expr::Case { whens, otherwise } => {
                whens.iter().any(|(c, v)| c.is_stochastic(schema) || v.is_stochastic(schema))
                    || otherwise.as_ref().map(|e| e.is_stochastic(schema)).unwrap_or(false)
            }
        }
    }
}

/// Per-world evaluation context for the scalar path.
pub struct WorldCtx<'a> {
    /// The global world index (seed index).
    pub world: usize,
    /// The session seed set.
    pub seeds: &'a SeedSet,
    /// Bound parameter values, positionally matching the names used at bind.
    pub params: &'a [f64],
    /// Function lookup.
    pub functions: &'a Catalog,
}

/// Whole-batch evaluation context for the bundled path.
pub struct BatchCtx<'a> {
    /// Global index of the first world in the batch.
    pub world_start: usize,
    /// Batch width.
    pub n_worlds: usize,
    /// The session seed set.
    pub seeds: &'a SeedSet,
    /// Bound parameter values.
    pub params: &'a [f64],
    /// Function lookup.
    pub functions: &'a Catalog,
    /// Use the struct-of-arrays slice kernels instead of the per-world
    /// oracle loops. Both perform the same floating-point operations in the
    /// same order, so results are bit-identical; the oracle stays around as
    /// the reference the property tests compare against.
    pub columnar: bool,
}

/// A bundle cell viewed as a numeric operand: a constant scalar or a
/// contiguous per-world column. Classifying once per operand lets the
/// columnar kernels run plain slice loops with no per-world enum dispatch.
enum NumView<'a> {
    Const(f64),
    Col(&'a [f64]),
}

fn num_view<'a>(c: &'a BundleCell, what: &'static str) -> Result<NumView<'a>> {
    match c {
        BundleCell::Det(v) => Ok(NumView::Const(
            v.as_f64()
                .ok_or_else(|| PdbError::TypeError(format!("{what} on non-numeric bundle")))?,
        )),
        BundleCell::Stoch(xs) => Ok(NumView::Col(xs)),
    }
}

/// A bundle cell viewed as a truth operand (SQL truthiness: nonzero and
/// non-NaN; deterministic non-booleans are falsy, matching the oracle).
enum BoolView<'a> {
    Const(bool),
    Col(&'a [f64]),
}

fn bool_view(c: &BundleCell) -> BoolView<'_> {
    match c {
        BundleCell::Det(v) => BoolView::Const(v.as_bool().unwrap_or(false)),
        BundleCell::Stoch(xs) => BoolView::Col(xs),
    }
}

#[inline]
fn truthy_f64(x: f64) -> bool {
    x != 0.0 && !x.is_nan()
}

fn arith(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    // Integer arithmetic when both sides are Int (SQL-style).
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        return Ok(match op {
            BinOp::Add => Value::Int(a.wrapping_add(*b)),
            BinOp::Sub => Value::Int(a.wrapping_sub(*b)),
            BinOp::Mul => Value::Int(a.wrapping_mul(*b)),
            BinOp::Div => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Int(a / b)
                }
            }
            BinOp::Mod => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Int(a % b)
                }
            }
        });
    }
    let (a, b) = match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(PdbError::TypeError(format!(
                "arithmetic on non-numeric values {l:?}, {r:?}"
            )))
        }
    };
    Ok(Value::Float(arith_f64(op, a, b)))
}

#[inline]
fn arith_f64(op: BinOp, a: f64, b: f64) -> f64 {
    match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => a / b,
        BinOp::Mod => a % b,
    }
}

#[inline]
fn cmp_f64(op: CmpOp, x: f64, y: f64) -> f64 {
    match x.partial_cmp(&y) {
        Some(o) => {
            if op.apply(o) {
                1.0
            } else {
                0.0
            }
        }
        None => f64::NAN,
    }
}

/// Columnar arithmetic over a mixed (not all-deterministic) operand pair:
/// classify once, then run a branch-free slice loop. Element order and
/// operations match the per-world oracle exactly, so outputs are
/// bit-identical.
fn bin_columnar(op: BinOp, a: &BundleCell, b: &BundleCell, n: usize) -> Result<Vec<f64>> {
    Ok(match (num_view(a, "arithmetic")?, num_view(b, "arithmetic")?) {
        (NumView::Col(xs), NumView::Col(ys)) => {
            xs.iter().zip(ys).map(|(&x, &y)| arith_f64(op, x, y)).collect()
        }
        (NumView::Col(xs), NumView::Const(y)) => xs.iter().map(|&x| arith_f64(op, x, y)).collect(),
        (NumView::Const(x), NumView::Col(ys)) => ys.iter().map(|&y| arith_f64(op, x, y)).collect(),
        (NumView::Const(x), NumView::Const(y)) => vec![arith_f64(op, x, y); n],
    })
}

/// Columnar comparison over a mixed operand pair; see [`bin_columnar`].
fn cmp_columnar(op: CmpOp, a: &BundleCell, b: &BundleCell, n: usize) -> Result<Vec<f64>> {
    Ok(match (num_view(a, "comparison")?, num_view(b, "comparison")?) {
        (NumView::Col(xs), NumView::Col(ys)) => {
            xs.iter().zip(ys).map(|(&x, &y)| cmp_f64(op, x, y)).collect()
        }
        (NumView::Col(xs), NumView::Const(y)) => xs.iter().map(|&x| cmp_f64(op, x, y)).collect(),
        (NumView::Const(x), NumView::Col(ys)) => ys.iter().map(|&y| cmp_f64(op, x, y)).collect(),
        (NumView::Const(x), NumView::Const(y)) => vec![cmp_f64(op, x, y); n],
    })
}

impl Expr {
    /// Evaluate on one tuple in one world (row-at-a-time engine).
    pub fn eval_scalar(&self, row: &[Value], ctx: &WorldCtx<'_>) -> Result<Value> {
        Ok(match self {
            Expr::Lit(v) => v.clone(),
            Expr::ColIdx(i) => row[*i].clone(),
            Expr::ParamIdx(i) => Value::Float(ctx.params[*i]),
            Expr::Col(name) => return Err(PdbError::UnknownColumn(format!("{name} (unbound)"))),
            Expr::Param(name) => return Err(PdbError::UnknownParam(format!("{name} (unbound)"))),
            Expr::Call { name, args, site } => {
                let f = ctx.functions.function(name)?;
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    let v = a.eval_scalar(row, ctx)?;
                    argv.push(v.as_f64().ok_or_else(|| {
                        PdbError::TypeError(format!("non-numeric argument to `{name}`"))
                    })?);
                }
                let seed = ctx.seeds.seed(ctx.world).derive(*site);
                Value::Float(f.eval(&argv, seed))
            }
            Expr::Bin { op, l, r } => {
                arith(*op, &l.eval_scalar(row, ctx)?, &r.eval_scalar(row, ctx)?)?
            }
            Expr::Cmp { op, l, r } => {
                let (a, b) = (l.eval_scalar(row, ctx)?, r.eval_scalar(row, ctx)?);
                match a.compare(&b) {
                    Some(ord) => Value::Bool(op.apply(ord)),
                    None => Value::Null,
                }
            }
            Expr::And(l, r) => {
                match (l.eval_scalar(row, ctx)?.as_bool(), r.eval_scalar(row, ctx)?.as_bool()) {
                    (Some(a), Some(b)) => Value::Bool(a && b),
                    (Some(false), _) | (_, Some(false)) => Value::Bool(false),
                    _ => Value::Null,
                }
            }
            Expr::Or(l, r) => {
                match (l.eval_scalar(row, ctx)?.as_bool(), r.eval_scalar(row, ctx)?.as_bool()) {
                    (Some(a), Some(b)) => Value::Bool(a || b),
                    (Some(true), _) | (_, Some(true)) => Value::Bool(true),
                    _ => Value::Null,
                }
            }
            Expr::Not(e) => match e.eval_scalar(row, ctx)?.as_bool() {
                Some(b) => Value::Bool(!b),
                None => Value::Null,
            },
            Expr::Neg(e) => {
                let v = e.eval_scalar(row, ctx)?;
                match v {
                    Value::Null => Value::Null,
                    Value::Int(i) => Value::Int(-i),
                    other => Value::Float(-other.as_f64().ok_or_else(|| {
                        PdbError::TypeError("negation of non-numeric value".into())
                    })?),
                }
            }
            Expr::Case { whens, otherwise } => {
                for (c, v) in whens {
                    if c.eval_scalar(row, ctx)?.as_bool() == Some(true) {
                        return v.eval_scalar(row, ctx);
                    }
                }
                match otherwise {
                    Some(e) => e.eval_scalar(row, ctx)?,
                    None => Value::Null,
                }
            }
        })
    }

    /// Evaluate on one tuple bundle across all worlds of the batch
    /// (tuple-bundle engine). Deterministic sub-expressions evaluate once.
    pub fn eval_bundle(&self, row: &BundleRow, ctx: &BatchCtx<'_>) -> Result<BundleCell> {
        Ok(match self {
            Expr::Lit(v) => BundleCell::Det(v.clone()),
            Expr::ColIdx(i) => row.cells[*i].clone(),
            Expr::ParamIdx(i) => BundleCell::Det(Value::Float(ctx.params[*i])),
            Expr::Col(name) => return Err(PdbError::UnknownColumn(format!("{name} (unbound)"))),
            Expr::Param(name) => return Err(PdbError::UnknownParam(format!("{name} (unbound)"))),
            Expr::Call { name, args, site } => {
                let f = ctx.functions.function(name)?;
                let argv =
                    args.iter().map(|a| a.eval_bundle(row, ctx)).collect::<Result<Vec<_>>>()?;
                let mut out = Vec::with_capacity(ctx.n_worlds);
                let mut buf = vec![0.0f64; argv.len()];
                if ctx.columnar {
                    // Gather constant arguments into the buffer once; the
                    // per-world loop only overwrites stochastic slots from
                    // their contiguous columns before deriving the seed.
                    let mut stoch_slots: Vec<(usize, &[f64])> = Vec::new();
                    for (i, cell) in argv.iter().enumerate() {
                        match cell {
                            BundleCell::Det(v) => {
                                buf[i] = v.as_f64().ok_or_else(|| {
                                    PdbError::TypeError(format!("non-numeric argument to `{name}`"))
                                })?;
                            }
                            BundleCell::Stoch(xs) => stoch_slots.push((i, xs.as_slice())),
                        }
                    }
                    for w in 0..ctx.n_worlds {
                        for (slot, col) in &stoch_slots {
                            buf[*slot] = col[w];
                        }
                        let seed = ctx.seeds.seed(ctx.world_start + w).derive(*site);
                        out.push(f.eval(&buf, seed));
                    }
                } else {
                    for w in 0..ctx.n_worlds {
                        for (slot, cell) in buf.iter_mut().zip(&argv) {
                            *slot = cell.f64_at(w).ok_or_else(|| {
                                PdbError::TypeError(format!("non-numeric argument to `{name}`"))
                            })?;
                        }
                        let seed = ctx.seeds.seed(ctx.world_start + w).derive(*site);
                        out.push(f.eval(&buf, seed));
                    }
                }
                BundleCell::Stoch(out)
            }
            Expr::Bin { op, l, r } => {
                let (a, b) = (l.eval_bundle(row, ctx)?, r.eval_bundle(row, ctx)?);
                match (a, b) {
                    (BundleCell::Det(x), BundleCell::Det(y)) => {
                        BundleCell::Det(arith(*op, &x, &y)?)
                    }
                    (a, b) if ctx.columnar => {
                        BundleCell::Stoch(bin_columnar(*op, &a, &b, ctx.n_worlds)?)
                    }
                    (a, b) => {
                        let mut out = Vec::with_capacity(ctx.n_worlds);
                        for w in 0..ctx.n_worlds {
                            let x = a.f64_at(w).ok_or_else(|| {
                                PdbError::TypeError("arithmetic on non-numeric bundle".into())
                            })?;
                            let y = b.f64_at(w).ok_or_else(|| {
                                PdbError::TypeError("arithmetic on non-numeric bundle".into())
                            })?;
                            out.push(arith_f64(*op, x, y));
                        }
                        BundleCell::Stoch(out)
                    }
                }
            }
            Expr::Cmp { op, l, r } => {
                let (a, b) = (l.eval_bundle(row, ctx)?, r.eval_bundle(row, ctx)?);
                match (a, b) {
                    (BundleCell::Det(x), BundleCell::Det(y)) => match x.compare(&y) {
                        Some(ord) => BundleCell::Det(Value::Bool(op.apply(ord))),
                        None => BundleCell::Det(Value::Null),
                    },
                    (a, b) if ctx.columnar => {
                        BundleCell::Stoch(cmp_columnar(*op, &a, &b, ctx.n_worlds)?)
                    }
                    (a, b) => {
                        let mut out = Vec::with_capacity(ctx.n_worlds);
                        for w in 0..ctx.n_worlds {
                            let x = a.f64_at(w).ok_or_else(|| {
                                PdbError::TypeError("comparison on non-numeric bundle".into())
                            })?;
                            let y = b.f64_at(w).ok_or_else(|| {
                                PdbError::TypeError("comparison on non-numeric bundle".into())
                            })?;
                            let ord = x.partial_cmp(&y);
                            out.push(match ord {
                                Some(o) => {
                                    if op.apply(o) {
                                        1.0
                                    } else {
                                        0.0
                                    }
                                }
                                None => f64::NAN,
                            });
                        }
                        BundleCell::Stoch(out)
                    }
                }
            }
            Expr::And(l, r) => bool_bundle(l, r, ctx, row, |a, b| a && b)?,
            Expr::Or(l, r) => bool_bundle(l, r, ctx, row, |a, b| a || b)?,
            Expr::Not(e) => match e.eval_bundle(row, ctx)? {
                BundleCell::Det(v) => BundleCell::Det(match v.as_bool() {
                    Some(b) => Value::Bool(!b),
                    None => Value::Null,
                }),
                BundleCell::Stoch(xs) => BundleCell::Stoch(
                    xs.into_iter().map(|x| if x != 0.0 { 0.0 } else { 1.0 }).collect(),
                ),
            },
            Expr::Neg(e) => match e.eval_bundle(row, ctx)? {
                BundleCell::Det(Value::Int(i)) => BundleCell::Det(Value::Int(-i)),
                BundleCell::Det(Value::Null) => BundleCell::Det(Value::Null),
                BundleCell::Det(v) => BundleCell::Det(Value::Float(
                    -v.as_f64()
                        .ok_or_else(|| PdbError::TypeError("negation of non-numeric".into()))?,
                )),
                BundleCell::Stoch(xs) => BundleCell::Stoch(xs.into_iter().map(|x| -x).collect()),
            },
            Expr::Case { whens, otherwise } => {
                // Evaluate conditions and branch values, then select per world.
                let conds = whens
                    .iter()
                    .map(|(c, _)| c.eval_bundle(row, ctx))
                    .collect::<Result<Vec<_>>>()?;
                let vals = whens
                    .iter()
                    .map(|(_, v)| v.eval_bundle(row, ctx))
                    .collect::<Result<Vec<_>>>()?;
                let els = match otherwise {
                    Some(e) => Some(e.eval_bundle(row, ctx)?),
                    None => None,
                };
                // Fully deterministic fast path.
                let all_det = conds.iter().all(|c| !c.is_stoch())
                    && vals.iter().all(|v| !v.is_stoch())
                    && els.as_ref().map(|e| !e.is_stoch()).unwrap_or(true);
                if all_det {
                    for (c, v) in conds.iter().zip(&vals) {
                        if let BundleCell::Det(cv) = c {
                            if cv.as_bool() == Some(true) {
                                return Ok(v.clone());
                            }
                        }
                    }
                    return Ok(els.unwrap_or(BundleCell::Det(Value::Null)));
                }
                let mut out = Vec::with_capacity(ctx.n_worlds);
                'world: for w in 0..ctx.n_worlds {
                    for (c, v) in conds.iter().zip(&vals) {
                        let truth = match c {
                            BundleCell::Det(cv) => cv.as_bool() == Some(true),
                            BundleCell::Stoch(xs) => xs[w] != 0.0 && !xs[w].is_nan(),
                        };
                        if truth {
                            out.push(v.f64_at(w).ok_or_else(|| {
                                PdbError::TypeError("CASE branch must be numeric here".into())
                            })?);
                            continue 'world;
                        }
                    }
                    out.push(match &els {
                        Some(e) => e.f64_at(w).ok_or_else(|| {
                            PdbError::TypeError("CASE else must be numeric here".into())
                        })?,
                        None => f64::NAN,
                    });
                }
                BundleCell::Stoch(out)
            }
        })
    }
}

fn bool_bundle(
    l: &Expr,
    r: &Expr,
    ctx: &BatchCtx<'_>,
    row: &BundleRow,
    f: fn(bool, bool) -> bool,
) -> Result<BundleCell> {
    let (a, b) = (l.eval_bundle(row, ctx)?, r.eval_bundle(row, ctx)?);
    match (a, b) {
        (BundleCell::Det(x), BundleCell::Det(y)) => {
            Ok(BundleCell::Det(match (x.as_bool(), y.as_bool()) {
                (Some(p), Some(q)) => Value::Bool(f(p, q)),
                _ => Value::Null,
            }))
        }
        (a, b) if ctx.columnar => {
            let out = match (bool_view(&a), bool_view(&b)) {
                (BoolView::Col(xs), BoolView::Col(ys)) => xs
                    .iter()
                    .zip(ys)
                    .map(|(&x, &y)| if f(truthy_f64(x), truthy_f64(y)) { 1.0 } else { 0.0 })
                    .collect(),
                (BoolView::Col(xs), BoolView::Const(q)) => {
                    xs.iter().map(|&x| if f(truthy_f64(x), q) { 1.0 } else { 0.0 }).collect()
                }
                (BoolView::Const(p), BoolView::Col(ys)) => {
                    ys.iter().map(|&y| if f(p, truthy_f64(y)) { 1.0 } else { 0.0 }).collect()
                }
                (BoolView::Const(p), BoolView::Const(q)) => {
                    vec![if f(p, q) { 1.0 } else { 0.0 }; ctx.n_worlds]
                }
            };
            Ok(BundleCell::Stoch(out))
        }
        (a, b) => {
            let mut out = Vec::with_capacity(ctx.n_worlds);
            for w in 0..ctx.n_worlds {
                let p = truthy(&a, w);
                let q = truthy(&b, w);
                out.push(if f(p, q) { 1.0 } else { 0.0 });
            }
            Ok(BundleCell::Stoch(out))
        }
    }
}

fn truthy(c: &BundleCell, w: usize) -> bool {
    match c {
        BundleCell::Det(v) => v.as_bool().unwrap_or(false),
        BundleCell::Stoch(xs) => xs[w] != 0.0 && !xs[w].is_nan(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::Presence;
    use crate::schema::{Column, ColumnType};
    use jigsaw_blackbox::FnBlackBox;
    use std::sync::Arc;

    fn setup() -> (Schema, Catalog, SeedSet) {
        let schema = Schema::new(vec![
            Column::det("x", ColumnType::Float),
            Column::det("label", ColumnType::Str),
        ]);
        let mut cat = Catalog::new();
        cat.add_function(Arc::new(FnBlackBox::new("Noise", 1, |p: &[f64], s| {
            p[0] + (s.0 % 10) as f64
        })));
        (schema, cat, SeedSet::new(42))
    }

    fn bind(e: Expr, schema: &Schema, cat: &Catalog) -> Expr {
        let mut site = 0;
        e.bind(schema, &["w".to_string()], cat, &mut site).unwrap()
    }

    #[test]
    fn binding_resolves_names_and_sites() {
        let (schema, cat, _) = setup();
        let e = Expr::bin(BinOp::Add, Expr::col("x"), Expr::call("Noise", vec![Expr::param("w")]));
        let b = bind(e, &schema, &cat);
        match b {
            Expr::Bin { l, r, .. } => {
                assert_eq!(*l, Expr::ColIdx(0));
                match *r {
                    Expr::Call { site, ref args, .. } => {
                        assert_eq!(site, 0);
                        assert_eq!(args[0], Expr::ParamIdx(0));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bind_errors() {
        let (schema, cat, _) = setup();
        let mut site = 0;
        assert!(matches!(
            Expr::col("nope").bind(&schema, &[], &cat, &mut site),
            Err(PdbError::UnknownColumn(_))
        ));
        assert!(matches!(
            Expr::param("nope").bind(&schema, &[], &cat, &mut site),
            Err(PdbError::UnknownParam(_))
        ));
        assert!(matches!(
            Expr::call("Nope", vec![]).bind(&schema, &[], &cat, &mut site),
            Err(PdbError::UnknownFunction(_))
        ));
        assert!(matches!(
            Expr::call("Noise", vec![]).bind(&schema, &[], &cat, &mut site),
            Err(PdbError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn scalar_and_bundle_agree_on_calls() {
        let (schema, cat, seeds) = setup();
        let e = bind(
            Expr::bin(BinOp::Mul, Expr::call("Noise", vec![Expr::col("x")]), Expr::lit_f(2.0)),
            &schema,
            &cat,
        );
        let row_vals = vec![Value::Float(3.0), Value::Str("a".into())];
        let bundle_row = BundleRow::det(row_vals.clone());
        let n = 5;
        let bctx = BatchCtx {
            world_start: 0,
            n_worlds: n,
            seeds: &seeds,
            params: &[7.0],
            functions: &cat,
            columnar: false,
        };
        let bundled = e.eval_bundle(&bundle_row, &bctx).unwrap();
        for w in 0..n {
            let sctx = WorldCtx { world: w, seeds: &seeds, params: &[7.0], functions: &cat };
            let scalar = e.eval_scalar(&row_vals, &sctx).unwrap();
            assert_eq!(scalar.as_f64().unwrap(), bundled.f64_at(w).unwrap(), "world {w}");
        }
    }

    #[test]
    fn case_when_scalar() {
        let (schema, cat, seeds) = setup();
        // CASE WHEN x > 2 THEN 1 ELSE 0 END — the paper's overload indicator.
        let e = bind(
            Expr::Case {
                whens: vec![(
                    Expr::cmp(CmpOp::Gt, Expr::col("x"), Expr::lit_f(2.0)),
                    Expr::lit_i(1),
                )],
                otherwise: Some(Box::new(Expr::lit_i(0))),
            },
            &schema,
            &cat,
        );
        let ctx = WorldCtx { world: 0, seeds: &seeds, params: &[], functions: &cat };
        assert_eq!(e.eval_scalar(&[Value::Float(3.0), Value::Null], &ctx).unwrap(), Value::Int(1));
        assert_eq!(e.eval_scalar(&[Value::Float(1.0), Value::Null], &ctx).unwrap(), Value::Int(0));
    }

    #[test]
    fn case_without_else_gives_null() {
        let (schema, cat, seeds) = setup();
        let e = bind(
            Expr::Case {
                whens: vec![(Expr::Lit(Value::Bool(false)), Expr::lit_i(1))],
                otherwise: None,
            },
            &schema,
            &cat,
        );
        let ctx = WorldCtx { world: 0, seeds: &seeds, params: &[], functions: &cat };
        assert_eq!(e.eval_scalar(&[Value::Null, Value::Null], &ctx).unwrap(), Value::Null);
    }

    #[test]
    fn integer_arithmetic_and_division_by_zero() {
        let (schema, cat, seeds) = setup();
        let ctx = WorldCtx { world: 0, seeds: &seeds, params: &[], functions: &cat };
        let div = bind(Expr::bin(BinOp::Div, Expr::lit_i(7), Expr::lit_i(2)), &schema, &cat);
        assert_eq!(div.eval_scalar(&[], &ctx).unwrap(), Value::Int(3));
        let div0 = bind(Expr::bin(BinOp::Div, Expr::lit_i(7), Expr::lit_i(0)), &schema, &cat);
        assert_eq!(div0.eval_scalar(&[], &ctx).unwrap(), Value::Null);
        let fdiv = bind(Expr::bin(BinOp::Div, Expr::lit_f(7.0), Expr::lit_i(2)), &schema, &cat);
        assert_eq!(fdiv.eval_scalar(&[], &ctx).unwrap(), Value::Float(3.5));
    }

    #[test]
    fn null_propagates_through_arithmetic_and_comparison() {
        let (schema, cat, seeds) = setup();
        let ctx = WorldCtx { world: 0, seeds: &seeds, params: &[], functions: &cat };
        let e = bind(Expr::bin(BinOp::Add, Expr::Lit(Value::Null), Expr::lit_i(1)), &schema, &cat);
        assert_eq!(e.eval_scalar(&[], &ctx).unwrap(), Value::Null);
        let c = bind(Expr::cmp(CmpOp::Lt, Expr::Lit(Value::Null), Expr::lit_i(1)), &schema, &cat);
        assert_eq!(c.eval_scalar(&[], &ctx).unwrap(), Value::Null);
    }

    #[test]
    fn stochasticity_detection() {
        let (schema, cat, _) = setup();
        let det = bind(Expr::bin(BinOp::Add, Expr::col("x"), Expr::lit_f(1.0)), &schema, &cat);
        assert!(!det.is_stochastic(&schema));
        let stoch = bind(Expr::call("Noise", vec![Expr::col("x")]), &schema, &cat);
        assert!(stoch.is_stochastic(&schema));
    }

    #[test]
    fn distinct_call_sites_get_independent_randomness() {
        let (schema, cat, seeds) = setup();
        // Noise(x) - Noise(x): same args, different sites → generally nonzero.
        let e = bind(
            Expr::bin(
                BinOp::Sub,
                Expr::call("Noise", vec![Expr::col("x")]),
                Expr::call("Noise", vec![Expr::col("x")]),
            ),
            &schema,
            &cat,
        );
        let row = vec![Value::Float(0.0), Value::Null];
        let mut any_nonzero = false;
        for w in 0..16 {
            let ctx = WorldCtx { world: w, seeds: &seeds, params: &[], functions: &cat };
            if e.eval_scalar(&row, &ctx).unwrap().as_f64().unwrap() != 0.0 {
                any_nonzero = true;
            }
        }
        assert!(any_nonzero, "two call sites shared a seed stream");
    }

    #[test]
    fn columnar_kernels_match_oracle_bit_for_bit() {
        let (schema, cat, seeds) = setup();
        // A composite expression exercising every kernel: black-box call
        // with mixed det/stoch args, mixed-arity arithmetic, comparison,
        // boolean logic, negation, and a stochastic CASE.
        let noise = Expr::call("Noise", vec![Expr::col("x")]);
        let exprs = vec![
            Expr::bin(BinOp::Add, noise.clone(), Expr::lit_f(0.5)),
            Expr::bin(BinOp::Mul, Expr::lit_f(2.0), noise.clone()),
            Expr::bin(BinOp::Sub, noise.clone(), noise.clone()),
            Expr::cmp(CmpOp::Gt, noise.clone(), Expr::lit_f(4.0)),
            Expr::cmp(CmpOp::Le, Expr::lit_f(4.0), noise.clone()),
            Expr::And(
                Box::new(Expr::cmp(CmpOp::Gt, noise.clone(), Expr::lit_f(2.0))),
                Box::new(Expr::Lit(Value::Bool(true))),
            ),
            Expr::Or(
                Box::new(Expr::Lit(Value::Bool(false))),
                Box::new(Expr::cmp(CmpOp::Lt, noise.clone(), Expr::lit_f(7.0))),
            ),
            Expr::Neg(Box::new(noise.clone())),
            Expr::Case {
                whens: vec![(
                    Expr::cmp(CmpOp::Gt, noise.clone(), Expr::lit_f(5.0)),
                    Expr::bin(BinOp::Mul, noise, Expr::lit_f(3.0)),
                )],
                otherwise: Some(Box::new(Expr::lit_f(-1.0))),
            },
        ];
        let row = BundleRow::det(vec![Value::Float(1.5), Value::Str("a".into())]);
        for e in exprs {
            let e = bind(e, &schema, &cat);
            let mk = |columnar| BatchCtx {
                world_start: 3,
                n_worlds: 9,
                seeds: &seeds,
                params: &[],
                functions: &cat,
                columnar,
            };
            let oracle = e.eval_bundle(&row, &mk(false)).unwrap();
            let col = e.eval_bundle(&row, &mk(true)).unwrap();
            assert_eq!(oracle, col, "expr {e:?}");
        }
    }

    #[test]
    fn bundle_case_with_stochastic_condition() {
        let (schema, cat, seeds) = setup();
        // CASE WHEN Noise(x) > 2 THEN 1 ELSE 0 END across 8 worlds.
        let e = bind(
            Expr::Case {
                whens: vec![(
                    Expr::cmp(
                        CmpOp::Gt,
                        Expr::call("Noise", vec![Expr::col("x")]),
                        Expr::lit_f(2.0),
                    ),
                    Expr::lit_f(1.0),
                )],
                otherwise: Some(Box::new(Expr::lit_f(0.0))),
            },
            &schema,
            &cat,
        );
        let row = BundleRow {
            cells: vec![BundleCell::Det(Value::Float(0.0)), BundleCell::Det(Value::Null)],
            presence: Presence::All,
        };
        let ctx = BatchCtx {
            world_start: 0,
            n_worlds: 8,
            seeds: &seeds,
            params: &[],
            functions: &cat,
            columnar: false,
        };
        match e.eval_bundle(&row, &ctx).unwrap() {
            BundleCell::Stoch(xs) => {
                assert_eq!(xs.len(), 8);
                assert!(xs.iter().all(|&x| x == 0.0 || x == 1.0));
            }
            other => panic!("expected stochastic cell, got {other:?}"),
        }
    }
}
