//! Scalar values for the relational layer.

use std::cmp::Ordering;
use std::fmt;

/// A scalar SQL value.
///
/// The stochastic side of the engine works in `f64` (black boxes are
/// real-valued); `Value` carries the deterministic relational data — keys,
/// labels, per-row model parameters — and the results of per-world
/// materialization in the row-at-a-time engine.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// Numeric view (`Int` and `Float` only; `Bool` maps to 0/1).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Boolean view (`Bool` only).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Integer view (`Int` only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view (`Str` only).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// True for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Broadcast a deterministic scalar across `n` worlds as one contiguous
    /// column — the columnar form of "this value is certain". `None` for
    /// non-numeric values.
    pub fn broadcast_f64(&self, n: usize) -> Option<Vec<f64>> {
        self.as_f64().map(|x| vec![x; n])
    }

    /// SQL three-valued comparison. `None` when either side is NULL or the
    /// types are incomparable.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            // Numeric cross-type comparison through f64.
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// A hashable grouping key. NULLs group together (SQL GROUP BY
    /// semantics); floats are grouped by bit pattern.
    pub fn group_key(&self) -> GroupKey {
        match self {
            Value::Null => GroupKey::Null,
            Value::Bool(b) => GroupKey::Bool(*b),
            Value::Int(i) => GroupKey::Int(*i),
            Value::Float(f) => GroupKey::Float(f.to_bits()),
            Value::Str(s) => GroupKey::Str(s.clone()),
        }
    }
}

/// Hashable projection of a [`Value`] for grouping and join keys.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GroupKey {
    /// NULL key (all NULLs group together).
    Null,
    /// Boolean key.
    Bool(bool),
    /// Integer key.
    Int(i64),
    /// Float key by bit pattern.
    Float(u64),
    /// String key.
    Str(String),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn cross_type_numeric_comparison() {
        assert_eq!(Value::Int(2).compare(&Value::Float(2.5)), Some(Ordering::Less));
        assert_eq!(Value::Float(2.0).compare(&Value::Int(2)), Some(Ordering::Equal));
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).compare(&Value::Null), None);
        assert_eq!(Value::Null.compare(&Value::Null), None);
    }

    #[test]
    fn string_and_numeric_incomparable() {
        assert_eq!(Value::Str("a".into()).compare(&Value::Int(1)), None);
    }

    #[test]
    fn group_keys_unify_nulls_and_distinguish_types() {
        assert_eq!(Value::Null.group_key(), Value::Null.group_key());
        assert_ne!(Value::Int(1).group_key(), Value::Float(1.0).group_key());
        assert_eq!(Value::Float(1.5).group_key(), Value::Float(1.5).group_key());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::Str("hi".into()).to_string(), "hi");
    }
}
