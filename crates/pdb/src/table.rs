//! Deterministic base tables.
//!
//! In MCDB's architecture, "each random table in the uncertain database is
//! represented on disk by its schema, together with a set of black-box
//! functions that are used to generate realizations of uncertain attribute
//! values" (paper §2.3). A [`Table`] stores the deterministic part; the
//! stochastic attributes are attached at plan level as black-box expressions
//! evaluated per possible world.

use crate::schema::{ColumnType, Schema};
use crate::value::Value;

/// A row-oriented deterministic table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: Schema,
    rows: Vec<Vec<Value>>,
}

impl Table {
    /// An empty table with the given schema (all columns must be
    /// deterministic — stochastic attributes live in plans, not storage).
    pub fn new(schema: Schema) -> Self {
        assert!(
            schema.columns().iter().all(|c| !c.uncertain),
            "base tables store deterministic columns only"
        );
        assert!(schema.has_unique_names(), "base table column names must be unique");
        Table { schema, rows: Vec::new() }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Append a row, checking arity and types.
    pub fn push_row(&mut self, row: Vec<Value>) {
        assert_eq!(row.len(), self.schema.len(), "row arity mismatch");
        for (v, c) in row.iter().zip(self.schema.columns()) {
            let ok = match (v, c.ty) {
                (Value::Null, _) => true,
                (Value::Bool(_), ColumnType::Bool) => true,
                (Value::Int(_), ColumnType::Int) => true,
                (Value::Float(_), ColumnType::Float) => true,
                (Value::Int(_), ColumnType::Float) => true, // widening OK
                (Value::Str(_), ColumnType::Str) => true,
                _ => false,
            };
            assert!(ok, "value {v:?} does not fit column `{}` ({:?})", c.name, c.ty);
        }
        self.rows.push(row);
    }

    /// The rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Cell accessor.
    pub fn cell(&self, row: usize, col: usize) -> &Value {
        &self.rows[row][col]
    }
}

/// Convenience builder for test fixtures and examples.
#[derive(Debug, Default)]
pub struct TableBuilder {
    columns: Vec<(String, ColumnType)>,
    rows: Vec<Vec<Value>>,
}

impl TableBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a column.
    pub fn column(mut self, name: impl Into<String>, ty: ColumnType) -> Self {
        self.columns.push((name.into(), ty));
        self
    }

    /// Add a row.
    pub fn row(mut self, row: Vec<Value>) -> Self {
        self.rows.push(row);
        self
    }

    /// Finish, validating every row.
    pub fn build(self) -> Table {
        let schema = Schema::new(
            self.columns
                .into_iter()
                .map(|(name, ty)| crate::schema::Column::det(name, ty))
                .collect(),
        );
        let mut t = Table::new(schema);
        for r in self.rows {
            t.push_row(r);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn users() -> Table {
        TableBuilder::new()
            .column("id", ColumnType::Int)
            .column("base", ColumnType::Float)
            .row(vec![1.into(), 2.5.into()])
            .row(vec![2.into(), 0.5.into()])
            .build()
    }

    #[test]
    fn builder_roundtrip() {
        let t = users();
        assert_eq!(t.len(), 2);
        assert_eq!(t.cell(0, 0), &Value::Int(1));
        assert_eq!(t.cell(1, 1), &Value::Float(0.5));
        assert_eq!(t.schema().index_of("base"), Some(1));
    }

    #[test]
    fn int_widens_to_float_column() {
        let mut t = users();
        t.push_row(vec![3.into(), Value::Int(4)]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn nulls_allowed_anywhere() {
        let mut t = users();
        t.push_row(vec![Value::Null, Value::Null]);
        assert!(t.cell(2, 0).is_null());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let mut t = users();
        t.push_row(vec![1.into()]);
    }

    #[test]
    #[should_panic(expected = "does not fit column")]
    fn type_checked() {
        let mut t = users();
        t.push_row(vec![Value::Str("x".into()), 1.0.into()]);
    }

    #[test]
    #[should_panic(expected = "deterministic columns only")]
    fn stochastic_storage_rejected() {
        let s = Schema::new(vec![crate::schema::Column::stoch("d")]);
        let _ = Table::new(s);
    }
}
