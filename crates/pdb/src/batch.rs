//! Struct-of-arrays world batches — the columnar output format of bulk
//! world evaluation.
//!
//! MCDB's inner loop is "run the query on each sampled world"; U-relations
//! (Antova et al.) showed the same workload goes fast when uncertain data
//! lives in a succinct columnar representation operated on by plain
//! relational operators. [`WorldBatch`] is that representation at the
//! simulation boundary: one contiguous `f64` column per output variable,
//! one row per possible world. Everything above the engines — the sweep
//! executor's wave phases, warm sessions, the server's ESTIMATE path —
//! consumes these columns as plain slices the autovectorizer can chew on,
//! instead of per-world `BundleCell` dispatch.
//!
//! A batch is only a layout, never a different computation: the columnar
//! evaluation path that fills it performs the same floating-point
//! operations in the same order as the per-world oracle, so the two are
//! bit-identical (property-tested in `tests/columnar_oracle.rs`).

/// A columnar batch of evaluated worlds: `column(c)[w]` is output column
/// `c` in world `w` of the evaluated window.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldBatch {
    n_worlds: usize,
    columns: Vec<Vec<f64>>,
}

impl WorldBatch {
    /// Build from per-column vectors. Every column must have exactly
    /// `n_worlds` entries.
    pub fn from_columns(columns: Vec<Vec<f64>>, n_worlds: usize) -> Self {
        for (c, col) in columns.iter().enumerate() {
            assert_eq!(col.len(), n_worlds, "column {c} has wrong world count");
        }
        WorldBatch { n_worlds, columns }
    }

    /// An empty batch with `n_cols` zero-length columns (a zero-world
    /// window still has a schema).
    pub fn empty(n_cols: usize) -> Self {
        WorldBatch { n_worlds: 0, columns: vec![Vec::new(); n_cols] }
    }

    /// An empty batch whose columns have room for `cap` worlds — the
    /// stitching accumulator shape.
    pub fn with_capacity(n_cols: usize, cap: usize) -> Self {
        WorldBatch { n_worlds: 0, columns: (0..n_cols).map(|_| Vec::with_capacity(cap)).collect() }
    }

    /// Number of worlds (rows) in the batch.
    pub fn n_worlds(&self) -> usize {
        self.n_worlds
    }

    /// Number of output columns.
    pub fn n_columns(&self) -> usize {
        self.columns.len()
    }

    /// One output column as a contiguous slice over worlds.
    pub fn column(&self, c: usize) -> &[f64] {
        &self.columns[c]
    }

    /// All columns, borrowed.
    pub fn columns(&self) -> &[Vec<f64>] {
        &self.columns
    }

    /// Consume the batch into its per-column vectors — the historical
    /// `out[col][world]` shape of [`crate::Simulation::eval_worlds`].
    pub fn into_columns(self) -> Vec<Vec<f64>> {
        self.columns
    }

    /// Append another batch's worlds below this one (window stitching).
    /// Column counts must match.
    pub fn extend(&mut self, other: WorldBatch) {
        assert_eq!(self.columns.len(), other.columns.len(), "column count mismatch");
        for (dst, src) in self.columns.iter_mut().zip(other.columns) {
            dst.extend(src);
        }
        self.n_worlds += other.n_worlds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_accessors() {
        let b = WorldBatch::from_columns(vec![vec![1.0, 2.0], vec![3.0, 4.0]], 2);
        assert_eq!(b.n_worlds(), 2);
        assert_eq!(b.n_columns(), 2);
        assert_eq!(b.column(1), &[3.0, 4.0]);
        assert_eq!(b.into_columns(), vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
    }

    #[test]
    fn empty_has_schema_but_no_worlds() {
        let b = WorldBatch::empty(3);
        assert_eq!(b.n_worlds(), 0);
        assert_eq!(b.n_columns(), 3);
        assert!(b.column(2).is_empty());
    }

    #[test]
    fn extend_stitches_windows() {
        let mut a = WorldBatch::from_columns(vec![vec![1.0]], 1);
        a.extend(WorldBatch::from_columns(vec![vec![2.0, 3.0]], 2));
        assert_eq!(a.n_worlds(), 3);
        assert_eq!(a.column(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "wrong world count")]
    fn ragged_columns_rejected() {
        WorldBatch::from_columns(vec![vec![1.0], vec![1.0, 2.0]], 1);
    }
}
