//! The `Simulation` abstraction: "the entire Monte Carlo simulation" as a
//! single stochastic function.
//!
//! The paper's key move (§3): "Taken to one extreme, the entire Monte Carlo
//! simulation shown inside the dashed box in Figure 3 can be treated as the
//! stochastic function F." Jigsaw's optimizer fingerprints *that* function —
//! the composition of parameter binding, black-box invocation, and query
//! evaluation — not individual models.
//!
//! [`Simulation::eval_worlds`] evaluates the query at a parameter point for
//! a window of world indices. World `k` always runs under seed `σ_k`, so the
//! first `m` worlds double as the fingerprint and the remaining `n − m`
//! complete the estimate with no wasted work.

use std::sync::Arc;

use jigsaw_blackbox::{BlackBox, ParamSpace};
use jigsaw_prng::SeedSet;

use crate::batch::WorldBatch;
use crate::bundle::BundleCell;
use crate::catalog::Catalog;
use crate::error::{PdbError, Result};
use crate::exec::{Engine, ExecContext};
use crate::plan::BoundPlan;

/// A parameterized Monte Carlo simulation with named scalar outputs.
///
/// Implementations provide the *sequential* window evaluation only; callers
/// that hold a thread budget go through [`crate::worlds::eval_batch`] (or
/// the per-world [`crate::worlds::eval_worlds`] oracle), which splits the
/// window across scoped threads and stitches the results back
/// bit-identically (worlds are seed-addressed, so sub-windows compose).
pub trait Simulation: Send + Sync {
    /// Names of the output columns.
    fn columns(&self) -> &[String];

    /// The parameter space the simulation is defined over.
    fn space(&self) -> &ParamSpace;

    /// Evaluate output columns for worlds `start .. start+count` at `point`.
    ///
    /// Returns `out[col][world_in_window]`. This is the per-world **oracle**
    /// path: implementations walk worlds one at a time, and the columnar
    /// path is property-tested bit-identical against it.
    fn eval_worlds(&self, point: &[f64], start: usize, count: usize) -> Result<Vec<Vec<f64>>>;

    /// Evaluate the same window into a columnar [`WorldBatch`] in bulk.
    ///
    /// The default bridges through [`Simulation::eval_worlds`];
    /// implementations whose engines have struct-of-arrays kernels
    /// ([`PlanSim`]) override it to fill contiguous columns directly. Must
    /// be **bit-identical** to the oracle path for every window.
    fn eval_batch(&self, point: &[f64], start: usize, count: usize) -> Result<WorldBatch> {
        Ok(WorldBatch::from_columns(self.eval_worlds(point, start, count)?, count))
    }
}

/// A single black-box function exposed as a one-column simulation — the
/// shape most of the paper's experiments use.
pub struct BlackBoxSim {
    bb: Arc<dyn BlackBox>,
    seeds: SeedSet,
    space: ParamSpace,
    columns: [String; 1],
}

impl BlackBoxSim {
    /// Wrap a black box with its parameter space and the session seed set.
    pub fn new(bb: Arc<dyn BlackBox>, space: ParamSpace, seeds: SeedSet) -> Self {
        let name = bb.name().to_string();
        BlackBoxSim { bb, seeds, space, columns: [name] }
    }
}

impl Simulation for BlackBoxSim {
    fn columns(&self) -> &[String] {
        &self.columns
    }

    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn eval_worlds(&self, point: &[f64], start: usize, count: usize) -> Result<Vec<Vec<f64>>> {
        let mut col = Vec::with_capacity(count);
        for k in start..start + count {
            col.push(self.bb.eval(point, self.seeds.seed(k)));
        }
        Ok(vec![col])
    }
}

/// A bound query plan executed by a PDB engine, exposed as a simulation.
///
/// The plan must reduce to a **single logical row** (aggregate queries or
/// scalar `SELECT`s) — exactly the shape the paper's example scenarios have.
pub struct PlanSim {
    engine: Arc<dyn Engine>,
    plan: BoundPlan,
    catalog: Arc<Catalog>,
    seeds: SeedSet,
    space: ParamSpace,
    columns: Vec<String>,
}

impl PlanSim {
    /// Wrap a bound plan. `space` declares the `@parameters` in the same
    /// order the plan was bound with.
    pub fn new(
        engine: Arc<dyn Engine>,
        plan: BoundPlan,
        catalog: Arc<Catalog>,
        space: ParamSpace,
        seeds: SeedSet,
    ) -> Self {
        let columns = plan.schema.names().into_iter().map(String::from).collect();
        PlanSim { engine, plan, catalog, seeds, space, columns }
    }

    /// The engine used for execution.
    pub fn engine_name(&self) -> &str {
        self.engine.name()
    }

    /// Run the plan over one world window and return the single logical
    /// row's cells. `columnar` selects the engine kernels.
    fn execute_row(
        &self,
        point: &[f64],
        start: usize,
        count: usize,
        columnar: bool,
    ) -> Result<Vec<BundleCell>> {
        let ctx = ExecContext {
            seeds: self.seeds,
            params: point.to_vec(),
            world_start: start,
            n_worlds: count,
            columnar,
        };
        let mut table = self.engine.execute(&self.plan, &self.catalog, &ctx)?;
        if table.len() != 1 {
            return Err(PdbError::Unsupported(format!(
                "simulation queries must produce exactly one row, got {}",
                table.len()
            )));
        }
        Ok(table.rows.pop().expect("length checked above").cells)
    }

    /// Convert the row's cells into per-column world vectors: Det cells
    /// broadcast across the window, Stoch cells are already columns.
    fn cells_to_columns(&self, cells: Vec<BundleCell>, count: usize) -> Result<Vec<Vec<f64>>> {
        let mut out = Vec::with_capacity(self.columns.len());
        for cell in cells {
            out.push(match cell {
                BundleCell::Det(v) => v
                    .broadcast_f64(count)
                    .ok_or_else(|| PdbError::TypeError("non-numeric simulation output".into()))?,
                BundleCell::Stoch(xs) => xs,
            });
        }
        Ok(out)
    }
}

impl Simulation for PlanSim {
    fn columns(&self) -> &[String] {
        &self.columns
    }

    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn eval_worlds(&self, point: &[f64], start: usize, count: usize) -> Result<Vec<Vec<f64>>> {
        // A zero-world window has no worlds to disagree about: skip the
        // engines (whose bundle tables require at least one world) and
        // return the schema's worth of empty columns.
        if count == 0 {
            return Ok(vec![Vec::new(); self.columns.len()]);
        }
        let cells = self.execute_row(point, start, count, false)?;
        self.cells_to_columns(cells, count)
    }

    fn eval_batch(&self, point: &[f64], start: usize, count: usize) -> Result<WorldBatch> {
        if count == 0 {
            return Ok(WorldBatch::empty(self.columns.len()));
        }
        let cells = self.execute_row(point, start, count, true)?;
        Ok(WorldBatch::from_columns(self.cells_to_columns(cells, count)?, count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{DbmsEngine, DirectEngine, Engine};
    use crate::expr::Expr;
    use crate::plan::Plan;
    use jigsaw_blackbox::{FnBlackBox, ParamDecl};

    fn space() -> ParamSpace {
        ParamSpace::new(vec![ParamDecl::range("w", 0, 9, 1)])
    }

    #[test]
    fn blackbox_sim_matches_direct_eval() {
        let seeds = SeedSet::new(4);
        let bb: Arc<dyn BlackBox> =
            Arc::new(FnBlackBox::new("F", 1, |p: &[f64], s| p[0] * 10.0 + (s.0 % 7) as f64));
        let sim = BlackBoxSim::new(bb.clone(), space(), seeds);
        let out = sim.eval_worlds(&[3.0], 2, 4).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len(), 4);
        for (i, k) in (2..6).enumerate() {
            assert_eq!(out[0][i], bb.eval(&[3.0], seeds.seed(k)));
        }
    }

    #[test]
    fn plan_sim_single_row_contract() {
        let seeds = SeedSet::new(4);
        let mut cat = Catalog::new();
        cat.add_function(Arc::new(FnBlackBox::new("F", 1, |p: &[f64], _| p[0])));
        let plan = Plan::OneRow
            .project(vec![("out", Expr::call("F", vec![Expr::param("w")]))])
            .bind(&cat, &["w".to_string()])
            .unwrap();
        let sim = PlanSim::new(Arc::new(DirectEngine::new()), plan, Arc::new(cat), space(), seeds);
        let out = sim.eval_worlds(&[5.0], 0, 3).unwrap();
        assert_eq!(out, vec![vec![5.0, 5.0, 5.0]]);
        assert_eq!(sim.columns(), &["out".to_string()]);
    }

    #[test]
    fn plan_sim_zero_count_is_empty_on_both_engines() {
        // Mirrors worlds::tests::zero_count_is_empty for the plan-backed
        // path: a zero-world window must not reach the engines (whose
        // bundle tables assert n_worlds > 0) and must yield one empty
        // column per output — for Det-shaped and Stoch-shaped cells alike.
        let seeds = SeedSet::new(4);
        let mut cat = Catalog::new();
        cat.add_function(Arc::new(FnBlackBox::new("F", 1, |p: &[f64], s| {
            p[0] + (s.0 % 13) as f64
        })));
        let cat = Arc::new(cat);
        // `det` broadcasts a parameter (Det cell), `sto` calls a black box
        // (Stoch cell): both shapes must collapse to empty columns.
        let plan = Plan::OneRow
            .project(vec![
                ("det", Expr::param("w")),
                ("sto", Expr::call("F", vec![Expr::param("w")])),
            ])
            .bind(&cat, &["w".to_string()])
            .unwrap();
        let engines: Vec<Arc<dyn Engine>> =
            vec![Arc::new(DirectEngine::new()), Arc::new(DbmsEngine::new())];
        for engine in engines {
            let sim = PlanSim::new(engine, plan.clone(), cat.clone(), space(), seeds);
            let name = sim.engine_name().to_string();
            let out = sim.eval_worlds(&[5.0], 0, 0).unwrap();
            assert_eq!(out, vec![Vec::<f64>::new(), Vec::<f64>::new()], "engine={name}");
            let batch = sim.eval_batch(&[5.0], 7, 0).unwrap();
            assert_eq!(batch.n_worlds(), 0, "engine={name}");
            assert_eq!(batch.n_columns(), 2, "engine={name}");
            assert!(batch.column(0).is_empty() && batch.column(1).is_empty(), "engine={name}");
        }
    }

    #[test]
    fn batch_matches_oracle_on_both_engines() {
        let seeds = SeedSet::new(9);
        let mut cat = Catalog::new();
        cat.add_function(Arc::new(FnBlackBox::new("F", 1, |p: &[f64], s| {
            p[0] * 0.5 + (s.0 % 31) as f64
        })));
        let cat = Arc::new(cat);
        let plan = Plan::OneRow
            .project(vec![
                ("det", Expr::param("w")),
                ("sto", Expr::call("F", vec![Expr::param("w")])),
            ])
            .bind(&cat, &["w".to_string()])
            .unwrap();
        let engines: Vec<Arc<dyn Engine>> =
            vec![Arc::new(DirectEngine::new()), Arc::new(DbmsEngine::new())];
        for engine in engines {
            let sim = PlanSim::new(engine, plan.clone(), cat.clone(), space(), seeds);
            let name = sim.engine_name().to_string();
            let oracle = sim.eval_worlds(&[4.0], 2, 11).unwrap();
            let batch = sim.eval_batch(&[4.0], 2, 11).unwrap();
            assert_eq!(batch.columns(), &oracle[..], "engine={name}");
        }
    }

    #[test]
    fn both_engines_agree_through_sim() {
        let seeds = SeedSet::new(8);
        let mut cat = Catalog::new();
        cat.add_function(Arc::new(FnBlackBox::new("F", 1, |p: &[f64], s| {
            p[0] + (s.0 % 100) as f64
        })));
        let cat = Arc::new(cat);
        let plan = Plan::OneRow
            .project(vec![("out", Expr::call("F", vec![Expr::param("w")]))])
            .bind(&cat, &["w".to_string()])
            .unwrap();
        let a =
            PlanSim::new(Arc::new(DirectEngine::new()), plan.clone(), cat.clone(), space(), seeds);
        let b = PlanSim::new(Arc::new(DbmsEngine::new()), plan, cat, space(), seeds);
        assert_eq!(
            a.eval_worlds(&[2.0], 0, 8).unwrap(),
            b.eval_worlds(&[2.0], 0, 8).unwrap(),
            "engines must sample identical possible worlds"
        );
    }
}
