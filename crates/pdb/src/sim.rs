//! The `Simulation` abstraction: "the entire Monte Carlo simulation" as a
//! single stochastic function.
//!
//! The paper's key move (§3): "Taken to one extreme, the entire Monte Carlo
//! simulation shown inside the dashed box in Figure 3 can be treated as the
//! stochastic function F." Jigsaw's optimizer fingerprints *that* function —
//! the composition of parameter binding, black-box invocation, and query
//! evaluation — not individual models.
//!
//! [`Simulation::eval_worlds`] evaluates the query at a parameter point for
//! a window of world indices. World `k` always runs under seed `σ_k`, so the
//! first `m` worlds double as the fingerprint and the remaining `n − m`
//! complete the estimate with no wasted work.

use std::sync::Arc;

use jigsaw_blackbox::{BlackBox, ParamSpace};
use jigsaw_prng::SeedSet;

use crate::bundle::BundleCell;
use crate::catalog::Catalog;
use crate::error::{PdbError, Result};
use crate::exec::{Engine, ExecContext};
use crate::plan::BoundPlan;

/// A parameterized Monte Carlo simulation with named scalar outputs.
///
/// Implementations provide the *sequential* window evaluation only; callers
/// that hold a thread budget go through [`crate::worlds::eval_worlds`],
/// which splits the window across scoped threads and stitches the results
/// back bit-identically (worlds are seed-addressed, so sub-windows compose).
pub trait Simulation: Send + Sync {
    /// Names of the output columns.
    fn columns(&self) -> &[String];

    /// The parameter space the simulation is defined over.
    fn space(&self) -> &ParamSpace;

    /// Evaluate output columns for worlds `start .. start+count` at `point`.
    ///
    /// Returns `out[col][world_in_window]`.
    fn eval_worlds(&self, point: &[f64], start: usize, count: usize) -> Result<Vec<Vec<f64>>>;
}

/// A single black-box function exposed as a one-column simulation — the
/// shape most of the paper's experiments use.
pub struct BlackBoxSim {
    bb: Arc<dyn BlackBox>,
    seeds: SeedSet,
    space: ParamSpace,
    columns: [String; 1],
}

impl BlackBoxSim {
    /// Wrap a black box with its parameter space and the session seed set.
    pub fn new(bb: Arc<dyn BlackBox>, space: ParamSpace, seeds: SeedSet) -> Self {
        let name = bb.name().to_string();
        BlackBoxSim { bb, seeds, space, columns: [name] }
    }
}

impl Simulation for BlackBoxSim {
    fn columns(&self) -> &[String] {
        &self.columns
    }

    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn eval_worlds(&self, point: &[f64], start: usize, count: usize) -> Result<Vec<Vec<f64>>> {
        let mut col = Vec::with_capacity(count);
        for k in start..start + count {
            col.push(self.bb.eval(point, self.seeds.seed(k)));
        }
        Ok(vec![col])
    }
}

/// A bound query plan executed by a PDB engine, exposed as a simulation.
///
/// The plan must reduce to a **single logical row** (aggregate queries or
/// scalar `SELECT`s) — exactly the shape the paper's example scenarios have.
pub struct PlanSim {
    engine: Arc<dyn Engine>,
    plan: BoundPlan,
    catalog: Arc<Catalog>,
    seeds: SeedSet,
    space: ParamSpace,
    columns: Vec<String>,
}

impl PlanSim {
    /// Wrap a bound plan. `space` declares the `@parameters` in the same
    /// order the plan was bound with.
    pub fn new(
        engine: Arc<dyn Engine>,
        plan: BoundPlan,
        catalog: Arc<Catalog>,
        space: ParamSpace,
        seeds: SeedSet,
    ) -> Self {
        let columns = plan.schema.names().into_iter().map(String::from).collect();
        PlanSim { engine, plan, catalog, seeds, space, columns }
    }

    /// The engine used for execution.
    pub fn engine_name(&self) -> &str {
        self.engine.name()
    }
}

impl Simulation for PlanSim {
    fn columns(&self) -> &[String] {
        &self.columns
    }

    fn space(&self) -> &ParamSpace {
        &self.space
    }

    fn eval_worlds(&self, point: &[f64], start: usize, count: usize) -> Result<Vec<Vec<f64>>> {
        let ctx = ExecContext {
            seeds: self.seeds,
            params: point.to_vec(),
            world_start: start,
            n_worlds: count,
        };
        let mut table = self.engine.execute(&self.plan, &self.catalog, &ctx)?;
        if table.len() != 1 {
            return Err(PdbError::Unsupported(format!(
                "simulation queries must produce exactly one row, got {}",
                table.len()
            )));
        }
        let row = table.rows.pop().expect("length checked above");
        let mut out = Vec::with_capacity(self.columns.len());
        for cell in row.cells {
            out.push(match cell {
                BundleCell::Det(v) => {
                    let x = v.as_f64().ok_or_else(|| {
                        PdbError::TypeError("non-numeric simulation output".into())
                    })?;
                    vec![x; count]
                }
                BundleCell::Stoch(xs) => xs,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{DbmsEngine, DirectEngine};
    use crate::expr::Expr;
    use crate::plan::Plan;
    use jigsaw_blackbox::{FnBlackBox, ParamDecl};

    fn space() -> ParamSpace {
        ParamSpace::new(vec![ParamDecl::range("w", 0, 9, 1)])
    }

    #[test]
    fn blackbox_sim_matches_direct_eval() {
        let seeds = SeedSet::new(4);
        let bb: Arc<dyn BlackBox> =
            Arc::new(FnBlackBox::new("F", 1, |p: &[f64], s| p[0] * 10.0 + (s.0 % 7) as f64));
        let sim = BlackBoxSim::new(bb.clone(), space(), seeds);
        let out = sim.eval_worlds(&[3.0], 2, 4).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len(), 4);
        for (i, k) in (2..6).enumerate() {
            assert_eq!(out[0][i], bb.eval(&[3.0], seeds.seed(k)));
        }
    }

    #[test]
    fn plan_sim_single_row_contract() {
        let seeds = SeedSet::new(4);
        let mut cat = Catalog::new();
        cat.add_function(Arc::new(FnBlackBox::new("F", 1, |p: &[f64], _| p[0])));
        let plan = Plan::OneRow
            .project(vec![("out", Expr::call("F", vec![Expr::param("w")]))])
            .bind(&cat, &["w".to_string()])
            .unwrap();
        let sim = PlanSim::new(Arc::new(DirectEngine::new()), plan, Arc::new(cat), space(), seeds);
        let out = sim.eval_worlds(&[5.0], 0, 3).unwrap();
        assert_eq!(out, vec![vec![5.0, 5.0, 5.0]]);
        assert_eq!(sim.columns(), &["out".to_string()]);
    }

    #[test]
    fn both_engines_agree_through_sim() {
        let seeds = SeedSet::new(8);
        let mut cat = Catalog::new();
        cat.add_function(Arc::new(FnBlackBox::new("F", 1, |p: &[f64], s| {
            p[0] + (s.0 % 100) as f64
        })));
        let cat = Arc::new(cat);
        let plan = Plan::OneRow
            .project(vec![("out", Expr::call("F", vec![Expr::param("w")]))])
            .bind(&cat, &["w".to_string()])
            .unwrap();
        let a =
            PlanSim::new(Arc::new(DirectEngine::new()), plan.clone(), cat.clone(), space(), seeds);
        let b = PlanSim::new(Arc::new(DbmsEngine::new()), plan, cat, space(), seeds);
        assert_eq!(
            a.eval_worlds(&[2.0], 0, 8).unwrap(),
            b.eval_worlds(&[2.0], 0, 8).unwrap(),
            "engines must sample identical possible worlds"
        );
    }
}
