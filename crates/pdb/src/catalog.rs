//! The database catalog: tables and registered black-box functions.

use std::collections::HashMap;
use std::sync::Arc;

use jigsaw_blackbox::BlackBox;

use crate::error::{PdbError, Result};
use crate::table::Table;

/// Named tables plus named VG-functions — everything a plan can reference.
#[derive(Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, Arc<Table>>,
    functions: HashMap<String, Arc<dyn BlackBox>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a table.
    pub fn add_table(&mut self, name: impl Into<String>, table: Table) {
        self.tables.insert(name.into(), Arc::new(table));
    }

    /// Register (or replace) a black-box function.
    pub fn add_function(&mut self, function: Arc<dyn BlackBox>) {
        self.functions.insert(function.name().to_string(), function);
    }

    /// Register a function under an explicit name (aliasing).
    pub fn add_function_as(&mut self, name: impl Into<String>, function: Arc<dyn BlackBox>) {
        self.functions.insert(name.into(), function);
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Result<&Arc<Table>> {
        self.tables.get(name).ok_or_else(|| PdbError::UnknownTable(name.to_string()))
    }

    /// Look up a function.
    pub fn function(&self, name: &str) -> Result<&Arc<dyn BlackBox>> {
        self.functions.get(name).ok_or_else(|| PdbError::UnknownFunction(name.to_string()))
    }

    /// Registered table names (unordered).
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Registered function names (unordered).
    pub fn function_names(&self) -> Vec<&str> {
        self.functions.keys().map(String::as_str).collect()
    }
}

impl std::fmt::Debug for Catalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Catalog")
            .field("tables", &self.tables.keys().collect::<Vec<_>>())
            .field("functions", &self.functions.keys().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;
    use crate::table::TableBuilder;
    use jigsaw_blackbox::FnBlackBox;

    #[test]
    fn table_round_trip() {
        let mut c = Catalog::new();
        c.add_table("users", TableBuilder::new().column("id", ColumnType::Int).build());
        assert!(c.table("users").is_ok());
        assert_eq!(c.table("nope").unwrap_err(), PdbError::UnknownTable("nope".into()));
    }

    #[test]
    fn function_round_trip_and_alias() {
        let mut c = Catalog::new();
        c.add_function(Arc::new(FnBlackBox::new("D", 1, |p: &[f64], _| p[0])));
        c.add_function_as("Alias", Arc::new(FnBlackBox::new("D2", 1, |p: &[f64], _| p[0])));
        assert!(c.function("D").is_ok());
        assert!(c.function("Alias").is_ok());
        assert!(c.function("D2").is_err(), "registered under alias only");
    }

    #[test]
    fn debug_lists_names() {
        let mut c = Catalog::new();
        c.add_table("t", TableBuilder::new().column("x", ColumnType::Int).build());
        let dbg = format!("{c:?}");
        assert!(dbg.contains("\"t\""));
    }
}
