//! # jigsaw-pdb — an MCDB-style Monte Carlo probabilistic database
//!
//! Jigsaw "is built around a simple PDB, which performs Monte Carlo
//! simulation over entire databases" (paper §1), loosely modeled after MCDB
//! (Jampani et al., SIGMOD'08). This crate is that substrate:
//!
//! * a relational layer — [`value::Value`], [`schema::Schema`],
//!   [`table::Table`], logical [`plan::Plan`]s and [`expr::Expr`]essions
//!   with black-box (VG-function) calls;
//! * **tuple bundles** ([`bundle`]) — each logical tuple carries one value
//!   per sampled possible world plus a per-world presence mask;
//! * two execution engines ([`exec::DbmsEngine`], [`exec::DirectEngine`])
//!   that replicate the paper's two prototypes and provably sample
//!   identical possible worlds;
//! * the [`estimator::OutputMetrics`] aggregation of per-world results into
//!   expectations / standard deviations / probabilities / histograms;
//! * the [`sim::Simulation`] abstraction — "the entire Monte Carlo
//!   simulation treated as the stochastic function F" — which is the unit
//!   Jigsaw's fingerprinting operates on;
//! * parallel world evaluation ([`worlds`]) producing columnar
//!   [`batch::WorldBatch`]es, with a per-world oracle path kept
//!   bit-identical for verification.

#![warn(missing_docs)]

pub mod batch;
pub mod bundle;
pub mod catalog;
pub mod error;
pub mod estimator;
pub mod exec;
pub mod expr;
pub mod plan;
pub mod schema;
pub mod sim;
pub mod table;
pub mod value;
pub mod worlds;

pub use batch::WorldBatch;
pub use bundle::{BundleCell, BundleRow, BundleTable, Presence};
pub use catalog::Catalog;
pub use error::{PdbError, Result};
pub use estimator::{Metric, OutputMetrics};
pub use exec::{DbmsEngine, DirectEngine, Engine, ExecContext};
pub use expr::{BinOp, CmpOp, Expr};
pub use plan::{AggFunc, AggSpec, BoundPlan, Plan};
pub use schema::{Column, ColumnType, Schema};
pub use sim::{BlackBoxSim, PlanSim, Simulation};
pub use table::{Table, TableBuilder};
pub use value::Value;
pub use worlds::{
    eval_batch, eval_batch_on, eval_path, eval_window, eval_window_on, eval_worlds,
    force_eval_path, resolve_thread_budget, EvalPath,
};
