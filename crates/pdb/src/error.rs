//! Engine error type.

use std::fmt;

/// Errors surfaced by planning and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum PdbError {
    /// A referenced table does not exist in the catalog.
    UnknownTable(String),
    /// A referenced column does not exist in the input schema.
    UnknownColumn(String),
    /// A referenced black-box function is not registered.
    UnknownFunction(String),
    /// A referenced query parameter was not declared.
    UnknownParam(String),
    /// A black-box call has the wrong number of arguments.
    ArityMismatch {
        /// Function name.
        function: String,
        /// Declared arity.
        expected: usize,
        /// Provided argument count.
        got: usize,
    },
    /// The operation requires a deterministic input (e.g. join keys, sort
    /// keys, group-by keys) but got a stochastic expression.
    StochasticNotAllowed(&'static str),
    /// The plan shape is unsupported by the chosen engine.
    Unsupported(String),
    /// A type error during evaluation.
    TypeError(String),
    /// Loading or saving a basis snapshot failed (the stringified
    /// `jigsaw_core::basis::SnapshotError`; typed handling lives upstream).
    Snapshot(String),
    /// A session-server wire-protocol exchange failed (the stringified
    /// `jigsaw_server::protocol::ProtocolError`; typed handling lives
    /// upstream). Carried here so protocol failures flow through the same
    /// `Result` plumbing as every other engine error.
    Protocol(String),
    /// A simulation panicked during world evaluation. The panic is caught at
    /// the evaluation boundary (caller thread or worker) and surfaced as a
    /// regular error so long-lived hosts — the session server above all —
    /// answer `ERR` and keep serving instead of aborting the process.
    WorkerPanic(String),
    /// An `OPTIMIZE` metric evaluated to NaN. NaN is poison for selector
    /// comparisons (`f64::max` silently drops it, orderings silently fail),
    /// so the selector refuses to rank candidates on it.
    NanMetric(String),
    /// A client-supplied index (parameter point, output column, …) is
    /// outside the valid range. Long-lived hosts answer `ERR` and keep
    /// serving — the same contract as `WorkerPanic` — instead of tripping
    /// an `assert!` and taking the whole server down.
    OutOfRange(String),
}

impl fmt::Display for PdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdbError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            PdbError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            PdbError::UnknownFunction(x) => write!(f, "unknown black-box function `{x}`"),
            PdbError::UnknownParam(p) => write!(f, "unknown parameter `@{p}`"),
            PdbError::ArityMismatch { function, expected, got } => {
                write!(f, "`{function}` expects {expected} argument(s), got {got}")
            }
            PdbError::StochasticNotAllowed(what) => {
                write!(f, "{what} must be deterministic")
            }
            PdbError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            PdbError::TypeError(msg) => write!(f, "type error: {msg}"),
            PdbError::Snapshot(msg) => write!(f, "basis snapshot: {msg}"),
            PdbError::Protocol(msg) => write!(f, "protocol: {msg}"),
            PdbError::WorkerPanic(msg) => {
                write!(f, "simulation panicked during world evaluation: {msg}")
            }
            PdbError::NanMetric(msg) => write!(f, "metric is NaN: {msg}"),
            PdbError::OutOfRange(msg) => write!(f, "out of range: {msg}"),
        }
    }
}

impl std::error::Error for PdbError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, PdbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(PdbError::UnknownTable("t".into()).to_string(), "unknown table `t`");
        assert_eq!(
            PdbError::ArityMismatch { function: "F".into(), expected: 2, got: 3 }.to_string(),
            "`F` expects 2 argument(s), got 3"
        );
        assert_eq!(PdbError::UnknownParam("p".into()).to_string(), "unknown parameter `@p`");
        assert_eq!(
            PdbError::Protocol("frame truncated".into()).to_string(),
            "protocol: frame truncated"
        );
        assert_eq!(
            PdbError::WorkerPanic("boom".into()).to_string(),
            "simulation panicked during world evaluation: boom"
        );
        assert_eq!(
            PdbError::NanMetric("constraint on `x`".into()).to_string(),
            "metric is NaN: constraint on `x`"
        );
        assert_eq!(
            PdbError::OutOfRange("point 99 of 10".into()).to_string(),
            "out of range: point 99 of 10"
        );
    }
}
