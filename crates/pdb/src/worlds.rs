//! Parallel possible-world evaluation — the single entry point every layer
//! above uses to spend a thread budget on Monte Carlo work.
//!
//! Monte Carlo worlds are embarrassingly parallel: world `k`'s randomness is
//! fully determined by `σ_k`, so partitioning the world range across threads
//! changes nothing about the result (a property the tests assert). This
//! mirrors MCDB's parallel world evaluation (paper §2.1: "queries are run on
//! each sampled world in parallel").
//!
//! [`eval_worlds`] unifies the two historical evaluation paths — the
//! sequential [`Simulation::eval_worlds`] trait method and the scoped-thread
//! splitter — behind one function that accepts a thread budget. Both
//! [`crate::BlackBoxSim`] and [`crate::PlanSim`] go through it unchanged:
//! each sub-window executes exactly as the sequential path would over that
//! window (same seeds per world), and windows are stitched back in
//! enumeration order, so the output is **bit-identical for any thread
//! count**.

use crate::error::Result;
use crate::sim::Simulation;

/// Resolve a thread-budget knob: `0` means "all available cores", any other
/// value is taken literally. Every budgeted entry point (this module,
/// `jigsaw-core`'s sweep executor and Markov stepping) resolves the
/// sentinel through here, so `0` behaves the same everywhere.
pub fn resolve_thread_budget(threads: usize) -> usize {
    match threads {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        t => t,
    }
}

/// Evaluate `sim` at `point` over worlds `[start, start+count)` using up to
/// `threads` OS threads (`0` = all available cores). Returns
/// `out[col][world_in_window]`, identical to the sequential
/// [`Simulation::eval_worlds`] for every thread budget.
pub fn eval_worlds(
    sim: &dyn Simulation,
    point: &[f64],
    start: usize,
    count: usize,
    threads: usize,
) -> Result<Vec<Vec<f64>>> {
    let threads = resolve_thread_budget(threads).min(count.max(1));
    if threads <= 1 || count == 0 {
        return sim.eval_worlds(point, start, count);
    }
    let chunk = count.div_ceil(threads);
    let results: Vec<Result<Vec<Vec<f64>>>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let lo = start + t * chunk;
            let hi = (start + count).min(lo + chunk);
            if lo >= hi {
                break;
            }
            handles.push(scope.spawn(move || sim.eval_worlds(point, lo, hi - lo)));
        }
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let n_cols = sim.columns().len();
    let mut out = vec![Vec::with_capacity(count); n_cols];
    for r in results {
        let part = r?;
        for (c, col) in part.into_iter().enumerate() {
            out[c].extend(col);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::exec::DirectEngine;
    use crate::expr::Expr;
    use crate::plan::Plan;
    use crate::sim::{BlackBoxSim, PlanSim};
    use jigsaw_blackbox::{FnBlackBox, ParamDecl, ParamSpace};
    use jigsaw_prng::SeedSet;
    use std::sync::Arc;

    fn sim() -> BlackBoxSim {
        BlackBoxSim::new(
            Arc::new(FnBlackBox::new("F", 1, |p: &[f64], s| p[0] + (s.0 as f64 / u64::MAX as f64))),
            ParamSpace::new(vec![ParamDecl::range("x", 0, 3, 1)]),
            SeedSet::new(21),
        )
    }

    fn plan_sim() -> PlanSim {
        let seeds = SeedSet::new(4);
        let mut cat = Catalog::new();
        cat.add_function(Arc::new(FnBlackBox::new("F", 1, |p: &[f64], s| {
            p[0] * 3.0 + (s.0 % 101) as f64
        })));
        let cat = Arc::new(cat);
        let plan = Plan::OneRow
            .project(vec![("out", Expr::call("F", vec![Expr::param("w")]))])
            .bind(&cat, &["w".to_string()])
            .unwrap();
        let space = ParamSpace::new(vec![ParamDecl::range("w", 0, 9, 1)]);
        PlanSim::new(Arc::new(DirectEngine::new()), plan, cat, space, seeds)
    }

    #[test]
    fn parallel_equals_sequential() {
        let s = sim();
        let seq = s.eval_worlds(&[1.0], 0, 103).unwrap();
        for threads in [2, 3, 8] {
            let par = eval_worlds(&s, &[1.0], 0, 103, threads).unwrap();
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn plan_sim_parallel_equals_sequential() {
        // The DBMS path splits into per-window engine executions; world
        // seeds are addressed absolutely, so the split is invisible.
        let s = plan_sim();
        let seq = s.eval_worlds(&[2.0], 0, 37).unwrap();
        for threads in [2, 5, 16] {
            let par = eval_worlds(&s, &[2.0], 0, 37, threads).unwrap();
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn offset_windows_compose() {
        let s = sim();
        let all = eval_worlds(&s, &[2.0], 0, 50, 4).unwrap();
        let head = eval_worlds(&s, &[2.0], 0, 20, 4).unwrap();
        let tail = eval_worlds(&s, &[2.0], 20, 30, 4).unwrap();
        let glued: Vec<f64> = head[0].iter().chain(tail[0].iter()).copied().collect();
        assert_eq!(all[0], glued);
    }

    #[test]
    fn zero_count_is_empty() {
        let s = sim();
        let out = eval_worlds(&s, &[0.0], 0, 0, 4).unwrap();
        assert!(out[0].is_empty());
    }

    #[test]
    fn count_below_thread_budget() {
        // count < threads: the budget clamps to the window, one world per
        // thread, and the stitched output still equals the serial path.
        let s = sim();
        let seq = s.eval_worlds(&[0.0], 5, 3).unwrap();
        let out = eval_worlds(&s, &[0.0], 5, 3, 16).unwrap();
        assert_eq!(out, seq);
        assert_eq!(out[0].len(), 3);
    }

    #[test]
    fn zero_thread_budget_means_sequential() {
        let s = sim();
        let seq = s.eval_worlds(&[3.0], 0, 17).unwrap();
        assert_eq!(eval_worlds(&s, &[3.0], 0, 17, 0).unwrap(), seq);
    }
}
