//! Parallel possible-world evaluation — the single entry point every layer
//! above uses to spend a thread budget on Monte Carlo work.
//!
//! Monte Carlo worlds are embarrassingly parallel: world `k`'s randomness is
//! fully determined by `σ_k`, so partitioning the world range across threads
//! changes nothing about the result (a property the tests assert). This
//! mirrors MCDB's parallel world evaluation (paper §2.1: "queries are run on
//! each sampled world in parallel").
//!
//! Two entry points share the splitting/stitching machinery:
//!
//! * [`eval_batch`] — the production path. Evaluates a window into a
//!   columnar [`WorldBatch`] on the configured [`EvalPath`]: `Columnar`
//!   (default) drives [`Simulation::eval_batch`], whose engines fill
//!   contiguous `f64` columns with slice kernels; `Oracle` drives the
//!   historical per-world [`Simulation::eval_worlds`] path. Both produce
//!   bit-identical bytes — the columnar kernels perform the same
//!   floating-point operations in the same order — which CI pins with a
//!   forced-path twin-run diff and `tests/columnar_oracle.rs` property
//!   tests.
//! * [`eval_worlds`] — the per-world oracle, kept as the reference
//!   implementation and for callers that want the `out[col][world]` shape.
//!
//! Each sub-window executes exactly as the sequential path would over that
//! window (same seeds per world), and windows are stitched back in
//! enumeration order, so the output is **bit-identical for any thread
//! count**. Panics inside a simulation are caught at this boundary — on the
//! caller thread and on workers alike — and surfaced as
//! [`PdbError::WorkerPanic`], so a buggy black box cannot abort a long-lived
//! host process (the session server answers `ERR` and keeps serving).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

use crate::batch::WorldBatch;
use crate::error::{PdbError, Result};
use crate::sim::Simulation;

/// Which world-evaluation implementation [`eval_batch`] drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalPath {
    /// Struct-of-arrays kernels over contiguous columns (the default).
    Columnar,
    /// The historical per-world reference path.
    Oracle,
}

static EVAL_PATH: OnceLock<EvalPath> = OnceLock::new();

/// The process-wide evaluation path. Resolved once, from the
/// `JIGSAW_EVAL_PATH` environment variable (`oracle` selects the per-world
/// reference path; anything else means columnar) unless
/// [`force_eval_path`] ran first.
pub fn eval_path() -> EvalPath {
    *EVAL_PATH.get_or_init(|| match std::env::var("JIGSAW_EVAL_PATH") {
        Ok(v) if v.eq_ignore_ascii_case("oracle") => EvalPath::Oracle,
        _ => EvalPath::Columnar,
    })
}

/// Pin the process-wide evaluation path (first caller wins; the repro
/// binary's `--eval-path` flag goes through here before any evaluation).
/// Returns the path actually in effect.
pub fn force_eval_path(path: EvalPath) -> EvalPath {
    *EVAL_PATH.get_or_init(|| path)
}

/// Resolve a thread-budget knob: `0` means "all available cores", any other
/// value is taken literally. Every budgeted entry point (this module,
/// `jigsaw-core`'s sweep executor and Markov stepping) resolves the
/// sentinel through here, so `0` behaves the same everywhere.
pub fn resolve_thread_budget(threads: usize) -> usize {
    match threads {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        t => t,
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

fn catch_panics<T>(f: impl FnOnce() -> Result<T>) -> Result<T> {
    catch_unwind(AssertUnwindSafe(f))
        .unwrap_or_else(|p| Err(PdbError::WorkerPanic(panic_message(p))))
}

/// Evaluate one window **sequentially** on an explicit path, converting any
/// simulation panic into [`PdbError::WorkerPanic`]. This is the per-task
/// unit the threaded entry points (and `jigsaw-core`'s worker pools)
/// schedule: because the panic is caught inside the task, no unwinding ever
/// crosses a pool or scope boundary.
pub fn eval_window_on(
    sim: &dyn Simulation,
    point: &[f64],
    start: usize,
    count: usize,
    path: EvalPath,
) -> Result<WorldBatch> {
    catch_panics(|| match path {
        EvalPath::Columnar => sim.eval_batch(point, start, count),
        EvalPath::Oracle => {
            Ok(WorldBatch::from_columns(sim.eval_worlds(point, start, count)?, count))
        }
    })
}

/// [`eval_window_on`] on the process-wide [`eval_path`] — the per-task unit
/// `jigsaw-core`'s worker pools schedule.
pub fn eval_window(
    sim: &dyn Simulation,
    point: &[f64],
    start: usize,
    count: usize,
) -> Result<WorldBatch> {
    eval_window_on(sim, point, start, count, eval_path())
}

/// [`eval_batch`] with an explicit path — the handle benches, experiments,
/// and property tests use to compare both implementations inside one
/// process without touching the global switch.
pub fn eval_batch_on(
    sim: &dyn Simulation,
    point: &[f64],
    start: usize,
    count: usize,
    threads: usize,
    path: EvalPath,
) -> Result<WorldBatch> {
    let threads = resolve_thread_budget(threads).min(count.max(1));
    if threads <= 1 || count == 0 {
        return eval_window_on(sim, point, start, count, path);
    }
    let chunk = count.div_ceil(threads);
    let results: Vec<Result<WorldBatch>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let lo = start + t * chunk;
            let hi = (start + count).min(lo + chunk);
            if lo >= hi {
                break;
            }
            handles.push(scope.spawn(move || eval_window_on(sim, point, lo, hi - lo, path)));
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                // eval_window_on catches panics inside the task; this arm
                // only fires for panics outside it (e.g. allocation
                // failures in the spawn glue) — still a typed error, never
                // an abort.
                Err(p) => Err(PdbError::WorkerPanic(panic_message(p))),
            })
            .collect()
    });
    let mut out = WorldBatch::empty(sim.columns().len());
    for r in results {
        out.extend(r?);
    }
    Ok(out)
}

/// Evaluate `sim` at `point` over worlds `[start, start+count)` into a
/// columnar [`WorldBatch`], using up to `threads` OS threads (`0` = all
/// available cores) and the process-wide [`eval_path`]. Bit-identical to
/// the sequential path for every thread budget.
pub fn eval_batch(
    sim: &dyn Simulation,
    point: &[f64],
    start: usize,
    count: usize,
    threads: usize,
) -> Result<WorldBatch> {
    eval_batch_on(sim, point, start, count, threads, eval_path())
}

/// Evaluate `sim` at `point` over worlds `[start, start+count)` using up to
/// `threads` OS threads (`0` = all available cores) on the **per-world
/// oracle path**. Returns `out[col][world_in_window]`, identical to the
/// sequential [`Simulation::eval_worlds`] for every thread budget.
pub fn eval_worlds(
    sim: &dyn Simulation,
    point: &[f64],
    start: usize,
    count: usize,
    threads: usize,
) -> Result<Vec<Vec<f64>>> {
    eval_batch_on(sim, point, start, count, threads, EvalPath::Oracle).map(WorldBatch::into_columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::exec::DirectEngine;
    use crate::expr::Expr;
    use crate::plan::Plan;
    use crate::sim::{BlackBoxSim, PlanSim};
    use jigsaw_blackbox::{FnBlackBox, ParamDecl, ParamSpace};
    use jigsaw_prng::SeedSet;
    use std::sync::Arc;

    fn sim() -> BlackBoxSim {
        BlackBoxSim::new(
            Arc::new(FnBlackBox::new("F", 1, |p: &[f64], s| p[0] + (s.0 as f64 / u64::MAX as f64))),
            ParamSpace::new(vec![ParamDecl::range("x", 0, 3, 1)]),
            SeedSet::new(21),
        )
    }

    fn plan_sim() -> PlanSim {
        let seeds = SeedSet::new(4);
        let mut cat = Catalog::new();
        cat.add_function(Arc::new(FnBlackBox::new("F", 1, |p: &[f64], s| {
            p[0] * 3.0 + (s.0 % 101) as f64
        })));
        let cat = Arc::new(cat);
        let plan = Plan::OneRow
            .project(vec![("out", Expr::call("F", vec![Expr::param("w")]))])
            .bind(&cat, &["w".to_string()])
            .unwrap();
        let space = ParamSpace::new(vec![ParamDecl::range("w", 0, 9, 1)]);
        PlanSim::new(Arc::new(DirectEngine::new()), plan, cat, space, seeds)
    }

    #[test]
    fn parallel_equals_sequential() {
        let s = sim();
        let seq = s.eval_worlds(&[1.0], 0, 103).unwrap();
        for threads in [2, 3, 8] {
            let par = eval_worlds(&s, &[1.0], 0, 103, threads).unwrap();
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn plan_sim_parallel_equals_sequential() {
        // The DBMS path splits into per-window engine executions; world
        // seeds are addressed absolutely, so the split is invisible.
        let s = plan_sim();
        let seq = s.eval_worlds(&[2.0], 0, 37).unwrap();
        for threads in [2, 5, 16] {
            let par = eval_worlds(&s, &[2.0], 0, 37, threads).unwrap();
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn batch_paths_agree_for_every_budget() {
        for s in [&sim() as &dyn Simulation, &plan_sim() as &dyn Simulation] {
            let oracle = eval_worlds(s, &[1.0], 3, 41, 1).unwrap();
            for threads in [1, 2, 7] {
                for path in [EvalPath::Columnar, EvalPath::Oracle] {
                    let batch = eval_batch_on(s, &[1.0], 3, 41, threads, path).unwrap();
                    assert_eq!(batch.n_worlds(), 41);
                    assert_eq!(batch.columns(), &oracle[..], "threads={threads} path={path:?}");
                }
            }
        }
    }

    #[test]
    fn offset_windows_compose() {
        let s = sim();
        let all = eval_worlds(&s, &[2.0], 0, 50, 4).unwrap();
        let head = eval_worlds(&s, &[2.0], 0, 20, 4).unwrap();
        let tail = eval_worlds(&s, &[2.0], 20, 30, 4).unwrap();
        let glued: Vec<f64> = head[0].iter().chain(tail[0].iter()).copied().collect();
        assert_eq!(all[0], glued);
    }

    #[test]
    fn zero_count_is_empty() {
        let s = sim();
        let out = eval_worlds(&s, &[0.0], 0, 0, 4).unwrap();
        assert!(out[0].is_empty());
        let batch = eval_batch_on(&s, &[0.0], 0, 0, 4, EvalPath::Columnar).unwrap();
        assert_eq!(batch.n_worlds(), 0);
        assert!(batch.column(0).is_empty());
    }

    #[test]
    fn count_below_thread_budget() {
        // count < threads: the budget clamps to the window, one world per
        // thread, and the stitched output still equals the serial path.
        let s = sim();
        let seq = s.eval_worlds(&[0.0], 5, 3).unwrap();
        let out = eval_worlds(&s, &[0.0], 5, 3, 16).unwrap();
        assert_eq!(out, seq);
        assert_eq!(out[0].len(), 3);
    }

    #[test]
    fn zero_thread_budget_means_sequential() {
        let s = sim();
        let seq = s.eval_worlds(&[3.0], 0, 17).unwrap();
        assert_eq!(eval_worlds(&s, &[3.0], 0, 17, 0).unwrap(), seq);
    }

    fn panicking_sim() -> BlackBoxSim {
        BlackBoxSim::new(
            Arc::new(FnBlackBox::new("Boom", 1, |_: &[f64], _| -> f64 {
                panic!("deliberate test panic")
            })),
            ParamSpace::new(vec![ParamDecl::range("x", 0, 3, 1)]),
            SeedSet::new(21),
        )
    }

    #[test]
    fn worker_panic_becomes_typed_error() {
        // A panicking simulation must surface as PdbError::WorkerPanic on
        // the sequential path, the scoped-thread path, and the batched
        // entry — never abort the process.
        let s = panicking_sim();
        for threads in [1, 4] {
            let err = eval_worlds(&s, &[0.0], 0, 8, threads).unwrap_err();
            assert!(
                matches!(&err, PdbError::WorkerPanic(m) if m.contains("deliberate test panic")),
                "threads={threads}: {err}"
            );
            let err = eval_batch_on(&s, &[0.0], 0, 8, threads, EvalPath::Columnar).unwrap_err();
            assert!(matches!(err, PdbError::WorkerPanic(_)), "threads={threads}");
        }
    }
}
