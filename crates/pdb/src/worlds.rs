//! Parallel possible-world evaluation.
//!
//! Monte Carlo worlds are embarrassingly parallel: world `k`'s randomness is
//! fully determined by `σ_k`, so partitioning the world range across threads
//! changes nothing about the result (a property the tests assert). This
//! mirrors MCDB's parallel world evaluation (paper §2.1: "queries are run on
//! each sampled world in parallel").

use crate::error::Result;
use crate::sim::Simulation;

/// Evaluate `sim` at `point` over worlds `[start, start+count)` using up to
/// `threads` OS threads. Returns `out[col][world_in_window]`, identical to
/// the sequential [`Simulation::eval_worlds`].
pub fn eval_worlds_parallel(
    sim: &dyn Simulation,
    point: &[f64],
    start: usize,
    count: usize,
    threads: usize,
) -> Result<Vec<Vec<f64>>> {
    let threads = threads.max(1).min(count.max(1));
    if threads <= 1 || count == 0 {
        return sim.eval_worlds(point, start, count);
    }
    let chunk = count.div_ceil(threads);
    let results: Vec<Result<Vec<Vec<f64>>>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let lo = start + t * chunk;
            let hi = (start + count).min(lo + chunk);
            if lo >= hi {
                break;
            }
            handles.push(scope.spawn(move || sim.eval_worlds(point, lo, hi - lo)));
        }
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let n_cols = sim.columns().len();
    let mut out = vec![Vec::with_capacity(count); n_cols];
    for r in results {
        let part = r?;
        for (c, col) in part.into_iter().enumerate() {
            out[c].extend(col);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::BlackBoxSim;
    use jigsaw_blackbox::{FnBlackBox, ParamDecl, ParamSpace};
    use jigsaw_prng::SeedSet;
    use std::sync::Arc;

    fn sim() -> BlackBoxSim {
        BlackBoxSim::new(
            Arc::new(FnBlackBox::new("F", 1, |p: &[f64], s| p[0] + (s.0 as f64 / u64::MAX as f64))),
            ParamSpace::new(vec![ParamDecl::range("x", 0, 3, 1)]),
            SeedSet::new(21),
        )
    }

    #[test]
    fn parallel_equals_sequential() {
        let s = sim();
        let seq = s.eval_worlds(&[1.0], 0, 103).unwrap();
        for threads in [2, 3, 8] {
            let par = eval_worlds_parallel(&s, &[1.0], 0, 103, threads).unwrap();
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn offset_windows_compose() {
        let s = sim();
        let all = eval_worlds_parallel(&s, &[2.0], 0, 50, 4).unwrap();
        let head = eval_worlds_parallel(&s, &[2.0], 0, 20, 4).unwrap();
        let tail = eval_worlds_parallel(&s, &[2.0], 20, 30, 4).unwrap();
        let glued: Vec<f64> = head[0].iter().chain(tail[0].iter()).copied().collect();
        assert_eq!(all[0], glued);
    }

    #[test]
    fn zero_count_is_empty() {
        let s = sim();
        let out = eval_worlds_parallel(&s, &[0.0], 0, 0, 4).unwrap();
        assert!(out[0].is_empty());
    }

    #[test]
    fn more_threads_than_worlds() {
        let s = sim();
        let out = eval_worlds_parallel(&s, &[0.0], 0, 3, 16).unwrap();
        assert_eq!(out[0].len(), 3);
    }
}
