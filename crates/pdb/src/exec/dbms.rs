//! The tuple-bundle (MCDB-style) engine.

use std::collections::HashMap;

use jigsaw_blackbox::Workload;

use crate::bundle::{BundleCell, BundleRow, BundleTable, Presence};
use crate::catalog::Catalog;
use crate::error::{PdbError, Result};
use crate::expr::{BatchCtx, Expr};
use crate::plan::{AggFunc, AggSpec, BoundPlan, Plan};
use crate::schema::Schema;
use crate::value::Value;

use super::{Engine, ExecContext};

/// Columnar-across-worlds engine with a configurable per-invocation setup
/// cost (the "online" prototype analog; see [`super`] docs).
#[derive(Debug, Clone, Default)]
pub struct DbmsEngine {
    /// Fixed work burned once per `execute` call, emulating the original
    /// prototype's IPC + SQL parsing/validation overhead per query
    /// invocation.
    pub setup_cost: Workload,
}

impl DbmsEngine {
    /// Engine with no synthetic setup cost.
    pub fn new() -> Self {
        Self::default()
    }

    /// Engine with the given per-invocation setup cost.
    pub fn with_setup_cost(setup_cost: Workload) -> Self {
        DbmsEngine { setup_cost }
    }
}

impl Engine for DbmsEngine {
    fn name(&self) -> &str {
        "dbms"
    }

    fn execute(
        &self,
        plan: &BoundPlan,
        catalog: &Catalog,
        ctx: &ExecContext,
    ) -> Result<BundleTable> {
        self.setup_cost.burn();
        let mut out = run(&plan.plan, catalog, ctx)?;
        // Intermediate nodes carry nominal schemas (expressions are bound by
        // index); the plan's inferred schema is authoritative at the root.
        out.schema = plan.schema.clone();
        Ok(out)
    }
}

fn run(plan: &Plan, catalog: &Catalog, ctx: &ExecContext) -> Result<BundleTable> {
    match plan {
        Plan::Scan { table } => {
            let t = catalog.table(table)?;
            let mut out = BundleTable::new(t.schema().clone(), ctx.n_worlds);
            out.rows.reserve(t.len());
            for row in t.rows() {
                out.rows.push(BundleRow::det(row.clone()));
            }
            Ok(out)
        }
        Plan::OneRow => {
            let mut out = BundleTable::new(Schema::default(), ctx.n_worlds);
            out.rows.push(BundleRow { cells: vec![], presence: Presence::All });
            Ok(out)
        }
        Plan::Project { input, exprs } => {
            let inp = run(input, catalog, ctx)?;
            let bctx = batch_ctx(ctx, catalog);
            let mut out = BundleTable::new(project_schema(exprs, &inp.schema), ctx.n_worlds);
            out.rows.reserve(inp.rows.len());
            for row in inp.rows {
                let cells = exprs
                    .iter()
                    .map(|(_, e)| e.eval_bundle(&row, &bctx))
                    .collect::<Result<Vec<_>>>()?;
                // The input row is consumed: its presence mask moves instead
                // of being cloned per row.
                out.rows.push(BundleRow { cells, presence: row.presence });
            }
            Ok(out)
        }
        Plan::Filter { input, pred } => {
            let mut inp = run(input, catalog, ctx)?;
            let bctx = batch_ctx(ctx, catalog);
            let mut kept = Vec::with_capacity(inp.rows.len());
            for row in inp.rows.drain(..) {
                match pred.eval_bundle(&row, &bctx)? {
                    BundleCell::Det(v) => {
                        if v.as_bool() == Some(true) {
                            kept.push(row);
                        }
                    }
                    BundleCell::Stoch(xs) => {
                        let mask: Vec<bool> = xs.iter().map(|&x| x != 0.0 && !x.is_nan()).collect();
                        if mask.iter().any(|&b| b) {
                            let presence = row.presence.and(&Presence::Mask(mask), ctx.n_worlds);
                            kept.push(BundleRow { cells: row.cells, presence });
                        }
                    }
                }
            }
            inp.rows = kept;
            Ok(inp)
        }
        Plan::Join { left, right, pred } => {
            let l = run(left, catalog, ctx)?;
            let r = run(right, catalog, ctx)?;
            let schema = concat_schema(&l.schema, &r.schema);
            let bctx = batch_ctx(ctx, catalog);
            let mut out = BundleTable::new(schema, ctx.n_worlds);
            for lr in &l.rows {
                for rr in &r.rows {
                    let presence = lr.presence.and(&rr.presence, ctx.n_worlds);
                    if presence.count(ctx.n_worlds) == 0 {
                        continue;
                    }
                    let mut cells = lr.cells.clone();
                    cells.extend(rr.cells.iter().cloned());
                    let row = BundleRow { cells, presence };
                    match pred {
                        None => out.rows.push(row),
                        Some(p) => match p.eval_bundle(&row, &bctx)? {
                            BundleCell::Det(v) => {
                                if v.as_bool() == Some(true) {
                                    out.rows.push(row);
                                }
                            }
                            BundleCell::Stoch(xs) => {
                                let mask: Vec<bool> =
                                    xs.iter().map(|&x| x != 0.0 && !x.is_nan()).collect();
                                if mask.iter().any(|&b| b) {
                                    let presence =
                                        row.presence.and(&Presence::Mask(mask), ctx.n_worlds);
                                    out.rows.push(BundleRow { cells: row.cells, presence });
                                }
                            }
                        },
                    }
                }
            }
            Ok(out)
        }
        Plan::HashJoin { left, right, left_key, right_key } => {
            let l = run(left, catalog, ctx)?;
            let r = run(right, catalog, ctx)?;
            let schema = concat_schema(&l.schema, &r.schema);
            let bctx = batch_ctx(ctx, catalog);
            // Build on the right.
            let mut table: HashMap<crate::value::GroupKey, Vec<usize>> = HashMap::new();
            for (i, rr) in r.rows.iter().enumerate() {
                let key = det_value(right_key.eval_bundle(rr, &bctx)?)?;
                table.entry(key.group_key()).or_default().push(i);
            }
            let mut out = BundleTable::new(schema, ctx.n_worlds);
            for lr in &l.rows {
                let key = det_value(left_key.eval_bundle(lr, &bctx)?)?;
                if key.is_null() {
                    continue; // SQL: NULL keys never join
                }
                if let Some(matches) = table.get(&key.group_key()) {
                    for &ri in matches {
                        let rr = &r.rows[ri];
                        let presence = lr.presence.and(&rr.presence, ctx.n_worlds);
                        if presence.count(ctx.n_worlds) == 0 {
                            continue;
                        }
                        let mut cells = lr.cells.clone();
                        cells.extend(rr.cells.iter().cloned());
                        out.rows.push(BundleRow { cells, presence });
                    }
                }
            }
            Ok(out)
        }
        Plan::Aggregate { input, group_by, aggs } => {
            let inp = run(input, catalog, ctx)?;
            let bctx = batch_ctx(ctx, catalog);
            aggregate(&inp, group_by, aggs, &bctx, ctx)
        }
        Plan::Sort { input, keys } => {
            let mut inp = run(input, catalog, ctx)?;
            let bctx = batch_ctx(ctx, catalog);
            let mut keyed: Vec<(Vec<Value>, BundleRow)> = inp
                .rows
                .drain(..)
                .map(|row| {
                    let ks = keys
                        .iter()
                        .map(|(k, _)| det_value(k.eval_bundle(&row, &bctx)?))
                        .collect::<Result<Vec<_>>>()?;
                    Ok((ks, row))
                })
                .collect::<Result<Vec<_>>>()?;
            keyed.sort_by(|(a, _), (b, _)| {
                for (i, (_, desc)) in keys.iter().enumerate() {
                    let ord = a[i].compare(&b[i]).unwrap_or(std::cmp::Ordering::Equal);
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            inp.rows = keyed.into_iter().map(|(_, r)| r).collect();
            Ok(inp)
        }
        Plan::Limit { input, n } => {
            let mut inp = run(input, catalog, ctx)?;
            inp.rows.truncate(*n);
            Ok(inp)
        }
    }
}

fn batch_ctx<'a>(ctx: &'a ExecContext, catalog: &'a Catalog) -> BatchCtx<'a> {
    BatchCtx {
        world_start: ctx.world_start,
        n_worlds: ctx.n_worlds,
        seeds: &ctx.seeds,
        params: &ctx.params,
        functions: catalog,
        columnar: ctx.columnar,
    }
}

fn project_schema(exprs: &[(String, Expr)], _input: &Schema) -> Schema {
    // The bound plan carries the authoritative schema; for intermediate
    // nodes we rebuild a nominal one (names only matter for debugging).
    Schema::new(exprs.iter().map(|(n, _)| crate::schema::Column::stoch(n.clone())).collect())
}

fn concat_schema(l: &Schema, r: &Schema) -> Schema {
    Schema::new(l.columns().iter().chain(r.columns().iter()).cloned().collect())
}

fn det_value(cell: BundleCell) -> Result<Value> {
    match cell {
        BundleCell::Det(v) => Ok(v),
        BundleCell::Stoch(_) => Err(PdbError::StochasticNotAllowed("this key")),
    }
}

fn aggregate(
    inp: &BundleTable,
    group_by: &[(String, Expr)],
    aggs: &[AggSpec],
    bctx: &BatchCtx<'_>,
    ctx: &ExecContext,
) -> Result<BundleTable> {
    let n = ctx.n_worlds;
    // Group rows by deterministic keys.
    let mut groups: HashMap<Vec<crate::value::GroupKey>, (Vec<Value>, Vec<usize>)> = HashMap::new();
    let mut order: Vec<Vec<crate::value::GroupKey>> = Vec::new();
    for (ri, row) in inp.rows.iter().enumerate() {
        let mut keys = Vec::with_capacity(group_by.len());
        let mut vals = Vec::with_capacity(group_by.len());
        for (_, k) in group_by {
            let v = det_value(k.eval_bundle(row, bctx)?)?;
            keys.push(v.group_key());
            vals.push(v);
        }
        // Clone the key only when a group is first seen, not on every row.
        if let Some(g) = groups.get_mut(&keys) {
            g.1.push(ri);
        } else {
            order.push(keys.clone());
            groups.insert(keys, (vals, vec![ri]));
        }
    }
    // Global aggregate over empty input still yields one row.
    if groups.is_empty() && group_by.is_empty() {
        order.push(Vec::new());
        groups.insert(Vec::new(), (Vec::new(), Vec::new()));
    }

    let mut schema_cols = Vec::new();
    for (name, _) in group_by {
        schema_cols
            .push(crate::schema::Column::det(name.clone(), crate::schema::ColumnType::Float));
    }
    for a in aggs {
        schema_cols.push(crate::schema::Column::stoch(a.name.clone()));
    }
    let mut out = BundleTable::new(Schema::new(schema_cols), n);

    for key in order {
        let (vals, row_ids) = groups.remove(&key).expect("group vanished");
        let mut cells: Vec<BundleCell> = vals.into_iter().map(BundleCell::Det).collect();
        for a in aggs {
            cells.push(eval_agg(a, &row_ids, inp, bctx, n)?);
        }
        out.rows.push(BundleRow { cells, presence: Presence::All });
    }
    Ok(out)
}

/// An aggregate argument viewed once per row: a constant scalar or a
/// contiguous per-world column. Pre-classifying removes the per-world
/// `BundleCell` dispatch from the columnar accumulation loops.
enum AggView<'a> {
    Const(f64),
    Col(&'a [f64]),
}

fn agg_view<'a>(c: &'a BundleCell, spec: &AggSpec) -> Result<AggView<'a>> {
    match c {
        BundleCell::Det(v) => Ok(AggView::Const(v.as_f64().ok_or_else(|| {
            PdbError::TypeError(format!("aggregate `{}` over non-numeric", spec.name))
        })?)),
        BundleCell::Stoch(xs) => Ok(AggView::Col(xs)),
    }
}

/// Columnar accumulation of one row into the aggregate state. Performs the
/// same operations in the same order as the per-world oracle loop in
/// [`eval_agg`], so the finished accumulators are bit-identical; rows whose
/// presence mask covers every world run plain slice loops.
fn accumulate_columnar(
    spec: &AggSpec,
    row: &BundleRow,
    cell: Option<&BundleCell>,
    acc: &mut [f64],
    counts: &mut [u64],
    n: usize,
) -> Result<()> {
    match &row.presence {
        Presence::All => {
            for c in counts.iter_mut() {
                *c += 1;
            }
            if let Some(c) = cell {
                match (spec.func, agg_view(c, spec)?) {
                    (AggFunc::Count, _) => {}
                    (AggFunc::Sum | AggFunc::Avg, AggView::Col(xs)) => {
                        acc.iter_mut().zip(xs).for_each(|(a, &x)| *a += x)
                    }
                    (AggFunc::Sum | AggFunc::Avg, AggView::Const(x)) => {
                        acc.iter_mut().for_each(|a| *a += x)
                    }
                    (AggFunc::Min, AggView::Col(xs)) => {
                        acc.iter_mut().zip(xs).for_each(|(a, &x)| *a = a.min(x))
                    }
                    (AggFunc::Min, AggView::Const(x)) => acc.iter_mut().for_each(|a| *a = a.min(x)),
                    (AggFunc::Max, AggView::Col(xs)) => {
                        acc.iter_mut().zip(xs).for_each(|(a, &x)| *a = a.max(x))
                    }
                    (AggFunc::Max, AggView::Const(x)) => acc.iter_mut().for_each(|a| *a = a.max(x)),
                }
            }
        }
        Presence::Mask(m) => {
            let Some(c) = cell else {
                for (w, &p) in m.iter().enumerate().take(n) {
                    if p {
                        counts[w] += 1;
                    }
                }
                return Ok(());
            };
            // Match the oracle's error behavior: a non-numeric argument only
            // matters on worlds where the row exists.
            if !m.iter().take(n).any(|&b| b) {
                return Ok(());
            }
            match agg_view(c, spec)? {
                AggView::Const(x) => {
                    for (w, &p) in m.iter().enumerate().take(n) {
                        if !p {
                            continue;
                        }
                        counts[w] += 1;
                        match spec.func {
                            AggFunc::Sum | AggFunc::Avg => acc[w] += x,
                            AggFunc::Min => acc[w] = acc[w].min(x),
                            AggFunc::Max => acc[w] = acc[w].max(x),
                            AggFunc::Count => {}
                        }
                    }
                }
                AggView::Col(xs) => {
                    for (w, &p) in m.iter().enumerate().take(n) {
                        if !p {
                            continue;
                        }
                        counts[w] += 1;
                        match spec.func {
                            AggFunc::Sum | AggFunc::Avg => acc[w] += xs[w],
                            AggFunc::Min => acc[w] = acc[w].min(xs[w]),
                            AggFunc::Max => acc[w] = acc[w].max(xs[w]),
                            AggFunc::Count => {}
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

fn eval_agg(
    spec: &AggSpec,
    rows: &[usize],
    inp: &BundleTable,
    bctx: &BatchCtx<'_>,
    n: usize,
) -> Result<BundleCell> {
    let mut acc: Vec<f64> = match spec.func {
        AggFunc::Min => vec![f64::INFINITY; n],
        AggFunc::Max => vec![f64::NEG_INFINITY; n],
        _ => vec![0.0; n],
    };
    let mut counts = vec![0u64; n];
    for &ri in rows {
        let row = &inp.rows[ri];
        let cell = match &spec.arg {
            Some(e) => Some(e.eval_bundle(row, bctx)?),
            None => None,
        };
        if bctx.columnar {
            accumulate_columnar(spec, row, cell.as_ref(), &mut acc, &mut counts, n)?;
            continue;
        }
        for w in 0..n {
            if !row.presence.at(w) {
                continue;
            }
            counts[w] += 1;
            if let Some(c) = &cell {
                let x = c.f64_at(w).ok_or_else(|| {
                    PdbError::TypeError(format!("aggregate `{}` over non-numeric", spec.name))
                })?;
                match spec.func {
                    AggFunc::Sum | AggFunc::Avg => acc[w] += x,
                    AggFunc::Min => acc[w] = acc[w].min(x),
                    AggFunc::Max => acc[w] = acc[w].max(x),
                    AggFunc::Count => {}
                }
            }
        }
    }
    let out: Vec<f64> = (0..n)
        .map(|w| match spec.func {
            AggFunc::Count => counts[w] as f64,
            AggFunc::Sum => acc[w],
            AggFunc::Avg => {
                if counts[w] == 0 {
                    f64::NAN
                } else {
                    acc[w] / counts[w] as f64
                }
            }
            AggFunc::Min | AggFunc::Max => {
                if counts[w] == 0 {
                    f64::NAN
                } else {
                    acc[w]
                }
            }
        })
        .collect();
    Ok(BundleCell::Stoch(out))
}
