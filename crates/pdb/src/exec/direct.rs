//! The naive row-at-a-time, world-major engine.
//!
//! For each possible world, this engine interprets the plan over plain
//! `Vec<Value>` rows — re-scanning base tables, re-evaluating joins with
//! nested loops, and re-grouping aggregates from scratch, exactly the way a
//! quick scripting-language prototype (the paper's Ruby engine) would. Per
//! invocation overhead is negligible; per-world data handling is O(data)
//! every time.

use std::collections::HashMap;

use crate::bundle::{BundleCell, BundleRow, BundleTable, Presence};
use crate::catalog::Catalog;
use crate::error::{PdbError, Result};
use crate::expr::WorldCtx;
use crate::plan::{AggFunc, AggSpec, BoundPlan, Plan};
use crate::value::{GroupKey, Value};

use super::{Engine, ExecContext};

/// World-major scalar interpreter (the "offline" prototype analog).
#[derive(Debug, Clone, Copy, Default)]
pub struct DirectEngine;

impl DirectEngine {
    /// Create the engine.
    pub fn new() -> Self {
        DirectEngine
    }
}

impl Engine for DirectEngine {
    fn name(&self) -> &str {
        "direct"
    }

    fn execute(
        &self,
        plan: &BoundPlan,
        catalog: &Catalog,
        ctx: &ExecContext,
    ) -> Result<BundleTable> {
        if ctx.columnar {
            return execute_columnar(plan, catalog, ctx);
        }
        // Evaluate every world independently.
        let mut worlds: Vec<Vec<Vec<Value>>> = Vec::with_capacity(ctx.n_worlds);
        for w in 0..ctx.n_worlds {
            let wctx = WorldCtx {
                world: ctx.world_start + w,
                seeds: &ctx.seeds,
                params: &ctx.params,
                functions: catalog,
            };
            worlds.push(run_world(&plan.plan, catalog, &wctx)?);
        }
        assemble(plan, worlds, ctx.n_worlds)
    }
}

/// Columnar execution: worlds are still interpreted one at a time (that is
/// this engine's nature), but each world's row values stream straight into
/// flat per-(row, uncertain-column) `f64` buffers instead of being gathered
/// through a `BundleCell` enum cell grid — the hot inner loop is a plain
/// `Vec<f64>` push at a precomputed flat index, with no per-cell enum
/// dispatch and no `acc[ri][ci]` double bounds check. Deterministic column
/// values are captured once from world 0. Same values in the same order as
/// [`assemble`], so the output is bit-identical; peak memory stays at the
/// final columns themselves.
fn execute_columnar(plan: &BoundPlan, catalog: &Catalog, ctx: &ExecContext) -> Result<BundleTable> {
    let n = ctx.n_worlds;
    let ncols = plan.schema.len();
    // Schema column → slot among the uncertain columns (None = deterministic).
    let mut unc_slot: Vec<Option<usize>> = Vec::with_capacity(ncols);
    let mut n_unc = 0usize;
    for ci in 0..ncols {
        if plan.schema.column(ci).uncertain {
            unc_slot.push(Some(n_unc));
            n_unc += 1;
        } else {
            unc_slot.push(None);
        }
    }
    let mut rows0 = 0usize;
    // `rows0 × n_unc` sample buffers, row-major: row `ri`'s uncertain slot
    // `j` lives at `ri * n_unc + j`.
    let mut stoch: Vec<Vec<f64>> = Vec::new();
    // Per row, the deterministic column values in schema order.
    let mut det: Vec<Vec<Value>> = Vec::new();
    for w in 0..n {
        let wctx = WorldCtx {
            world: ctx.world_start + w,
            seeds: &ctx.seeds,
            params: &ctx.params,
            functions: catalog,
        };
        let rows = run_world(&plan.plan, catalog, &wctx)?;
        if w == 0 {
            rows0 = rows.len();
            stoch.reserve_exact(rows0 * n_unc);
            det.reserve_exact(rows0);
            for row in rows {
                let mut drow = Vec::with_capacity(ncols - n_unc);
                for (ci, v) in row.into_iter().enumerate() {
                    if unc_slot[ci].is_some() {
                        let mut xs = Vec::with_capacity(n);
                        xs.push(v.as_f64().unwrap_or(f64::NAN));
                        stoch.push(xs);
                    } else {
                        drow.push(v);
                    }
                }
                det.push(drow);
            }
            continue;
        }
        if rows.len() != rows0 {
            return Err(PdbError::Unsupported(
                "direct engine requires world-uniform result cardinality \
                 (use the dbms engine for stochastic top-level filters)"
                    .into(),
            ));
        }
        for (ri, row) in rows.into_iter().enumerate() {
            let base = ri * n_unc;
            #[cfg(debug_assertions)]
            let mut dj = 0usize;
            for (ci, v) in row.into_iter().enumerate() {
                match unc_slot[ci] {
                    Some(j) => stoch[base + j].push(v.as_f64().unwrap_or(f64::NAN)),
                    None => {
                        #[cfg(debug_assertions)]
                        {
                            debug_assert!(
                                det[ri][dj] == v,
                                "deterministic column varies across worlds"
                            );
                            dj += 1;
                        }
                    }
                }
            }
        }
    }
    let mut out = BundleTable::new(plan.schema.clone(), n);
    out.rows.reserve_exact(rows0);
    let mut stoch = stoch.into_iter();
    for drow in det {
        let mut drow = drow.into_iter();
        let mut cells = Vec::with_capacity(ncols);
        for slot in &unc_slot {
            match slot {
                Some(_) => cells
                    .push(BundleCell::Stoch(stoch.next().expect("one buffer per uncertain cell"))),
                None => cells.push(BundleCell::Det(drow.next().expect("det value captured"))),
            }
        }
        out.rows.push(BundleRow { cells, presence: Presence::All });
    }
    Ok(out)
}

fn run_world(plan: &Plan, catalog: &Catalog, ctx: &WorldCtx<'_>) -> Result<Vec<Vec<Value>>> {
    match plan {
        Plan::Scan { table } => Ok(catalog.table(table)?.rows().to_vec()),
        Plan::OneRow => Ok(vec![vec![]]),
        Plan::Project { input, exprs } => {
            let rows = run_world(input, catalog, ctx)?;
            rows.into_iter()
                .map(|row| exprs.iter().map(|(_, e)| e.eval_scalar(&row, ctx)).collect())
                .collect()
        }
        Plan::Filter { input, pred } => {
            let rows = run_world(input, catalog, ctx)?;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                if pred.eval_scalar(&row, ctx)?.as_bool() == Some(true) {
                    out.push(row);
                }
            }
            Ok(out)
        }
        Plan::Join { left, right, pred } => {
            let l = run_world(left, catalog, ctx)?;
            let r = run_world(right, catalog, ctx)?;
            let mut out = Vec::new();
            for lr in &l {
                for rr in &r {
                    let mut row = lr.clone();
                    row.extend(rr.iter().cloned());
                    match pred {
                        None => out.push(row),
                        Some(p) => {
                            if p.eval_scalar(&row, ctx)?.as_bool() == Some(true) {
                                out.push(row);
                            }
                        }
                    }
                }
            }
            Ok(out)
        }
        // The naive engine has no hash tables: a HashJoin plan degrades to a
        // nested-loop equality join, as a scripting prototype would do.
        Plan::HashJoin { left, right, left_key, right_key } => {
            let l = run_world(left, catalog, ctx)?;
            let r = run_world(right, catalog, ctx)?;
            let ln = l.first().map(|r| r.len()).unwrap_or(0);
            let mut out = Vec::new();
            for lr in &l {
                let lk = left_key.eval_scalar(lr, ctx)?;
                if lk.is_null() {
                    continue;
                }
                for rr in &r {
                    let rk = right_key.eval_scalar(rr, ctx)?;
                    if lk.compare(&rk) == Some(std::cmp::Ordering::Equal) {
                        let mut row = lr.clone();
                        row.extend(rr.iter().cloned());
                        out.push(row);
                    }
                }
            }
            let _ = ln;
            Ok(out)
        }
        Plan::Aggregate { input, group_by, aggs } => {
            let rows = run_world(input, catalog, ctx)?;
            aggregate_world(rows, group_by, aggs, ctx)
        }
        Plan::Sort { input, keys } => {
            let rows = run_world(input, catalog, ctx)?;
            let mut keyed: Vec<(Vec<Value>, Vec<Value>)> = rows
                .into_iter()
                .map(|row| {
                    let ks = keys
                        .iter()
                        .map(|(k, _)| k.eval_scalar(&row, ctx))
                        .collect::<Result<Vec<_>>>()?;
                    Ok((ks, row))
                })
                .collect::<Result<Vec<_>>>()?;
            keyed.sort_by(|(a, _), (b, _)| {
                for (i, (_, desc)) in keys.iter().enumerate() {
                    let ord = a[i].compare(&b[i]).unwrap_or(std::cmp::Ordering::Equal);
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            Ok(keyed.into_iter().map(|(_, r)| r).collect())
        }
        Plan::Limit { input, n } => {
            let mut rows = run_world(input, catalog, ctx)?;
            rows.truncate(*n);
            Ok(rows)
        }
    }
}

fn aggregate_world(
    rows: Vec<Vec<Value>>,
    group_by: &[(String, crate::expr::Expr)],
    aggs: &[AggSpec],
    ctx: &WorldCtx<'_>,
) -> Result<Vec<Vec<Value>>> {
    struct Acc {
        key_vals: Vec<Value>,
        count: u64,
        sums: Vec<f64>,
        mins: Vec<f64>,
        maxs: Vec<f64>,
    }
    let mut groups: HashMap<Vec<GroupKey>, Acc> = HashMap::new();
    let mut order: Vec<Vec<GroupKey>> = Vec::new();
    for row in rows {
        let mut keys = Vec::with_capacity(group_by.len());
        let mut vals = Vec::with_capacity(group_by.len());
        for (_, k) in group_by {
            let v = k.eval_scalar(&row, ctx)?;
            keys.push(v.group_key());
            vals.push(v);
        }
        // Clone the key only when a group is first seen, not on every row.
        let acc = if groups.contains_key(&keys) {
            groups.get_mut(&keys).expect("checked above")
        } else {
            order.push(keys.clone());
            groups.entry(keys).or_insert(Acc {
                key_vals: vals,
                count: 0,
                sums: vec![0.0; aggs.len()],
                mins: vec![f64::INFINITY; aggs.len()],
                maxs: vec![f64::NEG_INFINITY; aggs.len()],
            })
        };
        acc.count += 1;
        for (i, a) in aggs.iter().enumerate() {
            if let Some(e) = &a.arg {
                let x = e.eval_scalar(&row, ctx)?.as_f64().ok_or_else(|| {
                    PdbError::TypeError(format!("aggregate `{}` over non-numeric", a.name))
                })?;
                acc.sums[i] += x;
                acc.mins[i] = acc.mins[i].min(x);
                acc.maxs[i] = acc.maxs[i].max(x);
            }
        }
    }
    if order.is_empty() && group_by.is_empty() {
        order.push(Vec::new());
        groups.insert(
            Vec::new(),
            Acc {
                key_vals: Vec::new(),
                count: 0,
                sums: vec![0.0; aggs.len()],
                mins: vec![f64::INFINITY; aggs.len()],
                maxs: vec![f64::NEG_INFINITY; aggs.len()],
            },
        );
    }
    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let acc = groups.remove(&key).expect("group vanished");
        let mut row = acc.key_vals;
        for (i, a) in aggs.iter().enumerate() {
            row.push(Value::Float(match a.func {
                AggFunc::Count => acc.count as f64,
                AggFunc::Sum => acc.sums[i],
                AggFunc::Avg => {
                    if acc.count == 0 {
                        f64::NAN
                    } else {
                        acc.sums[i] / acc.count as f64
                    }
                }
                AggFunc::Min => {
                    if acc.count == 0 {
                        f64::NAN
                    } else {
                        acc.mins[i]
                    }
                }
                AggFunc::Max => {
                    if acc.count == 0 {
                        f64::NAN
                    } else {
                        acc.maxs[i]
                    }
                }
            }));
        }
        out.push(row);
    }
    Ok(out)
}

/// Re-assemble per-world results into tuple bundles. The naive engine only
/// supports plans whose logical row set is world-invariant (aggregations,
/// projections, deterministic filters) — per-world cardinality differences
/// need presence masks, which row-major representation cannot express.
// Indices address the worlds[w][ri][ci] cube along three axes; iterators
// would obscure the transposition being performed here.
#[allow(clippy::needless_range_loop)]
fn assemble(plan: &BoundPlan, mut worlds: Vec<Vec<Vec<Value>>>, n: usize) -> Result<BundleTable> {
    let rows0 = worlds[0].len();
    if worlds.iter().any(|w| w.len() != rows0) {
        return Err(PdbError::Unsupported(
            "direct engine requires world-uniform result cardinality \
             (use the dbms engine for stochastic top-level filters)"
                .into(),
        ));
    }
    let mut out = BundleTable::new(plan.schema.clone(), n);
    for ri in 0..rows0 {
        let mut cells = Vec::with_capacity(plan.schema.len());
        for ci in 0..plan.schema.len() {
            if plan.schema.column(ci).uncertain {
                let xs: Vec<f64> =
                    (0..n).map(|w| worlds[w][ri][ci].as_f64().unwrap_or(f64::NAN)).collect();
                cells.push(BundleCell::Stoch(xs));
            } else {
                // Deterministic column: identical across worlds by
                // construction; take world 0 and double-check in debug.
                debug_assert!(
                    (1..n).all(|w| worlds[w][ri][ci] == worlds[0][ri][ci]),
                    "deterministic column varies across worlds"
                );
                cells.push(BundleCell::Det(std::mem::replace(&mut worlds[0][ri][ci], Value::Null)));
            }
        }
        out.rows.push(BundleRow { cells, presence: Presence::All });
    }
    Ok(out)
}
