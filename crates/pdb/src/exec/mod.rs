//! Query execution engines.
//!
//! Two engines execute the same bound plans, mirroring the paper's two
//! prototypes (§6, Figure 7):
//!
//! * [`DbmsEngine`] — tuple-bundle (columnar-across-worlds) execution with a
//!   configurable per-invocation setup cost, standing in for the "online"
//!   C# + Microsoft SQL Server prototype: high fixed overhead per query
//!   invocation (IPC + SQL interpretation in the original), but engine-grade
//!   bulk-data processing (hash joins, world-vectorized expression
//!   evaluation that amortizes per-tuple overhead across all Monte Carlo
//!   worlds).
//! * [`DirectEngine`] — naive row-at-a-time, world-major interpretation,
//!   standing in for the "offline" Ruby prototype: negligible fixed
//!   overhead (great for model-bound scalar queries), but it re-walks the
//!   data once *per world* with boxed values and nested-loop joins (terrible
//!   for data-bound workloads like `UserSelection`).
//!
//! Both engines must produce **identical** possible worlds — seed derivation
//! is part of the plan contract — which the cross-engine integration tests
//! assert.

mod dbms;
mod direct;

pub use dbms::DbmsEngine;
pub use direct::DirectEngine;

use jigsaw_prng::SeedSet;

use crate::bundle::BundleTable;
use crate::catalog::Catalog;
use crate::error::Result;
use crate::plan::BoundPlan;

/// Per-invocation execution parameters.
#[derive(Debug, Clone)]
pub struct ExecContext {
    /// The session seed set (fixed for the lifetime of a Jigsaw session).
    pub seeds: SeedSet,
    /// Values for the bound parameters, positionally.
    pub params: Vec<f64>,
    /// Global index of the first world to evaluate.
    pub world_start: usize,
    /// Number of worlds to evaluate.
    pub n_worlds: usize,
    /// Evaluate with the struct-of-arrays slice kernels instead of the
    /// per-world oracle loops. Both produce bit-identical bundles; the flag
    /// exists so the oracle stays exercisable (property tests, the CI
    /// forced-path twin run) while production rides the columnar kernels.
    pub columnar: bool,
}

impl ExecContext {
    /// Context for worlds `[0, n)` with the given parameter values, on the
    /// process-wide [`crate::worlds::eval_path`].
    pub fn new(seeds: SeedSet, params: Vec<f64>, n_worlds: usize) -> Self {
        let columnar = crate::worlds::eval_path() == crate::worlds::EvalPath::Columnar;
        ExecContext { seeds, params, world_start: 0, n_worlds, columnar }
    }

    /// Override the evaluation kernels for this invocation.
    pub fn with_columnar(mut self, columnar: bool) -> Self {
        self.columnar = columnar;
        self
    }

    /// Shift to a different world window (used to extend fingerprints into
    /// full simulations without recomputing the prefix).
    pub fn with_worlds(mut self, start: usize, count: usize) -> Self {
        self.world_start = start;
        self.n_worlds = count;
        self
    }
}

/// A query execution engine.
pub trait Engine: Send + Sync {
    /// Engine name for reports.
    fn name(&self) -> &str;

    /// Execute a bound plan, producing one tuple-bundle batch covering the
    /// context's world window.
    fn execute(
        &self,
        plan: &BoundPlan,
        catalog: &Catalog,
        ctx: &ExecContext,
    ) -> Result<BundleTable>;
}
