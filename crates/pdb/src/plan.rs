//! Logical query plans.
//!
//! Plans are built unbound (column/parameter names as strings), then
//! [`Plan::bind`] resolves names, assigns black-box call sites, infers the
//! output schema, and type-checks operator requirements. Both engines
//! consume the same bound plan, which (together with identical seed
//! derivation) guarantees they sample identical possible worlds.

use crate::catalog::Catalog;
use crate::error::{PdbError, Result};
use crate::expr::Expr;
use crate::schema::{Column, ColumnType, Schema};
use crate::value::Value;

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `SUM(expr)`
    Sum,
    /// `COUNT(*)` / `COUNT(expr)`
    Count,
    /// `AVG(expr)`
    Avg,
    /// `MIN(expr)`
    Min,
    /// `MAX(expr)`
    Max,
}

/// One aggregate in an [`Plan::Aggregate`] node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// Output column name.
    pub name: String,
    /// Aggregate function.
    pub func: AggFunc,
    /// Argument; `None` only for `COUNT(*)`.
    pub arg: Option<Expr>,
}

/// A logical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Scan a catalog table.
    Scan {
        /// Table name.
        table: String,
    },
    /// A single empty tuple — `SELECT` without `FROM`.
    OneRow,
    /// Projection / computation of named expressions.
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// `(output name, expression)` pairs.
        exprs: Vec<(String, Expr)>,
    },
    /// Filter by predicate. Deterministic predicates drop tuples outright;
    /// stochastic predicates become per-world presence masks (MCDB
    /// semantics).
    Filter {
        /// Input plan.
        input: Box<Plan>,
        /// Boolean predicate.
        pred: Expr,
    },
    /// Nested-loop (theta) join.
    Join {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Optional join predicate (cross join when `None`).
        pred: Option<Expr>,
    },
    /// Hash equi-join on deterministic keys.
    HashJoin {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Key expression over the left schema (deterministic).
        left_key: Expr,
        /// Key expression over the right schema (deterministic).
        right_key: Expr,
    },
    /// Grouped aggregation. Group keys must be deterministic.
    Aggregate {
        /// Input plan.
        input: Box<Plan>,
        /// `(output name, key expression)` pairs; empty for global aggregates.
        group_by: Vec<(String, Expr)>,
        /// Aggregates.
        aggs: Vec<AggSpec>,
    },
    /// Sort by deterministic keys (`true` = descending).
    Sort {
        /// Input plan.
        input: Box<Plan>,
        /// `(key expression, descending)` pairs.
        keys: Vec<(Expr, bool)>,
    },
    /// Keep the first `n` tuples.
    Limit {
        /// Input plan.
        input: Box<Plan>,
        /// Tuple budget.
        n: usize,
    },
}

/// A plan bound to a catalog: schemas inferred, names resolved, call sites
/// assigned.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundPlan {
    /// The rewritten plan (all `Col`/`Param` resolved to indices).
    pub plan: Plan,
    /// Output schema.
    pub schema: Schema,
    /// Number of distinct black-box call sites in the plan.
    pub n_sites: u64,
}

fn infer_type(e: &Expr, input: &Schema) -> ColumnType {
    match e {
        Expr::Lit(Value::Bool(_)) => ColumnType::Bool,
        Expr::Lit(Value::Int(_)) => ColumnType::Int,
        Expr::Lit(Value::Str(_)) => ColumnType::Str,
        Expr::ColIdx(i) => input.column(*i).ty,
        Expr::Cmp { .. } | Expr::And(..) | Expr::Or(..) | Expr::Not(_) => ColumnType::Bool,
        Expr::Case { whens, otherwise } => {
            // Type of the first branch (fallback to ELSE).
            whens
                .first()
                .map(|(_, v)| infer_type(v, input))
                .or_else(|| otherwise.as_ref().map(|e| infer_type(e, input)))
                .unwrap_or(ColumnType::Float)
        }
        Expr::Bin { l, r, .. } => {
            if infer_type(l, input) == ColumnType::Int && infer_type(r, input) == ColumnType::Int {
                ColumnType::Int
            } else {
                ColumnType::Float
            }
        }
        Expr::Neg(e) => infer_type(e, input),
        _ => ColumnType::Float,
    }
}

impl Plan {
    /// Convenience: project on top of this plan.
    pub fn project(self, exprs: Vec<(impl Into<String>, Expr)>) -> Plan {
        Plan::Project {
            input: Box::new(self),
            exprs: exprs.into_iter().map(|(n, e)| (n.into(), e)).collect(),
        }
    }

    /// Convenience: filter on top of this plan.
    pub fn filter(self, pred: Expr) -> Plan {
        Plan::Filter { input: Box::new(self), pred }
    }

    /// Convenience: global aggregate on top of this plan.
    pub fn aggregate(self, group_by: Vec<(String, Expr)>, aggs: Vec<AggSpec>) -> Plan {
        Plan::Aggregate { input: Box::new(self), group_by, aggs }
    }

    /// Bind the plan: resolve names, assign call sites, infer schemas.
    pub fn bind(&self, catalog: &Catalog, params: &[String]) -> Result<BoundPlan> {
        let mut next_site = 0u64;
        let (plan, schema) = self.bind_rec(catalog, params, &mut next_site)?;
        Ok(BoundPlan { plan, schema, n_sites: next_site })
    }

    fn bind_rec(
        &self,
        catalog: &Catalog,
        params: &[String],
        next_site: &mut u64,
    ) -> Result<(Plan, Schema)> {
        match self {
            Plan::Scan { table } => {
                let t = catalog.table(table)?;
                Ok((Plan::Scan { table: table.clone() }, t.schema().clone()))
            }
            Plan::OneRow => Ok((Plan::OneRow, Schema::default())),
            Plan::Project { input, exprs } => {
                let (inp, in_schema) = input.bind_rec(catalog, params, next_site)?;
                let mut bound = Vec::with_capacity(exprs.len());
                let mut cols = Vec::with_capacity(exprs.len());
                for (name, e) in exprs {
                    let be = e.bind(&in_schema, params, catalog, next_site)?;
                    let uncertain = be.is_stochastic(&in_schema);
                    let ty =
                        if uncertain { ColumnType::Float } else { infer_type(&be, &in_schema) };
                    cols.push(Column { name: name.clone(), ty, uncertain });
                    bound.push((name.clone(), be));
                }
                Ok((Plan::Project { input: Box::new(inp), exprs: bound }, Schema::new(cols)))
            }
            Plan::Filter { input, pred } => {
                let (inp, in_schema) = input.bind_rec(catalog, params, next_site)?;
                let bp = pred.bind(&in_schema, params, catalog, next_site)?;
                Ok((Plan::Filter { input: Box::new(inp), pred: bp }, in_schema))
            }
            Plan::Join { left, right, pred } => {
                let (l, ls) = left.bind_rec(catalog, params, next_site)?;
                let (r, rs) = right.bind_rec(catalog, params, next_site)?;
                let joint =
                    Schema::new(ls.columns().iter().chain(rs.columns().iter()).cloned().collect());
                let bp = match pred {
                    Some(p) => Some(p.bind(&joint, params, catalog, next_site)?),
                    None => None,
                };
                Ok((Plan::Join { left: Box::new(l), right: Box::new(r), pred: bp }, joint))
            }
            Plan::HashJoin { left, right, left_key, right_key } => {
                let (l, ls) = left.bind_rec(catalog, params, next_site)?;
                let (r, rs) = right.bind_rec(catalog, params, next_site)?;
                let lk = left_key.bind(&ls, params, catalog, next_site)?;
                let rk = right_key.bind(&rs, params, catalog, next_site)?;
                if lk.is_stochastic(&ls) || rk.is_stochastic(&rs) {
                    return Err(PdbError::StochasticNotAllowed("hash-join keys"));
                }
                let joint =
                    Schema::new(ls.columns().iter().chain(rs.columns().iter()).cloned().collect());
                Ok((
                    Plan::HashJoin {
                        left: Box::new(l),
                        right: Box::new(r),
                        left_key: lk,
                        right_key: rk,
                    },
                    joint,
                ))
            }
            Plan::Aggregate { input, group_by, aggs } => {
                let (inp, in_schema) = input.bind_rec(catalog, params, next_site)?;
                let mut cols = Vec::new();
                let mut bound_keys = Vec::with_capacity(group_by.len());
                for (name, k) in group_by {
                    let bk = k.bind(&in_schema, params, catalog, next_site)?;
                    if bk.is_stochastic(&in_schema) {
                        return Err(PdbError::StochasticNotAllowed("group-by keys"));
                    }
                    cols.push(Column {
                        name: name.clone(),
                        ty: infer_type(&bk, &in_schema),
                        uncertain: false,
                    });
                    bound_keys.push((name.clone(), bk));
                }
                let mut bound_aggs = Vec::with_capacity(aggs.len());
                for a in aggs {
                    let arg = match &a.arg {
                        Some(e) => Some(e.bind(&in_schema, params, catalog, next_site)?),
                        None => {
                            if a.func != AggFunc::Count {
                                return Err(PdbError::Unsupported(format!(
                                    "{:?} requires an argument",
                                    a.func
                                )));
                            }
                            None
                        }
                    };
                    // Aggregates over stochastic inputs (or over tuples with
                    // stochastic presence) vary per world, so they are
                    // conservatively marked uncertain.
                    cols.push(Column {
                        name: a.name.clone(),
                        ty: ColumnType::Float,
                        uncertain: true,
                    });
                    bound_aggs.push(AggSpec { name: a.name.clone(), func: a.func, arg });
                }
                Ok((
                    Plan::Aggregate {
                        input: Box::new(inp),
                        group_by: bound_keys,
                        aggs: bound_aggs,
                    },
                    Schema::new(cols),
                ))
            }
            Plan::Sort { input, keys } => {
                let (inp, in_schema) = input.bind_rec(catalog, params, next_site)?;
                let mut bks = Vec::with_capacity(keys.len());
                for (k, desc) in keys {
                    let bk = k.bind(&in_schema, params, catalog, next_site)?;
                    if bk.is_stochastic(&in_schema) {
                        return Err(PdbError::StochasticNotAllowed("sort keys"));
                    }
                    bks.push((bk, *desc));
                }
                Ok((Plan::Sort { input: Box::new(inp), keys: bks }, in_schema))
            }
            Plan::Limit { input, n } => {
                let (inp, s) = input.bind_rec(catalog, params, next_site)?;
                Ok((Plan::Limit { input: Box::new(inp), n: *n }, s))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use jigsaw_blackbox::FnBlackBox;
    use std::sync::Arc;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "t",
            TableBuilder::new()
                .column("id", ColumnType::Int)
                .column("w", ColumnType::Float)
                .row(vec![1.into(), 0.5.into()])
                .build(),
        );
        c.add_function(Arc::new(FnBlackBox::new("D", 1, |p: &[f64], _| p[0])));
        c
    }

    #[test]
    fn scan_project_schema() {
        let c = catalog();
        let p = Plan::Scan { table: "t".into() }.project(vec![
            ("id2", Expr::col("id")),
            ("noisy", Expr::call("D", vec![Expr::col("w")])),
        ]);
        let b = p.bind(&c, &[]).unwrap();
        assert_eq!(b.schema.names(), vec!["id2", "noisy"]);
        assert!(!b.schema.column(0).uncertain);
        assert!(b.schema.column(1).uncertain);
        assert_eq!(b.schema.column(0).ty, ColumnType::Int);
        assert_eq!(b.n_sites, 1);
    }

    #[test]
    fn call_sites_count_across_plan() {
        let c = catalog();
        let p = Plan::OneRow.project(vec![
            ("a", Expr::call("D", vec![Expr::lit_f(1.0)])),
            ("b", Expr::call("D", vec![Expr::lit_f(2.0)])),
        ]);
        let b = p.bind(&c, &[]).unwrap();
        assert_eq!(b.n_sites, 2);
    }

    #[test]
    fn aggregate_schema_and_rules() {
        let c = catalog();
        let p = Plan::Scan { table: "t".into() }.aggregate(
            vec![("id".to_string(), Expr::col("id"))],
            vec![AggSpec { name: "total".into(), func: AggFunc::Sum, arg: Some(Expr::col("w")) }],
        );
        let b = p.bind(&c, &[]).unwrap();
        assert_eq!(b.schema.names(), vec!["id", "total"]);
        assert!(b.schema.column(1).uncertain);
    }

    #[test]
    fn stochastic_group_key_rejected() {
        let c = catalog();
        let p = Plan::Scan { table: "t".into() }
            .aggregate(vec![("k".to_string(), Expr::call("D", vec![Expr::col("w")]))], vec![]);
        assert_eq!(p.bind(&c, &[]).unwrap_err(), PdbError::StochasticNotAllowed("group-by keys"));
    }

    #[test]
    fn count_star_allowed_sum_star_rejected() {
        let c = catalog();
        let ok = Plan::Scan { table: "t".into() }
            .aggregate(vec![], vec![AggSpec { name: "n".into(), func: AggFunc::Count, arg: None }]);
        assert!(ok.bind(&c, &[]).is_ok());
        let bad = Plan::Scan { table: "t".into() }
            .aggregate(vec![], vec![AggSpec { name: "s".into(), func: AggFunc::Sum, arg: None }]);
        assert!(matches!(bad.bind(&c, &[]), Err(PdbError::Unsupported(_))));
    }

    #[test]
    fn join_schema_concatenates() {
        let c = catalog();
        let p = Plan::Join {
            left: Box::new(Plan::Scan { table: "t".into() }),
            right: Box::new(Plan::Scan { table: "t".into() }),
            pred: None,
        };
        let b = p.bind(&c, &[]).unwrap();
        assert_eq!(b.schema.len(), 4);
    }

    #[test]
    fn unknown_table_reported() {
        let c = catalog();
        assert!(matches!(
            Plan::Scan { table: "missing".into() }.bind(&c, &[]),
            Err(PdbError::UnknownTable(_))
        ));
    }
}
