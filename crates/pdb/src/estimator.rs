//! Output metrics: the *Estimator* component of the paper's Figure 3.
//!
//! "These latter samples are then aggregated by the Estimator to compute one
//! or more characteristics of interest (i.e., mean, standard deviation,
//! etc…) for the output distribution."
//!
//! [`OutputMetrics`] keeps both the closed-form moments and the raw sample
//! vector. Keeping samples costs `n·8` bytes per basis (a few KB) and buys:
//! arbitrary-threshold probabilities, quantiles, exact histogram rebuilds,
//! and — crucially for tests — the ability to verify that the closed-form
//! affine mapping of metrics equals metrics of the mapped samples.

use jigsaw_prng::stats::{quantile, Histogram, Moments};

/// Summary of a query-output distribution at one parameter point.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputMetrics {
    moments: Moments,
    samples: Vec<f64>,
}

impl OutputMetrics {
    /// Build from i.i.d. samples of the output distribution.
    pub fn from_samples(samples: Vec<f64>) -> Self {
        let moments = Moments::from_slice(&samples);
        OutputMetrics { moments, samples }
    }

    /// Number of Monte Carlo samples summarized.
    pub fn n(&self) -> usize {
        self.samples.len()
    }

    /// The sample vector.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Streaming moments.
    pub fn moments(&self) -> &Moments {
        &self.moments
    }

    /// `EXPECT` — the sample mean.
    pub fn expectation(&self) -> f64 {
        self.moments.mean()
    }

    /// `EXPECT_STDDEV` — the sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.moments.sd()
    }

    /// Minimum observed value.
    pub fn min(&self) -> f64 {
        self.moments.min()
    }

    /// Maximum observed value.
    pub fn max(&self) -> f64 {
        self.moments.max()
    }

    /// Empirical `P(X > t)`.
    pub fn prob_over(&self, t: f64) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        self.samples.iter().filter(|&&x| x > t).count() as f64 / self.samples.len() as f64
    }

    /// Empirical `q`-quantile.
    pub fn quantile(&self, q: f64) -> f64 {
        quantile(&self.samples, q)
    }

    /// Equi-width histogram of the samples.
    pub fn histogram(&self, bins: usize) -> Histogram {
        Histogram::from_data(&self.samples, bins)
    }

    /// A CLT-style two-sided bound on the *true mean*: `mean ± z·sd/√n`.
    ///
    /// Returns `None` when no bound can be stated — zero samples (callers
    /// map this to a typed error; NaN must never cross the wire), or a NaN
    /// mean/sd. With exactly one sample the spread is unknowable, so the
    /// bound is the honest `(-∞, +∞)`. The interval is *not* clamped to the
    /// observed min/max: the sample range bounds the samples, not the mean.
    pub fn expectation_interval(&self, z: f64) -> Option<(f64, f64)> {
        let n = self.n();
        if n == 0 {
            return None;
        }
        let mean = self.moments.mean();
        if mean.is_nan() {
            return None;
        }
        if n == 1 {
            return Some((f64::NEG_INFINITY, f64::INFINITY));
        }
        let sd = self.moments.sd();
        if sd.is_nan() {
            return None;
        }
        let half = z * sd / (n as f64).sqrt();
        Some((mean - half, mean + half))
    }

    /// Add more samples (progressive refinement in the interactive mode).
    pub fn extend(&mut self, more: &[f64]) {
        for &x in more {
            self.moments.push(x);
            self.samples.push(x);
        }
    }

    /// The metrics of `a·X + b` — the paper's `M_est`, applied in closed
    /// form to moments and elementwise to the retained samples. No model
    /// invocations are needed, which is the entire point of basis reuse.
    pub fn affine_image(&self, a: f64, b: f64) -> OutputMetrics {
        OutputMetrics {
            moments: self.moments.affine_image(a, b),
            samples: self.samples.iter().map(|x| a * x + b).collect(),
        }
    }
}

/// Which scalar metric of a column an optimization goal refers to
/// (`EXPECT overload`, `EXPECT_STDDEV demand`, …).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Metric {
    /// Sample mean.
    Expect,
    /// Sample standard deviation.
    StdDev,
    /// `P(X > t)`.
    ProbOver(f64),
    /// Empirical quantile.
    Quantile(f64),
}

impl Metric {
    /// Extract the metric value.
    pub fn of(&self, m: &OutputMetrics) -> f64 {
        match self {
            Metric::Expect => m.expectation(),
            Metric::StdDev => m.std_dev(),
            Metric::ProbOver(t) => m.prob_over(*t),
            Metric::Quantile(q) => m.quantile(*q),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> OutputMetrics {
        OutputMetrics::from_samples(vec![1.0, 2.0, 3.0, 4.0, 5.0])
    }

    #[test]
    fn basic_metrics() {
        let m = metrics();
        assert_eq!(m.n(), 5);
        assert_eq!(m.expectation(), 3.0);
        assert!((m.std_dev() - (2.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(m.min(), 1.0);
        assert_eq!(m.max(), 5.0);
        assert_eq!(m.prob_over(3.0), 0.4);
        assert_eq!(m.quantile(0.5), 3.0);
    }

    #[test]
    fn affine_image_matches_recomputation() {
        let m = metrics();
        let t = m.affine_image(2.0, -1.0);
        let direct = OutputMetrics::from_samples(vec![1.0, 3.0, 5.0, 7.0, 9.0]);
        assert!((t.expectation() - direct.expectation()).abs() < 1e-12);
        assert!((t.std_dev() - direct.std_dev()).abs() < 1e-12);
        assert_eq!(t.samples(), direct.samples());
        assert_eq!(t.min(), direct.min());
    }

    #[test]
    fn affine_image_negative_scale() {
        let m = metrics();
        let t = m.affine_image(-1.0, 0.0);
        assert_eq!(t.min(), -5.0);
        assert_eq!(t.max(), -1.0);
        assert!((t.std_dev() - m.std_dev()).abs() < 1e-12);
    }

    #[test]
    fn extend_updates_all_views() {
        let mut m = metrics();
        m.extend(&[10.0]);
        assert_eq!(m.n(), 6);
        assert_eq!(m.max(), 10.0);
        assert!((m.expectation() - 25.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn metric_enum_dispatch() {
        let m = metrics();
        assert_eq!(Metric::Expect.of(&m), 3.0);
        assert_eq!(Metric::ProbOver(4.0).of(&m), 0.2);
        assert_eq!(Metric::Quantile(0.0).of(&m), 1.0);
        assert!((Metric::StdDev.of(&m) - m.std_dev()).abs() < 1e-12);
    }

    #[test]
    fn histogram_totals() {
        let m = metrics();
        let h = m.histogram(4);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn empty_prob_is_nan() {
        let m = OutputMetrics::from_samples(vec![]);
        assert!(m.prob_over(0.0).is_nan());
    }

    #[test]
    fn expectation_interval_empty_is_none() {
        let m = OutputMetrics::from_samples(vec![]);
        assert_eq!(m.expectation_interval(3.0), None);
    }

    #[test]
    fn expectation_interval_single_sample_is_unbounded() {
        let m = OutputMetrics::from_samples(vec![7.0]);
        let (lo, hi) = m.expectation_interval(3.0).unwrap();
        assert_eq!(lo, f64::NEG_INFINITY);
        assert_eq!(hi, f64::INFINITY);
    }

    #[test]
    fn expectation_interval_brackets_mean_and_shrinks() {
        let m = metrics();
        let (lo, hi) = m.expectation_interval(3.0).unwrap();
        assert!(lo < m.expectation() && m.expectation() < hi);
        let half = 3.0 * m.std_dev() / (m.n() as f64).sqrt();
        assert!((hi - lo - 2.0 * half).abs() < 1e-12);
        // More samples of the same distribution tighten the bound.
        let mut big = metrics();
        big.extend(&[1.0, 2.0, 3.0, 4.0, 5.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let (blo, bhi) = big.expectation_interval(3.0).unwrap();
        assert!(bhi - blo < hi - lo);
    }

    #[test]
    fn expectation_interval_constant_samples_is_degenerate() {
        let m = OutputMetrics::from_samples(vec![4.0, 4.0, 4.0]);
        let (lo, hi) = m.expectation_interval(3.0).unwrap();
        assert_eq!(lo, 4.0);
        assert_eq!(hi, 4.0);
    }

    #[test]
    fn expectation_interval_nan_samples_is_none() {
        let m = OutputMetrics::from_samples(vec![1.0, f64::NAN]);
        assert_eq!(m.expectation_interval(3.0), None);
    }
}
