//! Tuple bundles: MCDB's core data representation.
//!
//! A *tuple bundle* represents one logical tuple across all `n` sampled
//! possible worlds (paper §2.1/§2.3; MCDB, Jampani et al. SIGMOD'08).
//! Deterministic attributes are stored once; stochastic attributes store one
//! `f64` per world; and a per-world *presence* bitmap records in which
//! worlds the tuple survives stochastic predicates.

use crate::value::Value;

/// One attribute of a tuple bundle.
#[derive(Debug, Clone, PartialEq)]
pub enum BundleCell {
    /// Same value in every world.
    Det(Value),
    /// One value per world (indexed by world id within the batch).
    Stoch(Vec<f64>),
}

impl BundleCell {
    /// Numeric view of the cell in world `w`.
    pub fn f64_at(&self, w: usize) -> Option<f64> {
        match self {
            BundleCell::Det(v) => v.as_f64(),
            BundleCell::Stoch(xs) => Some(xs[w]),
        }
    }

    /// Scalar view of the cell in world `w`.
    pub fn value_at(&self, w: usize) -> Value {
        match self {
            BundleCell::Det(v) => v.clone(),
            BundleCell::Stoch(xs) => Value::Float(xs[w]),
        }
    }

    /// True when the cell varies per world.
    pub fn is_stoch(&self) -> bool {
        matches!(self, BundleCell::Stoch(_))
    }
}

/// Per-world tuple presence.
#[derive(Debug, Clone, PartialEq)]
pub enum Presence {
    /// Present in every world.
    All,
    /// Present exactly in the worlds with `true`.
    Mask(Vec<bool>),
}

impl Presence {
    /// Is the tuple present in world `w`?
    #[inline]
    pub fn at(&self, w: usize) -> bool {
        match self {
            Presence::All => true,
            Presence::Mask(m) => m[w],
        }
    }

    /// Intersect with another presence (tuple survives both predicates).
    pub fn and(&self, other: &Presence, n_worlds: usize) -> Presence {
        match (self, other) {
            (Presence::All, p) | (p, Presence::All) => p.clone(),
            (Presence::Mask(a), Presence::Mask(b)) => {
                debug_assert_eq!(a.len(), n_worlds);
                Presence::Mask(a.iter().zip(b).map(|(x, y)| *x && *y).collect())
            }
        }
    }

    /// Number of worlds the tuple is present in.
    pub fn count(&self, n_worlds: usize) -> usize {
        match self {
            Presence::All => n_worlds,
            Presence::Mask(m) => m.iter().filter(|&&b| b).count(),
        }
    }
}

/// One tuple across all worlds of a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BundleRow {
    /// Attributes, aligned with the owning table's schema.
    pub cells: Vec<BundleCell>,
    /// Which worlds the tuple exists in.
    pub presence: Presence,
}

impl BundleRow {
    /// A fully-deterministic, always-present row.
    pub fn det(values: Vec<Value>) -> Self {
        BundleRow {
            cells: values.into_iter().map(BundleCell::Det).collect(),
            presence: Presence::All,
        }
    }
}

/// A batch of tuple bundles sharing a schema and a world count.
#[derive(Debug, Clone, PartialEq)]
pub struct BundleTable {
    /// Output schema.
    pub schema: crate::schema::Schema,
    /// The bundles.
    pub rows: Vec<BundleRow>,
    /// Number of worlds in this batch.
    pub n_worlds: usize,
}

impl BundleTable {
    /// An empty batch.
    pub fn new(schema: crate::schema::Schema, n_worlds: usize) -> Self {
        assert!(n_worlds > 0, "a bundle table needs at least one world");
        BundleTable { schema, rows: Vec::new(), n_worlds }
    }

    /// Number of logical tuples (not per-world counts).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Extract column `col` of row `row` as a per-world vector (presence is
    /// ignored; callers needing SQL semantics must consult the row's mask).
    pub fn column_worlds(&self, row: usize, col: usize) -> Vec<f64> {
        let cell = &self.rows[row].cells[col];
        match cell {
            BundleCell::Det(v) => {
                let x = v.as_f64().unwrap_or(f64::NAN);
                vec![x; self.n_worlds]
            }
            BundleCell::Stoch(xs) => xs.clone(),
        }
    }

    /// Materialize one possible world as plain rows (present tuples only) —
    /// "conceptually, queries are evaluated in each possible world" (§2.1).
    pub fn world(&self, w: usize) -> Vec<Vec<Value>> {
        assert!(w < self.n_worlds, "world {w} out of range");
        self.rows
            .iter()
            .filter(|r| r.presence.at(w))
            .map(|r| r.cells.iter().map(|c| c.value_at(w)).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType, Schema};

    fn demo() -> BundleTable {
        let schema = Schema::new(vec![Column::det("id", ColumnType::Int), Column::stoch("demand")]);
        let mut t = BundleTable::new(schema, 3);
        t.rows.push(BundleRow {
            cells: vec![BundleCell::Det(Value::Int(1)), BundleCell::Stoch(vec![1.0, 2.0, 3.0])],
            presence: Presence::All,
        });
        t.rows.push(BundleRow {
            cells: vec![BundleCell::Det(Value::Int(2)), BundleCell::Stoch(vec![9.0, 8.0, 7.0])],
            presence: Presence::Mask(vec![true, false, true]),
        });
        t
    }

    #[test]
    fn world_materialization_respects_presence() {
        let t = demo();
        let w0 = t.world(0);
        assert_eq!(w0.len(), 2);
        let w1 = t.world(1);
        assert_eq!(w1.len(), 1, "row 2 absent from world 1");
        assert_eq!(w1[0][0], Value::Int(1));
        assert_eq!(w1[0][1], Value::Float(2.0));
    }

    #[test]
    fn presence_and_intersection() {
        let a = Presence::Mask(vec![true, true, false]);
        let b = Presence::Mask(vec![true, false, false]);
        let c = a.and(&b, 3);
        assert_eq!(c, Presence::Mask(vec![true, false, false]));
        assert_eq!(Presence::All.and(&a, 3), a);
        assert_eq!(a.count(3), 2);
        assert_eq!(Presence::All.count(3), 3);
    }

    #[test]
    fn det_cell_broadcasts() {
        let t = demo();
        assert_eq!(t.column_worlds(0, 0), vec![1.0, 1.0, 1.0]);
        assert_eq!(t.column_worlds(0, 1), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn cell_views() {
        let c = BundleCell::Stoch(vec![4.0, 5.0]);
        assert_eq!(c.f64_at(1), Some(5.0));
        assert_eq!(c.value_at(0), Value::Float(4.0));
        assert!(c.is_stoch());
        let d = BundleCell::Det(Value::Str("k".into()));
        assert_eq!(d.f64_at(0), None);
        assert!(!d.is_stoch());
    }

    #[test]
    #[should_panic(expected = "at least one world")]
    fn zero_worlds_rejected() {
        let _ = BundleTable::new(Schema::default(), 0);
    }
}
