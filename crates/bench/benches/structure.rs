//! Criterion bench for E3 (Figure 9): Capacity structure-size sensitivity.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jigsaw_blackbox::models::Capacity;
use jigsaw_blackbox::{ParamDecl, ParamSpace};
use jigsaw_core::{JigsawConfig, SweepRunner};
use jigsaw_pdb::BlackBoxSim;
use jigsaw_prng::SeedSet;

fn structure_sizes(c: &mut Criterion) {
    let space = ParamSpace::new(vec![
        ParamDecl::range("week", 0, 25, 1),
        ParamDecl::range("p1", 0, 48, 16),
        ParamDecl::range("p2", 0, 48, 16),
    ]);
    let mut runner = SweepRunner::new(JigsawConfig::paper().with_n_samples(200));

    let mut group = c.benchmark_group("structure/capacity_sweep");
    group.sample_size(10);
    for size in [0.0f64, 5.0, 20.0] {
        let sim = BlackBoxSim::new(
            Arc::new(Capacity::enterprise().with_delay_scale(size)),
            space.clone(),
            SeedSet::new(5),
        );
        group.bench_function(BenchmarkId::from_parameter(format!("delay{size}")), |b| {
            b.iter(|| runner.run(&sim).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, structure_sizes);
criterion_main!(benches);
