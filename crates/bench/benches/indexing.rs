//! Criterion bench for E4/E5 (Figures 10/11): index lookup strategies.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jigsaw_blackbox::models::SynthBasis;
use jigsaw_blackbox::BlackBox;
use jigsaw_core::basis::BasisStore;
use jigsaw_core::{AffineFamily, Fingerprint, IndexStrategy};
use jigsaw_pdb::OutputMetrics;
use jigsaw_prng::SeedSet;

fn fingerprint_of(bb: &SynthBasis, point: f64, m: usize, seeds: &SeedSet) -> Fingerprint {
    Fingerprint::new((0..m).map(|k| bb.eval(&[point], seeds.seed(k))).collect())
}

fn lookup(c: &mut Criterion) {
    let seeds = SeedSet::new(9);
    let n_bases = 200;
    let bb = SynthBasis::new(n_bases);

    let mut group = c.benchmark_group("indexing/lookup_200_bases");
    for strat in [IndexStrategy::Array, IndexStrategy::Normalization, IndexStrategy::SortedSid] {
        let mut store = BasisStore::with_strategy(strat, 1e-9, Arc::new(AffineFamily));
        for b in 0..n_bases {
            let fp = fingerprint_of(&bb, b as f64, 10, &seeds);
            store.insert(fp.clone(), OutputMetrics::from_samples(fp.entries().to_vec()));
        }
        // Probe with affine images of every class (all hits).
        let probes: Vec<Fingerprint> =
            (0..n_bases).map(|p| fingerprint_of(&bb, (p + n_bases) as f64, 10, &seeds)).collect();
        group.bench_function(BenchmarkId::from_parameter(format!("{strat:?}")), |b| {
            b.iter(|| {
                let mut hits = 0;
                for fp in &probes {
                    if store.find_match(fp).is_some() {
                        hits += 1;
                    }
                }
                hits
            })
        });
    }
    group.finish();
}

criterion_group!(benches, lookup);
criterion_main!(benches);
