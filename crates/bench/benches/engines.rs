//! Criterion bench for E1 (Figure 7): per-point cost of the two engines.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jigsaw_bench::experiments::user_catalog;
use jigsaw_blackbox::models::Demand;
use jigsaw_blackbox::{ParamDecl, ParamSpace};
use jigsaw_pdb::{
    AggFunc, AggSpec, Catalog, DbmsEngine, DirectEngine, Expr, Plan, PlanSim, Simulation,
};
use jigsaw_prng::SeedSet;

fn model_bound(c: &mut Criterion) {
    let seeds = SeedSet::new(7);
    let mut catalog = Catalog::new();
    catalog.add_function(Arc::new(Demand::enterprise()));
    let catalog = Arc::new(catalog);
    let plan = Plan::OneRow
        .project(vec![("out", Expr::call("Demand", vec![Expr::param("week"), Expr::lit_f(36.0)]))])
        .bind(&catalog, &["week".to_string()])
        .unwrap();
    let space = ParamSpace::new(vec![ParamDecl::range("week", 0, 51, 1)]);

    let mut group = c.benchmark_group("engines/model_bound_demand");
    for (name, sim) in [
        (
            "direct",
            PlanSim::new(
                Arc::new(DirectEngine::new()),
                plan.clone(),
                catalog.clone(),
                space.clone(),
                seeds,
            ),
        ),
        (
            "dbms",
            PlanSim::new(
                Arc::new(DbmsEngine::new()),
                plan.clone(),
                catalog.clone(),
                space.clone(),
                seeds,
            ),
        ),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| sim.eval_worlds(&[26.0], 0, 100).unwrap())
        });
    }
    group.finish();
}

fn data_bound(c: &mut Criterion) {
    let seeds = SeedSet::new(7);
    let catalog = Arc::new(user_catalog(500));
    let plan = Plan::Scan { table: "users".into() }
        .project(vec![(
            "req",
            Expr::call(
                "UserReq",
                vec![
                    Expr::col("id"),
                    Expr::col("base"),
                    Expr::col("growth"),
                    Expr::col("shape"),
                    Expr::param("week"),
                ],
            ),
        )])
        .aggregate(
            vec![],
            vec![AggSpec { name: "total".into(), func: AggFunc::Sum, arg: Some(Expr::col("req")) }],
        )
        .bind(&catalog, &["week".to_string()])
        .unwrap();
    let space = ParamSpace::new(vec![ParamDecl::range("week", 0, 51, 1)]);

    let mut group = c.benchmark_group("engines/data_bound_userselect");
    group.sample_size(10);
    for (name, sim) in [
        (
            "direct",
            PlanSim::new(
                Arc::new(DirectEngine::new()),
                plan.clone(),
                catalog.clone(),
                space.clone(),
                seeds,
            ),
        ),
        (
            "dbms",
            PlanSim::new(
                Arc::new(DbmsEngine::new()),
                plan.clone(),
                catalog.clone(),
                space.clone(),
                seeds,
            ),
        ),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| sim.eval_worlds(&[26.0], 0, 50).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, model_bound, data_bound);
criterion_main!(benches);
