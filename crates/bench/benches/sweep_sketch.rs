//! Criterion bench for the sketch-then-refine sweep executor: the same
//! 600-point E5-scale workload as `sweep_parallel`, exhaustive vs
//! sketched, on a reuse-hostile model (distinct cubic shape per point,
//! where pruning is the only lever) and on the reuse-friendly SynthBasis
//! (where basis reuse already ate the cost and sketching must not regress
//! it). `repro --sketch` reports the same comparison with world counts and
//! selection-quality verification.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jigsaw_blackbox::models::SynthBasis;
use jigsaw_blackbox::{BlackBox, FnBlackBox, ParamDecl, ParamSpace, Workload};
use jigsaw_core::{JigsawConfig, SweepRunner};
use jigsaw_pdb::BlackBoxSim;
use jigsaw_prng::SeedSet;

/// Same per-invocation model cost as `sweep_parallel`: emulates the
/// expensive external models the paper targets.
const WORK: Workload = Workload(2000);

fn no_reuse_model() -> Arc<dyn BlackBox> {
    Arc::new(FnBlackBox::new("NoReuse", 1, |p: &[f64], seed| {
        use jigsaw_prng::{dist::Normal, Xoshiro256pp};
        WORK.burn();
        let mut rng = Xoshiro256pp::seeded(seed);
        let z = Normal::standard(&mut rng);
        p[0] * 0.02 + z + (1.0 + p[0]) * z * z * z * 0.05
    }))
}

fn sweep_sketch(c: &mut Criterion) {
    let points = 600usize;
    let space = ParamSpace::new(vec![ParamDecl::range("p", 0, points as i64 - 1, 1)]);
    let cases: Vec<(&str, Arc<dyn BlackBox>)> = vec![
        ("no_reuse", no_reuse_model()),
        ("synth", Arc::new(SynthBasis::new(points / 10).with_work(WORK))),
    ];

    let mut group = c.benchmark_group("sweep_sketch/600pts");
    group.sample_size(10);
    for (name, bb) in cases {
        let sim = BlackBoxSim::new(bb, space.clone(), SeedSet::new(11));
        let mut exhaustive = SweepRunner::new(JigsawConfig::paper().with_n_samples(200));
        group.bench_function(BenchmarkId::new(name, "exhaustive"), |b| {
            b.iter(|| exhaustive.run(&sim).unwrap())
        });
        let mut sketched =
            SweepRunner::new(JigsawConfig::paper().with_n_samples(200).with_sketch(20, 4));
        group.bench_function(BenchmarkId::new(name, "sketch_20_4"), |b| {
            b.iter(|| sketched.run(&sim).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, sweep_sketch);
criterion_main!(benches);
