//! Criterion bench for the batch-synchronous parallel sweep executor:
//! the E5-scale workload (SynthBasis, basis pinned at 10% of the space,
//! synthetic per-invocation work) at 1/2/4/8 threads. The acceptance bar is
//! ≥2× wall-clock at 4 threads over the sequential runner; `repro --exp e8`
//! reports the same ladder with identity verification.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jigsaw_blackbox::models::SynthBasis;
use jigsaw_blackbox::{ParamDecl, ParamSpace, Workload};
use jigsaw_core::{JigsawConfig, SweepRunner};
use jigsaw_pdb::BlackBoxSim;
use jigsaw_prng::SeedSet;

fn sweep_threads(c: &mut Criterion) {
    let points = 600usize;
    let space = ParamSpace::new(vec![ParamDecl::range("p", 0, points as i64 - 1, 1)]);
    // Same per-invocation model cost as E6/E8: emulates the expensive
    // external models the paper targets, so spawn overhead stays honest.
    let bb = Arc::new(SynthBasis::new(points / 10).with_work(Workload(2000)));
    let sim = BlackBoxSim::new(bb, space, SeedSet::new(11));

    let mut group = c.benchmark_group("sweep_parallel/synth_600pts");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let mut runner =
            SweepRunner::new(JigsawConfig::paper().with_n_samples(200).with_threads(threads));
        group.bench_function(BenchmarkId::new("threads", threads), |b| {
            b.iter(|| runner.run(&sim).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, sweep_threads);
criterion_main!(benches);
