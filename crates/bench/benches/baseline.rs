//! Criterion bench for E2 (Figure 8): sweep with and without fingerprints.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jigsaw_blackbox::models::{Demand, Overload};
use jigsaw_blackbox::{ParamDecl, ParamSpace};
use jigsaw_core::{JigsawConfig, SweepRunner};
use jigsaw_pdb::BlackBoxSim;
use jigsaw_prng::SeedSet;

fn demand_sweep(c: &mut Criterion) {
    let space = ParamSpace::new(vec![
        ParamDecl::range("week", 0, 51, 1),
        ParamDecl::set("feature", vec![12, 36, 44]),
    ]);
    let sim = BlackBoxSim::new(Arc::new(Demand::enterprise()), space, SeedSet::new(3));
    let cfg = JigsawConfig::paper().with_n_samples(200);
    // One runner per mode, hoisted out of the measured loop (runners are
    // reusable; nothing about the config needs re-cloning per iteration).
    let mut naive = SweepRunner::naive(cfg.clone());
    let mut jigsaw = SweepRunner::new(cfg);

    let mut group = c.benchmark_group("baseline/demand_156pts");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("full"), |b| {
        b.iter(|| naive.run(&sim).unwrap())
    });
    group.bench_function(BenchmarkId::from_parameter("jigsaw"), |b| {
        b.iter(|| jigsaw.run(&sim).unwrap())
    });
    group.finish();
}

fn overload_sweep(c: &mut Criterion) {
    let space = ParamSpace::new(vec![
        ParamDecl::range("week", 0, 25, 1),
        ParamDecl::range("p1", 0, 48, 16),
        ParamDecl::range("p2", 0, 48, 16),
    ]);
    let sim = BlackBoxSim::new(Arc::new(Overload::enterprise()), space, SeedSet::new(3));
    let cfg = JigsawConfig::paper().with_n_samples(200);
    let mut naive = SweepRunner::naive(cfg.clone());
    let mut jigsaw = SweepRunner::new(cfg);

    let mut group = c.benchmark_group("baseline/overload_416pts");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("full"), |b| {
        b.iter(|| naive.run(&sim).unwrap())
    });
    group.bench_function(BenchmarkId::from_parameter("jigsaw"), |b| {
        b.iter(|| jigsaw.run(&sim).unwrap())
    });
    group.finish();
}

criterion_group!(benches, demand_sweep, overload_sweep);
criterion_main!(benches);
