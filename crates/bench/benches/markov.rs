//! Criterion bench for E6 (Figure 12): Markov jumps vs naive stepping.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jigsaw_blackbox::models::MarkovBranch;
use jigsaw_core::markov::{run_naive, BasisRetention, MarkovJumpConfig, MarkovJumpRunner};
use jigsaw_prng::Seed;

fn branching_sweep(c: &mut Criterion) {
    let steps = 64;
    let n = 400;
    let cfg = MarkovJumpConfig::paper().with_n(n).with_m(10);

    let mut group = c.benchmark_group("markov/64_steps_400_instances");
    group.sample_size(10);
    for p in [1e-4f64, 1e-2] {
        let model = MarkovBranch::new(p);
        group.bench_function(BenchmarkId::from_parameter(format!("naive_p{p:.0e}")), |b| {
            b.iter(|| run_naive(&model, Seed(1), n, steps))
        });
        group.bench_function(BenchmarkId::from_parameter(format!("jigsaw_p{p:.0e}")), |b| {
            b.iter(|| MarkovJumpRunner::new(cfg).run(&model, Seed(1), steps))
        });
        group.bench_function(
            BenchmarkId::from_parameter(format!("jigsaw_keeplast_p{p:.0e}")),
            |b| {
                b.iter(|| {
                    MarkovJumpRunner::new(cfg.with_retention(BasisRetention::KeepLast)).run(
                        &model,
                        Seed(1),
                        steps,
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, branching_sweep);
criterion_main!(benches);
