//! Criterion bench for E11: per-world oracle vs columnar batch evaluation
//! of the universal inner loop, on plan-heavy and model-bound simulations.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jigsaw_bench::experiments::user_catalog;
use jigsaw_blackbox::{ParamDecl, ParamSpace};
use jigsaw_pdb::{
    eval_batch_on, AggFunc, AggSpec, DbmsEngine, DirectEngine, Engine, EvalPath, Expr, Plan,
    PlanSim,
};
use jigsaw_prng::SeedSet;

/// The data-bound aggregate plan over 500 users — per-world tuple work is
/// where the columnar layout earns its keep.
fn user_sim(engine: Arc<dyn Engine>) -> PlanSim {
    let catalog = Arc::new(user_catalog(500));
    let plan = Plan::Scan { table: "users".into() }
        .project(vec![(
            "req",
            Expr::call(
                "UserReq",
                vec![
                    Expr::col("id"),
                    Expr::col("base"),
                    Expr::col("growth"),
                    Expr::col("shape"),
                    Expr::param("week"),
                ],
            ),
        )])
        .aggregate(
            vec![],
            vec![
                AggSpec { name: "total".into(), func: AggFunc::Sum, arg: Some(Expr::col("req")) },
                AggSpec { name: "peak".into(), func: AggFunc::Max, arg: Some(Expr::col("req")) },
            ],
        )
        .bind(&catalog, &["week".to_string()])
        .unwrap();
    let space = ParamSpace::new(vec![ParamDecl::range("week", 0, 51, 1)]);
    PlanSim::new(engine, plan, catalog, space, SeedSet::new(7))
}

fn world_batch(c: &mut Criterion) {
    for (engine_name, sim) in [
        ("direct", user_sim(Arc::new(DirectEngine::new()))),
        ("dbms", user_sim(Arc::new(DbmsEngine::new()))),
    ] {
        let mut group = c.benchmark_group(format!("world_batch/user_agg_{engine_name}"));
        for path in [EvalPath::Oracle, EvalPath::Columnar] {
            group.bench_function(BenchmarkId::from_parameter(format!("{path:?}")), |b| {
                b.iter(|| eval_batch_on(&sim, &[26.0], 0, 100, 1, path).unwrap())
            });
        }
        group.finish();
    }
}

criterion_group!(benches, world_batch);
criterion_main!(benches);
