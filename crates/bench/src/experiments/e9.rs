//! E9 — cold vs snapshot-warm-started sweeps (cross-sweep basis
//! persistence; this reproduction's extension, not a paper figure).
//!
//! Jigsaw amortizes black-box Monte Carlo cost through basis reuse, but a
//! fresh process starts with an empty store and pays the full cold ramp.
//! This experiment quantifies what a persisted basis store buys: each
//! scenario is swept once cold (saving its committed store to a snapshot)
//! and once warm-started from that snapshot. The warm leg must be
//! **bit-identical** to the cold leg — same results table, same final basis
//! sets — while evaluating only fingerprint worlds (`m` per point instead
//! of up to `n`): every point resolves as a `warm_hit`.
//!
//! With `repro --save-basis DIR` the cold legs write their snapshots into
//! `DIR`; with `repro --load-basis DIR` the warm legs read snapshots from a
//! *previous* run's `DIR`, exercising cross-process persistence (the CI
//! smoke job diffs the deterministic tables of a save run and a load run).

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use jigsaw_blackbox::models::{Demand, SynthBasis};
use jigsaw_blackbox::{BlackBox, ParamDecl, ParamSpace, Workload};
use jigsaw_core::{JigsawConfig, SweepResult, SweepRunner};
use jigsaw_pdb::BlackBoxSim;
use jigsaw_prng::SeedSet;

use crate::table::{fmt_secs, Table};
use crate::Scale;

use super::MASTER_SEED;

/// One leg (cold or warm) of one scenario.
#[derive(Debug, Clone)]
pub struct E9Row {
    /// Scenario name.
    pub scenario: String,
    /// `"cold"` or `"warm"`.
    pub leg: &'static str,
    /// Parameter points swept.
    pub points: usize,
    /// Simulation worlds evaluated (the cost the snapshot saves).
    pub worlds: u64,
    /// Points that ran a completion simulation.
    pub full_sims: usize,
    /// Points resolved against snapshot-loaded bases.
    pub warm_hits: usize,
    /// Basis distributions at end of sweep (first column).
    pub bases: usize,
    /// Wall-clock seconds for the sweep.
    pub secs: f64,
    /// Warm leg: results and final basis sets bit-identical to cold.
    /// `None` for the cold leg itself.
    pub identical: Option<bool>,
}

/// Per-invocation model cost, as in E2/E8: emulates the expensive external
/// models the paper targets so the wall-clock gap stays honest.
const MODEL_WORK: Workload = Workload(300);

/// Snapshot file for a scenario inside a `--save-basis` / `--load-basis`
/// directory.
pub fn snapshot_path(dir: &Path, scenario: &str) -> PathBuf {
    dir.join(format!("e9-{}.snap", scenario.to_lowercase()))
}

/// Exact comparison: per-point results (every metric bit and the
/// materialized parameters — reuse provenance legitimately differs between
/// legs) and the final basis sets.
fn identical(cold: &SweepResult, warm: &SweepResult) -> bool {
    cold.points.len() == warm.points.len()
        && cold.stats.bases_per_column == warm.stats.bases_per_column
        && cold.points.iter().zip(&warm.points).all(|(a, b)| {
            a.point_idx == b.point_idx
                && a.point == b.point
                && a.metrics.len() == b.metrics.len()
                && a.metrics.iter().zip(&b.metrics).all(|(x, y)| x.samples() == y.samples())
        })
}

fn leg_row(scenario: &str, leg: &'static str, r: &SweepResult, secs: f64) -> E9Row {
    E9Row {
        scenario: scenario.to_string(),
        leg,
        points: r.stats.points,
        worlds: r.stats.worlds_evaluated,
        full_sims: r.stats.full_simulations,
        warm_hits: r.stats.warm_hits,
        bases: r.stats.bases_per_column[0],
        secs,
        identical: None,
    }
}

fn scenario_case(
    name: &str,
    bb: Arc<dyn BlackBox>,
    space: ParamSpace,
    scale: Scale,
    load_dir: Option<&Path>,
    save_dir: &Path,
) -> Vec<E9Row> {
    // The two legs run under genuinely different configs (save vs load
    // path), so each is built fresh instead of cloning a template.
    let mk_cfg = || {
        JigsawConfig::paper()
            .with_n_samples(scale.n_samples)
            .with_fingerprint_len(scale.m)
            .with_threads(scale.threads)
    };
    let sim = BlackBoxSim::new(bb, space, SeedSet::new(MASTER_SEED));

    // Cold leg: empty store in, snapshot out.
    let save_path = snapshot_path(save_dir, name);
    let t0 = Instant::now();
    let cold =
        SweepRunner::new(mk_cfg().with_basis_save(&save_path)).run(&sim).expect("cold sweep");
    let cold_secs = t0.elapsed().as_secs_f64();

    // Warm leg: snapshot in (from a previous run's directory when
    // `--load-basis` was given, otherwise the one just saved).
    let load_path = load_dir.map(|d| snapshot_path(d, name)).unwrap_or(save_path);
    let t1 = Instant::now();
    let warm =
        SweepRunner::new(mk_cfg().with_basis_load(&load_path)).run(&sim).unwrap_or_else(|e| {
            panic!(
                "warm sweep could not start from {}: {e} (run --save-basis first?)",
                load_path.display()
            )
        });
    let warm_secs = t1.elapsed().as_secs_f64();

    let mut warm_row = leg_row(name, "warm", &warm, warm_secs);
    warm_row.identical = Some(identical(&cold, &warm));
    vec![leg_row(name, "cold", &cold, cold_secs), warm_row]
}

/// Run both scenarios, cold and warm.
pub fn run(scale: Scale, load_dir: Option<&Path>, save_dir: Option<&Path>) -> Vec<E9Row> {
    // Without an explicit save directory the snapshots are transient. The
    // per-call counter keeps concurrent runs in one process (parallel unit
    // tests) from sharing — and deleting — each other's directory.
    use std::sync::atomic::{AtomicUsize, Ordering};
    static RUN: AtomicUsize = AtomicUsize::new(0);
    let temp = std::env::temp_dir().join(format!(
        "jigsaw-e9-{}-{}",
        std::process::id(),
        RUN.fetch_add(1, Ordering::Relaxed)
    ));
    let save_dir_eff = save_dir.unwrap_or(&temp);
    std::fs::create_dir_all(save_dir_eff).expect("create snapshot directory");

    let div = scale.space_divisor as i64;
    let mut rows = Vec::new();

    // Demand: affine-exact, collapses to ~1 basis — the snapshot is tiny
    // yet eliminates every completion simulation.
    rows.extend(scenario_case(
        "Demand",
        Arc::new(Demand::paper().with_work(MODEL_WORK)),
        ParamSpace::new(vec![
            ParamDecl::range("week", 0, 300 / div, 1),
            ParamDecl::set("feature", vec![5, 12]),
        ]),
        scale,
        load_dir,
        save_dir_eff,
    ));

    // SynthBasis: basis pinned at 10% of the space — a snapshot an order of
    // magnitude larger, same guarantee.
    let points = (800 / div) as usize;
    rows.extend(scenario_case(
        "SynthBasis",
        Arc::new(SynthBasis::new(points / 10).with_work(MODEL_WORK)),
        ParamSpace::new(vec![ParamDecl::range("p", 0, points as i64 - 1, 1)]),
        scale,
        load_dir,
        save_dir_eff,
    ));

    if save_dir.is_none() {
        std::fs::remove_dir_all(&temp).ok();
    }
    rows
}

/// Render the cold-vs-warm table.
pub fn report(rows: &[E9Row]) -> Table {
    let mut t = Table::new(
        "E9 — cold vs snapshot-warm-started sweep (cross-sweep basis persistence)",
        &[
            "Scenario",
            "Leg",
            "Points",
            "Worlds evaluated",
            "Full sims",
            "Warm hits",
            "Bases",
            "Total",
            "Identical to cold",
        ],
    );
    t.mark_timing(&["Total"]);
    for r in rows {
        t.row(vec![
            r.scenario.clone(),
            r.leg.to_string(),
            r.points.to_string(),
            r.worlds.to_string(),
            r.full_sims.to_string(),
            r.warm_hits.to_string(),
            r.bases.to_string(),
            fmt_secs(r.secs),
            match r.identical {
                None => "—".into(),
                Some(true) => "yes".into(),
                Some(false) => "NO".into(),
            },
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    const MICRO: Scale = Scale { n_samples: 60, m: 10, space_divisor: 8, threads: 1 };

    #[test]
    fn warm_legs_are_identical_and_strictly_cheaper() {
        let rows = run(MICRO, None, None);
        assert_eq!(rows.len(), 4, "two scenarios, two legs each");
        for pair in rows.chunks(2) {
            let (cold, warm) = (&pair[0], &pair[1]);
            assert_eq!(cold.leg, "cold");
            assert_eq!(warm.leg, "warm");
            assert_eq!(cold.scenario, warm.scenario);
            // Bit-identity of results and basis sets.
            assert_eq!(warm.identical, Some(true), "{} diverged", warm.scenario);
            assert_eq!(cold.bases, warm.bases);
            // The whole point: a warm sweep over the same scenario runs no
            // completion simulations — every point is a warm hit — and its
            // world count drops to fingerprints only.
            assert_eq!(warm.full_sims, 0, "{}", warm.scenario);
            assert_eq!(warm.warm_hits, warm.points, "{}", warm.scenario);
            assert_eq!(warm.worlds, (warm.points * MICRO.m) as u64);
            assert!(warm.worlds < cold.worlds, "{}", warm.scenario);
            // And the cold leg had none (nothing was preloaded).
            assert_eq!(cold.warm_hits, 0);
        }
    }

    #[test]
    fn explicit_save_then_load_roundtrips_across_calls() {
        let dir = std::env::temp_dir().join(format!("jigsaw-e9-test-{}", std::process::id()));
        // First "process": save snapshots.
        let saved = run(MICRO, None, Some(&dir));
        assert!(snapshot_path(&dir, "Demand").exists());
        assert!(snapshot_path(&dir, "SynthBasis").exists());
        // Second "process": warm legs load the saved snapshots; the
        // deterministic columns must match run to run.
        let loaded = run(MICRO, Some(&dir), None);
        for (a, b) in saved.iter().zip(&loaded) {
            assert_eq!(a.scenario, b.scenario);
            assert_eq!(a.leg, b.leg);
            assert_eq!(a.worlds, b.worlds);
            assert_eq!(a.full_sims, b.full_sims);
            assert_eq!(a.warm_hits, b.warm_hits);
            assert_eq!(a.bases, b.bases);
            assert_eq!(a.identical, b.identical);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
