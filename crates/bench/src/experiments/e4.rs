//! E4 — Figure 10: indexing strategies in a static parameter space.
//!
//! `SynthBasis` is tuned to generate an exact number of basis distributions;
//! 1000 parameter combinations are evaluated and the lookup cost of the
//! three strategies compared. Paper findings: array-scan cost starts to
//! dominate past ~50 bases; both indexes beat it, with Sorted-SID slightly
//! ahead of Normalization; past ~200 bases sample generation dominates and
//! indexing saturates at ~10% total savings.

use std::sync::Arc;
use std::time::Instant;

use jigsaw_blackbox::models::SynthBasis;
use jigsaw_blackbox::{ParamDecl, ParamSpace, Workload};
use jigsaw_core::{IndexStrategy, JigsawConfig, SweepRunner};
use jigsaw_pdb::BlackBoxSim;
use jigsaw_prng::SeedSet;

use crate::table::Table;
use crate::Scale;

use super::MASTER_SEED;

/// One basis-count measurement.
#[derive(Debug, Clone)]
pub struct E4Row {
    /// Configured number of basis distributions.
    pub n_bases: usize,
    /// Time relative to the array scan, ordered Array / Norm / Sorted-SID
    /// (array is 1.0 by construction).
    pub relative: [f64; 3],
    /// Mapping validations attempted per strategy.
    pub pairings: [u64; 3],
}

/// Run the static-space indexing comparison.
pub fn run(scale: Scale) -> Vec<E4Row> {
    let basis_counts: &[usize] =
        if scale.space_divisor > 1 { &[10, 50, 200] } else { &[10, 25, 50, 100, 200, 400] };
    let points = 1000 / scale.space_divisor;
    let strategies = [IndexStrategy::Array, IndexStrategy::Normalization, IndexStrategy::SortedSid];

    let mut rows = Vec::new();
    for &n_bases in basis_counts {
        let bb = Arc::new(SynthBasis::new(n_bases).with_work(Workload(100)));
        let space = ParamSpace::new(vec![ParamDecl::range("p", 0, points as i64 - 1, 1)]);
        let sim = BlackBoxSim::new(bb, space, SeedSet::new(MASTER_SEED));
        let mut secs = [0.0f64; 3];
        let mut pairings = [0u64; 3];
        for (i, strat) in strategies.iter().enumerate() {
            let cfg = JigsawConfig::paper()
                .with_n_samples(scale.n_samples)
                .with_fingerprint_len(scale.m)
                .with_threads(scale.threads)
                .with_index(*strat);
            let t0 = Instant::now();
            let sweep = SweepRunner::new(cfg).run(&sim).expect("sweep");
            secs[i] = t0.elapsed().as_secs_f64();
            pairings[i] = sweep.stats.pairings_tested;
            assert_eq!(
                sweep.stats.bases_per_column[0],
                n_bases.min(points),
                "strategy {strat:?} produced wrong basis count"
            );
        }
        rows.push(E4Row {
            n_bases,
            relative: [1.0, secs[1] / secs[0], secs[2] / secs[0]],
            pairings,
        });
    }
    rows
}

/// Render the Figure 10 series.
pub fn report(rows: &[E4Row]) -> Table {
    let mut t = Table::new(
        "E4 / Figure 10 — indexing in a static parameter space (relative to Array)",
        &["# Bases", "Array", "Normalization", "Sorted-SID", "Pairings (arr/norm/sid)"],
    );
    t.mark_timing(&["Array", "Normalization", "Sorted-SID"]);
    for r in rows {
        t.row(vec![
            r.n_bases.to_string(),
            "1.00".into(),
            format!("{:.3}", r.relative[1]),
            format!("{:.3}", r.relative[2]),
            format!("{}/{}/{}", r.pairings[0], r.pairings[1], r.pairings[2]),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexes_prune_pairings() {
        let rows = run(Scale { n_samples: 60, m: 10, space_divisor: 4, threads: 1 });
        for r in &rows {
            // Array tests every basis per lookup; normalization buckets are
            // exact up to quantization and prune aggressively. Sorted-SID
            // buckets are coarser (classes of SynthBasis's quadratic family
            // can share value orderings) but must still beat the scan.
            assert!(
                r.pairings[1] < r.pairings[0] / 4,
                "normalization pruning weak at {} bases: {:?}",
                r.n_bases,
                r.pairings
            );
            assert!(
                r.pairings[2] < r.pairings[0],
                "sorted-sid pruning absent at {} bases: {:?}",
                r.n_bases,
                r.pairings
            );
        }
        // Pruning advantage must widen with basis count.
        let first = &rows[0];
        let last = rows.last().unwrap();
        assert!(last.pairings[0] > first.pairings[0]);
    }
}
