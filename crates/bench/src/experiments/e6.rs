//! E6 — Figure 12: Markov-jump performance vs branching factor.
//!
//! `MarkovBranch` diverges at a configurable per-step probability; the chain
//! is run for 128 steps and naive stepping is compared to the Markov-jump
//! algorithm. Paper findings: Jigsaw wins while branching is below roughly
//! one-in-twenty steps and degrades to naive beyond that.
//!
//! Also measures the §6.4 retention ablation (`KeepAll` vs `KeepLast`).

use std::time::Instant;

use jigsaw_blackbox::models::MarkovBranch;
use jigsaw_blackbox::Workload;
use jigsaw_core::markov::{run_naive_threaded, BasisRetention, MarkovJumpConfig, MarkovJumpRunner};
use jigsaw_prng::Seed;

use crate::table::Table;
use crate::Scale;

use super::MASTER_SEED;

/// One branching-factor measurement.
#[derive(Debug, Clone)]
pub struct E6Row {
    /// Per-step divergence probability.
    pub branching: f64,
    /// Naive ms/step.
    pub naive_ms: f64,
    /// Jigsaw (KeepAll) ms/step.
    pub jigsaw_ms: f64,
    /// Jigsaw (KeepLast retention) ms/step.
    pub keep_last_ms: f64,
    /// Naive model invocations.
    pub naive_invocations: u64,
    /// Jigsaw model invocations.
    pub jigsaw_invocations: u64,
}

/// Chain length (paper: 128 steps).
pub const STEPS: usize = 128;

/// Run the branching sweep.
pub fn run(scale: Scale) -> Vec<E6Row> {
    let branchings: &[f64] = if scale.space_divisor > 1 {
        &[1e-5, 1e-3, 1e-2, 0.1]
    } else {
        &[1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 0.05, 0.1]
    };
    let n = scale.n_samples.max(100);
    let m = scale.m;
    let master = Seed(MASTER_SEED);

    let mut rows = Vec::new();
    for &p in branchings {
        let model = MarkovBranch::new(p).with_work(Workload(2000));
        let t0 = Instant::now();
        // The naive baseline's O(n)-per-step walk is embarrassingly parallel
        // (per-instance streams keep it bit-identical), so it gets the
        // thread budget. The jump runner stays sequential on purpose: its
        // quiet-region cost is O(m)=10 outputs per step on a dependent
        // chain — nothing to parallelize — so `--threads` can only *shrink*
        // the reported Jigsaw advantage, never inflate it.
        let (_, naive_stats) = run_naive_threaded(&model, master, n, STEPS, scale.threads);
        let naive_ms = t0.elapsed().as_secs_f64() * 1e3 / STEPS as f64;

        let cfg = MarkovJumpConfig::paper().with_n(n).with_m(m);
        let t1 = Instant::now();
        let jump = MarkovJumpRunner::new(cfg).run(&model, master, STEPS);
        let jigsaw_ms = t1.elapsed().as_secs_f64() * 1e3 / STEPS as f64;

        let t2 = Instant::now();
        let _ = MarkovJumpRunner::new(cfg.with_retention(BasisRetention::KeepLast))
            .run(&model, master, STEPS);
        let keep_last_ms = t2.elapsed().as_secs_f64() * 1e3 / STEPS as f64;

        rows.push(E6Row {
            branching: p,
            naive_ms,
            jigsaw_ms,
            keep_last_ms,
            naive_invocations: naive_stats.model_invocations,
            jigsaw_invocations: jump.stats.model_invocations,
        });
    }
    rows
}

/// Render the Figure 12 series.
pub fn report(rows: &[E6Row]) -> Table {
    let mut t = Table::new(
        "E6 / Figure 12 — Markov process performance (128 steps)",
        &[
            "Branching",
            "Naive ms/step",
            "Jigsaw ms/step",
            "KeepLast ms/step",
            "Invocations naive/jigsaw",
        ],
    );
    t.mark_timing(&["Naive ms/step", "Jigsaw ms/step", "KeepLast ms/step"]);
    for r in rows {
        t.row(vec![
            format!("{:.0e}", r.branching),
            format!("{:.3}", r.naive_ms),
            format!("{:.3}", r.jigsaw_ms),
            format!("{:.3}", r.keep_last_ms),
            format!("{}/{}", r.naive_invocations, r.jigsaw_invocations),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_figure12() {
        let rows = run(Scale { n_samples: 200, m: 10, space_divisor: 4, threads: 1 });
        // Low branching: Jigsaw saves most invocations.
        let low = &rows[0];
        assert!(
            low.naive_invocations as f64 / low.jigsaw_invocations as f64 > 4.0,
            "low-branching savings missing: {low:?}"
        );
        // Savings monotonically shrink with branching.
        let ratios: Vec<f64> =
            rows.iter().map(|r| r.naive_invocations as f64 / r.jigsaw_invocations as f64).collect();
        for w in ratios.windows(2) {
            assert!(w[0] >= w[1] * 0.8, "savings should shrink with branching: {ratios:?}");
        }
        // High branching: little or no advantage (the crossover).
        assert!(*ratios.last().unwrap() < ratios[0] / 2.0, "no crossover trend: {ratios:?}");
    }
}
