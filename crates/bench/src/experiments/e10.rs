//! E10 — multi-client session server sharing one warm basis store (this
//! reproduction's extension, not a paper figure).
//!
//! The whole point of the session server is that expensive stochastic
//! state is paid for once and amortized across users (cf. Stochastic
//! SketchRefine's argument that in-database decision-making under
//! uncertainty only reaches interactive latencies when stochastic state is
//! shared). This experiment measures exactly that: a loopback server gets
//! one **cold** client — whose `SWEEP` pays the full Monte Carlo ramp —
//! followed by several **warm** clients compiling the same scenario over
//! open concurrent connections. Each warm client's sweep must report
//! `warm_hits == points` (it evaluates fingerprint worlds only), and its
//! per-estimate latency is a read of the shared store rather than a
//! simulation.
//!
//! Every deterministic column (worlds, warm hits, estimate provenance) is
//! identical run to run; only the latency columns are wall-clock.
//!
//! The second half (ISSUE 6) is the **connection ladder**: after the store
//! is warm, N concurrent scripted clients — N climbing to 400 — connect,
//! compile, and estimate against a server running a handful of readiness
//! event loops. Every client's estimates must be bit-identical to every
//! other's (same store, same seeds), and the reported metric is mean
//! µs/estimate as a function of connection count.

use std::time::Instant;

use jigsaw_blackbox::models::SynthBasis;
use jigsaw_blackbox::Workload;
use jigsaw_core::JigsawConfig;
use jigsaw_pdb::Catalog;
use jigsaw_server::{default_catalog, Client, JigsawServer, Request, Response, ServerHandle};

use crate::table::{fmt_secs, Table};
use crate::Scale;

/// One client's leg against the shared server.
#[derive(Debug, Clone)]
pub struct E10Row {
    /// Client label (`C1` is the cold payer).
    pub client: String,
    /// `"cold"` or `"warm"`.
    pub leg: &'static str,
    /// Worlds the client's `SWEEP` evaluated.
    pub sweep_worlds: u64,
    /// Points the sweep served from pre-existing (another client's) bases.
    pub sweep_warm_hits: usize,
    /// Points the sweep fully simulated.
    pub sweep_full_sims: usize,
    /// Wall-clock seconds for the sweep.
    pub sweep_secs: f64,
    /// `ESTIMATE` probes issued after the sweep.
    pub estimates: usize,
    /// How many of them were served from a mapped basis.
    pub mapped: usize,
    /// Mean wall-clock seconds per estimate (round trip over loopback).
    pub est_secs: f64,
}

/// One rung of the connection ladder: N concurrent clients estimating
/// against the warm store through the readiness-driven connection layer.
#[derive(Debug, Clone)]
pub struct E10Ladder {
    /// Concurrent client connections in this rung.
    pub conns: usize,
    /// `ESTIMATE` probes each client issued.
    pub estimates_per_client: usize,
    /// Whether every estimate (across every client) was served from a
    /// mapped basis — i.e. the rung ran all-warm.
    pub all_mapped: bool,
    /// Mean wall-clock seconds per estimate, averaged over all clients.
    pub est_secs: f64,
}

/// Per-invocation model cost, as in E2/E8/E9: emulates the expensive
/// external models the paper targets so the cold-vs-warm gap stays honest.
const MODEL_WORK: Workload = Workload(300);

/// Number of clients attached after the cold one.
const WARM_CLIENTS: usize = 3;

/// The default catalog extended with the experiment's workload: a
/// work-weighted `SynthBasis` whose basis count is pinned at 10% of the
/// space — the same shape as E5/E9, so cold sweeps pay a real completion
/// bill that warm clients then skip.
fn catalog_with_work(points: usize) -> Catalog {
    let mut catalog = default_catalog();
    catalog.add_function_as(
        "Synth",
        std::sync::Arc::new(SynthBasis::new((points / 10).max(1)).with_work(MODEL_WORK)),
    );
    catalog
}

fn drive_client(
    addr: std::net::SocketAddr,
    label: &str,
    leg: &'static str,
    src: &str,
    probes: &[usize],
) -> (Client, E10Row) {
    let mut client = Client::connect(addr).expect("connect to loopback server");
    match client.request(&Request::Compile { src: src.into() }).expect("compile") {
        Response::Compiled { .. } => {}
        other => panic!("{label}: unexpected compile reply {other:?}"),
    }
    let t0 = Instant::now();
    let swept = client.request(&Request::Sweep).expect("sweep");
    let sweep_secs = t0.elapsed().as_secs_f64();
    let (sweep_worlds, sweep_warm_hits, sweep_full_sims) = match swept {
        Response::Swept { worlds, warm_hits, full_sims, .. } => (worlds, warm_hits, full_sims),
        other => panic!("{label}: unexpected sweep reply {other:?}"),
    };
    let mut mapped = 0usize;
    let t1 = Instant::now();
    for &p in probes {
        match client.request(&Request::Estimate { point: p, col: 0 }).expect("estimate") {
            Response::Estimated { source, .. } => {
                if source == jigsaw_core::interactive::EstimateSource::MappedBasis {
                    mapped += 1;
                }
            }
            other => panic!("{label}: unexpected estimate reply {other:?}"),
        }
    }
    let est_secs = t1.elapsed().as_secs_f64() / probes.len().max(1) as f64;
    let row = E10Row {
        client: label.to_string(),
        leg,
        sweep_worlds,
        sweep_warm_hits,
        sweep_full_sims,
        sweep_secs,
        estimates: probes.len(),
        mapped,
        est_secs,
    };
    (client, row)
}

/// One ladder rung: `n` concurrent client threads, each connect, compile,
/// and estimate every probe, with every reply's bits cross-checked against
/// client 0's. Returns the rung's row.
fn ladder_rung(handle: &ServerHandle, n: usize, src: &str, probes: &[usize]) -> E10Ladder {
    let addr = handle.local_addr();
    let threads: Vec<_> = (0..n)
        .map(|_| {
            let src = src.to_string();
            let probes = probes.to_vec();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect to loopback server");
                match client.request(&Request::Compile { src }).expect("compile") {
                    Response::Compiled { .. } => {}
                    other => panic!("ladder client: unexpected compile reply {other:?}"),
                }
                let mut replies = Vec::with_capacity(probes.len());
                let t0 = Instant::now();
                for &p in &probes {
                    match client.request(&Request::Estimate { point: p, col: 0 }).expect("estimate")
                    {
                        Response::Estimated {
                            point,
                            expectation_bits,
                            std_dev_bits,
                            source,
                            ..
                        } => replies.push((
                            point,
                            expectation_bits,
                            std_dev_bits,
                            source == jigsaw_core::interactive::EstimateSource::MappedBasis,
                        )),
                        other => panic!("ladder client: unexpected estimate reply {other:?}"),
                    }
                }
                (replies, t0.elapsed().as_secs_f64())
            })
        })
        .collect();
    let results: Vec<_> = threads.into_iter().map(|t| t.join().expect("ladder client")).collect();
    // Bit-identity across every concurrent client: the shared warm store
    // plus seed-addressed worlds leave nothing for concurrency to perturb.
    let reference = &results[0].0;
    for (replies, _) in &results[1..] {
        assert_eq!(replies, reference, "concurrent clients diverged at {n} connections");
    }
    let all_mapped = results.iter().all(|(replies, _)| replies.iter().all(|r| r.3));
    let est_secs = results.iter().map(|(_, secs)| secs / probes.len().max(1) as f64).sum::<f64>()
        / n.max(1) as f64;
    E10Ladder { conns: n, estimates_per_client: probes.len(), all_mapped, est_secs }
}

/// Run the multi-client experiment on an in-process loopback server:
/// first the cold/warm client legs, then the connection ladder over the
/// now-warm store.
pub fn run(scale: Scale) -> (Vec<E10Row>, Vec<E10Ladder>) {
    let points = (800 / scale.space_divisor).max(20);
    let handle = JigsawServer::builder()
        .config(
            JigsawConfig::paper()
                .with_n_samples(scale.n_samples)
                .with_fingerprint_len(scale.m)
                .with_threads(scale.threads),
        )
        .catalog(catalog_with_work(points))
        .conn_threads(4)
        .bind("127.0.0.1:0")
        .expect("bind loopback")
        .serve()
        .expect("start server");

    let src = format!(
        "DECLARE PARAMETER @p AS RANGE 0 TO {} STEP BY 1; \
         SELECT Synth(@p) AS out INTO results;",
        points - 1
    );
    let probes: Vec<usize> = (0..points).step_by(11).collect();

    let mut rows = Vec::new();
    // C1 pays the cold ramp; its connection stays open while the warm
    // clients attach, so the store is genuinely concurrently shared.
    let (c1, cold_row) = drive_client(handle.local_addr(), "C1", "cold", &src, &probes);
    rows.push(cold_row);
    let mut open = vec![c1];
    for i in 0..WARM_CLIENTS {
        let label = format!("C{}", i + 2);
        let (client, row) = drive_client(handle.local_addr(), &label, "warm", &src, &probes);
        rows.push(row);
        open.push(client);
    }
    drop(open);

    // The ladder: the store is warm, so each rung measures pure
    // connection-layer throughput. Ten probes per client keep a 400-client
    // rung at 4000 round trips.
    let ladder_probes: Vec<usize> = probes.iter().copied().take(10).collect();
    let rungs: &[usize] =
        if scale.space_divisor > 1 { &[4, 25, 100] } else { &[4, 50, 100, 200, 400] };
    let ladder = rungs.iter().map(|&n| ladder_rung(&handle, n, &src, &ladder_probes)).collect();

    handle.shutdown().expect("server shutdown");
    (rows, ladder)
}

/// Render the connection-ladder table (µs/estimate vs connection count).
pub fn report_ladder(rungs: &[E10Ladder]) -> Table {
    let mut t = Table::new(
        "E10 — connection ladder: concurrent clients vs µs/estimate (warm store)",
        &["Connections", "Estimates/client", "All mapped", "us/estimate"],
    );
    t.mark_timing(&["us/estimate"]);
    for r in rungs {
        t.row(vec![
            r.conns.to_string(),
            r.estimates_per_client.to_string(),
            r.all_mapped.to_string(),
            format!("{:.1}", r.est_secs * 1e6),
        ]);
    }
    t
}

/// Render the per-client table.
pub fn report(rows: &[E10Row]) -> Table {
    let mut t = Table::new(
        "E10 — session server: 1 cold client vs warm clients sharing one store",
        &[
            "Client",
            "Leg",
            "Sweep worlds",
            "Sweep warm hits",
            "Sweep full sims",
            "Sweep time",
            "Estimates",
            "Mapped",
            "s/estimate",
        ],
    );
    t.mark_timing(&["Sweep time", "s/estimate"]);
    for r in rows {
        t.row(vec![
            r.client.clone(),
            r.leg.to_string(),
            r.sweep_worlds.to_string(),
            r.sweep_warm_hits.to_string(),
            r.sweep_full_sims.to_string(),
            fmt_secs(r.sweep_secs),
            r.estimates.to_string(),
            r.mapped.to_string(),
            fmt_secs(r.est_secs),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    const MICRO: Scale = Scale { n_samples: 60, m: 10, space_divisor: 8, threads: 1 };

    #[test]
    fn warm_clients_ride_the_cold_clients_store() {
        let (rows, ladder) = run(MICRO);
        assert_eq!(rows.len(), 1 + WARM_CLIENTS);
        let cold = &rows[0];
        assert_eq!(cold.leg, "cold");
        assert_eq!(cold.sweep_warm_hits, 0, "nobody to ride on");
        assert!(cold.sweep_full_sims > 0);
        for warm in &rows[1..] {
            assert_eq!(warm.leg, "warm");
            // The acceptance property: a warm sweep runs no completion
            // simulations — every point rides bases the cold client built.
            assert_eq!(warm.sweep_full_sims, 0, "{}", warm.client);
            assert!(warm.sweep_warm_hits > 0, "{}", warm.client);
            assert!(warm.sweep_worlds < cold.sweep_worlds, "{}", warm.client);
            // And every post-sweep estimate is served from a mapped basis.
            assert_eq!(warm.mapped, warm.estimates, "{}", warm.client);
        }
        // Deterministic columns agree across warm clients.
        for pair in rows[1..].windows(2) {
            assert_eq!(pair[0].sweep_worlds, pair[1].sweep_worlds);
            assert_eq!(pair[0].sweep_warm_hits, pair[1].sweep_warm_hits);
        }
        // The ladder climbed to at least 100 concurrent connections, every
        // rung all-warm (ladder_rung itself asserts bit-identity).
        assert!(ladder.iter().any(|r| r.conns >= 100), "ladder must reach 100 connections");
        for rung in &ladder {
            assert!(rung.all_mapped, "{} connections: estimate fell off the warm path", rung.conns);
            assert!(rung.est_secs > 0.0);
        }
    }
}
