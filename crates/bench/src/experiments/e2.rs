//! E2 — Figure 8: Jigsaw vs fully exploring the parameter space.
//!
//! Paper setup: Demand over ~5000 points, Capacity over ~8000, Overload over
//! ~8000, MarkovStep over ~2500 steps; 1000 samples per point, fingerprint
//! size 10. Paper observations: Demand collapses to a single basis and runs
//! "almost instantaneously"; Capacity and MarkovStep need only a few bases;
//! Overload is only ~2× faster because its boolean output defeats affine
//! reuse (§6.2).

use std::sync::Arc;
use std::time::Instant;

use jigsaw_blackbox::models::{Capacity, Demand, MarkovStep, Overload};
use jigsaw_blackbox::{Counted, ParamDecl, ParamSpace, Workload};
use jigsaw_core::markov::{run_naive, MarkovJumpConfig, MarkovJumpRunner};
use jigsaw_core::{JigsawConfig, SweepRunner};
use jigsaw_pdb::BlackBoxSim;
use jigsaw_prng::{Seed, SeedSet};

use crate::table::{fmt_ratio, fmt_secs, Table};
use crate::Scale;

use super::MASTER_SEED;

/// One bar pair of Figure 8.
#[derive(Debug, Clone)]
pub struct E2Row {
    /// Model name.
    pub model: String,
    /// Parameter points (or chain steps).
    pub points: usize,
    /// Wall-clock seconds, naive full evaluation.
    pub full_secs: f64,
    /// Wall-clock seconds, Jigsaw.
    pub jigsaw_secs: f64,
    /// Black-box invocations, naive.
    pub full_invocations: u64,
    /// Black-box invocations, Jigsaw.
    pub jigsaw_invocations: u64,
    /// Basis distributions Jigsaw ended with.
    pub bases: usize,
}

/// Synthetic per-invocation cost: keeps the comparison honest when the Rust
/// models are much cheaper than the original external models.
const MODEL_WORK: Workload = Workload(300);

fn sweep_case(
    name: &str,
    bb: Arc<dyn jigsaw_blackbox::BlackBox>,
    space: ParamSpace,
    scale: Scale,
    tol: f64,
) -> E2Row {
    // One shared config behind an Arc: both runners reference it, no deep
    // clone per leg.
    let cfg = Arc::new(
        JigsawConfig::paper()
            .with_n_samples(scale.n_samples)
            .with_fingerprint_len(scale.m)
            .with_threads(scale.threads),
    );
    let seeds = SeedSet::new(MASTER_SEED);
    let counted = Arc::new(Counted::new(bb));
    let counter = counted.counter();
    let sim = BlackBoxSim::new(counted, space, seeds);

    counter.reset();
    let t0 = Instant::now();
    let naive = SweepRunner::naive(Arc::clone(&cfg)).run(&sim).expect("naive sweep");
    let full_secs = t0.elapsed().as_secs_f64();
    let full_invocations = counter.get();

    counter.reset();
    let t1 = Instant::now();
    let fast = SweepRunner::new(cfg).run(&sim).expect("jigsaw sweep");
    let jigsaw_secs = t1.elapsed().as_secs_f64();
    let jigsaw_invocations = counter.get();

    // Sanity: expectations agree within the model's reuse tolerance.
    // Affine-exact models (Demand) must match per point to rounding error.
    // Models with discrete-valued outputs (Capacity, Overload) legitimately
    // merge near-identical structure patterns that an m-entry fingerprint
    // cannot distinguish — the §6.2 error source quantified by experiment
    // E7 — so single points near a regime crossing can be off by the full
    // event rate; only the error *distribution* is bounded for them.
    if tol <= 1e-3 {
        for (a, b) in naive.points.iter().zip(&fast.points) {
            let (x, y) = (a.metrics[0].expectation(), b.metrics[0].expectation());
            assert!(
                (x - y).abs() <= tol * x.abs().max(1.0),
                "{name}: mismatch at point {} ({x} vs {y})",
                a.point_idx
            );
        }
    } else {
        let scale_ref =
            naive.points.iter().map(|p| p.metrics[0].expectation().abs()).fold(1.0f64, f64::max);
        let mean_abs_dev = naive
            .points
            .iter()
            .zip(&fast.points)
            .map(|(a, b)| (a.metrics[0].expectation() - b.metrics[0].expectation()).abs())
            .sum::<f64>()
            / naive.points.len() as f64;
        assert!(
            mean_abs_dev <= tol * scale_ref,
            "{name}: mean deviation {mean_abs_dev} exceeds {tol} of scale {scale_ref}"
        );
    }

    E2Row {
        model: name.to_string(),
        points: naive.points.len(),
        full_secs,
        jigsaw_secs,
        full_invocations,
        jigsaw_invocations,
        bases: fast.stats.bases_per_column[0],
    }
}

/// Run all four Figure 8 workloads.
pub fn run(scale: Scale) -> Vec<E2Row> {
    let div = scale.space_divisor as i64;
    let mut rows = Vec::new();

    // Demand: ~5000 points (365 days × 13 feature dates at full scale).
    // Affine-exact: reuse must be bit-faithful.
    rows.push(sweep_case(
        "Demand",
        Arc::new(Demand::enterprise().with_work(MODEL_WORK)),
        ParamSpace::new(vec![
            ParamDecl::range("day", 0, 364 / div, 1),
            ParamDecl::range("feature", 0, 48, 4),
        ]),
        scale,
        1e-6,
    ));

    // Capacity: ~8800 points (52 weeks × 13 × 13 purchase grids). Discrete
    // mixture outputs: fingerprint-pattern merging bounds accuracy (§6.2).
    // Scaling shrinks the purchase grids, never the week axis — the
    // demand/capacity crossing near week 25 is what makes Overload hard.
    rows.push(sweep_case(
        "Capacity",
        Arc::new(Capacity::enterprise().with_work(MODEL_WORK)),
        ParamSpace::new(vec![
            ParamDecl::range("week", 0, 51, 1),
            ParamDecl::range("p1", 0, 48, 4 * div),
            ParamDecl::range("p2", 0, 48, 4 * div),
        ]),
        scale,
        0.02,
    ));

    // Overload: same space as Capacity; boolean output limits reuse.
    rows.push(sweep_case(
        "Overload",
        Arc::new(Overload::enterprise().with_work(MODEL_WORK)),
        ParamSpace::new(vec![
            ParamDecl::range("week", 0, 51, 1),
            ParamDecl::range("p1", 0, 48, 4 * div),
            ParamDecl::range("p2", 0, 48, 4 * div),
        ]),
        scale,
        0.02,
    ));

    // MarkovStep: ~2500 chain steps.
    let steps = 2500 / scale.space_divisor;
    let model = MarkovStep::enterprise().with_work(MODEL_WORK);
    let n = scale.n_samples;
    let t0 = Instant::now();
    let (naive_out, naive_stats) = run_naive(&model, Seed(MASTER_SEED), n, steps);
    let full_secs = t0.elapsed().as_secs_f64();
    let jump_cfg = MarkovJumpConfig::paper().with_n(n).with_m(scale.m);
    let t1 = Instant::now();
    let jump = MarkovJumpRunner::new(jump_cfg).run(&model, Seed(MASTER_SEED), steps);
    let jigsaw_secs = t1.elapsed().as_secs_f64();
    let mean_naive = naive_out.iter().sum::<f64>() / n as f64;
    let mean_jump = jump.outputs.iter().sum::<f64>() / n as f64;
    assert!(
        (mean_naive - mean_jump).abs() / mean_naive.abs().max(1.0) < 0.02,
        "MarkovStep mean drift: {mean_naive} vs {mean_jump}"
    );
    rows.push(E2Row {
        model: "MarkovStep".to_string(),
        points: steps,
        full_secs,
        jigsaw_secs,
        full_invocations: naive_stats.model_invocations,
        jigsaw_invocations: jump.stats.model_invocations,
        bases: jump.stats.estimator_rebuilds,
    });

    rows
}

/// Render the Figure 8 table.
pub fn report(rows: &[E2Row]) -> Table {
    let mut t = Table::new(
        "E2 / Figure 8 — Jigsaw vs fully exploring the parameter space",
        &[
            "Model",
            "Points",
            "Full eval",
            "Jigsaw",
            "Speedup",
            "Invocations full",
            "Invocations jigsaw",
            "Bases",
        ],
    );
    t.mark_timing(&["Full eval", "Jigsaw", "Speedup"]);
    for r in rows {
        t.row(vec![
            r.model.clone(),
            r.points.to_string(),
            fmt_secs(r.full_secs),
            fmt_secs(r.jigsaw_secs),
            fmt_ratio(r.full_secs / r.jigsaw_secs),
            r.full_invocations.to_string(),
            r.jigsaw_invocations.to_string(),
            r.bases.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_figure8() {
        let rows = run(Scale { n_samples: 100, m: 10, space_divisor: 8, threads: 1 });
        let by_name = |n: &str| rows.iter().find(|r| r.model == n).unwrap();

        // Demand: very few bases, huge invocation savings.
        let d = by_name("Demand");
        assert!(d.bases <= 3, "Demand bases {}", d.bases);
        assert!(d.full_invocations > 5 * d.jigsaw_invocations);

        // Capacity: a handful of bases, large savings.
        let c = by_name("Capacity");
        assert!(c.bases <= 40, "Capacity bases {}", c.bases);
        assert!(c.full_invocations > 3 * c.jigsaw_invocations);

        // Overload: reuse exists but is weaker than Capacity's.
        let o = by_name("Overload");
        let o_ratio = o.full_invocations as f64 / o.jigsaw_invocations as f64;
        let c_ratio = c.full_invocations as f64 / c.jigsaw_invocations as f64;
        assert!(o_ratio > 1.2, "Overload should still save something");
        assert!(c_ratio > o_ratio, "boolean output must hurt Overload reuse");

        // MarkovStep: large invocation savings.
        let m = by_name("MarkovStep");
        assert!(m.full_invocations > 5 * m.jigsaw_invocations);
    }
}
