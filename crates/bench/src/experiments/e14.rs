//! E14 — observability overhead (ISSUE 10's acceptance gate, not a paper
//! figure).
//!
//! The `jigsaw-obs` instruments ride the optimizer's wave hot path, the
//! worker pool, the shared store, and every server request. Their contract
//! is twofold: results are **bit-identical** whether recording is enabled
//! or disabled, and the enabled instruments cost under 2% of wall clock
//! against the runtime-disabled baseline ([`jigsaw_obs::set_enabled`] is
//! the "compiled to no-ops" arm — one binary, one code path, the branch on
//! a relaxed load being all that differs).
//!
//! Both workloads are measured **interleaved** — disabled, enabled,
//! disabled, enabled … — taking the minimum per arm over [`ROUNDS`]
//! rounds, so slow outliers (scheduler preemption on a shared CI box) fall
//! out of both arms symmetrically. The overhead column is
//! `enabled/disabled − 1` of those minima and can legitimately come out
//! negative in the noise floor.

use std::sync::Arc;
use std::time::Instant;

use jigsaw_blackbox::models::SynthBasis;
use jigsaw_blackbox::{ParamDecl, ParamSpace, Workload};
use jigsaw_core::{JigsawConfig, SweepResult, SweepRunner};
use jigsaw_pdb::BlackBoxSim;
use jigsaw_prng::SeedSet;
use jigsaw_server::{Client, JigsawServer, Request, Response};

use crate::table::{fmt_secs, Table};
use crate::Scale;

use super::MASTER_SEED;

/// One workload's enabled-vs-disabled comparison.
#[derive(Debug, Clone)]
pub struct E14Row {
    /// Workload label.
    pub workload: &'static str,
    /// Interleaved measurement rounds per arm.
    pub rounds: usize,
    /// Minimum wall-clock seconds with instruments disabled.
    pub disabled_secs: f64,
    /// Minimum wall-clock seconds with instruments enabled.
    pub enabled_secs: f64,
    /// `enabled/disabled − 1` (negative means the difference drowned in
    /// noise — the instruments cannot speed anything up).
    pub overhead: f64,
    /// Whether the two arms produced bit-identical results.
    pub identical: bool,
}

/// Interleaved rounds per arm.
pub const ROUNDS: usize = 5;

/// Sweep-plus-estimate passes inside one timed server round. Loopback
/// round-trips are scheduler-handoff-bound, so one pass is far too short
/// to time; tens of milliseconds per round lets the handoff jitter average
/// out inside the round instead of dominating the comparison.
pub const PASSES: usize = 50;

/// Run `measure` [`ROUNDS`] times per arm, alternating disabled/enabled,
/// and return the per-arm minima. Leaves the global registry enabled.
fn min_interleaved(mut measure: impl FnMut(bool) -> f64, rounds: usize) -> (f64, f64) {
    let mut best = [f64::INFINITY; 2];
    // One discarded warm-up pass so cold-start costs (page cache, lazy
    // statics, the registry mutex on first instrument lookup) fall on
    // neither arm.
    jigsaw_obs::set_enabled(true);
    measure(true);
    for round in 0..rounds {
        // Alternate which arm leads so any within-round warm-up advantage
        // of going second cancels instead of biasing one arm.
        let first = round % 2 == 0;
        for arm in [first, !first] {
            jigsaw_obs::set_enabled(arm);
            best[arm as usize] = best[arm as usize].min(measure(arm));
        }
    }
    jigsaw_obs::set_enabled(true);
    (best[0], best[1])
}

/// The E8-shape batch sweep: `SynthBasis` with the basis pinned at 10% of
/// the space and synthetic per-invocation work, exercising the executor's
/// per-wave phase histograms and the store instruments.
fn sweep_workload(scale: Scale) -> E14Row {
    let points: usize = if scale.space_divisor > 1 { 400 } else { 2000 };
    let bb = Arc::new(SynthBasis::new(points / 10).with_work(Workload(300)));
    let space = ParamSpace::new(vec![ParamDecl::range("p", 0, points as i64 - 1, 1)]);
    let sim = BlackBoxSim::new(bb, space, SeedSet::new(MASTER_SEED));
    let cfg = JigsawConfig::paper()
        .with_n_samples(scale.n_samples)
        .with_fingerprint_len(scale.m)
        .with_threads(scale.threads);
    let mut arms: [Option<SweepResult>; 2] = [None, None];
    let (disabled_secs, enabled_secs) = min_interleaved(
        |enabled| {
            let t0 = Instant::now();
            let sweep = SweepRunner::new(cfg.clone()).run(&sim).expect("sweep");
            let secs = t0.elapsed().as_secs_f64();
            arms[enabled as usize].get_or_insert(sweep);
            secs
        },
        ROUNDS,
    );
    let identical = match (&arms[0], &arms[1]) {
        (Some(a), Some(b)) => a.points == b.points && a.stats.counters() == b.stats.counters(),
        _ => false,
    };
    E14Row {
        workload: "batch sweep (E8 shape)",
        rounds: ROUNDS,
        disabled_secs,
        enabled_secs,
        overhead: enabled_secs / disabled_secs - 1.0,
        identical,
    }
}

/// The E10-shape server session: a loopback server, one client paying a
/// cold `SWEEP` then estimating every point — exercising the per-verb
/// request instruments, the event-loop gauges, and the session counters on
/// top of the core set.
fn server_workload(scale: Scale) -> E14Row {
    let weeks: usize = if scale.space_divisor > 1 { 30 } else { 60 };
    let src = format!(
        "DECLARE PARAMETER @week AS RANGE 0 TO {} STEP BY 1; \
         SELECT Demand(@week, 5) AS demand INTO results;",
        weeks - 1
    );
    let cfg = JigsawConfig::paper()
        .with_n_samples(scale.n_samples)
        .with_fingerprint_len(scale.m)
        .with_threads(scale.threads);
    let mut arms: [Option<Vec<(u64, u64)>>; 2] = [None, None];
    let (disabled_secs, enabled_secs) = min_interleaved(
        |enabled| {
            // A fresh server per round: every arm pays the same cold ramp.
            let handle = JigsawServer::builder()
                .config(cfg.clone())
                .master_seed(MASTER_SEED)
                .bind("127.0.0.1:0")
                .expect("bind loopback")
                .serve()
                .expect("serve");
            let mut client = Client::connect(handle.local_addr()).expect("connect");
            match client.request(&Request::Compile { src: src.clone() }).expect("compile") {
                Response::Compiled { .. } => {}
                other => panic!("unexpected compile reply {other:?}"),
            }
            // Several passes per round: one pass is sub-millisecond on
            // loopback, far below what a 2% gate can resolve over
            // syscall-latency noise.
            let mut bits = Vec::with_capacity(weeks * PASSES);
            let t0 = Instant::now();
            for _ in 0..PASSES {
                match client.request(&Request::Sweep).expect("sweep") {
                    Response::Swept { .. } => {}
                    other => panic!("unexpected sweep reply {other:?}"),
                }
                for point in 0..weeks {
                    match client.request(&Request::Estimate { point, col: 0 }).expect("estimate") {
                        Response::Estimated { expectation_bits, std_dev_bits, .. } => {
                            bits.push((expectation_bits, std_dev_bits));
                        }
                        other => panic!("unexpected estimate reply {other:?}"),
                    }
                }
            }
            let secs = t0.elapsed().as_secs_f64();
            assert_eq!(client.request(&Request::Quit).expect("quit"), Response::Bye);
            handle.shutdown().expect("shutdown");
            arms[enabled as usize].get_or_insert(bits);
            secs
        },
        ROUNDS,
    );
    let identical = match (&arms[0], &arms[1]) {
        (Some(a), Some(b)) => a == b,
        _ => false,
    };
    E14Row {
        workload: "server session (E10 shape)",
        rounds: ROUNDS,
        disabled_secs,
        enabled_secs,
        overhead: enabled_secs / disabled_secs - 1.0,
        identical,
    }
}

/// Run both workloads.
pub fn run(scale: Scale) -> Vec<E14Row> {
    vec![sweep_workload(scale), server_workload(scale)]
}

/// Render the overhead table.
pub fn report(rows: &[E14Row]) -> Table {
    let mut t = Table::new(
        "E14 — observability overhead: instruments enabled vs runtime-disabled \
         (min over interleaved rounds; gate: enabled ≤ 2% over disabled)",
        &["Workload", "Rounds", "Disabled", "Enabled", "Overhead", "Identical"],
    );
    t.mark_timing(&["Disabled", "Enabled", "Overhead"]);
    for r in rows {
        t.row(vec![
            r.workload.to_string(),
            r.rounds.to_string(),
            fmt_secs(r.disabled_secs),
            fmt_secs(r.enabled_secs),
            format!("{:+.2}%", r.overhead * 100.0),
            if r.identical { "yes".into() } else { "NO".into() },
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The determinism half of the contract, at smoke scale: toggling the
    /// instruments must not move a single result bit in either workload.
    #[test]
    fn results_are_bit_identical_across_the_toggle() {
        let rows = run(Scale { n_samples: 30, m: 10, space_divisor: 8, threads: 1 });
        assert!(jigsaw_obs::enabled(), "E14 leaves the registry enabled");
        for r in &rows {
            assert!(r.identical, "{}: toggling observability moved result bits", r.workload);
            assert!(r.disabled_secs > 0.0 && r.enabled_secs > 0.0);
        }
    }

    /// The wall-clock half: under 2% overhead at quick scale, best of
    /// three attempts. Scheduler noise on a shared runner is one-sided
    /// (interference only ever slows an arm down) while real instrument
    /// cost is systematic, so one clean attempt certifies the gate and a
    /// genuine regression fails every attempt. Timing-sensitive, so it is
    /// `#[ignore]`d in the default (parallel, debug) test run; CI runs it
    /// serially in release:
    /// `cargo test -p jigsaw-bench --release e14 -- --ignored --test-threads=1`.
    #[test]
    #[ignore = "wall-clock gate; run serially in release (see CI workflow)"]
    fn overhead_gate_under_two_percent() {
        const ATTEMPTS: usize = 3;
        let mut best: Vec<(&'static str, f64)> = Vec::new();
        for _ in 0..ATTEMPTS {
            let rows = run(Scale::QUICK);
            for r in &rows {
                assert!(r.identical, "{}: toggling observability moved result bits", r.workload);
                match best.iter_mut().find(|(w, _)| *w == r.workload) {
                    Some((_, o)) => *o = o.min(r.overhead),
                    None => best.push((r.workload, r.overhead)),
                }
            }
            if best.iter().all(|&(_, o)| o < 0.02) {
                return;
            }
        }
        let report: Vec<String> =
            best.iter().map(|(w, o)| format!("{w}: {:+.2}%", o * 100.0)).collect();
        panic!(
            "enabled instruments stayed over the 2% gate across {ATTEMPTS} attempts ({})",
            report.join(", ")
        );
    }
}
