//! E1 — Figure 7: engine comparison (online/DBMS vs offline/direct).
//!
//! Paper values (s per parameter combination):
//!
//! | Model     | Online (C#+SQL) | Offline (Ruby) |
//! |-----------|-----------------|----------------|
//! | Demand    | 0.1964          | 0.00096        |
//! | Capacity  | 0.84525         | 0.0028         |
//! | Overload  | 5.4625          | 0.092825       |
//! | UserSelect| 34.4            | **252.454**    |
//!
//! Shape under reproduction: the layered engine loses by orders of magnitude
//! on the three model-bound queries, but *wins* on the data-bound
//! `UserSelect` (the inversion in the last row).

use std::sync::Arc;
use std::time::Instant;

use jigsaw_blackbox::models::{Capacity, Demand, Overload};
use jigsaw_blackbox::{ParamDecl, ParamSpace, Workload};
use jigsaw_pdb::{
    AggFunc, AggSpec, Catalog, DbmsEngine, DirectEngine, Expr, Plan, PlanSim, Simulation,
};
use jigsaw_prng::SeedSet;

use crate::table::{fmt_ratio, fmt_secs, Table};
use crate::Scale;

use super::{user_catalog, MASTER_SEED};

/// One row of the Figure 7 reproduction.
#[derive(Debug, Clone)]
pub struct E1Row {
    /// Model name.
    pub model: String,
    /// Seconds per parameter combination on the DBMS (online analog) engine.
    pub dbms_s_pc: f64,
    /// Seconds per parameter combination on the direct (offline analog)
    /// engine.
    pub direct_s_pc: f64,
}

/// Per-invocation setup cost emulating the original online prototype's IPC
/// and SQL interpretation overhead per query invocation.
const SQL_LAYER_SETUP: Workload = Workload(2_000_000);

fn time_sim(sim: &dyn Simulation, n_worlds: usize, points: &[Vec<f64>]) -> f64 {
    let start = Instant::now();
    for p in points {
        let out = sim.eval_worlds(p, 0, n_worlds).expect("simulation failed");
        std::hint::black_box(out);
    }
    start.elapsed().as_secs_f64() / points.len() as f64
}

/// Run the engine comparison.
pub fn run(scale: Scale) -> Vec<E1Row> {
    let seeds = SeedSet::new(MASTER_SEED);
    let mut rows = Vec::new();

    // --- Model-bound scenarios: single-row SELECT over each black box. ---
    let mut catalog = Catalog::new();
    catalog.add_function(Arc::new(Demand::enterprise()));
    catalog.add_function(Arc::new(Capacity::enterprise()));
    catalog.add_function(Arc::new(Overload::enterprise()));
    let catalog = Arc::new(catalog);

    let n_points = (12 / scale.space_divisor).max(2);
    let model_cases: Vec<(&str, Plan, ParamSpace, Vec<Vec<f64>>)> = vec![
        (
            "Demand",
            Plan::OneRow.project(vec![(
                "out",
                Expr::call("Demand", vec![Expr::param("week"), Expr::lit_f(36.0)]),
            )]),
            ParamSpace::new(vec![ParamDecl::range("week", 0, 51, 1)]),
            (0..n_points).map(|i| vec![(i * 4) as f64]).collect(),
        ),
        (
            "Capacity",
            Plan::OneRow.project(vec![(
                "out",
                Expr::call(
                    "Capacity",
                    vec![Expr::param("week"), Expr::lit_f(10.0), Expr::lit_f(30.0)],
                ),
            )]),
            ParamSpace::new(vec![ParamDecl::range("week", 0, 51, 1)]),
            (0..n_points).map(|i| vec![(i * 4) as f64]).collect(),
        ),
        (
            "Overload",
            Plan::OneRow.project(vec![(
                "out",
                Expr::call(
                    "Overload",
                    vec![Expr::param("week"), Expr::lit_f(10.0), Expr::lit_f(30.0)],
                ),
            )]),
            ParamSpace::new(vec![ParamDecl::range("week", 0, 51, 1)]),
            (0..n_points).map(|i| vec![(i * 4) as f64]).collect(),
        ),
    ];

    for (name, plan, space, points) in model_cases {
        let bound = plan.bind(&catalog, &["week".to_string()]).expect("bind");
        let direct = PlanSim::new(
            Arc::new(DirectEngine::new()),
            bound.clone(),
            catalog.clone(),
            space.clone(),
            seeds,
        );
        let dbms = PlanSim::new(
            Arc::new(DbmsEngine::with_setup_cost(SQL_LAYER_SETUP)),
            bound,
            catalog.clone(),
            space,
            seeds,
        );
        rows.push(E1Row {
            model: name.to_string(),
            dbms_s_pc: time_sim(&dbms, scale.n_samples, &points),
            direct_s_pc: time_sim(&direct, scale.n_samples, &points),
        });
    }

    // --- Data-bound scenario: aggregate over the users table. ---
    // The population is NOT shrunk with the scale divisor: the inversion
    // exists precisely because data work dwarfs per-invocation overhead,
    // so the workload must stay data-dominated even in quick runs.
    let n_users = 2000;
    let ucat = Arc::new(user_catalog(n_users));
    let plan = Plan::Scan { table: "users".into() }
        .project(vec![(
            "req",
            Expr::call(
                "UserReq",
                vec![
                    Expr::col("id"),
                    Expr::col("base"),
                    Expr::col("growth"),
                    Expr::col("shape"),
                    Expr::param("week"),
                ],
            ),
        )])
        .aggregate(
            vec![],
            vec![AggSpec { name: "total".into(), func: AggFunc::Sum, arg: Some(Expr::col("req")) }],
        );
    let bound = plan.bind(&ucat, &["week".to_string()]).expect("bind users");
    let space = ParamSpace::new(vec![ParamDecl::range("week", 0, 51, 1)]);
    // The data-bound workload is so much heavier per point that the paper
    // used few parameter combinations; we use 2.
    let points: Vec<Vec<f64>> = vec![vec![0.0], vec![26.0]];
    let n_worlds = scale.n_samples;
    let direct = PlanSim::new(
        Arc::new(DirectEngine::new()),
        bound.clone(),
        ucat.clone(),
        space.clone(),
        seeds,
    );
    let dbms = PlanSim::new(
        Arc::new(DbmsEngine::with_setup_cost(SQL_LAYER_SETUP)),
        bound,
        ucat.clone(),
        space,
        seeds,
    );
    rows.push(E1Row {
        model: "UserSelect".to_string(),
        dbms_s_pc: time_sim(&dbms, n_worlds, &points),
        direct_s_pc: time_sim(&direct, n_worlds, &points),
    });

    rows
}

/// Render the Figure 7 table.
pub fn report(rows: &[E1Row]) -> Table {
    let mut t = Table::new(
        "E1 / Figure 7 — engine comparison (time per parameter combination)",
        &["Model", "Online-analog (DBMS)", "Offline-analog (direct)", "online/offline"],
    );
    t.mark_timing(&["Online-analog (DBMS)", "Offline-analog (direct)", "online/offline"]);
    for r in rows {
        t.row(vec![
            r.model.clone(),
            fmt_secs(r.dbms_s_pc),
            fmt_secs(r.direct_s_pc),
            fmt_ratio(r.dbms_s_pc / r.direct_s_pc),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_figure7() {
        let rows = run(Scale::QUICK);
        assert_eq!(rows.len(), 4);
        // Model-bound rows: the layered engine must be much slower.
        for r in &rows[..3] {
            assert!(
                r.dbms_s_pc > 3.0 * r.direct_s_pc,
                "{}: dbms {} vs direct {}",
                r.model,
                r.dbms_s_pc,
                r.direct_s_pc
            );
        }
        // Data-bound row: the inversion — DBMS wins.
        let us = &rows[3];
        assert!(
            us.dbms_s_pc < us.direct_s_pc,
            "UserSelect inversion missing: dbms {} vs direct {}",
            us.dbms_s_pc,
            us.direct_s_pc
        );
    }
}
