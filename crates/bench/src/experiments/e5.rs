//! E5 — Figure 11: indexing when the parameter space grows with the basis.
//!
//! The basis is pinned at 10% of the parameter space and both grow together.
//! Paper finding: the naive array scan scales linearly with basis size while
//! both indexing strategies scale sub-linearly (near-flat time per point).

use std::sync::Arc;
use std::time::Instant;

use jigsaw_blackbox::models::SynthBasis;
use jigsaw_blackbox::{ParamDecl, ParamSpace, Workload};
use jigsaw_core::{IndexStrategy, JigsawConfig, SweepRunner};
use jigsaw_pdb::BlackBoxSim;
use jigsaw_prng::SeedSet;

use crate::table::Table;
use crate::Scale;

use super::MASTER_SEED;

/// One space-size measurement.
#[derive(Debug, Clone)]
pub struct E5Row {
    /// Number of basis distributions (= points / 10).
    pub n_bases: usize,
    /// Parameter-space size.
    pub points: usize,
    /// Seconds per point, ordered Array / Normalization / Sorted-SID.
    pub s_per_point: [f64; 3],
    /// Candidate pairings tested, same strategy order — the deterministic
    /// work metric behind the wall-clock numbers.
    pub pairings: [u64; 3],
}

/// Run the growing-space indexing comparison.
pub fn run(scale: Scale) -> Vec<E5Row> {
    let sizes: &[usize] = if scale.space_divisor > 1 {
        &[500, 1500, 3000]
    } else {
        &[500, 1000, 2000, 3000, 4000, 5000]
    };
    let strategies = [IndexStrategy::Array, IndexStrategy::Normalization, IndexStrategy::SortedSid];

    let mut rows = Vec::new();
    for &points in sizes {
        let n_bases = points / 10;
        let bb = Arc::new(SynthBasis::new(n_bases).with_work(Workload(100)));
        let space = ParamSpace::new(vec![ParamDecl::range("p", 0, points as i64 - 1, 1)]);
        let sim = BlackBoxSim::new(bb, space, SeedSet::new(MASTER_SEED));
        let mut s = [0.0f64; 3];
        let mut pairings = [0u64; 3];
        for (i, strat) in strategies.iter().enumerate() {
            let cfg = JigsawConfig::paper()
                .with_n_samples(scale.n_samples)
                .with_fingerprint_len(scale.m)
                .with_threads(scale.threads)
                .with_index(*strat);
            let t0 = Instant::now();
            let sweep = SweepRunner::new(cfg).run(&sim).expect("sweep");
            s[i] = t0.elapsed().as_secs_f64() / sweep.points.len() as f64;
            pairings[i] = sweep.stats.pairings_tested;
        }
        rows.push(E5Row { n_bases, points, s_per_point: s, pairings });
    }
    rows
}

/// Render the Figure 11 series.
pub fn report(rows: &[E5Row]) -> Table {
    let mut t = Table::new(
        "E5 / Figure 11 — indexing with basis at 10% of a growing space",
        &["# Bases", "Points", "Array s/pt", "Normalization s/pt", "Sorted-SID s/pt"],
    );
    t.mark_timing(&["Array s/pt", "Normalization s/pt", "Sorted-SID s/pt"]);
    for r in rows {
        t.row(vec![
            r.n_bases.to_string(),
            r.points.to_string(),
            format!("{:.6}", r.s_per_point[0]),
            format!("{:.6}", r.s_per_point[1]),
            format!("{:.6}", r.s_per_point[2]),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_scales_worse_than_indexes() {
        let rows = run(Scale { n_samples: 60, m: 10, space_divisor: 4, threads: 1 });
        let first = &rows[0];
        let last = rows.last().unwrap();
        // The array scan's *work* (candidate pairings tested) must grow
        // faster across the sweep than both index strategies'. Wall-clock at
        // unit-test scale is dominated by model evaluation and build mode,
        // so the assertion uses the deterministic counter the times follow.
        let growth = |i: usize| last.pairings[i] as f64 / first.pairings[i].max(1) as f64;
        assert!(
            growth(0) > growth(1),
            "array pairing growth {:.2} vs normalization {:.2}",
            growth(0),
            growth(1)
        );
        assert!(
            growth(0) > growth(2),
            "array pairing growth {:.2} vs sorted-sid {:.2}",
            growth(0),
            growth(2)
        );
    }
}
