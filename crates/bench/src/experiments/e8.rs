//! E8 — parallel sweep scaling (this reproduction's extension, not a paper
//! figure).
//!
//! The batch-synchronous executor promises two things at once: wall-clock
//! scaling with the thread budget, and **bit-identical** output for every
//! budget. This experiment measures the first and verifies the second on
//! the E5-scale workload (`SynthBasis` with the basis pinned at 10% of the
//! space, synthetic per-invocation work) at 1/2/4/8 threads.

use std::sync::Arc;
use std::time::Instant;

use jigsaw_blackbox::models::SynthBasis;
use jigsaw_blackbox::{ParamDecl, ParamSpace, Workload};
use jigsaw_core::{JigsawConfig, SweepResult, SweepRunner};
use jigsaw_pdb::BlackBoxSim;
use jigsaw_prng::SeedSet;

use crate::table::{fmt_ratio, fmt_secs, Table};
use crate::Scale;

use super::MASTER_SEED;

/// One thread-budget measurement.
#[derive(Debug, Clone)]
pub struct E8Row {
    /// Thread budget.
    pub threads: usize,
    /// Total wall-clock seconds for the sweep.
    pub secs: f64,
    /// Speedup over the 1-thread run.
    pub speedup: f64,
    /// Fraction of points served by reuse (thread-invariant).
    pub reuse_rate: f64,
    /// Basis distributions at end of sweep (thread-invariant).
    pub bases: usize,
    /// Whether points, metrics, `reused_from`, and the deterministic
    /// counters are identical to the 1-thread baseline.
    pub identical: bool,
}

/// Thread budgets measured.
pub const BUDGETS: [usize; 4] = [1, 2, 4, 8];

/// Per-invocation model cost. The paper's motivating models are external
/// and expensive (§1: "tens of minutes, or even hours"); E6 emulates them
/// with the same workload. Cheap models make thread-spawn overhead visible
/// and would understate scaling, exactly as they understate reuse in E2.
const MODEL_WORK: Workload = Workload(2000);

/// Exact comparison against the single-thread baseline: per-point results
/// (including every metric bit) and the deterministic counter snapshot.
fn identical(a: &SweepResult, b: &SweepResult) -> bool {
    a.points == b.points && a.stats.counters() == b.stats.counters()
}

/// Run the scaling sweep.
pub fn run(scale: Scale) -> Vec<E8Row> {
    let points: usize = if scale.space_divisor > 1 { 600 } else { 3000 };
    let n_bases = points / 10;
    let bb = Arc::new(SynthBasis::new(n_bases).with_work(MODEL_WORK));
    let space = ParamSpace::new(vec![ParamDecl::range("p", 0, points as i64 - 1, 1)]);
    let sim = BlackBoxSim::new(bb, space, SeedSet::new(MASTER_SEED));

    let mut rows = Vec::new();
    let mut baseline: Option<SweepResult> = None;
    for threads in BUDGETS {
        let cfg = JigsawConfig::paper()
            .with_n_samples(scale.n_samples)
            .with_fingerprint_len(scale.m)
            .with_threads(threads);
        let t0 = Instant::now();
        let sweep = SweepRunner::new(cfg).run(&sim).expect("sweep");
        let secs = t0.elapsed().as_secs_f64();
        let same = baseline.as_ref().map(|b| identical(b, &sweep)).unwrap_or(true);
        let base_secs = rows.first().map(|r: &E8Row| r.secs).unwrap_or(secs);
        rows.push(E8Row {
            threads,
            secs,
            speedup: base_secs / secs,
            reuse_rate: sweep.stats.reuse_rate(),
            bases: sweep.stats.bases_per_column[0],
            identical: same,
        });
        if baseline.is_none() {
            baseline = Some(sweep);
        }
    }
    rows
}

/// Render the scaling series.
pub fn report(rows: &[E8Row]) -> Table {
    let mut t = Table::new(
        "E8 — batch-synchronous parallel sweep scaling (SynthBasis, basis = 10% of space)",
        &["Threads", "Total", "Speedup", "Reuse rate", "Bases", "Identical to 1-thread"],
    );
    t.mark_timing(&["Total", "Speedup"]);
    for r in rows {
        t.row(vec![
            r.threads.to_string(),
            fmt_secs(r.secs),
            fmt_ratio(r.speedup),
            format!("{:.3}", r.reuse_rate),
            r.bases.to_string(),
            if r.identical { "yes".into() } else { "NO".into() },
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_budget_is_bit_identical() {
        let rows = run(Scale { n_samples: 60, m: 10, space_divisor: 4, threads: 1 });
        assert_eq!(rows.len(), BUDGETS.len());
        for r in &rows {
            assert!(r.identical, "threads={} diverged from the baseline", r.threads);
            assert_eq!(r.bases, 60, "basis pinned at 10% of 600 points");
            assert!(r.reuse_rate > 0.85, "reuse rate {}", r.reuse_rate);
        }
    }
}
