//! E7 — §6.2 accuracy: fingerprint length and Markov-jump error.
//!
//! The paper identifies two potential error sources and reports observing
//! neither at `m = 10`:
//!
//! 1. **False reuse** — a fingerprint too short to distinguish two genuinely
//!    different distributions. We sweep `m` on `SynthBasis(50)`: at `m = 2`
//!    any two fingerprints fit an affine map (two points determine a line,
//!    zero residuals to validate) and everything collapses onto one basis;
//!    by `m = 10` the basis count and all metrics are exact.
//! 2. **Markov-jump drift** — per-instance divergence outside the
//!    fingerprint set between checkpoints (§4.1). We sweep the branching
//!    factor and report the mean/max relative error of the final-step
//!    outputs versus naive stepping.

use std::sync::Arc;

use jigsaw_blackbox::models::{MarkovBranch, SynthBasis};
use jigsaw_blackbox::{ParamDecl, ParamSpace};
use jigsaw_core::markov::{run_naive, MarkovJumpConfig, MarkovJumpRunner};
use jigsaw_core::{JigsawConfig, SweepRunner};
use jigsaw_pdb::BlackBoxSim;
use jigsaw_prng::{Seed, SeedSet};

use crate::table::Table;
use crate::Scale;

use super::MASTER_SEED;

/// One fingerprint-length measurement.
#[derive(Debug, Clone)]
pub struct E7FingerprintRow {
    /// Fingerprint length.
    pub m: usize,
    /// Bases discovered (50 expected when accurate).
    pub bases: usize,
    /// Fraction of reused points whose expectation differs from the naive
    /// run by more than 1e-9 relative.
    pub false_reuse_rate: f64,
    /// Worst relative expectation error across the sweep.
    pub max_rel_err: f64,
}

/// One Markov accuracy measurement.
#[derive(Debug, Clone)]
pub struct E7MarkovRow {
    /// Branching factor.
    pub branching: f64,
    /// Mean relative error of final-step outputs.
    pub mean_rel_err: f64,
    /// Max relative error of final-step outputs.
    pub max_rel_err: f64,
}

/// Sweep fingerprint lengths on a 50-basis synthetic workload.
pub fn run_fingerprint(scale: Scale) -> Vec<E7FingerprintRow> {
    let n_points = 400 / scale.space_divisor;
    let space = ParamSpace::new(vec![ParamDecl::range("p", 0, n_points as i64 - 1, 1)]);
    let bb = Arc::new(SynthBasis::new(50));
    let sim = BlackBoxSim::new(bb, space, SeedSet::new(MASTER_SEED));

    let naive = SweepRunner::naive(
        JigsawConfig::paper().with_n_samples(scale.n_samples).with_fingerprint_len(10),
    )
    .run(&sim)
    .expect("naive sweep");

    let mut rows = Vec::new();
    for m in [2usize, 3, 5, 10, 20] {
        let cfg = JigsawConfig::paper().with_n_samples(scale.n_samples).with_fingerprint_len(m);
        let fast = SweepRunner::new(cfg).run(&sim).expect("sweep");
        let mut false_reuse = 0usize;
        let mut reused = 0usize;
        let mut max_rel = 0.0f64;
        for (a, b) in naive.points.iter().zip(&fast.points) {
            let (x, y) = (a.metrics[0].expectation(), b.metrics[0].expectation());
            let rel = (x - y).abs() / x.abs().max(1.0);
            max_rel = max_rel.max(rel);
            if b.reused_from[0].is_some() {
                reused += 1;
                if rel > 1e-9 {
                    false_reuse += 1;
                }
            }
        }
        rows.push(E7FingerprintRow {
            m,
            bases: fast.stats.bases_per_column[0],
            false_reuse_rate: if reused == 0 { 0.0 } else { false_reuse as f64 / reused as f64 },
            max_rel_err: max_rel,
        });
    }
    rows
}

/// Sweep branching factors for Markov-jump accuracy.
pub fn run_markov(scale: Scale) -> Vec<E7MarkovRow> {
    let n = scale.n_samples.max(100);
    let steps = 128;
    let mut rows = Vec::new();
    for &p in &[0.0, 1e-3, 1e-2, 0.05] {
        let model = MarkovBranch::new(p);
        let (naive, _) = run_naive(&model, Seed(MASTER_SEED), n, steps);
        let cfg = MarkovJumpConfig::paper().with_n(n).with_m(scale.m);
        let jump = MarkovJumpRunner::new(cfg).run(&model, Seed(MASTER_SEED), steps);
        let scale_ref = naive.iter().map(|x| x.abs()).fold(0.0f64, f64::max).max(1.0);
        let mut mean = 0.0;
        let mut max = 0.0f64;
        for (a, b) in jump.outputs.iter().zip(&naive) {
            let rel = (a - b).abs() / scale_ref;
            mean += rel;
            max = max.max(rel);
        }
        rows.push(E7MarkovRow { branching: p, mean_rel_err: mean / n as f64, max_rel_err: max });
    }
    rows
}

/// Render the fingerprint-length table.
pub fn report_fingerprint(rows: &[E7FingerprintRow]) -> Table {
    let mut t = Table::new(
        "E7a / §6.2 — fingerprint length vs accuracy (SynthBasis(50), 50 true bases)",
        &["m", "Bases found", "False-reuse rate", "Max rel. error"],
    );
    for r in rows {
        t.row(vec![
            r.m.to_string(),
            r.bases.to_string(),
            format!("{:.3}", r.false_reuse_rate),
            format!("{:.2e}", r.max_rel_err),
        ]);
    }
    t
}

/// Render the Markov accuracy table.
pub fn report_markov(rows: &[E7MarkovRow]) -> Table {
    let mut t = Table::new(
        "E7b / §6.2 — Markov-jump accuracy vs branching factor (128 steps)",
        &["Branching", "Mean rel. error", "Max rel. error"],
    );
    for r in rows {
        t.row(vec![
            format!("{:.0e}", r.branching),
            format!("{:.2e}", r.mean_rel_err),
            format!("{:.2e}", r.max_rel_err),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_fingerprints_cause_false_reuse_long_ones_do_not() {
        let rows = run_fingerprint(Scale { n_samples: 60, m: 10, space_divisor: 4, threads: 1 });
        let at = |m: usize| rows.iter().find(|r| r.m == m).unwrap();
        // m = 2 merges everything: one basis, rampant false reuse.
        assert_eq!(at(2).bases, 1);
        assert!(at(2).false_reuse_rate > 0.5);
        // m = 10 (the paper's default): exact.
        assert_eq!(at(10).bases, 50);
        assert!(at(10).false_reuse_rate == 0.0, "{:?}", at(10));
        assert!(at(10).max_rel_err < 1e-9);
        // m = 20 stays exact.
        assert_eq!(at(20).bases, 50);
    }

    #[test]
    fn markov_error_grows_with_branching_but_stays_bounded() {
        let rows = run_markov(Scale { n_samples: 150, m: 10, space_divisor: 4, threads: 1 });
        assert_eq!(rows[0].mean_rel_err, 0.0, "p=0 must be exact");
        let last = rows.last().unwrap();
        assert!(last.mean_rel_err < 0.2, "error unexpectedly large: {last:?}");
    }
}
