//! E12 — sketch-then-refine sweep vs exhaustive (this reproduction's
//! extension, not a paper figure).
//!
//! The exhaustive wave executor pays up to full Monte Carlo budget at every
//! enumerated point, so sweep cost scales linearly with the parameter
//! space. The sketch-then-refine mode coarse-sweeps the whole space at
//! `sketch_budget` worlds per point, prunes to a deterministic frontier
//! (see `jigsaw_core::sketch_frontier`), and re-runs only the survivors at
//! full budget. This experiment records the cost (worlds evaluated) and
//! the quality of the selected optimum against the exhaustive sweep:
//!
//! - **Ramp** is reuse-hostile (a distinct cubic noise shape per point) with
//!   a rising mean, optimized with a threshold-crossing goal
//!   (`Expect >= 0.5 FOR MIN @p`) — the worst case for extreme-keeping
//!   pruning, since the optimum sits mid-range where pruned points carry
//!   only coarse estimates. Quality is bounded by the coarse estimator's
//!   standard error `σ/√s` at the crossing.
//! - **SynthBasis** is reuse-friendly with an extreme-seeking goal
//!   (`FOR MAX @p`): the frontier keeps the optimum, so the selection is
//!   exact — and basis reuse already ate most of the exhaustive cost, so
//!   sketching buys little. Jigsaw reuse and sketching compose; sketching
//!   pays off where reuse cannot.
//!
//! "Achieved (full)" re-reads the selected decision's constraint value from
//! the *exhaustive* sweep, so both legs are scored at full fidelity and
//! "Δ quality" is the true quality loss of sketch-based selection.

use std::sync::Arc;
use std::time::Instant;

use jigsaw_blackbox::models::SynthBasis;
use jigsaw_blackbox::{BlackBox, FnBlackBox, ParamDecl, ParamSpace, Workload};
use jigsaw_core::optimizer::selector::select;
use jigsaw_core::optimizer::{
    Comparison, Constraint, Direction, Objective, OptimizeGoal, OuterAgg,
};
use jigsaw_core::{JigsawConfig, SweepResult, SweepRunner};
use jigsaw_pdb::{BlackBoxSim, Metric, Simulation};
use jigsaw_prng::SeedSet;

use crate::table::{fmt_secs, Table};
use crate::Scale;

use super::MASTER_SEED;

/// One leg (exhaustive or sketch) of one scenario.
#[derive(Debug, Clone)]
pub struct E12Row {
    /// Scenario name.
    pub scenario: String,
    /// `"exhaustive"` or `"sketch"`.
    pub leg: &'static str,
    /// Parameter points in the space.
    pub points: usize,
    /// Simulation worlds evaluated (the cost sketching prunes).
    pub worlds: u64,
    /// Points that ran a full-budget completion simulation.
    pub full_sims: usize,
    /// Frontier points re-run at full budget (sketch leg only).
    pub refined: usize,
    /// Points left with coarse metrics (sketch leg only).
    pub pruned: usize,
    /// Sketch leg: exhaustive worlds ÷ this leg's worlds.
    pub worlds_ratio: Option<f64>,
    /// Selected decision value (the single decision parameter).
    pub selected: f64,
    /// Constraint value of the selected decision, measured on the
    /// exhaustive sweep (full fidelity for both legs).
    pub achieved_full: f64,
    /// Sketch leg: |achieved_full − exhaustive leg's achieved_full|.
    pub quality_delta: Option<f64>,
    /// Wall-clock seconds for the sweep.
    pub secs: f64,
}

/// Per-invocation model cost, as in E2/E9: emulates the expensive external
/// models the paper targets so the wall-clock gap stays honest.
const MODEL_WORK: Workload = Workload(300);

/// Default sketch knobs when `repro --sketch-budget/--refine-top-k` are not
/// given: a coarse budget of `2m` worlds and a frontier width of 4.
pub fn default_knobs(scale: Scale) -> (usize, usize) {
    (2 * scale.m, 4)
}

/// The constraint value of `assignment`'s group, read from `sweep` —
/// used with the exhaustive sweep to score both legs at full fidelity.
/// E12 constraints are all `Metric::Expect`, folded with the goal's outer
/// aggregate over the group members.
fn achieved_at(
    sweep: &SweepResult,
    space: &ParamSpace,
    goal: &OptimizeGoal,
    columns: &[String],
    assignment: &[(String, f64)],
) -> f64 {
    let dims: Vec<(usize, f64)> = assignment
        .iter()
        .map(|(p, v)| (space.index_of(p).expect("decision parameter"), *v))
        .collect();
    let c = &goal.constraints[0];
    debug_assert!(matches!(c.metric, Metric::Expect), "E12 scores Expect constraints");
    let col = columns.iter().position(|n| *n == c.column).expect("constraint column");
    let members = sweep
        .points
        .iter()
        .filter(|pr| dims.iter().all(|&(d, v)| pr.point[d] == v))
        .map(|pr| pr.metrics[col].expectation());
    match c.outer {
        OuterAgg::Max => members.fold(f64::NEG_INFINITY, f64::max),
        OuterAgg::Min => members.fold(f64::INFINITY, f64::min),
        OuterAgg::Avg => {
            let xs: Vec<f64> = members.collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    }
}

fn leg_row(scenario: &str, leg: &'static str, r: &SweepResult, secs: f64) -> E12Row {
    E12Row {
        scenario: scenario.to_string(),
        leg,
        points: r.stats.points,
        worlds: r.stats.worlds_evaluated,
        full_sims: r.stats.full_simulations,
        refined: r.stats.refined_points,
        pruned: r.stats.pruned_points,
        worlds_ratio: None,
        selected: f64::NAN,
        achieved_full: f64::NAN,
        quality_delta: None,
        secs,
    }
}

fn scenario_case(
    name: &str,
    bb: Arc<dyn BlackBox>,
    space: ParamSpace,
    goal: &OptimizeGoal,
    scale: Scale,
    sketch_budget: usize,
    refine_top_k: usize,
) -> Vec<E12Row> {
    let sim = BlackBoxSim::new(bb, space.clone(), SeedSet::new(MASTER_SEED));
    let columns = sim.columns().to_vec();
    let cfg = JigsawConfig::paper()
        .with_n_samples(scale.n_samples)
        .with_fingerprint_len(scale.m)
        .with_threads(scale.threads);

    let t0 = Instant::now();
    let exhaustive = SweepRunner::new(cfg.clone()).run(&sim).expect("exhaustive sweep");
    let exh_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let sketch = SweepRunner::new(cfg.with_sketch(sketch_budget, refine_top_k))
        .run(&sim)
        .expect("sketch sweep");
    let sketch_secs = t1.elapsed().as_secs_f64();

    let sel_e = select(&space, &exhaustive, goal, &columns)
        .expect("select")
        .expect("goal satisfiable on exhaustive sweep");
    let sel_s = select(&space, &sketch, goal, &columns)
        .expect("select")
        .expect("goal satisfiable on sketch sweep");
    let ach_e = achieved_at(&exhaustive, &space, goal, &columns, &sel_e.assignment);
    let ach_s = achieved_at(&exhaustive, &space, goal, &columns, &sel_s.assignment);

    let mut e_row = leg_row(name, "exhaustive", &exhaustive, exh_secs);
    e_row.selected = sel_e.assignment[0].1;
    e_row.achieved_full = ach_e;
    let mut s_row = leg_row(name, "sketch", &sketch, sketch_secs);
    s_row.selected = sel_s.assignment[0].1;
    s_row.achieved_full = ach_s;
    s_row.worlds_ratio =
        Some(exhaustive.stats.worlds_evaluated as f64 / sketch.stats.worlds_evaluated as f64);
    s_row.quality_delta = Some((ach_s - ach_e).abs());
    vec![e_row, s_row]
}

/// Reuse-hostile ramp: mean rises linearly from 0 to 1 across the space
/// while the noise keeps a distinct (non-affine) cubic shape per point, so
/// every point needs its own basis and the exhaustive sweep pays full
/// budget everywhere.
fn ramp_model(points: usize) -> Arc<dyn BlackBox> {
    let n = points as f64;
    Arc::new(FnBlackBox::new("ramp", 1, move |p: &[f64], seed| {
        use jigsaw_prng::{dist::Normal, Xoshiro256pp};
        MODEL_WORK.burn();
        let mut rng = Xoshiro256pp::seeded(seed);
        let z = Normal::standard(&mut rng);
        p[0] / n + 0.15 * (z + (1.0 + p[0]) * z * z * z * 0.001)
    }))
}

/// Run both scenarios, exhaustive and sketch legs each.
pub fn run(scale: Scale, sketch_budget: usize, refine_top_k: usize) -> Vec<E12Row> {
    let div = scale.space_divisor;
    let mut rows = Vec::new();

    // Ramp: threshold-crossing goal — earliest point whose full-fidelity
    // expectation reaches 0.5 (the crossing sits mid-space).
    let points = 600 / div;
    let ramp_goal = OptimizeGoal {
        decision_params: vec!["p".into()],
        constraints: vec![Constraint {
            column: "ramp".into(),
            metric: Metric::Expect,
            outer: OuterAgg::Max,
            cmp: Comparison::Ge,
            threshold: 0.5,
        }],
        objectives: vec![Objective { param: "p".into(), direction: Direction::Min }],
    };
    rows.extend(scenario_case(
        "Ramp",
        ramp_model(points),
        ParamSpace::new(vec![ParamDecl::range("p", 0, points as i64 - 1, 1)]),
        &ramp_goal,
        scale,
        sketch_budget,
        refine_top_k,
    ));

    // SynthBasis: extreme-seeking goal over a reuse-friendly model (basis
    // count pinned at 10% of the space) — the honest comparison where
    // intra-sweep reuse already ate the exhaustive cost.
    let points = 600 / div;
    let synth_goal = OptimizeGoal {
        decision_params: vec!["p".into()],
        constraints: vec![Constraint {
            column: "SynthBasis".into(),
            metric: Metric::Expect,
            outer: OuterAgg::Max,
            cmp: Comparison::Ge,
            threshold: f64::NEG_INFINITY,
        }],
        objectives: vec![Objective { param: "p".into(), direction: Direction::Max }],
    };
    rows.extend(scenario_case(
        "SynthBasis",
        Arc::new(SynthBasis::new(points / 10).with_work(MODEL_WORK)),
        ParamSpace::new(vec![ParamDecl::range("p", 0, points as i64 - 1, 1)]),
        &synth_goal,
        scale,
        sketch_budget,
        refine_top_k,
    ));

    rows
}

/// Render the exhaustive-vs-sketch table.
pub fn report(rows: &[E12Row]) -> Table {
    let mut t = Table::new(
        "E12 — sketch-then-refine vs exhaustive sweep (coarse-pass pruning)",
        &[
            "Scenario",
            "Leg",
            "Points",
            "Worlds evaluated",
            "÷ exhaustive",
            "Full sims",
            "Refined",
            "Pruned",
            "Selected @p",
            "Achieved (full)",
            "Δ quality",
            "Total",
        ],
    );
    t.mark_timing(&["Total"]);
    for r in rows {
        t.row(vec![
            r.scenario.clone(),
            r.leg.to_string(),
            r.points.to_string(),
            r.worlds.to_string(),
            r.worlds_ratio.map(|x| format!("{x:.2}x")).unwrap_or_else(|| "—".into()),
            r.full_sims.to_string(),
            if r.leg == "sketch" { r.refined.to_string() } else { "—".into() },
            if r.leg == "sketch" { r.pruned.to_string() } else { "—".into() },
            format!("{}", r.selected),
            format!("{:.4}", r.achieved_full),
            r.quality_delta.map(|d| format!("{d:.4}")).unwrap_or_else(|| "—".into()),
            fmt_secs(r.secs),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sketch_meets_cost_and_quality_bounds_at_quick_scale() {
        let (budget, top_k) = default_knobs(Scale::QUICK);
        let rows = run(Scale::QUICK, budget, top_k);
        assert_eq!(rows.len(), 4, "two scenarios, two legs each");
        let (ramp_e, ramp_s) = (&rows[0], &rows[1]);
        assert_eq!(ramp_e.leg, "exhaustive");
        assert_eq!(ramp_s.leg, "sketch");
        // Acceptance: ≥ 5× fewer worlds than exhaustive at quick scale on
        // the reuse-hostile scenario…
        assert!(
            ramp_s.worlds * 5 <= ramp_e.worlds,
            "sketch {} vs exhaustive {} worlds",
            ramp_s.worlds,
            ramp_e.worlds
        );
        assert_eq!(ramp_s.refined + ramp_s.pruned, ramp_s.points);
        assert!(ramp_s.pruned > 0);
        // …with the selected optimum inside the documented quality bound:
        // the coarse estimator's ~3σ/√s standard error at the crossing
        // (σ ≈ 0.16, s = 20 → ≈ 0.11; asserted with margin).
        assert!(
            ramp_s.quality_delta.unwrap() <= 0.15,
            "quality delta {} exceeds the documented bound",
            ramp_s.quality_delta.unwrap()
        );

        // The extreme-seeking goal is exact: the frontier keeps the optimum.
        let (synth_e, synth_s) = (&rows[2], &rows[3]);
        assert_eq!(synth_s.selected, synth_e.selected);
        assert_eq!(synth_s.quality_delta, Some(0.0));
        // Reuse-friendly: sketching saves little — reuse already won.
        assert!(synth_s.worlds_ratio.unwrap() < 2.0);
    }

    #[test]
    fn sketch_leg_is_deterministic_across_threads() {
        const MICRO: Scale = Scale { n_samples: 60, m: 10, space_divisor: 8, threads: 1 };
        let a = run(MICRO, 20, 3);
        let b = run(MICRO.with_threads(4), 20, 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.scenario, y.scenario);
            assert_eq!(x.worlds, y.worlds, "{} {}", x.scenario, x.leg);
            assert_eq!(x.full_sims, y.full_sims);
            assert_eq!(x.refined, y.refined);
            assert_eq!(x.pruned, y.pruned);
            assert_eq!(x.selected.to_bits(), y.selected.to_bits());
            assert_eq!(x.achieved_full.to_bits(), y.achieved_full.to_bits());
        }
    }
}
