//! E11 — per-world vs columnar world evaluation (reproduction extension,
//! not a paper figure).
//!
//! The columnar path restructures the universal inner loop — evaluate the
//! query in worlds `start..start+count` — from per-world `BundleCell`
//! dispatch into contiguous per-column `f64` slices. This experiment
//! measures both paths through [`eval_batch_on`] on the same plan-heavy
//! workloads (cheap models, so expression and aggregate work dominates —
//! exactly where layout matters) and verifies the acceptance property:
//! the outputs are **bit-identical**, world for world.

use std::sync::Arc;
use std::time::Instant;

use jigsaw_blackbox::{FnBlackBox, ParamDecl, ParamSpace};
use jigsaw_pdb::{
    eval_batch_on, AggFunc, AggSpec, BinOp, BlackBoxSim, Catalog, CmpOp, ColumnType, DbmsEngine,
    DirectEngine, Engine, EvalPath, Expr, Plan, PlanSim, Simulation, TableBuilder, Value,
    WorldBatch,
};
use jigsaw_prng::dist::Normal;
use jigsaw_prng::{SeedSet, Xoshiro256pp};

use crate::table::{fmt_ratio, fmt_secs, Table};
use crate::Scale;

use super::MASTER_SEED;

/// One (simulation, thread-budget) measurement.
#[derive(Debug, Clone)]
pub struct E11Row {
    /// Simulation under test.
    pub sim: &'static str,
    /// Thread budget handed to [`eval_batch_on`].
    pub threads: usize,
    /// Wall-clock seconds for the per-world oracle path.
    pub oracle_secs: f64,
    /// Wall-clock seconds for the columnar path.
    pub columnar_secs: f64,
    /// `oracle_secs / columnar_secs`.
    pub speedup: f64,
    /// Whether the two paths produced bit-identical worlds.
    pub identical: bool,
}

/// Thread budgets measured (1 isolates the kernel effect; 4 shows the
/// paths compose identically with window-parallel evaluation).
pub const BUDGETS: [usize; 2] = [1, 4];

fn plan_catalog(rows: usize) -> Arc<Catalog> {
    let mut c = Catalog::new();
    c.add_function(Arc::new(FnBlackBox::new("Noise", 1, |p: &[f64], seed| {
        let mut rng = Xoshiro256pp::seeded(seed);
        p[0] + Normal::standard(&mut rng)
    })));
    let mut builder = TableBuilder::new()
        .column("id", ColumnType::Int)
        .column("grp", ColumnType::Int)
        .column("w", ColumnType::Float);
    for i in 0..rows {
        builder = builder.row(vec![
            Value::Int(i as i64),
            Value::Int((i % 4) as i64),
            Value::Float(1.0 + (i % 7) as f64 * 0.5),
        ]);
    }
    c.add_table("items", builder.build());
    Arc::new(c)
}

/// The measured plan: black-box calls over a mixed det/stoch argument,
/// arithmetic, a comparison, a stochastic filter, and all five aggregates
/// — every kernel the columnar path implements.
fn plan_sim(engine: Arc<dyn Engine>, rows: usize) -> PlanSim {
    let cat = plan_catalog(rows);
    let space = ParamSpace::new(vec![ParamDecl::range("x", 0, 3, 1)]);
    let plan = Plan::Scan { table: "items".into() }
        .project(vec![
            (
                "noisy",
                Expr::call("Noise", vec![Expr::bin(BinOp::Add, Expr::col("w"), Expr::param("x"))]),
            ),
            ("w", Expr::col("w")),
        ])
        .project(vec![
            ("noisy", Expr::col("noisy")),
            ("scaled", Expr::bin(BinOp::Mul, Expr::col("noisy"), Expr::lit_f(1.5))),
            ("hot", Expr::cmp(CmpOp::Gt, Expr::col("noisy"), Expr::col("w"))),
        ])
        .filter(Expr::cmp(CmpOp::Lt, Expr::col("noisy"), Expr::lit_f(8.0)))
        .aggregate(
            vec![],
            vec![
                AggSpec {
                    name: "total".into(),
                    func: AggFunc::Sum,
                    arg: Some(Expr::col("scaled")),
                },
                AggSpec { name: "lo".into(), func: AggFunc::Min, arg: Some(Expr::col("noisy")) },
                AggSpec { name: "hi".into(), func: AggFunc::Max, arg: Some(Expr::col("noisy")) },
                AggSpec { name: "mean".into(), func: AggFunc::Avg, arg: Some(Expr::col("noisy")) },
                AggSpec { name: "n".into(), func: AggFunc::Count, arg: None },
            ],
        )
        .bind(&cat, &["x".to_string()])
        .expect("plan binds");
    PlanSim::new(engine, plan, cat, space, SeedSet::new(MASTER_SEED))
}

fn black_box_sim() -> BlackBoxSim {
    let space = ParamSpace::new(vec![ParamDecl::range("x", 0, 3, 1)]);
    let bb = FnBlackBox::new("F", 1, |p: &[f64], seed| {
        let mut rng = Xoshiro256pp::seeded(seed);
        (2.0 + p[0]) + (0.5 + 0.1 * p[0]) * Normal::standard(&mut rng)
    });
    BlackBoxSim::new(Arc::new(bb), space, SeedSet::new(MASTER_SEED))
}

/// Evaluate `n` worlds at every point of the space via the given path.
fn run_path(sim: &dyn Simulation, n: usize, threads: usize, path: EvalPath) -> Vec<WorldBatch> {
    (0..sim.space().len())
        .map(|i| {
            let point = sim.space().point_at(i);
            eval_batch_on(sim, &point, 0, n, threads, path).expect("evaluation succeeds")
        })
        .collect()
}

fn identical_bits(a: &[WorldBatch], b: &[WorldBatch]) -> bool {
    let bits = |batches: &[WorldBatch]| -> Vec<Vec<Vec<u64>>> {
        batches
            .iter()
            .map(|wb| {
                wb.columns().iter().map(|col| col.iter().map(|x| x.to_bits()).collect()).collect()
            })
            .collect()
    };
    bits(a) == bits(b)
}

/// Run the comparison over both engines and the raw black box.
pub fn run(scale: Scale) -> Vec<E11Row> {
    let table_rows = if scale.space_divisor > 1 { 24 } else { 64 };
    let sims: Vec<(&'static str, Box<dyn Simulation>)> = vec![
        ("plan / direct", Box::new(plan_sim(Arc::new(DirectEngine::new()), table_rows))),
        ("plan / dbms", Box::new(plan_sim(Arc::new(DbmsEngine::new()), table_rows))),
        ("black box", Box::new(black_box_sim())),
    ];
    let n = scale.n_samples;
    let mut out = Vec::new();
    for (name, sim) in &sims {
        for threads in BUDGETS {
            // One untimed pass per path warms allocators and caches.
            run_path(sim.as_ref(), n, threads, EvalPath::Oracle);
            let t0 = Instant::now();
            let oracle = run_path(sim.as_ref(), n, threads, EvalPath::Oracle);
            let oracle_secs = t0.elapsed().as_secs_f64();
            run_path(sim.as_ref(), n, threads, EvalPath::Columnar);
            let t1 = Instant::now();
            let columnar = run_path(sim.as_ref(), n, threads, EvalPath::Columnar);
            let columnar_secs = t1.elapsed().as_secs_f64();
            out.push(E11Row {
                sim: name,
                threads,
                oracle_secs,
                columnar_secs,
                speedup: oracle_secs / columnar_secs,
                identical: identical_bits(&oracle, &columnar),
            });
        }
    }
    out
}

/// Render the comparison.
pub fn report(rows: &[E11Row]) -> Table {
    let mut t = Table::new(
        "E11 — per-world vs columnar world evaluation (same worlds, bit-identical)",
        &["Simulation", "Threads", "Per-world", "Columnar", "Speedup", "Identical"],
    );
    t.mark_timing(&["Per-world", "Columnar", "Speedup"]);
    for r in rows {
        t.row(vec![
            r.sim.to_string(),
            r.threads.to_string(),
            fmt_secs(r.oracle_secs),
            fmt_secs(r.columnar_secs),
            fmt_ratio(r.speedup),
            if r.identical { "yes".into() } else { "NO".into() },
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_paths_are_bit_identical_everywhere() {
        let rows = run(Scale { n_samples: 40, m: 10, space_divisor: 4, threads: 1 });
        assert_eq!(rows.len(), 3 * BUDGETS.len());
        for r in &rows {
            assert!(r.identical, "{} threads={} diverged", r.sim, r.threads);
            assert!(r.speedup.is_finite() && r.speedup > 0.0);
        }
    }
}
