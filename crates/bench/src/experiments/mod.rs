//! The per-figure experiment implementations.

pub mod e1;
pub mod e10;
pub mod e11;
pub mod e12;
pub mod e13;
pub mod e14;
pub mod e2;
pub mod e3;
pub mod e4;
pub mod e5;
pub mod e6;
pub mod e7;
pub mod e8;
pub mod e9;

use std::sync::Arc;

use jigsaw_blackbox::models::UserSelection;
use jigsaw_blackbox::{FnBlackBox, ParamDecl, ParamSpace};
use jigsaw_pdb::{Catalog, ColumnType, TableBuilder, Value};

/// Master seed used by every experiment (fixed so reported numbers are
/// reproducible run to run).
pub const MASTER_SEED: u64 = 0x5EED_2011;

/// Build the `users` table and the per-user requirement function for the
/// data-bound workload (experiment E1's `UserSelect`).
///
/// `UserReq(id, base, growth, shape, week)` draws one user's weekly
/// requirement; the `id` argument is folded into the seed so each tuple gets
/// an independent stream (MCDB gives VG-functions per-tuple randomness).
pub fn user_catalog(n_users: usize) -> Catalog {
    let mut catalog = Catalog::new();
    let population = UserSelection::synthetic(n_users, MASTER_SEED);
    let mut builder = TableBuilder::new()
        .column("id", ColumnType::Int)
        .column("base", ColumnType::Float)
        .column("growth", ColumnType::Float)
        .column("shape", ColumnType::Float);
    for (i, u) in population.users().iter().enumerate() {
        builder = builder.row(vec![
            Value::Int(i as i64),
            Value::Float(u.base),
            Value::Float(u.growth),
            Value::Float(u.shape),
        ]);
    }
    catalog.add_table("users", builder.build());
    catalog.add_function(Arc::new(FnBlackBox::new("UserReq", 5, |p: &[f64], seed| {
        let profile =
            jigsaw_blackbox::models::UserProfile { base: p[1], growth: p[2], shape: p[3] };
        UserSelection::user_requirement(&profile, p[4], seed.derive(p[0] as u64))
    })));
    catalog
}

/// One-parameter weekly space of the given length.
pub fn week_space(weeks: usize) -> ParamSpace {
    ParamSpace::new(vec![ParamDecl::range("week", 0, weeks as i64 - 1, 1)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_catalog_has_table_and_function() {
        let c = user_catalog(10);
        assert_eq!(c.table("users").unwrap().len(), 10);
        assert!(c.function("UserReq").is_ok());
    }

    #[test]
    fn user_req_is_per_tuple_independent() {
        let c = user_catalog(2);
        let f = c.function("UserReq").unwrap();
        let s = jigsaw_prng::Seed(9);
        let a = f.eval(&[0.0, 1.0, 0.0, 2.0, 5.0], s);
        let b = f.eval(&[1.0, 1.0, 0.0, 2.0, 5.0], s);
        assert_ne!(a, b, "same profile, different id must draw differently");
    }
}
