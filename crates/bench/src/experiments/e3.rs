//! E3 — Figure 9: computation time vs structure size (Capacity model).
//!
//! The *structure size* is the span of weeks over which a purchase's online
//! delay keeps worlds mixed (our `Capacity::delay_scale`). Paper findings:
//! time per point grows with structure size; both indexes beat the array
//! scan; and the number of basis distributions grows **sub-linearly** with
//! structure size (it saturates near `m + 1` distinct fingerprint patterns
//! per structure).

use std::sync::Arc;
use std::time::Instant;

use jigsaw_blackbox::models::Capacity;
use jigsaw_blackbox::{ParamDecl, ParamSpace, Workload};
use jigsaw_core::{IndexStrategy, JigsawConfig, SweepRunner};
use jigsaw_pdb::BlackBoxSim;
use jigsaw_prng::SeedSet;

use crate::table::Table;
use crate::Scale;

use super::MASTER_SEED;

/// One structure-size measurement.
#[derive(Debug, Clone)]
pub struct E3Row {
    /// Structure size (mean online-delay in weeks).
    pub structure_size: f64,
    /// ms/point per strategy, ordered Array / Normalization / SortedSid.
    pub ms_per_point: [f64; 3],
    /// Basis count (identical across strategies).
    pub bases: usize,
}

/// Sweep structure sizes 0..=20 (paper's x-axis).
pub fn run(scale: Scale) -> Vec<E3Row> {
    let sizes: Vec<f64> = if scale.space_divisor > 1 {
        vec![0.0, 2.0, 5.0, 10.0, 20.0]
    } else {
        (0..=20).map(|s| s as f64).collect()
    };
    let div = scale.space_divisor as i64;
    let space = ParamSpace::new(vec![
        ParamDecl::range("week", 0, 51 / div, 1),
        ParamDecl::range("p1", 0, 48, 8),
        ParamDecl::range("p2", 0, 48, 8),
    ]);
    let strategies = [IndexStrategy::Array, IndexStrategy::Normalization, IndexStrategy::SortedSid];

    let mut rows = Vec::new();
    for &size in &sizes {
        let bb = Arc::new(Capacity::enterprise().with_delay_scale(size).with_work(Workload(300)));
        let sim = BlackBoxSim::new(bb, space.clone(), SeedSet::new(MASTER_SEED));
        let mut ms = [0.0f64; 3];
        let mut bases = 0usize;
        for (i, strat) in strategies.iter().enumerate() {
            let cfg = JigsawConfig::paper()
                .with_n_samples(scale.n_samples)
                .with_fingerprint_len(scale.m)
                .with_threads(scale.threads)
                .with_index(*strat);
            let t0 = Instant::now();
            let sweep = SweepRunner::new(cfg).run(&sim).expect("sweep");
            ms[i] = t0.elapsed().as_secs_f64() * 1e3 / sweep.points.len() as f64;
            bases = sweep.stats.bases_per_column[0];
        }
        rows.push(E3Row { structure_size: size, ms_per_point: ms, bases });
    }
    rows
}

/// Render the Figure 9 series.
pub fn report(rows: &[E3Row]) -> Table {
    let mut t = Table::new(
        "E3 / Figure 9 — time per point vs structure size (Capacity)",
        &["Structure size", "Array ms/pt", "Normalization ms/pt", "Sorted-SID ms/pt", "Bases"],
    );
    t.mark_timing(&["Array ms/pt", "Normalization ms/pt", "Sorted-SID ms/pt"]);
    for r in rows {
        t.row(vec![
            format!("{:.0}", r.structure_size),
            format!("{:.3}", r.ms_per_point[0]),
            format!("{:.3}", r.ms_per_point[1]),
            format!("{:.3}", r.ms_per_point[2]),
            r.bases.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_count_grows_sublinearly() {
        let rows = run(Scale { n_samples: 100, m: 10, space_divisor: 4, threads: 1 });
        let b0 = rows.first().unwrap().bases;
        let b_last = rows.last().unwrap().bases;
        assert!(b_last >= b0, "bases should not shrink with structure size");
        // Sub-linear: structure grew 20×/5×, bases must grow far less.
        let size_ratio = rows.last().unwrap().structure_size.max(1.0)
            / rows.first().unwrap().structure_size.max(1.0);
        let basis_ratio = b_last as f64 / b0.max(1) as f64;
        assert!(basis_ratio < size_ratio, "bases {b0} -> {b_last} vs size ratio {size_ratio}");
        // And saturation: with m = 10, patterns per structure are bounded.
        assert!(b_last < 60, "basis count {b_last} should saturate");
    }
}
