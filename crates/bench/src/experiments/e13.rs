//! E13 — anytime `ESTIMATE` with error bounds over `SUBSCRIBE` (this
//! reproduction's extension, not a paper figure).
//!
//! The interactive loop the paper motivates (Algorithm 5's
//! refine/validate/explore rotation) only feels interactive when an answer
//! of *known* quality arrives immediately. The anytime path makes that
//! explicit: `SUBSCRIBE <point> <col> <eps>` answers a tier-0 analytic
//! interval — fingerprint head plus mapped-basis CLT bound, no completion
//! simulation — and then streams tightened intervals until the running
//! intersection narrows under `eps` or the per-point sample budget runs
//! dry, closing with a final `EST`.
//!
//! This experiment measures the two claims that make the tier worth
//! having, cold and warm, at a loose and a tight width:
//!
//! - **Zero-sim service.** On a warm store, a measurable fraction of
//!   ε-bounded requests is served entirely at tier 0 — the stream is one
//!   `INTERVAL` plus the closing `EST`, with no completion simulations.
//!   "µs to bound" vs "µs to final" shows what the early answer buys when
//!   refinement *is* needed.
//! - **Determinism.** Every stream's closing `EST` is bit-identical to a
//!   blocking `ESTIMATE` issued right after it: the anytime path and the
//!   blocking path read the same refined state and the same
//!   running-intersection bound. The `Bits==EST` column (and the unit
//!   test) assert it for every probe.

use std::time::Instant;

use jigsaw_core::JigsawConfig;
use jigsaw_server::{Client, JigsawServer, Request, Response, ServerHandle};

use crate::table::Table;
use crate::Scale;

use super::MASTER_SEED;

/// One leg: every probe point subscribed at one width against one server.
#[derive(Debug, Clone)]
pub struct E13Row {
    /// `"cold"` (no sweep) or `"warm"` (post-`SWEEP` store).
    pub leg: &'static str,
    /// Requested interval width.
    pub eps: f64,
    /// Probe points subscribed.
    pub probes: usize,
    /// Probes served entirely at tier 0 (one `INTERVAL`, then `EST` —
    /// zero completion simulations).
    pub tier0: usize,
    /// Probes whose closing interval satisfied `eps`.
    pub converged: usize,
    /// Probes that exhausted the per-point sample budget first.
    pub exhausted: usize,
    /// Total streamed frames across all probes.
    pub frames: usize,
    /// Mean µs from request to the first interval frame.
    pub us_first: f64,
    /// Mean µs from request to the closing `EST`.
    pub us_final: f64,
    /// Whether every closing `EST` was bit-identical to the blocking
    /// `ESTIMATE` issued immediately after its stream.
    pub bits_match: bool,
}

/// The widths each leg runs: loose enough for tier 0 to satisfy warm
/// probes outright, and tight enough to force refinement (or exhaust the
/// budget) everywhere.
const WIDTHS: [f64; 2] = [0.5, 0.15];

fn serve(scale: Scale) -> ServerHandle {
    JigsawServer::builder()
        .config(
            JigsawConfig::paper()
                .with_n_samples(scale.n_samples)
                .with_fingerprint_len(scale.m)
                .with_threads(scale.threads),
        )
        .master_seed(MASTER_SEED)
        .bind("127.0.0.1:0")
        .expect("bind loopback")
        .serve()
        .expect("start server")
}

/// Drive one leg: fresh server, optional warm-up sweep, then one
/// `SUBSCRIBE` stream plus one blocking `ESTIMATE` per probe.
fn leg(scale: Scale, leg: &'static str, eps: f64, src: &str, probes: &[usize]) -> E13Row {
    let handle = serve(scale);
    let mut c = Client::connect(handle.local_addr()).expect("connect to loopback server");
    match c.request(&Request::Compile { src: src.into() }).expect("compile") {
        Response::Compiled { .. } => {}
        other => panic!("unexpected compile reply {other:?}"),
    }
    if leg == "warm" {
        match c.request(&Request::Sweep).expect("sweep") {
            Response::Swept { .. } => {}
            other => panic!("unexpected sweep reply {other:?}"),
        }
    }
    let mut row = E13Row {
        leg,
        eps,
        probes: probes.len(),
        tier0: 0,
        converged: 0,
        exhausted: 0,
        frames: 0,
        us_first: 0.0,
        us_final: 0.0,
        bits_match: true,
    };
    for &p in probes {
        let mut frames: Vec<Response> = Vec::new();
        let mut first = None;
        let t0 = Instant::now();
        c.subscribe_each(p, 0, eps, |resp| {
            if first.is_none() {
                first = Some(t0.elapsed());
            }
            frames.push(resp.clone());
        })
        .expect("subscribe stream");
        let total = t0.elapsed();
        let n_first = match frames.first() {
            Some(Response::Interval { n_samples, .. }) => *n_samples,
            other => panic!("stream must open with the tier-0 INTERVAL, got {other:?}"),
        };
        let (closing, converged, n_final) = match frames.last() {
            Some(est @ Response::Estimated { lo_bits, hi_bits, n_samples, .. }) => {
                let width = f64::from_bits(*hi_bits) - f64::from_bits(*lo_bits);
                (est.clone(), width <= eps, *n_samples)
            }
            other => panic!("stream must close with EST, got {other:?}"),
        };
        if converged {
            row.converged += 1;
        } else {
            row.exhausted += 1;
        }
        // Tier-0 service: within ε with *no* samples added after the
        // analytic bound — distinct from a warm stream that merely
        // exhausts immediately (also two frames, but unconverged).
        if converged && frames.len() == 2 && n_final == n_first {
            row.tier0 += 1;
        }
        row.frames += frames.len();
        row.us_first += first.expect("at least one frame").as_secs_f64() * 1e6;
        row.us_final += total.as_secs_f64() * 1e6;
        let blocking = c.request(&Request::Estimate { point: p, col: 0 }).expect("estimate");
        row.bits_match &= blocking == closing;
    }
    row.us_first /= probes.len().max(1) as f64;
    row.us_final /= probes.len().max(1) as f64;
    drop(c);
    handle.shutdown().expect("server shutdown");
    row
}

/// Run every (leg, width) combination, each on its own fresh server so
/// the cold legs stay genuinely cold.
pub fn run(scale: Scale) -> Vec<E13Row> {
    let weeks = (160 / scale.space_divisor).max(10);
    let src = format!(
        "DECLARE PARAMETER @week AS RANGE 0 TO {} STEP BY 1; \
         DECLARE PARAMETER @feature AS SET (5, 12); \
         SELECT Demand(@week, @feature) AS demand INTO results;",
        weeks - 1
    );
    let points = weeks * 2;
    let probes: Vec<usize> = (0..points).step_by(7).collect();
    let mut rows = Vec::new();
    for &eps in &WIDTHS {
        for l in ["cold", "warm"] {
            rows.push(leg(scale, l, eps, &src, &probes));
        }
    }
    rows
}

/// Render the anytime-estimate table.
pub fn report(rows: &[E13Row]) -> Table {
    let mut t = Table::new(
        "E13 — anytime SUBSCRIBE: tier-0 service, convergence, and determinism",
        &[
            "Leg",
            "eps",
            "Probes",
            "Tier-0",
            "Converged",
            "Exhausted",
            "Frames",
            "us to bound",
            "us to final",
            "Bits==EST",
        ],
    );
    t.mark_timing(&["us to bound", "us to final"]);
    for r in rows {
        t.row(vec![
            r.leg.to_string(),
            format!("{}", r.eps),
            r.probes.to_string(),
            r.tier0.to_string(),
            r.converged.to_string(),
            r.exhausted.to_string(),
            r.frames.to_string(),
            format!("{:.1}", r.us_first),
            format!("{:.1}", r.us_final),
            r.bits_match.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    const MICRO: Scale = Scale { n_samples: 60, m: 10, space_divisor: 8, threads: 1 };

    #[test]
    fn warm_probes_ride_tier_zero_and_every_stream_matches_blocking_estimate() {
        let rows = run(MICRO);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            // The determinism contract holds on every leg at every width.
            assert!(r.bits_match, "{} eps={}: closing EST diverged from ESTIMATE", r.leg, r.eps);
            assert_eq!(r.converged + r.exhausted, r.probes, "{} eps={}", r.leg, r.eps);
            // Tier 0 answers before refinement finishes (or instantly).
            assert!(r.us_first <= r.us_final, "{} eps={}", r.leg, r.eps);
        }
        // The loose warm leg is the zero-sim acceptance: a measurable
        // fraction of ε-bounded requests served with no completion
        // simulations at all.
        let warm_loose = &rows[1];
        assert_eq!((warm_loose.leg, warm_loose.eps), ("warm", WIDTHS[0]));
        assert!(warm_loose.tier0 > 0, "no warm probe was served at tier 0");
        // Cold streams at the loose width genuinely refine: more frames
        // than the two a tier-0 service produces.
        let cold_loose = &rows[0];
        assert!(cold_loose.frames > 2 * cold_loose.probes, "cold leg never refined");
    }
}
