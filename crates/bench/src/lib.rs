//! # jigsaw-bench — reproduction harness for the paper's evaluation (§6)
//!
//! Each experiment module regenerates one table or figure:
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`experiments::e1`] | Figure 7 — online (DBMS) vs offline (direct) engine, s/pc |
//! | [`experiments::e2`] | Figure 8 — full evaluation vs Jigsaw |
//! | [`experiments::e3`] | Figure 9 — time/point vs structure size, 3 index strategies |
//! | [`experiments::e4`] | Figure 10 — indexing in a static parameter space |
//! | [`experiments::e5`] | Figure 11 — indexing, parameter space growing with basis size |
//! | [`experiments::e6`] | Figure 12 — Markov-jump performance vs branching factor |
//! | [`experiments::e7`] | §6.2 accuracy — fingerprint length and Markov-jump error |
//! | [`experiments::e8`] | Parallel sweep scaling at 1/2/4/8 threads (reproduction extension) |
//! | [`experiments::e9`] | Cold vs snapshot-warm-started sweeps (reproduction extension) |
//! | [`experiments::e10`] | Session server: multi-client warm-store sharing (reproduction extension) |
//! | [`experiments::e11`] | Per-world vs columnar world evaluation (reproduction extension) |
//! | [`experiments::e12`] | Sketch-then-refine vs exhaustive sweep (reproduction extension) |
//!
//! The `repro` binary prints them as text tables; `EXPERIMENTS.md` records
//! paper-vs-measured values. Absolute times differ from the paper's 2009-era
//! hardware; the claims under reproduction are the *shapes*: who wins, by
//! roughly what factor, and where crossovers fall.

pub mod experiments;
pub mod table;

pub use table::Table;

/// Standard scale factors so `--quick` runs finish in seconds while the
/// default reproduces the paper's workload sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Monte Carlo samples per parameter point (paper: 1000).
    pub n_samples: usize,
    /// Fingerprint length (paper: 10).
    pub m: usize,
    /// Divide parameter-space sizes by this factor.
    pub space_divisor: usize,
    /// Thread budget for sweep/Markov world evaluation (`repro --threads`).
    /// Pure wall-clock knob: every reported counter and result is
    /// bit-identical for any value — the CI smoke job diffs two runs with
    /// different budgets to enforce exactly that.
    pub threads: usize,
}

impl Scale {
    /// Paper-sized workloads.
    pub const FULL: Scale = Scale { n_samples: 1000, m: 10, space_divisor: 1, threads: 1 };
    /// Reduced sizes for smoke runs and CI.
    pub const QUICK: Scale = Scale { n_samples: 200, m: 10, space_divisor: 4, threads: 1 };

    /// Override the thread budget.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_consistent() {
        for s in [Scale::FULL, Scale::QUICK] {
            assert!(s.n_samples > s.m);
            assert!(s.space_divisor >= 1);
            assert_eq!(s.threads, 1, "default scales are sequential");
        }
        assert_eq!(Scale::QUICK.with_threads(4).threads, 4);
    }
}
