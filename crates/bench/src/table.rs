//! Minimal text-table rendering for experiment reports.

/// Placeholder printed for wall-clock cells in deterministic renders.
const REDACTED: &str = "—";

/// A text table with a title, header, and rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    /// Per-column flag: true for wall-clock (non-deterministic) columns.
    timing: Vec<bool>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            timing: vec![false; header.len()],
        }
    }

    /// Mark columns (by header name) as wall-clock measurements. Cells of
    /// marked columns are replaced by a placeholder in
    /// [`Self::to_markdown_deterministic`] so two runs with different thread
    /// budgets render byte-identically — the invariant the CI twin-run diff
    /// enforces.
    pub fn mark_timing(&mut self, headers: &[&str]) {
        for h in headers {
            let i = self
                .header
                .iter()
                .position(|x| x == h)
                .unwrap_or_else(|| panic!("no column named `{h}` to mark as timing"));
            self.timing[i] = true;
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render with wall-clock columns redacted: only deterministic content
    /// remains, so the output is diffable across runs and thread budgets.
    pub fn to_markdown_deterministic(&self) -> String {
        let mut det = self.clone();
        for row in &mut det.rows {
            for (cell, &is_timing) in row.iter_mut().zip(&det.timing) {
                if is_timing {
                    *cell = REDACTED.to_string();
                }
            }
        }
        det.to_markdown()
    }

    /// Render as a GitHub-style markdown table.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = format!("### {}\n\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let padded: Vec<String> =
                cells.iter().zip(widths).map(|(c, w)| format!("{c:<w$}", w = *w)).collect();
            format!("| {} |\n", padded.join(" | "))
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("| {} |\n", dashes.join(" | ")));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Format seconds compactly.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Format a dimensionless ratio.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}×")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("Demo", &["model", "time"]);
        t.row(vec!["Demand".into(), "0.1 s".into()]);
        t.row(vec!["C".into(), "2 s".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("### Demo"));
        assert!(md.contains("| model  | time  |"));
        assert!(md.contains("| Demand | 0.1 s |"));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn deterministic_render_redacts_timing_columns() {
        let mut t = Table::new("Demo", &["model", "time", "count"]);
        t.mark_timing(&["time"]);
        t.row(vec!["Demand".into(), "0.123 s".into(), "42".into()]);
        let det = t.to_markdown_deterministic();
        assert!(!det.contains("0.123"), "timing cell must be redacted");
        assert!(det.contains("42"), "deterministic cells survive");
        // The plain render is untouched.
        assert!(t.to_markdown().contains("0.123"));
    }

    #[test]
    #[should_panic(expected = "no column named")]
    fn unknown_timing_column_rejected() {
        Table::new("x", &["a"]).mark_timing(&["zzz"]);
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_secs(2.5), "2.50 s");
        assert_eq!(fmt_secs(0.0021), "2.10 ms");
        assert_eq!(fmt_secs(3e-7), "0.3 µs");
        assert_eq!(fmt_ratio(102.4), "102.40×");
    }
}
