//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--quick] [--exp e1,e2,...] [--threads N] [--deterministic]
//!       [--save-basis DIR] [--load-basis DIR] [--eval-path columnar|oracle]
//!       [--sketch] [--sketch-budget S] [--refine-top-k K]
//! ```
//!
//! Default runs all experiments at paper scale; `--quick` shrinks workloads
//! for smoke runs. `--threads N` sets the world-evaluation thread budget
//! (`0` = all cores) for the sweep/Markov experiments e2–e6 — a pure
//! wall-clock knob, since every sweep is bit-identical for any budget. E1
//! (engine comparison) and E7 (accuracy) don't consume it, and E8 always
//! measures its own 1/2/4/8 ladder. `--deterministic` redacts wall-clock
//! columns so two runs (e.g. `--threads 1` vs `--threads 4`) emit
//! byte-identical markdown; the CI smoke job diffs exactly that. Output is
//! markdown, suitable for pasting into `EXPERIMENTS.md`.
//!
//! `--save-basis DIR` makes E9's cold sweeps persist their basis stores as
//! snapshots under `DIR`; `--load-basis DIR` warm-starts E9's warm sweeps
//! from a previous run's `DIR` instead of the snapshots written this run.
//! Warm-started sweeps are bit-identical to cold ones, so a save run and a
//! load run emit byte-identical deterministic tables — the CI smoke job
//! diffs exactly that pair too.
//!
//! `--eval-path oracle` pins the process-wide evaluation path to the
//! per-world oracle loops instead of the default columnar kernels. The
//! columnar layout is a pure performance change, so two deterministic runs
//! differing only in this flag emit byte-identical tables — the CI smoke
//! job diffs exactly that pair as well.
//!
//! `--sketch` is shorthand for `--exp e12`: run only the sketch-then-refine
//! comparison. `--sketch-budget S` / `--refine-top-k K` override E12's
//! sketch knobs (defaults: `2m` coarse worlds per point, frontier width 4).
//! Sketch pruning is a pure function of (config, seed), so deterministic
//! sketch runs are byte-identical across thread budgets — the CI smoke job
//! diffs a `--sketch --threads 1` run against a `--threads 4` one.

use std::path::PathBuf;

use jigsaw_bench::experiments::{e1, e10, e11, e12, e13, e14, e2, e3, e4, e5, e6, e7, e8, e9};
use jigsaw_bench::{Scale, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let deterministic = args.iter().any(|a| a == "--deterministic");
    let threads: usize = match args.iter().position(|a| a == "--threads") {
        None => 1,
        Some(i) => args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
            eprintln!("error: --threads requires an integer value (0 = all cores)");
            std::process::exit(2);
        }),
    };
    let dir_flag = |flag: &str| -> Option<PathBuf> {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1).map(PathBuf::from).unwrap_or_else(|| {
                eprintln!("error: {flag} requires a directory path");
                std::process::exit(2);
            })
        })
    };
    let save_basis = dir_flag("--save-basis");
    let load_basis = dir_flag("--load-basis");
    let sketch_only = args.iter().any(|a| a == "--sketch");
    let usize_flag = |flag: &str| -> Option<usize> {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                eprintln!("error: {flag} requires a positive integer");
                std::process::exit(2);
            })
        })
    };
    let sketch_budget = usize_flag("--sketch-budget");
    let refine_top_k = usize_flag("--refine-top-k");
    if let Some(i) = args.iter().position(|a| a == "--eval-path") {
        let path = match args.get(i + 1).map(String::as_str) {
            Some("columnar") => jigsaw_pdb::EvalPath::Columnar,
            Some("oracle") => jigsaw_pdb::EvalPath::Oracle,
            _ => {
                eprintln!("error: --eval-path requires `columnar` or `oracle`");
                std::process::exit(2);
            }
        };
        jigsaw_pdb::force_eval_path(path);
    }
    let scale = (if quick { Scale::QUICK } else { Scale::FULL }).with_threads(threads);
    let selected: Vec<String> = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.split(',').map(|x| x.trim().to_lowercase()).collect())
        .unwrap_or_default();
    // `--sketch` narrows the run to E12, exactly like `--exp e12`.
    let want = |name: &str| {
        if sketch_only {
            name == "e12"
        } else {
            selected.is_empty() || selected.iter().any(|s| s == name)
        }
    };
    let render =
        |t: &Table| if deterministic { t.to_markdown_deterministic() } else { t.to_markdown() };

    // The header must stay identical across thread budgets in deterministic
    // mode (the CI diff compares such runs), so the budget is only printed
    // in the normal mode.
    if deterministic {
        println!(
            "# Jigsaw reproduction run ({} scale: n={}, m={}, space ÷{}; deterministic output)\n",
            if quick { "quick" } else { "full" },
            scale.n_samples,
            scale.m,
            scale.space_divisor
        );
    } else {
        println!(
            "# Jigsaw reproduction run ({} scale: n={}, m={}, space ÷{}, threads={})\n",
            if quick { "quick" } else { "full" },
            scale.n_samples,
            scale.m,
            scale.space_divisor,
            scale.threads
        );
    }

    if want("e1") {
        eprintln!("[repro] E1: engine comparison (Figure 7)…");
        println!("{}", render(&e1::report(&e1::run(scale))));
    }
    if want("e2") {
        eprintln!("[repro] E2: Jigsaw vs full evaluation (Figure 8)…");
        println!("{}", render(&e2::report(&e2::run(scale))));
    }
    if want("e3") {
        eprintln!("[repro] E3: structure size (Figure 9)…");
        println!("{}", render(&e3::report(&e3::run(scale))));
    }
    if want("e4") {
        eprintln!("[repro] E4: static-space indexing (Figure 10)…");
        println!("{}", render(&e4::report(&e4::run(scale))));
    }
    if want("e5") {
        eprintln!("[repro] E5: growing-space indexing (Figure 11)…");
        println!("{}", render(&e5::report(&e5::run(scale))));
    }
    if want("e6") {
        eprintln!("[repro] E6: Markov branching (Figure 12)…");
        println!("{}", render(&e6::report(&e6::run(scale))));
    }
    if want("e7") {
        eprintln!("[repro] E7: accuracy (§6.2)…");
        println!("{}", render(&e7::report_fingerprint(&e7::run_fingerprint(scale))));
        println!("{}", render(&e7::report_markov(&e7::run_markov(scale))));
    }
    if want("e8") {
        eprintln!("[repro] E8: parallel sweep scaling…");
        println!("{}", render(&e8::report(&e8::run(scale))));
    }
    if want("e9") {
        eprintln!("[repro] E9: cold vs warm-started sweeps…");
        println!(
            "{}",
            render(&e9::report(&e9::run(scale, load_basis.as_deref(), save_basis.as_deref())))
        );
    }
    if want("e10") {
        eprintln!("[repro] E10: session server, multi-client warm-store sharing…");
        let (rows, ladder) = e10::run(scale);
        println!("{}", render(&e10::report(&rows)));
        println!("{}", render(&e10::report_ladder(&ladder)));
    }
    if want("e11") {
        eprintln!("[repro] E11: per-world vs columnar world evaluation…");
        println!("{}", render(&e11::report(&e11::run(scale))));
    }
    if want("e12") {
        eprintln!("[repro] E12: sketch-then-refine vs exhaustive sweep…");
        let (default_budget, default_k) = e12::default_knobs(scale);
        let rows = e12::run(
            scale,
            sketch_budget.unwrap_or(default_budget),
            refine_top_k.unwrap_or(default_k),
        );
        println!("{}", render(&e12::report(&rows)));
    }
    if want("e13") {
        eprintln!("[repro] E13: anytime SUBSCRIBE estimates with error bounds…");
        println!("{}", render(&e13::report(&e13::run(scale))));
    }
    if want("e14") {
        eprintln!("[repro] E14: observability overhead, instruments enabled vs disabled…");
        println!("{}", render(&e14::report(&e14::run(scale))));
    }
    eprintln!("[repro] done.");
}
