//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--quick] [--exp e1,e2,...]
//! ```
//!
//! Default runs all experiments at paper scale; `--quick` shrinks workloads
//! for smoke runs. Output is markdown, suitable for pasting into
//! `EXPERIMENTS.md`.

use jigsaw_bench::experiments::{e1, e2, e3, e4, e5, e6, e7};
use jigsaw_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::QUICK } else { Scale::FULL };
    let selected: Vec<String> = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.split(',').map(|x| x.trim().to_lowercase()).collect())
        .unwrap_or_default();
    let want = |name: &str| selected.is_empty() || selected.iter().any(|s| s == name);

    println!(
        "# Jigsaw reproduction run ({} scale: n={}, m={}, space ÷{})\n",
        if quick { "quick" } else { "full" },
        scale.n_samples,
        scale.m,
        scale.space_divisor
    );

    if want("e1") {
        eprintln!("[repro] E1: engine comparison (Figure 7)…");
        println!("{}", e1::report(&e1::run(scale)).to_markdown());
    }
    if want("e2") {
        eprintln!("[repro] E2: Jigsaw vs full evaluation (Figure 8)…");
        println!("{}", e2::report(&e2::run(scale)).to_markdown());
    }
    if want("e3") {
        eprintln!("[repro] E3: structure size (Figure 9)…");
        println!("{}", e3::report(&e3::run(scale)).to_markdown());
    }
    if want("e4") {
        eprintln!("[repro] E4: static-space indexing (Figure 10)…");
        println!("{}", e4::report(&e4::run(scale)).to_markdown());
    }
    if want("e5") {
        eprintln!("[repro] E5: growing-space indexing (Figure 11)…");
        println!("{}", e5::report(&e5::run(scale)).to_markdown());
    }
    if want("e6") {
        eprintln!("[repro] E6: Markov branching (Figure 12)…");
        println!("{}", e6::report(&e6::run(scale)).to_markdown());
    }
    if want("e7") {
        eprintln!("[repro] E7: accuracy (§6.2)…");
        println!("{}", e7::report_fingerprint(&e7::run_fingerprint(scale)).to_markdown());
        println!("{}", e7::report_markov(&e7::run_markov(scale)).to_markdown());
    }
    eprintln!("[repro] done.");
}
