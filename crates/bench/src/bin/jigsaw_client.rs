//! `jigsaw-client` — scripted driver for the Jigsaw session server.
//!
//! ```text
//! jigsaw-client --addr HOST:PORT (--script FILE | --command "LINE")...
//! ```
//!
//! Replays a line-oriented script (one protocol command per line; `COMPILE`
//! takes the scenario source as the rest of its line; blank lines and `#`
//! comments are skipped) and prints the canonical transcript — each command
//! echoed with `> `, each response with `< `. Every response field is
//! deterministic given the server's scenario and configuration, so the CI
//! smoke job byte-diffs this output against a golden file under
//! `tests/golden/`.
//!
//! Exit status: 0 when the script was replayed (even if some commands drew
//! `ERR` responses — those are part of the transcript), 1 on a transport or
//! usage failure.

use jigsaw_server::client::run_script;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value_of = |flag: &str| -> Option<&String> {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1).unwrap_or_else(|| {
                eprintln!("error: {flag} requires a value");
                std::process::exit(1);
            })
        })
    };
    let Some(addr) = value_of("--addr") else {
        eprintln!("usage: jigsaw-client --addr HOST:PORT (--script FILE | --command LINE)");
        std::process::exit(1);
    };
    let script = match (value_of("--script"), value_of("--command")) {
        (Some(path), None) => std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(1);
        }),
        (None, Some(line)) => line.clone(),
        _ => {
            eprintln!("error: pass exactly one of --script FILE or --command LINE");
            std::process::exit(1);
        }
    };
    match run_script(addr.as_str(), &script) {
        Ok(transcript) => print!("{transcript}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
