//! `jigsaw-client` — scripted driver for the Jigsaw session server.
//!
//! ```text
//! jigsaw-client --addr HOST:PORT (--script FILE | --command "LINE")
//!               [--soak N]
//! ```
//!
//! Replays a line-oriented script (one protocol command per line; `COMPILE`
//! takes the scenario source as the rest of its line; blank lines and `#`
//! comments are skipped) and prints the canonical transcript — each command
//! echoed with `> `, each response with `< `. Every response field is
//! deterministic given the server's scenario and configuration, so the CI
//! smoke job byte-diffs this output against a golden file under
//! `tests/golden/`.
//!
//! With `--soak N`, the script is replayed by N concurrent connections and
//! every transcript is byte-compared against the first — the CI soak smoke
//! uses this to drive ≥100 clients through the readiness connection layer
//! and prove they all read the same warm store. One transcript is printed
//! either way.
//!
//! Exit status: 0 when the script was replayed (even if some commands drew
//! `ERR` responses — those are part of the transcript), 1 on a transport or
//! usage failure, or when any soak transcript diverges.

use jigsaw_server::client::run_script;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value_of = |flag: &str| -> Option<&String> {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1).unwrap_or_else(|| {
                eprintln!("error: {flag} requires a value");
                std::process::exit(1);
            })
        })
    };
    let Some(addr) = value_of("--addr") else {
        eprintln!("usage: jigsaw-client --addr HOST:PORT (--script FILE | --command LINE)");
        std::process::exit(1);
    };
    let script = match (value_of("--script"), value_of("--command")) {
        (Some(path), None) => std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(1);
        }),
        (None, Some(line)) => line.clone(),
        _ => {
            eprintln!("error: pass exactly one of --script FILE or --command LINE");
            std::process::exit(1);
        }
    };
    let soak: usize = value_of("--soak").map_or(1, |s| {
        s.parse().unwrap_or_else(|_| {
            eprintln!("error: --soak requires an integer, got `{s}`");
            std::process::exit(1);
        })
    });
    if soak <= 1 {
        match run_script(addr.as_str(), &script) {
            Ok(transcript) => print!("{transcript}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    // Soak mode: all N connections in flight at once, transcripts
    // byte-compared pairwise against client 0's.
    let threads: Vec<_> = (0..soak)
        .map(|_| {
            let addr = addr.clone();
            let script = script.clone();
            std::thread::spawn(move || run_script(addr.as_str(), &script))
        })
        .collect();
    let mut transcripts = Vec::with_capacity(soak);
    for (i, t) in threads.into_iter().enumerate() {
        match t.join().expect("soak client thread") {
            Ok(transcript) => transcripts.push(transcript),
            Err(e) => {
                eprintln!("error: soak client {i}: {e}");
                std::process::exit(1);
            }
        }
    }
    for (i, transcript) in transcripts.iter().enumerate().skip(1) {
        if transcript != &transcripts[0] {
            eprintln!("error: soak client {i} diverged from client 0");
            std::process::exit(1);
        }
    }
    eprintln!("[soak] {soak} concurrent clients, all transcripts byte-identical");
    print!("{}", transcripts[0]);
}
