//! Naive array scan — the baseline of Figures 10 and 11.

use crate::fingerprint::Fingerprint;

use super::FingerprintIndex;

/// Returns every registered basis as a candidate; the caller's mapping
/// validation does all the work. O(#bases) mapping attempts per lookup.
#[derive(Debug, Clone, Default)]
pub struct ArrayIndex {
    ids: Vec<usize>,
}

impl ArrayIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }
}

impl FingerprintIndex for ArrayIndex {
    fn name(&self) -> &str {
        "array"
    }

    fn insert(&mut self, id: usize, _fp: &Fingerprint) {
        self.ids.push(id);
    }

    fn candidates(&self, _fp: &Fingerprint) -> Vec<usize> {
        // Insertion order by construction (the trait's ordering contract).
        self.ids.clone()
    }

    fn len(&self) -> usize {
        self.ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_everything() {
        let mut idx = ArrayIndex::new();
        let fp = Fingerprint::new(vec![1.0, 2.0]);
        idx.insert(7, &fp);
        idx.insert(9, &fp);
        assert_eq!(idx.candidates(&Fingerprint::new(vec![5.0, 5.0])), vec![7, 9]);
        assert_eq!(idx.len(), 2);
    }
}
