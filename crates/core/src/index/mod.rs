//! Fingerprint indexing (paper §3.2).
//!
//! "Instead of naively scanning every basis distribution, Jigsaw builds an
//! index over the basis fingerprints. The goal of indexing is to quickly
//! find a set of candidate basis fingerprints that are similar to a given
//! fingerprint … The set of fingerprints returned by the index must contain
//! all similar fingerprints \[and\] may contain few fingerprints that are not
//! similar"; false positives are discarded by mapping validation.
//!
//! In this implementation an index *miss* is also harmless for
//! correctness — it merely forfeits a reuse opportunity and triggers a full
//! simulation — so quantization may be tuned for hash robustness rather
//! than perfect recall.

mod array;
mod normal;
mod sorted_sid;

pub use array::ArrayIndex;
pub use normal::NormalizationIndex;
pub use sorted_sid::SortedSidIndex;

use crate::config::IndexStrategy;
use crate::fingerprint::Fingerprint;

/// A candidate-lookup structure over basis fingerprints.
pub trait FingerprintIndex: Send + Sync {
    /// Strategy name for reports.
    fn name(&self) -> &str;

    /// Register a basis fingerprint under `id`.
    fn insert(&mut self, id: usize, fp: &Fingerprint);

    /// Ids of bases that may map onto `fp`; superset semantics are
    /// best-effort (see module docs), and every candidate is re-validated
    /// by the caller.
    ///
    /// **Ordering contract:** the candidate list must be a deterministic
    /// function of the insertion history alone — same inserts in the same
    /// order ⇒ same candidates in the same order (all three strategies
    /// return insertion order within a bucket). The batch-synchronous sweep
    /// executor relies on this to make staged-basis resolution bit-identical
    /// to the sequential point loop.
    fn candidates(&self, fp: &Fingerprint) -> Vec<usize>;

    /// Number of registered fingerprints.
    fn len(&self) -> usize;

    /// True when nothing is registered.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Instantiate the index for a configured strategy.
pub fn make_index(strategy: IndexStrategy, tolerance: f64) -> Box<dyn FingerprintIndex> {
    match strategy {
        IndexStrategy::Array => Box::new(ArrayIndex::new()),
        IndexStrategy::Normalization => Box::new(NormalizationIndex::new(tolerance)),
        IndexStrategy::SortedSid => Box::new(SortedSidIndex::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_dispatches() {
        assert_eq!(make_index(IndexStrategy::Array, 1e-9).name(), "array");
        assert_eq!(make_index(IndexStrategy::Normalization, 1e-9).name(), "normalization");
        assert_eq!(make_index(IndexStrategy::SortedSid, 1e-9).name(), "sorted-sid");
    }

    #[test]
    fn empty_index_has_no_candidates() {
        for strat in [IndexStrategy::Array, IndexStrategy::Normalization, IndexStrategy::SortedSid]
        {
            let idx = make_index(strat, 1e-9);
            assert!(idx.is_empty());
            assert!(idx.candidates(&Fingerprint::new(vec![1.0, 2.0])).is_empty());
        }
    }
}
