//! Normalization index (paper §3.2, "Normalization").
//!
//! "Translate the fingerprints to their normal forms so that two similar
//! fingerprints have the same normal form (and hence can be retrieved by a
//! hash lookup) … a fingerprint's normal form can be produced by taking the
//! first two distinct sample values and identifying the linear translation
//! that maps them to 0 and 1."
//!
//! The normal form is invariant under *any* affine map `αx + β` (α ≠ 0):
//! if `θ' = αθ + β` then `(θ'_k − θ'_{i0}) / (θ'_{i1} − θ'_{i0})` equals the
//! same expression over `θ`. Constant fingerprints (no distinct pair) get a
//! dedicated bucket.
//!
//! Normal-form entries are quantized to a grid (1e-6 by default, coarser
//! than the mapping tolerance) before hashing; values within tolerance land
//! in the same cell except at cell boundaries, where the resulting index
//! miss costs a redundant simulation but never an incorrect answer.

use std::collections::HashMap;

use crate::fingerprint::Fingerprint;

use super::FingerprintIndex;

/// Quantization grid for normal-form hashing.
const QUANTUM: f64 = 1e-6;

/// Hash index on affine-invariant normal forms.
#[derive(Debug, Clone)]
pub struct NormalizationIndex {
    tolerance: f64,
    buckets: HashMap<Vec<i64>, Vec<usize>>,
    len: usize,
}

impl NormalizationIndex {
    /// Create with the session's matching tolerance (used to detect the
    /// "first two distinct values").
    pub fn new(tolerance: f64) -> Self {
        NormalizationIndex { tolerance, buckets: HashMap::new(), len: 0 }
    }

    fn key(&self, fp: &Fingerprint) -> Vec<i64> {
        match fp.first_distinct_pair(self.tolerance) {
            // Constant fingerprint: canonical all-constant bucket.
            None => Vec::new(),
            Some((i0, i1)) => {
                let a = fp.entries()[i0];
                let span = fp.entries()[i1] - a;
                fp.entries()
                    .iter()
                    .map(|&x| {
                        let n = (x - a) / span;
                        // Round to the grid; normal forms of mappable
                        // fingerprints agree to ~tolerance, far below QUANTUM.
                        (n / QUANTUM).round() as i64
                    })
                    .collect()
            }
        }
    }
}

impl FingerprintIndex for NormalizationIndex {
    fn name(&self) -> &str {
        "normalization"
    }

    fn insert(&mut self, id: usize, fp: &Fingerprint) {
        self.buckets.entry(self.key(fp)).or_default().push(id);
        self.len += 1;
    }

    fn candidates(&self, fp: &Fingerprint) -> Vec<usize> {
        // Bucket vectors are append-only, so this is insertion order — the
        // deterministic ordering the trait contract requires.
        self.buckets.get(&self.key(fp)).cloned().unwrap_or_default()
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::AffineMap;

    fn fp(v: &[f64]) -> Fingerprint {
        Fingerprint::new(v.to_vec())
    }

    #[test]
    fn affine_images_collide() {
        let mut idx = NormalizationIndex::new(1e-9);
        let base = fp(&[0.3, 1.7, 0.9, 2.4, -0.5]);
        idx.insert(0, &base);
        for (i, map) in [
            AffineMap::new(2.0, 0.0),
            AffineMap::new(1.0, 5.0),
            AffineMap::new(-3.0, 1.0),
            AffineMap::new(0.001, -9.0),
        ]
        .iter()
        .enumerate()
        {
            let image = map.apply_fingerprint(&base);
            assert_eq!(idx.candidates(&image), vec![0], "map {i} should hash to the same bucket");
        }
    }

    #[test]
    fn unrelated_shapes_do_not_collide() {
        let mut idx = NormalizationIndex::new(1e-9);
        idx.insert(0, &fp(&[0.0, 1.0, 2.0, 3.0]));
        assert!(idx.candidates(&fp(&[0.0, 1.0, 4.0, 9.0])).is_empty());
    }

    #[test]
    fn constant_fingerprints_share_a_bucket() {
        let mut idx = NormalizationIndex::new(1e-9);
        idx.insert(3, &fp(&[5.0, 5.0, 5.0]));
        assert_eq!(idx.candidates(&fp(&[-2.0, -2.0, -2.0])), vec![3]);
        assert!(idx.candidates(&fp(&[1.0, 2.0, 3.0])).is_empty());
    }

    #[test]
    fn leading_ties_normalize_consistently() {
        let mut idx = NormalizationIndex::new(1e-9);
        let a = fp(&[4.0, 4.0, 6.0, 8.0]);
        idx.insert(1, &a);
        let image = AffineMap::new(3.0, -1.0).apply_fingerprint(&a);
        assert_eq!(idx.candidates(&image), vec![1]);
    }

    #[test]
    fn multiple_bases_in_one_bucket() {
        let mut idx = NormalizationIndex::new(1e-9);
        let a = fp(&[0.0, 1.0, 2.0]);
        let b = fp(&[10.0, 11.0, 12.0]); // same normal form as a
        idx.insert(0, &a);
        idx.insert(1, &b);
        assert_eq!(idx.candidates(&a), vec![0, 1]);
        assert_eq!(idx.len(), 2);
    }
}
