//! Sorted-SID index (paper §3.2, "Sorted SID").
//!
//! "We assign each sample value in a fingerprint an identifier (e.g., its
//! index position in the fingerprint) … We then sort the sample values in a
//! fingerprint, and take the resulting sequence of sample identifiers (or,
//! SIDs) as the hash key … As long as the mapping function is monotonically
//! increasing, the resultant ordering of SIDs will be consistent across all
//! mappable distributions. Even if the mapping function is only monotonic, a
//! similar effect can be achieved by comparing both the SID sequence and its
//! inverse."
//!
//! Unlike normalization, this strategy needs no normal form — it works for
//! any monotone mapping family (including nonlinear ones) — at the price of
//! coarser buckets: fingerprints with the same value *ordering* but
//! different shapes collide and are later rejected by validation.

use std::collections::HashMap;

use crate::fingerprint::Fingerprint;

use super::FingerprintIndex;

/// Hash index on the permutation that sorts the fingerprint.
#[derive(Debug, Clone, Default)]
pub struct SortedSidIndex {
    buckets: HashMap<Vec<u32>, Vec<usize>>,
    len: usize,
}

impl SortedSidIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(fp: &Fingerprint) -> Vec<u32> {
        let mut sids: Vec<u32> = (0..fp.len() as u32).collect();
        // Stable order: by value, ties by SID, so equal values cannot
        // scramble the permutation.
        sids.sort_by(|&a, &b| {
            fp.entries()[a as usize]
                .partial_cmp(&fp.entries()[b as usize])
                .expect("fingerprints are finite")
                .then(a.cmp(&b))
        });
        sids
    }
}

impl FingerprintIndex for SortedSidIndex {
    fn name(&self) -> &str {
        "sorted-sid"
    }

    fn insert(&mut self, id: usize, fp: &Fingerprint) {
        self.buckets.entry(Self::key(fp)).or_default().push(id);
        self.len += 1;
    }

    fn candidates(&self, fp: &Fingerprint) -> Vec<usize> {
        // Forward-bucket hits (insertion order) first, then mirror-bucket
        // hits — a fixed, append-stable order per the trait contract.
        let key = Self::key(fp);
        let mut out = self.buckets.get(&key).cloned().unwrap_or_default();
        // Decreasing mappings reverse the order: probe the mirror key too.
        let reversed: Vec<u32> = key.into_iter().rev().collect();
        if let Some(more) = self.buckets.get(&reversed) {
            for id in more {
                if !out.contains(id) {
                    out.push(*id);
                }
            }
        }
        out
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::AffineMap;

    fn fp(v: &[f64]) -> Fingerprint {
        Fingerprint::new(v.to_vec())
    }

    #[test]
    fn increasing_maps_collide() {
        let mut idx = SortedSidIndex::new();
        let base = fp(&[0.3, 1.7, 0.9, 2.4, -0.5]);
        idx.insert(0, &base);
        let image = AffineMap::new(2.0, 7.0).apply_fingerprint(&base);
        assert_eq!(idx.candidates(&image), vec![0]);
    }

    #[test]
    fn decreasing_maps_found_via_reversed_key() {
        let mut idx = SortedSidIndex::new();
        let base = fp(&[0.3, 1.7, 0.9, 2.4, -0.5]);
        idx.insert(0, &base);
        let image = AffineMap::new(-1.0, 0.0).apply_fingerprint(&base);
        assert_eq!(idx.candidates(&image), vec![0]);
    }

    #[test]
    fn nonlinear_monotone_maps_still_collide() {
        // The advertised advantage over normalization: x³ is monotone but
        // not affine, yet the SID permutation is preserved.
        let mut idx = SortedSidIndex::new();
        let base = fp(&[0.3, 1.7, 0.9, 2.4, -0.5]);
        idx.insert(0, &base);
        let cubed = Fingerprint::new(base.entries().iter().map(|&x| x.powi(3)).collect());
        assert_eq!(idx.candidates(&cubed), vec![0]);
    }

    #[test]
    fn different_orderings_do_not_collide() {
        let mut idx = SortedSidIndex::new();
        idx.insert(0, &fp(&[1.0, 2.0, 3.0]));
        assert!(idx.candidates(&fp(&[2.0, 1.0, 3.0])).is_empty());
    }

    #[test]
    fn false_positives_allowed_same_order_different_shape() {
        // Same ordering, non-affine shape: the index returns it (validation
        // will discard it), exactly as the paper permits.
        let mut idx = SortedSidIndex::new();
        idx.insert(0, &fp(&[1.0, 2.0, 3.0]));
        assert_eq!(idx.candidates(&fp(&[1.0, 10.0, 100.0])), vec![0]);
    }

    #[test]
    fn palindromic_key_no_duplicate_candidates() {
        // A 1-element... need key == reversed key: single entry.
        let mut idx = SortedSidIndex::new();
        idx.insert(4, &fp(&[42.0]));
        assert_eq!(idx.candidates(&fp(&[7.0])), vec![4]);
    }
}
