//! Synthesized non-Markovian estimators (paper §4.2).
//!
//! "A function `F_mkv` defining a Markov process with per-step state `P_i`
//! generates the next step's state … We can define a rudimentary estimator
//! function `F_est,i` by fixing `F_mkv`'s input state at one point in time.
//! Even this rudimentary estimator function can be quite powerful when
//! combined with fingerprints; any uniform changes in state are absorbed by
//! the mapping function."

use jigsaw_blackbox::MarkovModel;
use jigsaw_prng::{stream_seed, Seed};

/// An estimator that predicts instance outputs at arbitrary future steps by
/// holding each instance's chain state frozen at a reference step.
#[derive(Debug, Clone)]
pub struct FrozenEstimator {
    /// Chain values captured at the reference step.
    frozen_chains: Vec<f64>,
    /// The step the chains were captured at (diagnostics only).
    ref_step: usize,
}

impl FrozenEstimator {
    /// Freeze the given chain values (typically the full state at the start
    /// of a quiet region).
    pub fn new(frozen_chains: Vec<f64>, ref_step: usize) -> Self {
        assert!(!frozen_chains.is_empty(), "estimator needs at least one instance");
        FrozenEstimator { frozen_chains, ref_step }
    }

    /// Reference step.
    pub fn ref_step(&self) -> usize {
        self.ref_step
    }

    /// Number of instances covered.
    pub fn n(&self) -> usize {
        self.frozen_chains.len()
    }

    /// Predict the output of instance `i` at `step`, non-Markovianly.
    ///
    /// Uses the *same* `(instance, step)` seed the true process would use —
    /// the property that makes estimator/process fingerprints comparable.
    #[inline]
    pub fn predict(&self, model: &dyn MarkovModel, master: Seed, i: usize, step: usize) -> f64 {
        model.output(step, self.frozen_chains[i], stream_seed(master, i, step))
    }

    /// Predict outputs of the first `m` instances (the estimator
    /// fingerprint at `step`).
    pub fn fingerprint(
        &self,
        model: &dyn MarkovModel,
        master: Seed,
        m: usize,
        step: usize,
    ) -> Vec<f64> {
        (0..m).map(|i| self.predict(model, master, i, step)).collect()
    }

    /// The frozen chain of instance `i`.
    pub fn chain(&self, i: usize) -> f64 {
        self.frozen_chains[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jigsaw_blackbox::models::{MarkovBranch, MarkovStep};
    use jigsaw_blackbox::MarkovModel;

    #[test]
    fn matches_truth_while_chains_static() {
        // With branching 0 the chain never changes, so the estimator is
        // exact at every horizon.
        let model = MarkovBranch::new(0.0);
        let est = FrozenEstimator::new(vec![0.0; 8], 0);
        let master = Seed(3);
        // True process outputs at step 5 (chains still 0).
        for i in 0..8 {
            let truth = model.output(5, 0.0, stream_seed(master, i, 5));
            assert_eq!(est.predict(&model, master, i, 5), truth);
        }
    }

    #[test]
    fn diverges_after_chain_change() {
        let model = MarkovBranch::new(0.0); // jump=10 per counter unit
        let est = FrozenEstimator::new(vec![0.0; 4], 0);
        let master = Seed(3);
        // Truth with counter = 2 differs from frozen counter = 0 by 2*jump.
        let truth = model.output(7, 2.0, stream_seed(master, 1, 7));
        let pred = est.predict(&model, master, 1, 7);
        assert!((truth - pred - 2.0 * model.jump).abs() < 1e-12);
    }

    #[test]
    fn fingerprint_is_prefix_of_predictions() {
        let model = MarkovStep::paper(30.0, 2);
        let est = FrozenEstimator::new(vec![f64::INFINITY; 6], 0);
        let master = Seed(8);
        let fp = est.fingerprint(&model, master, 4, 10);
        for (i, &v) in fp.iter().enumerate() {
            assert_eq!(v, est.predict(&model, master, i, 10));
        }
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn empty_rejected() {
        let _ = FrozenEstimator::new(vec![], 0);
    }
}
