//! Markov-process acceleration (paper §4).
//!
//! Cyclically-dependent models must be evaluated step by step — but in the
//! paper's domain the Markovian dependency only *matters* near infrequent
//! discontinuities. Between discontinuities, a non-Markovian estimator
//! (synthesized by freezing the chain state, §4.2) predicts every instance's
//! output, and fingerprints detect exactly when that estimator stops being
//! valid. Advancing only the `m` fingerprint instances through quiet regions
//! cuts the per-step cost from `O(n)` to `O(m)`.

mod chain;
mod estimator;
mod jump;

pub use chain::{run_naive, run_naive_threaded, ChainState};
pub use estimator::FrozenEstimator;
pub use jump::{BasisRetention, MarkovJumpConfig, MarkovJumpResult, MarkovJumpRunner};
