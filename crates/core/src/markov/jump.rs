//! The Markov-jump algorithm (paper §4.1, Algorithm 4).
//!
//! "To compute the value of a Markovian black-box function at a particular
//! step in the chain, Jigsaw does an exponential-skip-length search of the
//! chain until it finds a point where the estimator fails to provide a
//! mappable fingerprint. From that point, it does a binary search to find
//! the last point in the chain where the estimator provides a mappable
//! fingerprint, uses the estimator to rebuild the state of the Markov
//! process, generates the next step, and repeats the process."
//!
//! Cost model: the `m` fingerprint instances advance truly through every
//! step (`m` outputs/step); validations cost `m` estimator outputs each and
//! happen at exponentially spaced checkpoints; full-state work (`n − m`
//! estimator outputs, or `n` true outputs on a hard fallback) happens only
//! at discontinuities and at the final step.
//!
//! ## Accuracy
//!
//! Reconstruction maps the estimator's predictions through the fingerprint
//! mapping. When state changes are uniform across instances (or confined to
//! the discontinuity regions the algorithm steps through truly), the result
//! is exact; per-instance divergence *outside* the fingerprint set between
//! two checkpoints is invisible and introduces error. This is inherent to
//! the paper's algorithm; experiment E7 quantifies it on `MarkovBranch`.

use std::time::Instant;

use jigsaw_blackbox::MarkovModel;
use jigsaw_prng::{stream_seed, Seed};

use crate::fingerprint::Fingerprint;
use crate::mapping::{AffineFamily, AffineMap, MappingFamily};
use crate::telemetry::MarkovStats;

use super::chain::K_TRANSITION;
use super::estimator::FrozenEstimator;

/// How much per-step fingerprint history the runner retains between
/// validation checkpoints (paper §6.4's suggested Markov-specific tuning:
/// "discard all basis values except the last").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BasisRetention {
    /// Cache the true fingerprint of every step since the last rebuild;
    /// mismatches binary-search for the exact last valid step.
    #[default]
    KeepAll,
    /// Keep only the last *validated* checkpoint; mismatches rebuild there
    /// (no binary search). Less memory and fewer estimator probes, at the
    /// cost of redoing up to half a stride with true fingerprint steps.
    KeepLast,
}

/// Configuration for a Markov-jump run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarkovJumpConfig {
    /// Fingerprint size `m`.
    pub fingerprint_len: usize,
    /// Number of chain instances `n`.
    pub n_instances: usize,
    /// Mapping tolerance.
    pub tolerance: f64,
    /// History retention policy.
    pub retention: BasisRetention,
}

impl MarkovJumpConfig {
    /// Paper defaults: `m = 10`, `n = 1000`.
    pub fn paper() -> Self {
        MarkovJumpConfig {
            fingerprint_len: 10,
            n_instances: 1000,
            tolerance: 1e-9,
            retention: BasisRetention::KeepAll,
        }
    }

    /// Override the instance count.
    pub fn with_n(mut self, n: usize) -> Self {
        self.n_instances = n;
        self
    }

    /// Override the fingerprint size.
    pub fn with_m(mut self, m: usize) -> Self {
        self.fingerprint_len = m;
        self
    }

    /// Override the retention policy.
    pub fn with_retention(mut self, retention: BasisRetention) -> Self {
        self.retention = retention;
        self
    }

    fn validate(&self) {
        assert!(self.fingerprint_len >= 2, "fingerprint must have >= 2 entries");
        assert!(self.n_instances > self.fingerprint_len, "n_instances must exceed fingerprint_len");
    }
}

/// Result of a Markov-jump evaluation.
#[derive(Debug, Clone)]
pub struct MarkovJumpResult {
    /// Outputs of every instance at the final step.
    pub outputs: Vec<f64>,
    /// Execution statistics.
    pub stats: MarkovStats,
}

/// Per-step record of the true fingerprint instances.
#[derive(Debug, Clone)]
struct StepRecord {
    /// Step index the outputs belong to.
    step: usize,
    /// True outputs of instances `0..m` at `step`.
    outputs: Vec<f64>,
    /// True chains of instances `0..m` entering `step + 1`.
    chains_after: Vec<f64>,
}

/// Executes Algorithm 4.
pub struct MarkovJumpRunner {
    cfg: MarkovJumpConfig,
    family: Box<dyn MappingFamily>,
}

/// Working state of one quiet-region scan (between estimator rebuilds).
struct Region<'a> {
    est: FrozenEstimator,
    model: &'a dyn MarkovModel,
    master: Seed,
    m: usize,
    tolerance: f64,
    retain_all: bool,
    /// True fp chains entering `cursor`.
    fp_chains: Vec<f64>,
    /// Next step the fp instances will produce.
    cursor: usize,
    /// Per-step records (all steps since region start, or just the latest).
    history: Vec<StepRecord>,
    /// Last validated checkpoint: `(step, map, record)`.
    last_valid: Option<(usize, AffineMap, StepRecord)>,
}

impl<'a> Region<'a> {
    /// Advance fp instances through `target` inclusive.
    fn advance_to(&mut self, target: usize, stats: &mut MarkovStats) {
        while self.cursor <= target {
            let t = self.cursor;
            let mut outs = Vec::with_capacity(self.m);
            for (i, chain) in self.fp_chains.iter_mut().enumerate() {
                let seed = stream_seed(self.master, i, t);
                let out = self.model.output(t, *chain, seed);
                stats.model_invocations += 1;
                *chain = self.model.next_chain(t, *chain, out, seed.derive(K_TRANSITION));
                outs.push(out);
            }
            stats.fingerprint_steps += 1;
            if !self.retain_all {
                self.history.clear();
            }
            self.history.push(StepRecord {
                step: t,
                outputs: outs,
                chains_after: self.fp_chains.clone(),
            });
            self.cursor += 1;
        }
    }

    /// Try to validate the estimator at `step` (record must exist).
    fn validate(
        &self,
        step: usize,
        family: &dyn MappingFamily,
        stats: &mut MarkovStats,
    ) -> Option<(AffineMap, &StepRecord)> {
        let rec = self.history.iter().find(|r| r.step == step)?;
        let est_fp = self.est.fingerprint(self.model, self.master, self.m, step);
        stats.model_invocations += self.m as u64;
        family
            .find(&Fingerprint::new(est_fp), &Fingerprint::new(rec.outputs.clone()), self.tolerance)
            .map(|map| (map, rec))
    }
}

/// Output of instance `i` at `step`: predicted through the validated mapping
/// while the instance still sits on its frozen chain, evaluated directly on
/// its refreshed chain once it has diverged (the true `(instance, step)`
/// seed is used either way).
#[allow(clippy::too_many_arguments)]
fn instance_output(
    model: &dyn MarkovModel,
    master: Seed,
    est: &FrozenEstimator,
    map: &AffineMap,
    i: usize,
    step: usize,
    chain: f64,
    stats: &mut MarkovStats,
) -> f64 {
    stats.model_invocations += 1;
    if chain == est.chain(i) {
        map.apply(est.predict(model, master, i, step))
    } else {
        model.output(step, chain, stream_seed(master, i, step))
    }
}

/// Apply one chain transition at step `v` to every non-fingerprint instance.
///
/// This is what lets per-instance discontinuities *outside* the fingerprint
/// set — e.g. a straggler crossing a release threshold after the fingerprint
/// instances have all crossed — be caught at the next validated checkpoint
/// instead of staying frozen to the end of the run.
#[allow(clippy::too_many_arguments)]
fn refresh_full_state(
    model: &dyn MarkovModel,
    master: Seed,
    est: &FrozenEstimator,
    map: &AffineMap,
    v: usize,
    m: usize,
    full_chains: &mut [f64],
    stats: &mut MarkovStats,
) {
    for (i, slot) in full_chains.iter_mut().enumerate().skip(m) {
        let chain = *slot;
        let out = instance_output(model, master, est, map, i, v, chain, stats);
        let seed = stream_seed(master, i, v);
        *slot = model.next_chain(v, chain, out, seed.derive(K_TRANSITION));
    }
}

impl MarkovJumpRunner {
    /// Runner with the affine mapping family.
    pub fn new(cfg: MarkovJumpConfig) -> Self {
        cfg.validate();
        MarkovJumpRunner { cfg, family: Box::new(AffineFamily) }
    }

    /// Runner with a custom mapping family.
    pub fn with_family(cfg: MarkovJumpConfig, family: Box<dyn MappingFamily>) -> Self {
        cfg.validate();
        MarkovJumpRunner { cfg, family }
    }

    /// Evaluate `steps` chain steps, returning final-step outputs for all
    /// `n` instances.
    pub fn run(&self, model: &dyn MarkovModel, master: Seed, steps: usize) -> MarkovJumpResult {
        assert!(steps > 0, "need at least one step");
        let start = Instant::now();
        let m = self.cfg.fingerprint_len;
        let n = self.cfg.n_instances;
        let last_step = steps - 1;
        let mut stats = MarkovStats { steps, ..Default::default() };

        // Full chain state entering step `base`.
        let mut base = 0usize;
        let mut full_chains = vec![model.initial_chain(); n];
        // Once a validation failure has shown that per-instance state
        // changes are live, keep the non-fingerprint chains fresh at every
        // validated checkpoint. Until then the frozen-state mapping is exact
        // (uniform changes are absorbed), so refreshing would only add cost
        // — and, for delayed detections, error.
        let mut refresh_active = false;
        // Last step at which non-fingerprint chains had their transition
        // applied (guards double-application when a rebuild lands on an
        // already-refreshed checkpoint).
        let mut refreshed_at: Option<usize> = None;

        loop {
            // (Re)synthesize the estimator from the full state at `base`.
            let mut region = Region {
                est: FrozenEstimator::new(full_chains.clone(), base),
                model,
                master,
                m,
                tolerance: self.cfg.tolerance,
                retain_all: matches!(self.cfg.retention, BasisRetention::KeepAll),
                fp_chains: full_chains[..m].to_vec(),
                cursor: base,
                history: Vec::new(),
                last_valid: None,
            };
            stats.estimator_rebuilds += 1;
            let mut stride = 1usize;

            // Exponential-skip search for the first invalid checkpoint.
            let rebuild: Option<(usize, AffineMap, StepRecord)> = loop {
                let checkpoint = (base + stride).min(last_step);
                region.advance_to(checkpoint, &mut stats);

                match region.validate(checkpoint, self.family.as_ref(), &mut stats) {
                    Some((map, rec)) => {
                        let rec = rec.clone();
                        if checkpoint == last_step {
                            // Terminal: reconstruct final outputs directly.
                            let mut outputs = Vec::with_capacity(n);
                            outputs.extend_from_slice(&rec.outputs);
                            for (i, &chain) in full_chains.iter().enumerate().skip(m) {
                                outputs.push(instance_output(
                                    model,
                                    master,
                                    &region.est,
                                    &map,
                                    i,
                                    last_step,
                                    chain,
                                    &mut stats,
                                ));
                            }
                            stats.state_reconstructions += 1;
                            stats.elapsed = start.elapsed();
                            return MarkovJumpResult { outputs, stats };
                        }
                        if refresh_active && refreshed_at.is_none_or(|u| checkpoint > u) {
                            refresh_full_state(
                                model,
                                master,
                                &region.est,
                                &map,
                                checkpoint,
                                m,
                                &mut full_chains,
                                &mut stats,
                            );
                            refreshed_at = Some(checkpoint);
                        }
                        region.last_valid = Some((checkpoint, map, rec));
                        stride *= 2;
                    }
                    None => {
                        let floor = region.last_valid.as_ref().map(|(s, _, _)| *s);
                        match self.cfg.retention {
                            BasisRetention::KeepAll => {
                                // Binary search (floor, checkpoint) for the
                                // last valid step; base itself is valid by
                                // construction (estimator == truth there).
                                let mut lo = floor.unwrap_or(base);
                                let mut lo_valid = floor.is_some();
                                let mut hi = checkpoint;
                                while hi - lo > 1 {
                                    let mid = lo + (hi - lo) / 2;
                                    match region.validate(mid, self.family.as_ref(), &mut stats) {
                                        Some(_) => {
                                            lo = mid;
                                            lo_valid = true;
                                        }
                                        None => hi = mid,
                                    }
                                }
                                if !lo_valid {
                                    break None;
                                }
                                break region
                                    .validate(lo, self.family.as_ref(), &mut stats)
                                    .map(|(map, rec)| (lo, map, rec.clone()));
                            }
                            BasisRetention::KeepLast => {
                                // Rebuild at the stashed last-valid checkpoint.
                                break region.last_valid.take();
                            }
                        }
                    }
                }
            };

            match rebuild {
                Some((v, map, rec)) if v > base => {
                    // Reconstruct full state at step v through the estimator
                    // (Algorithm 4 line 13: "state <- M(Fest(state))"), then
                    // advance the chain bookkeeping one transition.
                    if refreshed_at.is_none_or(|u| v > u) {
                        refresh_full_state(
                            model,
                            master,
                            &region.est,
                            &map,
                            v,
                            m,
                            &mut full_chains,
                            &mut stats,
                        );
                        refreshed_at = Some(v);
                    }
                    let mut new_chains = Vec::with_capacity(n);
                    new_chains.extend_from_slice(&rec.chains_after);
                    new_chains.extend_from_slice(&full_chains[m..]);
                    stats.state_reconstructions += 1;
                    refresh_active = true;
                    full_chains = new_chains;
                    base = v + 1;
                }
                _ => {
                    // Hard fallback: one true full step from `base`
                    // (Algorithm 4 line 12: "if valid <= 1 then state <- Fmkv(state)").
                    let t = base;
                    let mut outs = Vec::with_capacity(n);
                    for (i, chain) in full_chains.iter_mut().enumerate() {
                        let seed = stream_seed(master, i, t);
                        let out = model.output(t, *chain, seed);
                        stats.model_invocations += 1;
                        *chain = model.next_chain(t, *chain, out, seed.derive(K_TRANSITION));
                        outs.push(out);
                    }
                    stats.full_steps += 1;
                    refresh_active = true;
                    refreshed_at = Some(t);
                    base += 1;
                    if t == last_step {
                        stats.elapsed = start.elapsed();
                        return MarkovJumpResult { outputs: outs, stats };
                    }
                }
            }
            debug_assert!(base <= last_step, "rebuild beyond final step");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markov::chain::run_naive;
    use jigsaw_blackbox::models::{MarkovBranch, MarkovStep};

    fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
    }

    #[test]
    fn exact_on_static_chain() {
        // branching = 0: no discontinuities ever; the jump must be exact and
        // use O(m) work per step.
        let model = MarkovBranch::new(0.0);
        let cfg = MarkovJumpConfig::paper().with_n(100).with_m(8);
        let jump = MarkovJumpRunner::new(cfg).run(&model, Seed(7), 64);
        let (naive, naive_stats) = run_naive(&model, Seed(7), 100, 64);
        assert!(max_abs_diff(&jump.outputs, &naive) < 1e-9);
        assert!(
            jump.stats.model_invocations < naive_stats.model_invocations / 3,
            "jump {} vs naive {}",
            jump.stats.model_invocations,
            naive_stats.model_invocations
        );
        assert_eq!(jump.stats.full_steps, 0);
    }

    /// A release process whose discontinuity is globally synchronized: the
    /// feature releases at a *fixed* step for every instance (management
    /// decided on a date). The chain still feeds the output, but state
    /// changes are uniform — the regime where Algorithm 4 is exact.
    struct GlobalRelease {
        release_step: usize,
        inner: MarkovStep,
    }
    impl jigsaw_blackbox::MarkovModel for GlobalRelease {
        fn name(&self) -> &str {
            "GlobalRelease"
        }
        fn initial_chain(&self) -> f64 {
            f64::INFINITY
        }
        fn output(&self, step: usize, chain: f64, seed: Seed) -> f64 {
            self.inner.output(step, chain, seed)
        }
        fn next_chain(&self, step: usize, chain: f64, _output: f64, _seed: Seed) -> f64 {
            if chain.is_infinite() && step >= self.release_step {
                (step + self.inner.lag) as f64
            } else {
                chain
            }
        }
    }

    #[test]
    fn exact_on_globally_synchronized_release() {
        let model = GlobalRelease { release_step: 20, inner: MarkovStep::paper(1e18, 2) };
        let cfg = MarkovJumpConfig::paper().with_n(200).with_m(10);
        let jump = MarkovJumpRunner::new(cfg).run(&model, Seed(13), 60);
        let (naive, naive_stats) = run_naive(&model, Seed(13), 200, 60);
        assert!(max_abs_diff(&jump.outputs, &naive) < 1e-9, "uniform events must be exact");
        assert!(
            jump.stats.model_invocations < naive_stats.model_invocations / 3,
            "jump {} vs naive {}",
            jump.stats.model_invocations,
            naive_stats.model_invocations
        );
    }

    #[test]
    fn accurate_on_markov_step_release_process() {
        // The per-instance first-passage release: instances outside the
        // fingerprint set can cross the threshold during a jumped-over step
        // and get a slightly shifted release week — the approximation
        // inherent to Algorithm 4 (§4.1). Distributional accuracy must
        // nevertheless hold tightly.
        let model = MarkovStep::paper(20.0, 2);
        let cfg = MarkovJumpConfig::paper().with_n(200).with_m(10);
        let steps = 60;
        let jump = MarkovJumpRunner::new(cfg).run(&model, Seed(13), steps);
        let (naive, naive_stats) = run_naive(&model, Seed(13), 200, steps);
        let mean_jump = jump.outputs.iter().sum::<f64>() / 200.0;
        let mean_naive = naive.iter().sum::<f64>() / 200.0;
        assert!(
            (mean_jump - mean_naive).abs() / mean_naive < 0.01,
            "mean drift {mean_jump} vs {mean_naive}"
        );
        let rel_err = max_abs_diff(&jump.outputs, &naive) / mean_naive;
        assert!(rel_err < 0.05, "worst instance off by {:.2}%", rel_err * 100.0);
        assert!(jump.stats.model_invocations < naive_stats.model_invocations);
    }

    #[test]
    fn savings_shrink_with_branching_factor() {
        let cfg = MarkovJumpConfig::paper().with_n(200).with_m(10);
        let mut prev_invocations = 0u64;
        for p in [1e-4, 1e-2, 0.2] {
            let model = MarkovBranch::new(p);
            let r = MarkovJumpRunner::new(cfg).run(&model, Seed(21), 128);
            assert!(
                r.stats.model_invocations >= prev_invocations,
                "p={p}: invocations must grow with branching"
            );
            prev_invocations = r.stats.model_invocations;
        }
    }

    #[test]
    fn keep_last_retention_still_correct_on_quiet_chain() {
        let model = MarkovBranch::new(0.0);
        let cfg =
            MarkovJumpConfig::paper().with_n(60).with_m(6).with_retention(BasisRetention::KeepLast);
        let jump = MarkovJumpRunner::new(cfg).run(&model, Seed(3), 40);
        let (naive, _) = run_naive(&model, Seed(3), 60, 40);
        assert!(max_abs_diff(&jump.outputs, &naive) < 1e-9);
    }

    #[test]
    fn keep_last_matches_keep_all_on_release_process() {
        let model = MarkovStep::paper(20.0, 2);
        let base_cfg = MarkovJumpConfig::paper().with_n(100).with_m(10);
        let a = MarkovJumpRunner::new(base_cfg).run(&model, Seed(19), 50);
        let b = MarkovJumpRunner::new(base_cfg.with_retention(BasisRetention::KeepLast)).run(
            &model,
            Seed(19),
            50,
        );
        // Both must be distributionally close to the truth; individual
        // non-fingerprint instances may shift near the discontinuity.
        let (naive, _) = run_naive(&model, Seed(19), 100, 50);
        let mean_naive = naive.iter().sum::<f64>() / 100.0;
        // KeepLast rebuilds at coarser checkpoints, so more non-fingerprint
        // instances get shifted release weeks; allow it a looser bound.
        for (label, r, bound) in [("KeepAll", &a, 0.01), ("KeepLast", &b, 0.03)] {
            let mean = r.outputs.iter().sum::<f64>() / 100.0;
            assert!(
                (mean - mean_naive).abs() / mean_naive < bound,
                "{label}: mean {mean} vs {mean_naive}"
            );
        }
    }

    #[test]
    fn single_step_chain() {
        let model = MarkovBranch::new(0.5);
        let cfg = MarkovJumpConfig::paper().with_n(20).with_m(4);
        let jump = MarkovJumpRunner::new(cfg).run(&model, Seed(2), 1);
        let (naive, _) = run_naive(&model, Seed(2), 20, 1);
        assert!(max_abs_diff(&jump.outputs, &naive) < 1e-9);
    }

    #[test]
    fn high_branching_falls_back_and_stays_exact() {
        // With p = 1 every counter increments every step — a *uniform* state
        // change, which the mapping absorbs (shift by jump); where it cannot,
        // the algorithm full-steps. Either way the answer stays exact.
        let model = MarkovBranch::new(1.0);
        let cfg = MarkovJumpConfig::paper().with_n(50).with_m(5);
        let jump = MarkovJumpRunner::new(cfg).run(&model, Seed(17), 16);
        let (naive, _) = run_naive(&model, Seed(17), 50, 16);
        assert!(max_abs_diff(&jump.outputs, &naive) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_steps_rejected() {
        let model = MarkovBranch::new(0.1);
        let _ = MarkovJumpRunner::new(MarkovJumpConfig::paper().with_n(20).with_m(4)).run(
            &model,
            Seed(1),
            0,
        );
    }
}
