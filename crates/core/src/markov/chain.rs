//! Full-state chain stepping (the naive baseline).

use std::time::Instant;

use jigsaw_blackbox::MarkovModel;
use jigsaw_prng::{stream_seed, Seed};

use crate::telemetry::MarkovStats;

/// Seed-derivation key separating chain-transition randomness from output
/// randomness at the same `(instance, step)`.
pub(crate) const K_TRANSITION: u64 = 1;

/// The state of `n` chain instances entering a step.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainState {
    /// The step the chains are about to produce output for.
    pub step: usize,
    /// Per-instance chain values entering `step`.
    pub chains: Vec<f64>,
}

impl ChainState {
    /// Initial state: every instance at the model's initial chain value.
    pub fn initial(model: &dyn MarkovModel, n: usize) -> Self {
        ChainState { step: 0, chains: vec![model.initial_chain(); n] }
    }

    /// Number of instances.
    pub fn n(&self) -> usize {
        self.chains.len()
    }

    /// Advance every instance one step, returning the outputs produced at
    /// `self.step` (before the advance).
    pub fn step_all(&mut self, model: &dyn MarkovModel, master: Seed) -> Vec<f64> {
        self.step_all_threaded(model, master, 1)
    }

    /// [`Self::step_all`] with a thread budget (`0` = all available cores).
    /// Instance `i`'s randomness is the counter-based stream
    /// `(master, i, step)`, so chunking instances across scoped threads and
    /// concatenating in chunk order is bit-identical to the sequential walk
    /// for any budget.
    pub fn step_all_threaded(
        &mut self,
        model: &dyn MarkovModel,
        master: Seed,
        threads: usize,
    ) -> Vec<f64> {
        let t = self.step;
        let n = self.chains.len();
        let threads = jigsaw_pdb::resolve_thread_budget(threads).min(n.max(1));
        let mut outputs = vec![0.0f64; n];
        let advance = |base: usize, chains: &mut [f64], outs: &mut [f64]| {
            for (k, chain) in chains.iter_mut().enumerate() {
                let seed = stream_seed(master, base + k, t);
                let out = model.output(t, *chain, seed);
                *chain = model.next_chain(t, *chain, out, seed.derive(K_TRANSITION));
                outs[k] = out;
            }
        };
        if threads <= 1 {
            advance(0, &mut self.chains, &mut outputs);
        } else {
            let chunk = n.div_ceil(threads);
            std::thread::scope(|scope| {
                for (ci, (chains, outs)) in
                    self.chains.chunks_mut(chunk).zip(outputs.chunks_mut(chunk)).enumerate()
                {
                    let advance = &advance;
                    scope.spawn(move || advance(ci * chunk, chains, outs));
                }
            });
        }
        self.step += 1;
        outputs
    }
}

/// Evaluate `steps` chain steps for `n` instances naively (cost `n` model
/// outputs per step). Returns the outputs of the **final** step and stats.
pub fn run_naive(
    model: &dyn MarkovModel,
    master: Seed,
    n: usize,
    steps: usize,
) -> (Vec<f64>, MarkovStats) {
    run_naive_threaded(model, master, n, steps, 1)
}

/// [`run_naive`] with a thread budget for the per-step instance walk.
/// Bit-identical to the sequential run for any budget.
pub fn run_naive_threaded(
    model: &dyn MarkovModel,
    master: Seed,
    n: usize,
    steps: usize,
    threads: usize,
) -> (Vec<f64>, MarkovStats) {
    assert!(steps > 0, "need at least one step");
    let start = Instant::now();
    let mut state = ChainState::initial(model, n);
    let mut last = Vec::new();
    for _ in 0..steps {
        last = state.step_all_threaded(model, master, threads);
    }
    let stats = MarkovStats {
        steps,
        full_steps: steps,
        fingerprint_steps: 0,
        estimator_rebuilds: 0,
        state_reconstructions: 0,
        model_invocations: (n * steps) as u64,
        elapsed: start.elapsed(),
    };
    (last, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jigsaw_blackbox::models::MarkovBranch;

    #[test]
    fn naive_run_shape_and_counts() {
        let model = MarkovBranch::new(0.1);
        let (out, stats) = run_naive(&model, Seed(9), 50, 20);
        assert_eq!(out.len(), 50);
        assert_eq!(stats.model_invocations, 1000);
        assert_eq!(stats.full_steps, 20);
    }

    #[test]
    fn stepping_is_deterministic() {
        let model = MarkovBranch::new(0.2);
        let (a, _) = run_naive(&model, Seed(5), 20, 30);
        let (b, _) = run_naive(&model, Seed(5), 20, 30);
        assert_eq!(a, b);
        let (c, _) = run_naive(&model, Seed(6), 20, 30);
        assert_ne!(a, c);
    }

    #[test]
    fn state_step_matches_run_naive() {
        let model = MarkovBranch::new(0.05);
        let mut st = ChainState::initial(&model, 10);
        let mut last = Vec::new();
        for _ in 0..7 {
            last = st.step_all(&model, Seed(11));
        }
        let (direct, _) = run_naive(&model, Seed(11), 10, 7);
        assert_eq!(last, direct);
        assert_eq!(st.step, 7);
    }

    #[test]
    fn threaded_stepping_matches_sequential() {
        let model = MarkovBranch::new(0.15);
        let (seq, _) = run_naive(&model, Seed(8), 53, 12);
        for threads in [2usize, 3, 8, 100] {
            let (par, stats) = run_naive_threaded(&model, Seed(8), 53, 12, threads);
            assert_eq!(seq, par, "threads={threads}");
            assert_eq!(stats.model_invocations, 53 * 12);
        }
    }

    #[test]
    fn instance_prefix_stability() {
        // Instance i's trajectory must not depend on n — the property that
        // lets the first m instances double as the fingerprint set.
        let model = MarkovBranch::new(0.1);
        let (small, _) = run_naive(&model, Seed(4), 10, 25);
        let (large, _) = run_naive(&model, Seed(4), 100, 25);
        assert_eq!(small[..], large[..10]);
    }
}
