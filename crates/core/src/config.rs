//! Session configuration.

use std::path::PathBuf;

/// Which candidate-lookup strategy the basis store uses (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexStrategy {
    /// Compare against every basis fingerprint (the paper's baseline
    /// "Array" strategy in Figures 10/11).
    Array,
    /// Hash on the affine-invariant normal form (first two distinct entries
    /// mapped to 0 and 1).
    #[default]
    Normalization,
    /// Hash on the sorted sample-identifier permutation (covers any
    /// monotone mapping family; both orientations are probed).
    SortedSid,
}

/// Tunables for a Jigsaw session.
///
/// Defaults follow the paper's experimental setup (§6): 1000 sample
/// instances per parameter point and fingerprints of size 10.
#[derive(Debug, Clone, PartialEq)]
pub struct JigsawConfig {
    /// Fingerprint length `m`.
    pub fingerprint_len: usize,
    /// Total Monte Carlo samples `n` per parameter point (`n >= m`).
    pub n_samples: usize,
    /// Relative tolerance for fingerprint-entry matching. Floating-point
    /// evaluation makes algebraically-exact affine relations only
    /// approximately exact; this bounds the accepted residual.
    pub tolerance: f64,
    /// Candidate-lookup strategy.
    pub index: IndexStrategy,
    /// Thread budget for the sweep executor's world evaluations.
    /// `1` (the default) runs fully sequentially; `0` means "all available
    /// cores". Pure performance knob: sweep results, basis sets, and
    /// telemetry counters are bit-identical for every value.
    pub threads: usize,
    /// Points per batch-synchronous wave of the sweep executor. `0` (the
    /// default) sizes waves automatically from the thread budget. Pure
    /// performance knob, like `threads`.
    pub wave_size: usize,
    /// Warm-start the sweep from this basis snapshot (see
    /// [`crate::basis::snapshot`]). The file must have been written under
    /// the same basis-identity configuration (fingerprint length, sample
    /// count, tolerance, index strategy, mapping family); any mismatch
    /// fails the sweep with a typed error instead of silently diverging.
    pub basis_load: Option<PathBuf>,
    /// Save the committed basis store to this snapshot after the sweep, so
    /// the next session over the same scenario starts warm.
    pub basis_save: Option<PathBuf>,
    /// Coarse Monte Carlo budget `s` for the sketch pass of a
    /// sketch-then-refine sweep (`fingerprint_len <= s <= n_samples`).
    /// `0` (the default) disables sketching: the sweep is exhaustive at
    /// full budget. Sketch knobs never enter basis identity — refined
    /// bases are full-budget bases, snapshot-compatible with exhaustive
    /// sweeps.
    pub sketch_budget: usize,
    /// Frontier width `K` of the refine pass: per output column the `K`
    /// highest and `K` lowest coarse expectations survive, plus `K`
    /// evenly-strided representative points. Only meaningful when
    /// `sketch_budget > 0`; `refine_top_k >= |space|` degenerates to the
    /// exhaustive sweep bit-for-bit.
    pub refine_top_k: usize,
}

impl JigsawConfig {
    /// The paper's defaults: `m = 10`, `n = 1000`, relative tolerance 1e-9,
    /// normalization index.
    pub fn paper() -> Self {
        JigsawConfig {
            fingerprint_len: 10,
            n_samples: 1000,
            tolerance: 1e-9,
            index: IndexStrategy::Normalization,
            threads: 1,
            wave_size: 0,
            basis_load: None,
            basis_save: None,
            sketch_budget: 0,
            refine_top_k: 0,
        }
    }

    /// Override the fingerprint length.
    pub fn with_fingerprint_len(mut self, m: usize) -> Self {
        self.fingerprint_len = m;
        self
    }

    /// Override the sample count.
    pub fn with_n_samples(mut self, n: usize) -> Self {
        self.n_samples = n;
        self
    }

    /// Override the index strategy.
    pub fn with_index(mut self, index: IndexStrategy) -> Self {
        self.index = index;
        self
    }

    /// Override the matching tolerance.
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }

    /// Override the thread budget (`0` = all available cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Override the wave size (`0` = derive from the thread budget).
    pub fn with_wave_size(mut self, wave_size: usize) -> Self {
        self.wave_size = wave_size;
        self
    }

    /// Warm-start from a basis snapshot file.
    pub fn with_basis_load(mut self, path: impl Into<PathBuf>) -> Self {
        self.basis_load = Some(path.into());
        self
    }

    /// Save the committed basis store to a snapshot file after the sweep.
    pub fn with_basis_save(mut self, path: impl Into<PathBuf>) -> Self {
        self.basis_save = Some(path.into());
        self
    }

    /// Enable sketch-then-refine: coarse-sweep every point at `budget`
    /// worlds, then re-run only the surviving frontier (width `top_k`) at
    /// full budget.
    pub fn with_sketch(mut self, budget: usize, top_k: usize) -> Self {
        self.sketch_budget = budget;
        self.refine_top_k = top_k;
        self
    }

    /// Override the coarse world budget of the sketch pass (`0` = sketching
    /// off).
    pub fn with_sketch_budget(mut self, budget: usize) -> Self {
        self.sketch_budget = budget;
        self
    }

    /// Override the refine pass's frontier width `K`.
    pub fn with_refine_top_k(mut self, top_k: usize) -> Self {
        self.refine_top_k = top_k;
        self
    }

    /// Whether this configuration runs sweeps in sketch-then-refine mode.
    pub fn sketch_enabled(&self) -> bool {
        self.sketch_budget > 0
    }

    /// The concrete thread count: `threads`, with `0` resolved to the
    /// number of available cores (shared sentinel semantics — see
    /// [`jigsaw_pdb::resolve_thread_budget`]).
    pub fn effective_threads(&self) -> usize {
        jigsaw_pdb::resolve_thread_budget(self.threads)
    }

    /// The concrete wave size: `wave_size`, with `0` resolved to a multiple
    /// of the thread budget large enough to keep every worker fed through
    /// the resolve barrier and to amortize per-wave thread spawns.
    pub fn effective_wave_size(&self) -> usize {
        match self.wave_size {
            0 => (8 * self.effective_threads()).max(32),
            w => w,
        }
    }

    /// Panic unless the configuration is internally consistent.
    pub fn validate(&self) {
        assert!(self.fingerprint_len >= 2, "fingerprints need >= 2 entries to fit a mapping");
        assert!(
            self.n_samples >= self.fingerprint_len,
            "n_samples ({}) must be >= fingerprint_len ({})",
            self.n_samples,
            self.fingerprint_len
        );
        assert!(self.tolerance >= 0.0 && self.tolerance.is_finite());
        if self.sketch_enabled() {
            assert!(
                self.sketch_budget >= self.fingerprint_len,
                "sketch_budget ({}) must be >= fingerprint_len ({})",
                self.sketch_budget,
                self.fingerprint_len
            );
            assert!(
                self.sketch_budget <= self.n_samples,
                "sketch_budget ({}) must be <= n_samples ({})",
                self.sketch_budget,
                self.n_samples
            );
            assert!(self.refine_top_k >= 1, "refine_top_k must be >= 1 when sketching is enabled");
        }
    }
}

impl Default for JigsawConfig {
    fn default() -> Self {
        JigsawConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = JigsawConfig::paper();
        assert_eq!(c.fingerprint_len, 10);
        assert_eq!(c.n_samples, 1000);
        c.validate();
    }

    #[test]
    fn builder_chain() {
        let c = JigsawConfig::paper()
            .with_fingerprint_len(4)
            .with_n_samples(100)
            .with_index(IndexStrategy::SortedSid)
            .with_tolerance(1e-6)
            .with_threads(4)
            .with_wave_size(64);
        assert_eq!(c.fingerprint_len, 4);
        assert_eq!(c.index, IndexStrategy::SortedSid);
        assert_eq!(c.effective_threads(), 4);
        assert_eq!(c.effective_wave_size(), 64);
        c.validate();
    }

    #[test]
    fn zero_knobs_resolve_automatically() {
        let c = JigsawConfig::paper();
        assert_eq!(c.threads, 1, "paper default is sequential");
        assert!(c.effective_threads() >= 1);
        assert!(c.effective_wave_size() >= 16);
        let auto = c.with_threads(0);
        assert!(auto.effective_threads() >= 1);
        assert!(auto.effective_wave_size() >= 4 * auto.effective_threads());
    }

    #[test]
    fn snapshot_knobs_default_off_and_chain() {
        let c = JigsawConfig::paper();
        assert!(c.basis_load.is_none() && c.basis_save.is_none());
        let c = c.with_basis_load("/tmp/a.snap").with_basis_save("/tmp/b.snap");
        assert_eq!(c.basis_load.as_deref(), Some(std::path::Path::new("/tmp/a.snap")));
        assert_eq!(c.basis_save.as_deref(), Some(std::path::Path::new("/tmp/b.snap")));
        c.validate();
    }

    #[test]
    fn sketch_knobs_default_off_and_chain() {
        let c = JigsawConfig::paper();
        assert!(!c.sketch_enabled());
        c.validate();
        let c = c.with_sketch(20, 8);
        assert!(c.sketch_enabled());
        assert_eq!(c.sketch_budget, 20);
        assert_eq!(c.refine_top_k, 8);
        c.validate();
        let c = JigsawConfig::paper().with_sketch_budget(10).with_refine_top_k(4);
        assert!(c.sketch_enabled());
        c.validate();
    }

    #[test]
    #[should_panic(expected = "sketch_budget (5) must be >= fingerprint_len")]
    fn sketch_budget_below_fingerprint_rejected() {
        JigsawConfig::paper().with_sketch(5, 4).validate();
    }

    #[test]
    #[should_panic(expected = "must be <= n_samples")]
    fn sketch_budget_above_n_rejected() {
        JigsawConfig::paper().with_n_samples(100).with_sketch(200, 4).validate();
    }

    #[test]
    #[should_panic(expected = "refine_top_k must be >= 1")]
    fn sketch_without_frontier_width_rejected() {
        JigsawConfig::paper().with_sketch_budget(20).validate();
    }

    #[test]
    #[should_panic(expected = "must be >= fingerprint_len")]
    fn n_less_than_m_rejected() {
        JigsawConfig::paper().with_n_samples(5).validate();
    }

    #[test]
    #[should_panic(expected = ">= 2 entries")]
    fn tiny_fingerprint_rejected() {
        JigsawConfig::paper().with_fingerprint_len(1).validate();
    }
}
