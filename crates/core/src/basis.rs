//! Basis distributions and the basis store.
//!
//! "During execution, Jigsaw incrementally maintains a set of basis
//! distributions. Each basis distribution is a tuple (θ_i, o_i), implying
//! that Jigsaw has already computed the output metrics o_i for some F(P_i)
//! with fingerprint θ_i." (paper §3.1)
//!
//! [`BasisStore::find_match`] is the paper's Algorithm 3 (`FindMatch`): the
//! index proposes candidates, the mapping family validates them, and the
//! first validated mapping wins.

use std::sync::Arc;

use jigsaw_pdb::OutputMetrics;

use crate::config::{IndexStrategy, JigsawConfig};
use crate::fingerprint::Fingerprint;
use crate::index::{make_index, FingerprintIndex};
use crate::mapping::{AffineMap, MappingFamily};

/// Identifier of a basis distribution within a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BasisId(pub usize);

/// One memoized simulation: fingerprint plus computed output metrics.
#[derive(Debug, Clone)]
pub struct BasisDistribution {
    /// Store-local id.
    pub id: BasisId,
    /// The fingerprint `θ_i`.
    pub fingerprint: Fingerprint,
    /// The output metrics `o_i`.
    pub metrics: OutputMetrics,
}

/// The incrementally-maintained set of basis distributions for one output
/// column of one simulation.
pub struct BasisStore {
    bases: Vec<BasisDistribution>,
    index: Box<dyn FingerprintIndex>,
    family: Arc<dyn MappingFamily>,
    tolerance: f64,
    /// Mapping validations attempted (candidate pairings tested) — the
    /// quantity indexing exists to minimize (Figures 10/11).
    pub pairings_tested: u64,
}

impl BasisStore {
    /// Create a store with the configured index strategy and mapping family.
    pub fn new(cfg: &JigsawConfig, family: Arc<dyn MappingFamily>) -> Self {
        BasisStore {
            bases: Vec::new(),
            index: make_index(cfg.index, cfg.tolerance),
            family,
            tolerance: cfg.tolerance,
            pairings_tested: 0,
        }
    }

    /// Convenience constructor with explicit strategy.
    pub fn with_strategy(
        strategy: IndexStrategy,
        tolerance: f64,
        family: Arc<dyn MappingFamily>,
    ) -> Self {
        BasisStore {
            bases: Vec::new(),
            index: make_index(strategy, tolerance),
            family,
            tolerance,
            pairings_tested: 0,
        }
    }

    /// Number of basis distributions.
    pub fn len(&self) -> usize {
        self.bases.len()
    }

    /// True when no basis has been recorded.
    pub fn is_empty(&self) -> bool {
        self.bases.is_empty()
    }

    /// The bases (for reporting).
    pub fn bases(&self) -> &[BasisDistribution] {
        &self.bases
    }

    /// Fetch a basis by id.
    pub fn get(&self, id: BasisId) -> &BasisDistribution {
        &self.bases[id.0]
    }

    /// Algorithm 3: find a basis and mapping such that
    /// `M(basis.fingerprint) ≈ fp`.
    pub fn find_match(&mut self, fp: &Fingerprint) -> Option<(BasisId, AffineMap)> {
        let candidates = self.index.candidates(fp);
        for cid in candidates {
            self.pairings_tested += 1;
            let basis = &self.bases[cid];
            if let Some(m) = self.family.find(&basis.fingerprint, fp, self.tolerance) {
                return Some((basis.id, m));
            }
        }
        None
    }

    /// Record a new basis distribution (after a full simulation).
    pub fn insert(&mut self, fingerprint: Fingerprint, metrics: OutputMetrics) -> BasisId {
        let id = BasisId(self.bases.len());
        self.index.insert(id.0, &fingerprint);
        self.bases.push(BasisDistribution { id, fingerprint, metrics });
        id
    }

    /// Resolve metrics for a fingerprint: reuse through a mapping when one
    /// exists. Returns `(metrics, Some(basis))` on reuse, `None` on miss.
    pub fn resolve(&mut self, fp: &Fingerprint) -> Option<(OutputMetrics, BasisId)> {
        let (id, m) = self.find_match(fp)?;
        Some((m.apply_metrics(&self.get(id).metrics), id))
    }

    /// Fold additional samples into a basis (interactive refinement).
    pub fn refine(&mut self, id: BasisId, samples: &[f64]) {
        self.bases[id.0].metrics.extend(samples);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::AffineFamily;

    fn store(strategy: IndexStrategy) -> BasisStore {
        BasisStore::with_strategy(strategy, 1e-9, Arc::new(AffineFamily))
    }

    fn fp(v: &[f64]) -> Fingerprint {
        Fingerprint::new(v.to_vec())
    }

    fn metrics(v: &[f64]) -> OutputMetrics {
        OutputMetrics::from_samples(v.to_vec())
    }

    #[test]
    fn miss_then_hit() {
        let mut s = store(IndexStrategy::Normalization);
        let base_fp = fp(&[1.0, 2.0, 3.0, 1.5]);
        assert!(s.find_match(&base_fp).is_none());
        let id = s.insert(base_fp.clone(), metrics(&[1.0, 2.0, 3.0, 1.5]));
        // An affine image must match with the recovered map.
        let image = fp(&[3.0, 5.0, 7.0, 4.0]); // 2x + 1
        let (got, m) = s.find_match(&image).expect("hit");
        assert_eq!(got, id);
        assert!((m.alpha - 2.0).abs() < 1e-9);
        assert!((m.beta - 1.0).abs() < 1e-9);
    }

    #[test]
    fn resolve_maps_metrics() {
        let mut s = store(IndexStrategy::Array);
        s.insert(fp(&[0.0, 1.0, 2.0]), metrics(&[0.0, 1.0, 2.0, 0.5, 1.5]));
        let (m, _) = s.resolve(&fp(&[10.0, 12.0, 14.0])).expect("reuse");
        // 2x + 10 applied to mean 1.0 → 12.0.
        assert!((m.expectation() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn unrelated_shapes_accumulate_bases() {
        let mut s = store(IndexStrategy::Normalization);
        s.insert(fp(&[0.0, 1.0, 2.0, 3.0]), metrics(&[0.0]));
        assert!(s.find_match(&fp(&[0.0, 1.0, 4.0, 9.0])).is_none());
        s.insert(fp(&[0.0, 1.0, 4.0, 9.0]), metrics(&[0.0]));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn all_strategies_agree_on_affine_hits() {
        let base = fp(&[0.3, 1.7, 0.9, 2.4, -0.5]);
        let image = fp([0.3f64, 1.7, 0.9, 2.4, -0.5].map(|x| -1.5 * x + 2.0).as_ref());
        for strat in [IndexStrategy::Array, IndexStrategy::Normalization, IndexStrategy::SortedSid]
        {
            let mut s = store(strat);
            let id = s.insert(base.clone(), metrics(&[1.0, 2.0]));
            let (got, _) =
                s.find_match(&image).unwrap_or_else(|| panic!("{strat:?} missed an affine image"));
            assert_eq!(got, id);
        }
    }

    #[test]
    fn pairings_tested_reflects_index_quality() {
        // With 20 non-mappable bases, the array index tests every pairing;
        // normalization tests none (different buckets).
        let shapes: Vec<Fingerprint> = (0..20)
            .map(|c| {
                fp(&(0..6)
                    .map(|k| {
                        let z = k as f64 - 2.5;
                        z + c as f64 * z * z
                    })
                    .collect::<Vec<_>>())
            })
            .collect();
        let probe = fp(&(0..6)
            .map(|k| {
                let z = k as f64 - 2.5;
                z + 99.0 * z * z * z // unrelated shape
            })
            .collect::<Vec<_>>());

        let mut arr = store(IndexStrategy::Array);
        let mut norm = store(IndexStrategy::Normalization);
        for (i, s) in shapes.iter().enumerate() {
            arr.insert(s.clone(), metrics(&[i as f64]));
            norm.insert(s.clone(), metrics(&[i as f64]));
        }
        assert!(arr.find_match(&probe).is_none());
        assert!(norm.find_match(&probe).is_none());
        assert_eq!(arr.pairings_tested, 20);
        assert_eq!(norm.pairings_tested, 0);
    }

    #[test]
    fn refine_grows_basis_metrics() {
        let mut s = store(IndexStrategy::Array);
        let id = s.insert(fp(&[1.0, 2.0]), metrics(&[1.0, 2.0]));
        s.refine(id, &[3.0, 4.0]);
        assert_eq!(s.get(id).metrics.n(), 4);
    }
}
