//! Mapping functions between fingerprints (paper §3, Algorithm 2).
//!
//! A mapping function `M` witnesses the similarity `F(P_i) ∼_M F(P_j)`:
//! applied entry-wise it carries one fingerprint onto another, and applied
//! in closed form (`M_est`) it carries the already-computed output metrics
//! of one parameter point onto another — eliminating the Monte Carlo
//! simulation for the second point.
//!
//! The default family is affine, `M(x) = αx + β`, which satisfies all four
//! of the paper's desiderata: parameterizable from two fingerprint entries,
//! validated by the rest, O(1) to compute, and trivially applicable to
//! expectations, standard deviations, and histograms. "Jigsaw allows users
//! to provide their own classes of mapping functions" — that extension
//! point is the [`MappingFamily`] trait; [`PureScaleFamily`] demonstrates a
//! stricter family, and [`AffineMap::compose`] / [`AffineMap::invert`]
//! provide the algebra that symbolic post-processing (paper §6.2's proposed
//! extension) builds on.

use jigsaw_pdb::OutputMetrics;

use crate::fingerprint::{affine_fits, approx_eq, Fingerprint};

/// An affine mapping `M(x) = alpha · x + beta`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AffineMap {
    /// Scale.
    pub alpha: f64,
    /// Offset.
    pub beta: f64,
}

impl AffineMap {
    /// The identity mapping.
    pub const IDENTITY: AffineMap = AffineMap { alpha: 1.0, beta: 0.0 };

    /// Construct from scale and offset.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha.is_finite() && beta.is_finite(), "mapping coefficients must be finite");
        AffineMap { alpha, beta }
    }

    /// Apply to a scalar.
    #[inline]
    pub fn apply(&self, x: f64) -> f64 {
        self.alpha * x + self.beta
    }

    /// Apply entry-wise to a fingerprint.
    pub fn apply_fingerprint(&self, fp: &Fingerprint) -> Fingerprint {
        Fingerprint::new(fp.entries().iter().map(|&x| self.apply(x)).collect())
    }

    /// `M_est`: carry output metrics across the mapping in closed form.
    pub fn apply_metrics(&self, m: &OutputMetrics) -> OutputMetrics {
        m.affine_image(self.alpha, self.beta)
    }

    /// The inverse mapping, when `alpha != 0`.
    ///
    /// Used by the interactive mode to fold samples generated at a point of
    /// interest back into its basis distribution (paper §5: "samples are
    /// generated directly for the point of interest, and mapped back to the
    /// basis distribution by the inverse of the mapping function").
    pub fn invert(&self) -> Option<AffineMap> {
        if self.alpha == 0.0 {
            None
        } else {
            Some(AffineMap { alpha: 1.0 / self.alpha, beta: -self.beta / self.alpha })
        }
    }

    /// Composition `self ∘ other` (apply `other` first).
    pub fn compose(&self, other: &AffineMap) -> AffineMap {
        AffineMap { alpha: self.alpha * other.alpha, beta: self.alpha * other.beta + self.beta }
    }

    /// Post-compose with an affine adjustment: `a·M(x) + b`. This is the
    /// building block for symbolic arithmetic over mapped random variables
    /// (paper §6.2: `X + Y = (M_X + M_Y)(f(x))` when both map from the same
    /// basis).
    pub fn then_affine(&self, a: f64, b: f64) -> AffineMap {
        AffineMap { alpha: a * self.alpha, beta: a * self.beta + b }
    }

    /// Pointwise sum of two mappings over the same basis variable.
    pub fn add(&self, other: &AffineMap) -> AffineMap {
        AffineMap { alpha: self.alpha + other.alpha, beta: self.beta + other.beta }
    }

    /// True when this is (approximately) the identity.
    pub fn is_identity(&self, tol: f64) -> bool {
        approx_eq(self.alpha, 1.0, tol) && approx_eq(self.beta, 0.0, tol)
    }
}

/// A family of admissible mapping functions with a discovery procedure.
pub trait MappingFamily: Send + Sync {
    /// Family name for reports.
    fn name(&self) -> &str;

    /// Find `M` in the family with `M(from[k]) ≈ to[k]` for all `k`, or
    /// `None`. Implementations must validate against *every* entry — the
    /// first two entries parameterize, the rest witness (Algorithm 2).
    fn find(&self, from: &Fingerprint, to: &Fingerprint, tol: f64) -> Option<AffineMap>;
}

/// The paper's `FindLinearMapping` (Algorithm 2), tolerance-hardened.
#[derive(Debug, Clone, Copy, Default)]
pub struct AffineFamily;

impl MappingFamily for AffineFamily {
    fn name(&self) -> &str {
        "affine"
    }

    fn find(&self, from: &Fingerprint, to: &Fingerprint, tol: f64) -> Option<AffineMap> {
        if from.len() != to.len() {
            return None;
        }
        let m = match from.first_distinct_pair(tol) {
            None => {
                // Constant source: mappable iff the target is constant too;
                // a pure shift is the canonical witness.
                if to.is_constant(tol) {
                    return Some(AffineMap::new(1.0, to.entries()[0] - from.entries()[0]));
                }
                return None;
            }
            Some((i0, i1)) => {
                let (a0, a1) = (from.entries()[i0], from.entries()[i1]);
                let (b0, b1) = (to.entries()[i0], to.entries()[i1]);
                let alpha = (b1 - b0) / (a1 - a0);
                if !alpha.is_finite() {
                    return None;
                }
                let beta = b0 - alpha * a0;
                if !beta.is_finite() {
                    return None;
                }
                AffineMap::new(alpha, beta)
            }
        };
        // Validate every remaining entry with the slice kernel (same
        // predicate as `approx_eq`, applied over both columns at once).
        if affine_fits(from.entries(), to.entries(), m.alpha, m.beta, tol) {
            Some(m)
        } else {
            None
        }
    }
}

/// A stricter user-style family: pure scalings `M(x) = αx` (no offset).
///
/// Demonstrates the extension point: e.g. for non-negative quantities like
/// capacities, an analyst may know a priori that only rescalings are
/// physically meaningful and exclude accidental shift matches.
#[derive(Debug, Clone, Copy, Default)]
pub struct PureScaleFamily;

impl MappingFamily for PureScaleFamily {
    fn name(&self) -> &str {
        "pure-scale"
    }

    fn find(&self, from: &Fingerprint, to: &Fingerprint, tol: f64) -> Option<AffineMap> {
        let m = AffineFamily.find(from, to, tol)?;
        if approx_eq(m.beta, 0.0, tol) {
            Some(AffineMap::new(m.alpha, 0.0))
        } else {
            None
        }
    }
}

/// Identity-only family: fingerprints must match verbatim. This is the
/// effective reuse regime for information-destroying outputs like the
/// boolean `Overload` model (§6.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityFamily;

impl MappingFamily for IdentityFamily {
    fn name(&self) -> &str {
        "identity"
    }

    fn find(&self, from: &Fingerprint, to: &Fingerprint, tol: f64) -> Option<AffineMap> {
        if from.approx_eq(to, tol) {
            Some(AffineMap::IDENTITY)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(v: &[f64]) -> Fingerprint {
        Fingerprint::new(v.to_vec())
    }

    #[test]
    fn recovers_paper_example() {
        // θ1 = (0, 1.2, 2.3, 1.3, 1.5), θ2 = θ1 + 0.1 (paper §3.1).
        let a = fp(&[0.0, 1.2, 2.3, 1.3, 1.5]);
        let b = fp(&[0.1, 1.3, 2.4, 1.4, 1.6]);
        let m = AffineFamily.find(&a, &b, 1e-9).expect("mapping must exist");
        assert!((m.alpha - 1.0).abs() < 1e-12);
        assert!((m.beta - 0.1).abs() < 1e-12);
    }

    #[test]
    fn rejects_nonaffine() {
        let a = fp(&[0.0, 1.0, 2.0, 3.0]);
        let b = fp(&[0.0, 1.0, 4.0, 9.0]); // squares
        assert!(AffineFamily.find(&a, &b, 1e-9).is_none());
    }

    #[test]
    fn leading_ties_are_skipped_when_parameterizing() {
        // First two entries equal: Algorithm 2 must look further for the
        // parameterizing pair instead of dividing by zero.
        let a = fp(&[5.0, 5.0, 7.0, 9.0]);
        let b = fp(&[11.0, 11.0, 15.0, 19.0]);
        let m = AffineFamily.find(&a, &b, 1e-9).expect("mapping exists");
        assert!((m.alpha - 2.0).abs() < 1e-12);
        assert!((m.beta - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_to_constant_is_shift() {
        let a = fp(&[3.0, 3.0, 3.0]);
        let b = fp(&[8.0, 8.0, 8.0]);
        let m = AffineFamily.find(&a, &b, 1e-9).unwrap();
        assert_eq!(m.apply(3.0), 8.0);
    }

    #[test]
    fn constant_to_varying_impossible() {
        let a = fp(&[3.0, 3.0, 3.0]);
        let b = fp(&[1.0, 2.0, 3.0]);
        assert!(AffineFamily.find(&a, &b, 1e-9).is_none());
    }

    #[test]
    fn varying_to_constant_is_degenerate_alpha_zero() {
        let a = fp(&[1.0, 2.0, 3.0]);
        let b = fp(&[5.0, 5.0, 5.0]);
        let m = AffineFamily.find(&a, &b, 1e-9).unwrap();
        assert_eq!(m.alpha, 0.0);
        assert_eq!(m.beta, 5.0);
        assert!(m.invert().is_none(), "alpha = 0 is not invertible");
    }

    #[test]
    fn negative_alpha_supported() {
        let a = fp(&[1.0, 2.0, 3.0]);
        let b = fp(&[-2.0, -4.0, -6.0]);
        let m = AffineFamily.find(&a, &b, 1e-9).unwrap();
        assert_eq!(m.alpha, -2.0);
        assert_eq!(m.beta, 0.0);
    }

    #[test]
    fn tolerance_admits_float_noise_and_rejects_real_differences() {
        let a = fp(&[1.0, 2.0, 3.0]);
        let noisy = fp(&[2.0 + 1e-13, 4.0 - 1e-13, 6.0 + 1e-13]);
        assert!(AffineFamily.find(&a, &noisy, 1e-9).is_some());
        let off = fp(&[2.0, 4.0, 6.01]);
        assert!(AffineFamily.find(&a, &off, 1e-9).is_none());
    }

    #[test]
    fn compose_invert_roundtrip() {
        let m = AffineMap::new(2.5, -3.0);
        let inv = m.invert().unwrap();
        let id = m.compose(&inv);
        assert!(id.is_identity(1e-12));
        let id2 = inv.compose(&m);
        assert!(id2.is_identity(1e-12));
    }

    #[test]
    fn compose_order_matters() {
        let m1 = AffineMap::new(2.0, 1.0);
        let m2 = AffineMap::new(-1.0, 3.0);
        // (m1 ∘ m2)(x) = 2(-x + 3) + 1 = -2x + 7.
        let c = m1.compose(&m2);
        assert_eq!(c.apply(1.0), 5.0);
        assert_eq!((c.alpha, c.beta), (-2.0, 7.0));
    }

    #[test]
    fn symbolic_sum_of_mapped_variables() {
        // Paper §6.2: X = 2f+2, Y = 3f+3 ⇒ X + Y = 5f + 5.
        let mx = AffineMap::new(2.0, 2.0);
        let my = AffineMap::new(3.0, 3.0);
        let sum = mx.add(&my);
        assert_eq!((sum.alpha, sum.beta), (5.0, 5.0));
    }

    #[test]
    fn then_affine_matches_manual_composition() {
        let m = AffineMap::new(2.0, 1.0);
        let t = m.then_affine(3.0, -4.0); // 3(2x+1) - 4 = 6x - 1
        assert_eq!((t.alpha, t.beta), (6.0, -1.0));
    }

    #[test]
    fn pure_scale_family_rejects_shifts() {
        let a = fp(&[1.0, 2.0, 3.0]);
        let scaled = fp(&[2.0, 4.0, 6.0]);
        let shifted = fp(&[2.0, 3.0, 4.0]);
        assert!(PureScaleFamily.find(&a, &scaled, 1e-9).is_some());
        assert!(PureScaleFamily.find(&a, &shifted, 1e-9).is_none());
        assert!(AffineFamily.find(&a, &shifted, 1e-9).is_some(), "affine accepts it");
    }

    #[test]
    fn identity_family() {
        let a = fp(&[1.0, 0.0, 1.0]);
        let b = fp(&[1.0, 0.0, 1.0]);
        let c = fp(&[0.0, 1.0, 0.0]);
        assert!(IdentityFamily.find(&a, &b, 1e-9).is_some());
        assert!(IdentityFamily.find(&a, &c, 1e-9).is_none());
        // Affine would map the complement pattern — identity must not.
        assert!(AffineFamily.find(&a, &c, 1e-9).is_some());
    }

    #[test]
    fn mapping_metrics_equals_metrics_of_mapped_samples() {
        let samples = vec![1.0, 4.0, 2.0, 8.0, 5.0];
        let m0 = OutputMetrics::from_samples(samples.clone());
        let map = AffineMap::new(-1.5, 4.0);
        let via_map = map.apply_metrics(&m0);
        let direct = OutputMetrics::from_samples(samples.iter().map(|&x| map.apply(x)).collect());
        assert!((via_map.expectation() - direct.expectation()).abs() < 1e-12);
        assert!((via_map.std_dev() - direct.std_dev()).abs() < 1e-12);
        assert_eq!(via_map.min(), direct.min());
        assert_eq!(via_map.max(), direct.max());
    }

    #[test]
    fn length_mismatch_is_no_match() {
        let a = fp(&[1.0, 2.0]);
        let b = fp(&[1.0, 2.0, 3.0]);
        assert!(AffineFamily.find(&a, &b, 1e-9).is_none());
    }
}
