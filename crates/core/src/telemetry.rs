//! Execution statistics for sweeps and Markov runs.

use std::time::Duration;

/// Wall-clock time spent in each phase of the batch-synchronous sweep
/// executor. Purely observational: never part of determinism comparisons.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Parallel fingerprint evaluation (worlds `0..m`).
    pub fingerprint: Duration,
    /// Sequential resolve/stage pass at the wave barrier.
    pub resolve: Duration,
    /// Parallel completion simulations (worlds `m..n`).
    pub completion: Duration,
    /// Sequential metric assembly and basis commits.
    pub commit: Duration,
}

/// Reuse counters for one wave of the sweep executor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WaveReuse {
    /// Points processed in the wave.
    pub points: usize,
    /// Points fully served by intra-sweep basis reuse (at least one matched
    /// basis was created during this sweep).
    pub reused: usize,
    /// Points fully served by bases loaded from a snapshot (cross-sweep
    /// warm-start reuse; zero when no snapshot was loaded).
    pub warm_hits: usize,
    /// Points that ran a completion simulation.
    pub full_simulations: usize,
}

/// The deterministic subset of [`SweepStats`]: every field here must be
/// bit-identical for any thread budget *and* any wave size (wall-clock
/// fields, the recorded thread count, and wave partitioning are excluded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepCounters {
    /// Points visited.
    pub points: usize,
    /// Points answered by full Monte Carlo simulation.
    pub full_simulations: usize,
    /// Points answered by intra-sweep basis reuse through a mapping.
    pub reused: usize,
    /// Points answered by snapshot-loaded (warm-start) bases.
    pub warm_hits: usize,
    /// Simulation worlds evaluated.
    pub worlds_evaluated: u64,
    /// Basis distributions per output column.
    pub bases_per_column: Vec<usize>,
    /// Mapping validations attempted.
    pub pairings_tested: u64,
    /// Points coarse-swept by the sketch pass (0 = sketching off).
    pub sketch_points: usize,
    /// Worlds spent by the sketch pass.
    pub sketch_worlds: u64,
    /// Frontier points re-run at full budget by the refine pass.
    pub refined_points: usize,
    /// Points whose final metrics are the coarse sketch estimates.
    pub pruned_points: usize,
}

/// Counters collected during a parameter-space sweep.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepStats {
    /// Points visited.
    pub points: usize,
    /// Points answered by full Monte Carlo simulation.
    pub full_simulations: usize,
    /// Points answered by intra-sweep basis reuse through a mapping.
    pub reused: usize,
    /// Points answered entirely by bases loaded from a snapshot — the
    /// cross-sweep warm-start hits, kept distinct from intra-sweep reuse so
    /// telemetry shows how much a warm store actually saved.
    pub warm_hits: usize,
    /// Simulation worlds evaluated (fingerprint + completion).
    pub worlds_evaluated: u64,
    /// Basis distributions at end of sweep, per output column.
    pub bases_per_column: Vec<usize>,
    /// Mapping validations attempted across all columns.
    pub pairings_tested: u64,
    /// Points coarse-swept by the sketch pass of a sketch-then-refine
    /// sweep (the whole space); 0 when sketching is off. In sketch mode
    /// the store-ledger fields above (`full_simulations`, `reused`,
    /// `warm_hits`, `bases_per_column`, `pairings_tested`) and the wave
    /// ledger describe the *refine* pass — the full-fidelity store — while
    /// the sketch pass's aggregate cost lives here and in `sketch_worlds`.
    pub sketch_points: usize,
    /// Worlds evaluated by the sketch pass (already included in
    /// `worlds_evaluated`, which stays the whole-sweep total).
    pub sketch_worlds: u64,
    /// Surviving frontier points re-run at full budget by the refine pass.
    pub refined_points: usize,
    /// Points pruned by the sketch: their final metrics are the coarse
    /// estimates (`PointResult::coarse`).
    pub pruned_points: usize,
    /// Thread budget the executor actually used.
    pub threads: usize,
    /// Number of batch-synchronous waves the sweep was processed in.
    pub waves: usize,
    /// Per-wave reuse counters, in wave order.
    pub wave_reuse: Vec<WaveReuse>,
    /// Per-phase wall-clock breakdown.
    pub phase: PhaseTimings,
    /// Wall-clock time.
    pub elapsed: Duration,
}

impl SweepStats {
    /// Snapshot the fields that must be identical across thread budgets and
    /// wave sizes (the property tests and the CI twin-run diff assert this).
    pub fn counters(&self) -> SweepCounters {
        SweepCounters {
            points: self.points,
            full_simulations: self.full_simulations,
            reused: self.reused,
            warm_hits: self.warm_hits,
            worlds_evaluated: self.worlds_evaluated,
            bases_per_column: self.bases_per_column.clone(),
            pairings_tested: self.pairings_tested,
            sketch_points: self.sketch_points,
            sketch_worlds: self.sketch_worlds,
            refined_points: self.refined_points,
            pruned_points: self.pruned_points,
        }
    }
    /// Fraction of points served by reuse (intra-sweep or warm-start).
    pub fn reuse_rate(&self) -> f64 {
        if self.points == 0 {
            return 0.0;
        }
        (self.reused + self.warm_hits) as f64 / self.points as f64
    }

    /// Wall-clock seconds per parameter point (the paper's "s/pc" unit).
    pub fn seconds_per_point(&self) -> f64 {
        if self.points == 0 {
            return 0.0;
        }
        self.elapsed.as_secs_f64() / self.points as f64
    }
}

/// Counters collected during a Markov-process evaluation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MarkovStats {
    /// Chain length evaluated.
    pub steps: usize,
    /// Steps advanced with the full `n`-instance state.
    pub full_steps: usize,
    /// Steps advanced with only the `m` fingerprint instances.
    pub fingerprint_steps: usize,
    /// Estimator (re)synthesis events.
    pub estimator_rebuilds: usize,
    /// Full-state reconstructions through a mapped estimator.
    pub state_reconstructions: usize,
    /// `output()` invocations (the cost driver).
    pub model_invocations: u64,
    /// Wall-clock time.
    pub elapsed: Duration,
}

impl MarkovStats {
    /// Wall-clock milliseconds per chain step (Figure 12's unit).
    pub fn ms_per_step(&self) -> f64 {
        if self.steps == 0 {
            return 0.0;
        }
        self.elapsed.as_secs_f64() * 1e3 / self.steps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_rate() {
        let s = SweepStats { points: 10, reused: 4, ..Default::default() };
        assert!((s.reuse_rate() - 0.4).abs() < 1e-12);
        assert_eq!(SweepStats::default().reuse_rate(), 0.0);
    }

    #[test]
    fn reuse_rate_counts_warm_hits() {
        // A fully warm-started sweep has zero intra-sweep reuse but a 100%
        // effective reuse rate.
        let s = SweepStats { points: 10, reused: 0, warm_hits: 10, ..Default::default() };
        assert!((s.reuse_rate() - 1.0).abs() < 1e-12);
        let mixed = SweepStats { points: 10, reused: 3, warm_hits: 4, ..Default::default() };
        assert!((mixed.reuse_rate() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn counters_capture_every_deterministic_field() {
        let s = SweepStats {
            points: 12,
            full_simulations: 2,
            reused: 3,
            warm_hits: 7,
            worlds_evaluated: 500,
            bases_per_column: vec![2, 4],
            pairings_tested: 31,
            sketch_points: 12,
            sketch_worlds: 240,
            refined_points: 5,
            pruned_points: 7,
            ..Default::default()
        };
        let c = s.counters();
        assert_eq!(c.points, 12);
        assert_eq!(c.full_simulations, 2);
        assert_eq!(c.reused, 3);
        assert_eq!(c.warm_hits, 7);
        assert_eq!(c.worlds_evaluated, 500);
        assert_eq!(c.bases_per_column, vec![2, 4]);
        assert_eq!(c.pairings_tested, 31);
        assert_eq!(c.sketch_points, 12);
        assert_eq!(c.sketch_worlds, 240);
        assert_eq!(c.refined_points, 5);
        assert_eq!(c.pruned_points, 7);
        // Every counter participates in the equality the determinism tests
        // rely on: flipping any single field breaks it.
        let base = s.counters();
        let variants = [
            SweepStats { points: 13, ..s.clone() },
            SweepStats { full_simulations: 3, ..s.clone() },
            SweepStats { reused: 4, ..s.clone() },
            SweepStats { warm_hits: 8, ..s.clone() },
            SweepStats { worlds_evaluated: 501, ..s.clone() },
            SweepStats { bases_per_column: vec![2, 5], ..s.clone() },
            SweepStats { pairings_tested: 32, ..s.clone() },
            SweepStats { sketch_points: 13, ..s.clone() },
            SweepStats { sketch_worlds: 241, ..s.clone() },
            SweepStats { refined_points: 6, ..s.clone() },
            SweepStats { pruned_points: 8, ..s.clone() },
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(base, v.counters(), "field {i} must be part of the snapshot");
        }
    }

    #[test]
    fn wave_reuse_partitions_points() {
        // The executor's per-wave invariant: every point is exactly one of
        // warm hit, intra-sweep reuse, or full simulation.
        let w = WaveReuse { points: 9, reused: 2, warm_hits: 4, full_simulations: 3 };
        assert_eq!(w.points, w.reused + w.warm_hits + w.full_simulations);
        assert_eq!(WaveReuse::default(), WaveReuse { points: 0, ..Default::default() });
    }

    #[test]
    fn counters_exclude_wall_clock_and_layout() {
        let mut a = SweepStats {
            points: 8,
            reused: 5,
            full_simulations: 3,
            worlds_evaluated: 640,
            bases_per_column: vec![3],
            pairings_tested: 12,
            ..Default::default()
        };
        let mut b = a.clone();
        // Different thread budget, wave layout, and timings…
        a.threads = 1;
        a.waves = 1;
        a.elapsed = Duration::from_secs(9);
        b.threads = 8;
        b.waves = 4;
        b.phase.completion = Duration::from_millis(3);
        // …must not affect the deterministic snapshot.
        assert_eq!(a.counters(), b.counters());
        b.pairings_tested += 1;
        assert_ne!(a.counters(), b.counters());
    }

    #[test]
    fn per_unit_times() {
        let s = SweepStats { points: 4, elapsed: Duration::from_secs(2), ..Default::default() };
        assert!((s.seconds_per_point() - 0.5).abs() < 1e-12);
        let m =
            MarkovStats { steps: 100, elapsed: Duration::from_millis(250), ..Default::default() };
        assert!((m.ms_per_step() - 2.5).abs() < 1e-12);
    }

    /// The divide-by-zero family: zero points/steps must answer an exact
    /// 0.0, never NaN or infinity — these ratios flow into rendered bench
    /// tables and NDJSON traces where a NaN would poison downstream math
    /// and diffing.
    #[test]
    fn zero_denominators_answer_zero_not_nan() {
        // Zero points, with and without elapsed time on the clock.
        let idle = SweepStats { elapsed: Duration::from_secs(3), ..Default::default() };
        assert_eq!(idle.seconds_per_point(), 0.0);
        assert_eq!(SweepStats::default().seconds_per_point(), 0.0);
        // Zero points: reuse rate of an empty sweep is 0.0 even though
        // 0/0 would be NaN.
        assert_eq!(idle.reuse_rate(), 0.0);
        let no_points = SweepStats { reused: 0, warm_hits: 0, points: 0, ..Default::default() };
        assert_eq!(no_points.reuse_rate(), 0.0);
        // Zero Markov steps, again with time on the clock.
        let m = MarkovStats { elapsed: Duration::from_millis(9), ..Default::default() };
        assert_eq!(m.ms_per_step(), 0.0);
        assert_eq!(MarkovStats::default().ms_per_step(), 0.0);
        // All three must be finite (the property the guards exist for).
        assert!(idle.seconds_per_point().is_finite());
        assert!(idle.reuse_rate().is_finite());
        assert!(m.ms_per_step().is_finite());
    }
}
