//! Execution statistics for sweeps and Markov runs.

use std::time::Duration;

/// Counters collected during a parameter-space sweep.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepStats {
    /// Points visited.
    pub points: usize,
    /// Points answered by full Monte Carlo simulation.
    pub full_simulations: usize,
    /// Points answered by basis reuse through a mapping.
    pub reused: usize,
    /// Simulation worlds evaluated (fingerprint + completion).
    pub worlds_evaluated: u64,
    /// Basis distributions at end of sweep, per output column.
    pub bases_per_column: Vec<usize>,
    /// Mapping validations attempted across all columns.
    pub pairings_tested: u64,
    /// Wall-clock time.
    pub elapsed: Duration,
}

impl SweepStats {
    /// Fraction of points served by reuse.
    pub fn reuse_rate(&self) -> f64 {
        if self.points == 0 {
            return 0.0;
        }
        self.reused as f64 / self.points as f64
    }

    /// Wall-clock seconds per parameter point (the paper's "s/pc" unit).
    pub fn seconds_per_point(&self) -> f64 {
        if self.points == 0 {
            return 0.0;
        }
        self.elapsed.as_secs_f64() / self.points as f64
    }
}

/// Counters collected during a Markov-process evaluation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MarkovStats {
    /// Chain length evaluated.
    pub steps: usize,
    /// Steps advanced with the full `n`-instance state.
    pub full_steps: usize,
    /// Steps advanced with only the `m` fingerprint instances.
    pub fingerprint_steps: usize,
    /// Estimator (re)synthesis events.
    pub estimator_rebuilds: usize,
    /// Full-state reconstructions through a mapped estimator.
    pub state_reconstructions: usize,
    /// `output()` invocations (the cost driver).
    pub model_invocations: u64,
    /// Wall-clock time.
    pub elapsed: Duration,
}

impl MarkovStats {
    /// Wall-clock milliseconds per chain step (Figure 12's unit).
    pub fn ms_per_step(&self) -> f64 {
        if self.steps == 0 {
            return 0.0;
        }
        self.elapsed.as_secs_f64() * 1e3 / self.steps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_rate() {
        let s = SweepStats { points: 10, reused: 4, ..Default::default() };
        assert!((s.reuse_rate() - 0.4).abs() < 1e-12);
        assert_eq!(SweepStats::default().reuse_rate(), 0.0);
    }

    #[test]
    fn per_unit_times() {
        let s = SweepStats { points: 4, elapsed: Duration::from_secs(2), ..Default::default() };
        assert!((s.seconds_per_point() - 0.5).abs() < 1e-12);
        let m =
            MarkovStats { steps: 100, elapsed: Duration::from_millis(250), ..Default::default() };
        assert!((m.ms_per_step() - 2.5).abs() < 1e-12);
    }
}
