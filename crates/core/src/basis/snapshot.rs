//! Versioned binary snapshots of a [`ShardedBasisStore`].
//!
//! Jigsaw's value proposition is amortizing black-box Monte Carlo cost
//! through basis reuse; this module extends the amortization window across
//! process boundaries. A snapshot captures every *committed* basis of every
//! shard — fingerprints and metric sample vectors, both bit-exact (`f64`
//! payloads are stored as their IEEE-754 bit patterns) — so a sweep or
//! interactive session warm-started from it resolves exactly as if the
//! producing sweep's store were still in memory.
//!
//! ## Format (version 1)
//!
//! All integers little-endian; all `f64` values stored via `to_bits()`.
//!
//! ```text
//! magic            8  bytes  "JGSWSNAP"
//! format version   u32       FORMAT_VERSION
//! config fp        u64       config_fingerprint(cfg, family name)
//! column count     u32       number of shards
//! per shard:
//!   payload len    u64       byte length of the shard payload
//!   payload        …         n_bases u32, then per basis:
//!                              fp_len u32, fp entries (u64 bits each),
//!                              n_samples u32, samples (u64 bits each)
//!   checksum       u64       FNV-1a 64 over the payload bytes
//! ```
//!
//! ## Invalidation policy
//!
//! A snapshot is only meaningful under the exact matching regime that
//! produced it, so the header carries a fingerprint of every
//! [`JigsawConfig`] knob that affects *basis identity*: fingerprint length,
//! sample count, matching tolerance, index strategy, and the mapping-family
//! name. Pure performance knobs (`threads`, `wave_size`) and the snapshot
//! paths themselves are excluded — they cannot change which bases exist or
//! how candidates are ordered. Any mismatch (or a truncated, bit-flipped, or
//! wrong-version file) refuses to load with a typed [`SnapshotError`]
//! instead of silently producing a differently-behaving store.
//!
//! ## Determinism
//!
//! Bases are serialized and re-inserted in basis-id order, which *is* the
//! index insertion order, so a loaded store reproduces the exact candidate
//! ordering (see [`crate::index::FingerprintIndex::candidates`]) of the
//! in-memory store it was saved from. Rebuilding metrics via
//! [`OutputMetrics::from_samples`] replays the same accumulation the
//! original commit performed, making save → load → save byte-identical and
//! warm-started sweeps bit-identical to their cold counterparts.

use std::fmt;
use std::path::Path;
use std::sync::Arc;

use jigsaw_pdb::{OutputMetrics, PdbError};

use crate::basis::{BasisStore, ShardedBasisStore};
use crate::config::{IndexStrategy, JigsawConfig};
use crate::fingerprint::Fingerprint;
use crate::mapping::MappingFamily;

/// Leading magic bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"JGSWSNAP";

/// Current snapshot format version. Bump on any layout change; old files
/// then refuse to load with [`SnapshotError::UnsupportedVersion`] rather
/// than being misparsed.
pub const FORMAT_VERSION: u32 = 1;

/// Why a snapshot could not be saved or loaded.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`] — not a basis snapshot.
    BadMagic,
    /// The file's format version is not [`FORMAT_VERSION`].
    UnsupportedVersion {
        /// Version found in the file header.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// The file was written under different basis-identity configuration
    /// (fingerprint length, sample count, tolerance, index strategy, or
    /// mapping family).
    ConfigMismatch {
        /// Config fingerprint found in the file header.
        found: u64,
        /// Config fingerprint of the requesting session.
        expected: u64,
    },
    /// The file's shard count does not match the simulation's output
    /// column count.
    ColumnCountMismatch {
        /// Shard count found in the file header.
        found: usize,
        /// Output columns of the requesting simulation.
        expected: usize,
    },
    /// A shard payload's checksum does not match its contents.
    ChecksumMismatch {
        /// Index of the corrupted shard.
        shard: usize,
    },
    /// The file ended before the declared contents were read.
    Truncated,
    /// The contents are structurally invalid (bad lengths, non-finite
    /// fingerprint entries, trailing bytes, …).
    Corrupt(&'static str),
    /// The store has staged bases whose metrics are still pending; only
    /// fully committed stores (i.e. at a wave barrier) can be snapshot.
    StagedBases {
        /// Number of staged-but-uncommitted bases.
        staged: usize,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O: {e}"),
            SnapshotError::BadMagic => write!(f, "not a basis snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found, expected } => {
                write!(f, "unsupported snapshot version {found} (this build reads {expected})")
            }
            SnapshotError::ConfigMismatch { found, expected } => write!(
                f,
                "snapshot written under different basis-identity config \
                 ({found:#018x}, session expects {expected:#018x})"
            ),
            SnapshotError::ColumnCountMismatch { found, expected } => {
                write!(f, "snapshot has {found} column shard(s), simulation has {expected}")
            }
            SnapshotError::ChecksumMismatch { shard } => {
                write!(f, "checksum mismatch in shard {shard}")
            }
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
            SnapshotError::StagedBases { staged } => {
                write!(f, "cannot snapshot a store with {staged} staged (uncommitted) basis/es")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<SnapshotError> for PdbError {
    fn from(e: SnapshotError) -> Self {
        PdbError::Snapshot(e.to_string())
    }
}

/// FNV-1a 64-bit hash (dependency-free, stable across platforms).
fn fnv1a(init: u64, bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = init;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// FNV-1a 64 from the standard offset basis — the one content hash this
/// workspace uses for identity strings (snapshot payloads, config
/// fingerprints, the session server's scenario scopes), exported so no
/// caller has to re-implement the constants.
pub fn content_hash64(bytes: &[u8]) -> u64 {
    fnv1a(FNV_OFFSET, bytes)
}

/// Stable tag for the index strategy (part of the config fingerprint; the
/// candidate ordering a strategy produces is part of basis identity).
fn index_tag(strategy: IndexStrategy) -> u8 {
    match strategy {
        IndexStrategy::Array => 0,
        IndexStrategy::Normalization => 1,
        IndexStrategy::SortedSid => 2,
    }
}

/// Hash of every [`JigsawConfig`] knob that affects basis identity, plus
/// the mapping-family name. Two sessions whose fingerprints agree build
/// byte-compatible basis stores; anything else must refuse to share
/// snapshots ([`SnapshotError::ConfigMismatch`]).
pub fn config_fingerprint(cfg: &JigsawConfig, family_name: &str) -> u64 {
    let mut h = FNV_OFFSET;
    h = fnv1a(h, &(cfg.fingerprint_len as u64).to_le_bytes());
    h = fnv1a(h, &(cfg.n_samples as u64).to_le_bytes());
    h = fnv1a(h, &cfg.tolerance.to_bits().to_le_bytes());
    h = fnv1a(h, &[index_tag(cfg.index)]);
    h = fnv1a(h, family_name.as_bytes());
    h
}

/// Byte-stream writer helpers (all little-endian).
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64_bits(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Byte-stream reader with truncation checking.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f64_bits(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Declared element count sanity check: `count` 8-byte values must fit
    /// in the remaining bytes *before* any allocation is sized from it, so
    /// a crafted length field yields [`SnapshotError::Truncated`] instead
    /// of a multi-gigabyte `Vec::with_capacity`.
    fn check_fits_u64s(&self, count: usize) -> Result<(), SnapshotError> {
        if count > (self.bytes.len() - self.pos) / 8 {
            return Err(SnapshotError::Truncated);
        }
        Ok(())
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// Serialize one shard's committed bases (the per-shard payload, before the
/// checksum is appended).
fn encode_shard(store: &BasisStore) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, store.len() as u32);
    for basis in store.bases() {
        let fp = basis.fingerprint.entries();
        put_u32(&mut out, fp.len() as u32);
        for &x in fp {
            put_f64_bits(&mut out, x);
        }
        let samples = basis.metrics.samples();
        put_u32(&mut out, samples.len() as u32);
        for &x in samples {
            put_f64_bits(&mut out, x);
        }
    }
    out
}

/// Parse one shard payload into a fresh store, re-inserting bases in id
/// order so the rebuilt index proposes candidates in the exact order the
/// saved store would have.
fn decode_shard(
    payload: &[u8],
    cfg: &JigsawConfig,
    family: Arc<dyn MappingFamily>,
) -> Result<BasisStore, SnapshotError> {
    let mut r = Reader::new(payload);
    let n_bases = r.u32()? as usize;
    let mut store = BasisStore::new(cfg, family);
    for _ in 0..n_bases {
        let fp_len = r.u32()? as usize;
        if fp_len == 0 {
            return Err(SnapshotError::Corrupt("empty fingerprint"));
        }
        r.check_fits_u64s(fp_len)?;
        let mut entries = Vec::with_capacity(fp_len);
        for _ in 0..fp_len {
            let x = r.f64_bits()?;
            if !x.is_finite() {
                return Err(SnapshotError::Corrupt("non-finite fingerprint entry"));
            }
            entries.push(x);
        }
        let n_samples = r.u32()? as usize;
        r.check_fits_u64s(n_samples)?;
        let mut samples = Vec::with_capacity(n_samples);
        for _ in 0..n_samples {
            samples.push(r.f64_bits()?);
        }
        store.insert(Fingerprint::new(entries), OutputMetrics::from_samples(samples));
    }
    if !r.done() {
        return Err(SnapshotError::Corrupt("trailing bytes in shard payload"));
    }
    Ok(store)
}

impl ShardedBasisStore {
    /// Serialize every committed shard into the version-1 snapshot format.
    ///
    /// `family_name` names the mapping family the store was built with; it
    /// is folded into the header's config fingerprint so a session using a
    /// different family cannot load the snapshot. Fails with
    /// [`SnapshotError::StagedBases`] if any basis is staged but
    /// uncommitted (snapshots are only taken at wave barriers).
    pub fn to_snapshot_bytes(
        &self,
        cfg: &JigsawConfig,
        family_name: &str,
    ) -> Result<Vec<u8>, SnapshotError> {
        let staged = self.staged_total();
        if staged > 0 {
            return Err(SnapshotError::StagedBases { staged });
        }
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        put_u32(&mut out, FORMAT_VERSION);
        put_u64(&mut out, config_fingerprint(cfg, family_name));
        put_u32(&mut out, self.n_shards() as u32);
        for col in 0..self.n_shards() {
            let payload = encode_shard(self.shard(col));
            put_u64(&mut out, payload.len() as u64);
            out.extend_from_slice(&payload);
            put_u64(&mut out, fnv1a(FNV_OFFSET, &payload));
        }
        Ok(out)
    }

    /// Parse a snapshot produced by [`Self::to_snapshot_bytes`], verifying
    /// magic, version, config fingerprint, column count, and per-shard
    /// checksums before any basis is materialized.
    pub fn from_snapshot_bytes(
        bytes: &[u8],
        cfg: &JigsawConfig,
        family: Arc<dyn MappingFamily>,
        expected_cols: usize,
    ) -> Result<Self, SnapshotError> {
        let mut r = Reader::new(bytes);
        if r.take(MAGIC.len())? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u32()?;
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let found_fp = r.u64()?;
        let expected_fp = config_fingerprint(cfg, family.name());
        if found_fp != expected_fp {
            return Err(SnapshotError::ConfigMismatch { found: found_fp, expected: expected_fp });
        }
        let n_cols = r.u32()? as usize;
        if n_cols != expected_cols {
            return Err(SnapshotError::ColumnCountMismatch {
                found: n_cols,
                expected: expected_cols,
            });
        }
        let mut shards = Vec::with_capacity(n_cols);
        for col in 0..n_cols {
            let payload_len = r.u64()? as usize;
            let payload = r.take(payload_len)?;
            let checksum = r.u64()?;
            if fnv1a(FNV_OFFSET, payload) != checksum {
                return Err(SnapshotError::ChecksumMismatch { shard: col });
            }
            shards.push(decode_shard(payload, cfg, family.clone())?);
        }
        if !r.done() {
            return Err(SnapshotError::Corrupt("trailing bytes after last shard"));
        }
        Ok(ShardedBasisStore::from_shards(shards))
    }

    /// Save the store to `path` (see [`Self::to_snapshot_bytes`]).
    pub fn save_snapshot(
        &self,
        cfg: &JigsawConfig,
        family_name: &str,
        path: &Path,
    ) -> Result<(), SnapshotError> {
        let bytes = self.to_snapshot_bytes(cfg, family_name)?;
        std::fs::write(path, bytes)?;
        Ok(())
    }

    /// Load a store from `path` (see [`Self::from_snapshot_bytes`]).
    pub fn load_snapshot(
        path: &Path,
        cfg: &JigsawConfig,
        family: Arc<dyn MappingFamily>,
        expected_cols: usize,
    ) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path)?;
        Self::from_snapshot_bytes(&bytes, cfg, family, expected_cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{AffineFamily, PureScaleFamily};

    fn cfg() -> JigsawConfig {
        JigsawConfig::paper().with_fingerprint_len(4).with_n_samples(8)
    }

    fn fp(v: &[f64]) -> Fingerprint {
        Fingerprint::new(v.to_vec())
    }

    fn metrics(v: &[f64]) -> OutputMetrics {
        OutputMetrics::from_samples(v.to_vec())
    }

    fn populated() -> ShardedBasisStore {
        let c = cfg();
        let mut s = ShardedBasisStore::new(2, &c, Arc::new(AffineFamily));
        s.shard_mut(0).insert(fp(&[0.5, 1.5, -2.0, 7.25]), metrics(&[0.5, 1.5, -2.0, 7.25, 3.0]));
        s.shard_mut(0).insert(fp(&[1.0, 1.0, 4.0, 9.0]), metrics(&[1.0, 1.0, 4.0, 9.0]));
        s.shard_mut(1).insert(fp(&[3.0, 3.0, 3.0, 3.0]), metrics(&[3.0; 6]));
        s
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let c = cfg();
        let s = populated();
        let bytes = s.to_snapshot_bytes(&c, "affine").unwrap();
        let loaded =
            ShardedBasisStore::from_snapshot_bytes(&bytes, &c, Arc::new(AffineFamily), 2).unwrap();
        assert_eq!(loaded.bases_per_column(), s.bases_per_column());
        for col in 0..2 {
            for (a, b) in s.shard(col).bases().iter().zip(loaded.shard(col).bases()) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.fingerprint.entries(), b.fingerprint.entries());
                assert_eq!(a.metrics.samples(), b.metrics.samples());
                assert_eq!(a.metrics.expectation().to_bits(), b.metrics.expectation().to_bits());
            }
        }
        // Save → load → save is byte-identical.
        assert_eq!(loaded.to_snapshot_bytes(&c, "affine").unwrap(), bytes);
    }

    #[test]
    fn loaded_store_matches_like_the_original() {
        let c = cfg();
        let s = populated();
        let bytes = s.to_snapshot_bytes(&c, "affine").unwrap();
        let mut loaded =
            ShardedBasisStore::from_snapshot_bytes(&bytes, &c, Arc::new(AffineFamily), 2).unwrap();
        // An affine image of shard 0's first basis must resolve to it.
        let probe = fp(&[2.0, 4.0, -3.0, 15.5]); // 2x + 1
        let (id, m) = loaded.shard_mut(0).find_match(&probe).expect("hit");
        assert_eq!(id.0, 0);
        assert!((m.alpha - 2.0).abs() < 1e-9);
        assert!((m.beta - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_store_roundtrips() {
        let c = cfg();
        let s = ShardedBasisStore::new(3, &c, Arc::new(AffineFamily));
        let bytes = s.to_snapshot_bytes(&c, "affine").unwrap();
        let loaded =
            ShardedBasisStore::from_snapshot_bytes(&bytes, &c, Arc::new(AffineFamily), 3).unwrap();
        assert_eq!(loaded.bases_per_column(), vec![0, 0, 0]);
    }

    #[test]
    fn staged_store_refuses_to_save() {
        let c = cfg();
        let mut s = ShardedBasisStore::new(1, &c, Arc::new(AffineFamily));
        s.shard_mut(0).stage(fp(&[1.0, 2.0, 3.0, 4.0]));
        assert!(matches!(
            s.to_snapshot_bytes(&c, "affine"),
            Err(SnapshotError::StagedBases { staged: 1 })
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let c = cfg();
        let mut bytes = populated().to_snapshot_bytes(&c, "affine").unwrap();
        bytes[0] ^= 0xFF;
        let r = ShardedBasisStore::from_snapshot_bytes(&bytes, &c, Arc::new(AffineFamily), 2);
        assert!(matches!(r, Err(SnapshotError::BadMagic)));
    }

    #[test]
    fn wrong_version_rejected() {
        let c = cfg();
        let mut bytes = populated().to_snapshot_bytes(&c, "affine").unwrap();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        let r = ShardedBasisStore::from_snapshot_bytes(&bytes, &c, Arc::new(AffineFamily), 2);
        assert!(matches!(r, Err(SnapshotError::UnsupportedVersion { found: 99, expected: 1 })));
    }

    #[test]
    fn config_and_family_changes_invalidate() {
        let c = cfg();
        let bytes = populated().to_snapshot_bytes(&c, "affine").unwrap();
        // Different tolerance.
        let other = c.clone().with_tolerance(1e-6);
        let r = ShardedBasisStore::from_snapshot_bytes(&bytes, &other, Arc::new(AffineFamily), 2);
        assert!(matches!(r, Err(SnapshotError::ConfigMismatch { .. })));
        // Different mapping family (name differs).
        let r = ShardedBasisStore::from_snapshot_bytes(&bytes, &c, Arc::new(PureScaleFamily), 2);
        assert!(matches!(r, Err(SnapshotError::ConfigMismatch { .. })));
        // Different index strategy.
        let other = c.clone().with_index(IndexStrategy::SortedSid);
        let r = ShardedBasisStore::from_snapshot_bytes(&bytes, &other, Arc::new(AffineFamily), 2);
        assert!(matches!(r, Err(SnapshotError::ConfigMismatch { .. })));
        // Performance knobs do NOT invalidate.
        let same = c.clone().with_threads(8).with_wave_size(64);
        assert!(ShardedBasisStore::from_snapshot_bytes(&bytes, &same, Arc::new(AffineFamily), 2)
            .is_ok());
    }

    #[test]
    fn column_count_mismatch_rejected() {
        let c = cfg();
        let bytes = populated().to_snapshot_bytes(&c, "affine").unwrap();
        let r = ShardedBasisStore::from_snapshot_bytes(&bytes, &c, Arc::new(AffineFamily), 3);
        assert!(matches!(r, Err(SnapshotError::ColumnCountMismatch { found: 2, expected: 3 })));
    }

    #[test]
    fn truncation_rejected_at_every_length() {
        let c = cfg();
        let bytes = populated().to_snapshot_bytes(&c, "affine").unwrap();
        for cut in 0..bytes.len() {
            let r = ShardedBasisStore::from_snapshot_bytes(
                &bytes[..cut],
                &c,
                Arc::new(AffineFamily),
                2,
            );
            assert!(r.is_err(), "prefix of {cut} bytes must not load");
        }
    }

    #[test]
    fn payload_bit_flip_fails_checksum() {
        let c = cfg();
        let bytes = populated().to_snapshot_bytes(&c, "affine").unwrap();
        // Flip one bit inside the first shard's payload (header is 24 bytes,
        // then 8 bytes of payload length).
        let mut corrupted = bytes.clone();
        corrupted[24 + 8 + 6] ^= 0x10;
        let r = ShardedBasisStore::from_snapshot_bytes(&corrupted, &c, Arc::new(AffineFamily), 2);
        assert!(matches!(r, Err(SnapshotError::ChecksumMismatch { shard: 0 })));
    }

    #[test]
    fn crafted_huge_length_rejected_before_allocation() {
        // A forged snapshot (valid magic/version/config/checksum) declaring
        // a u32::MAX-element fingerprint must fail as Truncated, not size a
        // multi-gigabyte Vec from the untrusted length field.
        let c = cfg();
        let mut payload = Vec::new();
        put_u32(&mut payload, 1); // one basis
        put_u32(&mut payload, u32::MAX); // fp_len far beyond the payload
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        put_u32(&mut bytes, FORMAT_VERSION);
        put_u64(&mut bytes, config_fingerprint(&c, "affine"));
        put_u32(&mut bytes, 1);
        put_u64(&mut bytes, payload.len() as u64);
        bytes.extend_from_slice(&payload);
        put_u64(&mut bytes, fnv1a(FNV_OFFSET, &payload));
        let r = ShardedBasisStore::from_snapshot_bytes(&bytes, &c, Arc::new(AffineFamily), 1);
        assert!(matches!(r, Err(SnapshotError::Truncated)));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let c = cfg();
        let mut bytes = populated().to_snapshot_bytes(&c, "affine").unwrap();
        bytes.push(0);
        let r = ShardedBasisStore::from_snapshot_bytes(&bytes, &c, Arc::new(AffineFamily), 2);
        assert!(matches!(r, Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn file_save_load_roundtrip() {
        let c = cfg();
        let s = populated();
        let path =
            std::env::temp_dir().join(format!("jigsaw-snap-test-{}.bin", std::process::id()));
        s.save_snapshot(&c, "affine", &path).unwrap();
        let loaded =
            ShardedBasisStore::load_snapshot(&path, &c, Arc::new(AffineFamily), 2).unwrap();
        assert_eq!(loaded.bases_per_column(), s.bases_per_column());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let c = cfg();
        let r = ShardedBasisStore::load_snapshot(
            Path::new("/nonexistent/jigsaw.snap"),
            &c,
            Arc::new(AffineFamily),
            1,
        );
        assert!(matches!(r, Err(SnapshotError::Io(_))));
    }

    #[test]
    fn config_fingerprint_sensitivity() {
        let c = cfg();
        let base = config_fingerprint(&c, "affine");
        assert_eq!(base, config_fingerprint(&c.clone().with_threads(8), "affine"));
        assert_eq!(base, config_fingerprint(&c.clone().with_wave_size(512), "affine"));
        assert_ne!(base, config_fingerprint(&c.clone().with_fingerprint_len(3), "affine"));
        assert_ne!(base, config_fingerprint(&c.clone().with_n_samples(16), "affine"));
        assert_ne!(base, config_fingerprint(&c.clone().with_tolerance(1e-5), "affine"));
        assert_ne!(base, config_fingerprint(&c.clone().with_index(IndexStrategy::Array), "affine"));
        assert_ne!(base, config_fingerprint(&c, "identity"));
    }

    #[test]
    fn error_display_is_informative() {
        assert!(SnapshotError::BadMagic.to_string().contains("magic"));
        assert!(SnapshotError::Truncated.to_string().contains("truncated"));
        assert!(SnapshotError::UnsupportedVersion { found: 9, expected: 1 }
            .to_string()
            .contains("version 9"));
        assert!(SnapshotError::ChecksumMismatch { shard: 3 }.to_string().contains("shard 3"));
        assert!(SnapshotError::StagedBases { staged: 2 }.to_string().contains("staged"));
    }
}
