//! Shared warm basis stores and the cross-session store registry.
//!
//! Jigsaw's economy is fingerprint-level reuse of Monte Carlo work. PR 4's
//! snapshots stretched that reuse across *process restarts*; this module
//! stretches it across *users of one process*: a [`SharedBasisStore`] is a
//! cheaply-cloneable handle to one in-memory [`ShardedBasisStore`] that any
//! number of sweeps and [`crate::interactive::InteractiveSession`]s can
//! attach to concurrently, so the Nth client's what-if queries resolve
//! against bases the first client paid for.
//!
//! The [`StoreRegistry`] maps a [`StoreKey`] — a caller-defined scope (for
//! the session server: catalog plus compiled-scenario identity) and the
//! basis-identity [`config_fingerprint`](crate::basis::config_fingerprint)
//! — to the one shared store for that key. Two sessions whose keys agree
//! build byte-compatible bases by construction (the fingerprint covers
//! every knob that affects basis identity), so sharing is always sound.
//!
//! ## Locking and determinism
//!
//! The store sits behind one `RwLock`: estimates take read locks, basis
//! insertion / refinement / sweeps take write locks, and interactive
//! sessions keep Monte Carlo world evaluation *outside* any lock. Which
//! bases exist depends only on which work was done, not on interleaving —
//! a matched basis yields the same mapped metrics no matter which client
//! created it — so concurrent clients never diverge on values; only
//! *telemetry attribution* (who paid, who rode warm) depends on arrival
//! order. The one deliberate exception: a full *sweep* holds the write
//! lock for its whole run. That serializes every other client of the
//! scenario behind it, and that serialization is load-bearing — it is what
//! makes a sweep's resolve sequence independent of session interleaving
//! (the bit-identity guarantee) and the second concurrent sweep of a
//! scenario all warm hits. Finer-grained sweep locking (per-wave windows)
//! is future work.
//!
//! ## Generations
//!
//! Replacing the store wholesale (the server's `LOAD` command) invalidates
//! every `BasisId` handed out before it. [`SharedBasisStore::replace`]
//! bumps a generation counter; long-lived attachments (interactive
//! sessions) compare generations and drop their cached basis links instead
//! of dereferencing stale ids.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

use crate::basis::snapshot::SnapshotError;
use crate::basis::ShardedBasisStore;
use crate::config::JigsawConfig;
use crate::mapping::MappingFamily;

/// Handles to the shared-store global instruments (see `jigsaw_obs`);
/// registered once, lock-free to update, purely observational.
struct StoreObs {
    replacements: jigsaw_obs::Counter,
    stores_created: jigsaw_obs::Counter,
    snapshot_save_us: jigsaw_obs::Histogram,
    snapshot_save_bytes: jigsaw_obs::Histogram,
}

fn store_obs() -> &'static StoreObs {
    static OBS: OnceLock<StoreObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let g = jigsaw_obs::global();
        StoreObs {
            replacements: g.counter("jigsaw_store_replacements_total", &[]),
            stores_created: g.counter("jigsaw_store_created_total", &[]),
            snapshot_save_us: g.histogram("jigsaw_store_snapshot_save_us", &[]),
            snapshot_save_bytes: g.histogram("jigsaw_store_snapshot_save_bytes", &[]),
        }
    })
}

/// Refresh the per-column committed-basis gauges from `store`. Called on
/// the tail of every mutating access; aggregated over all shared stores in
/// the process (per-scenario splits live in the `STATS`/`SWEPT` frames).
fn publish_bases(store: &ShardedBasisStore) {
    if !jigsaw_obs::enabled() {
        return;
    }
    let g = jigsaw_obs::global();
    for (c, n) in store.bases_per_column().into_iter().enumerate() {
        g.gauge("jigsaw_store_bases", &[("col", &c.to_string())]).set(n as i64);
    }
}

/// Interior of a [`SharedBasisStore`]: the store plus its replacement
/// generation.
struct Inner {
    generation: u64,
    store: ShardedBasisStore,
}

/// A cheaply-cloneable handle to one warm [`ShardedBasisStore`] shared by
/// any number of sweeps and interactive sessions.
pub struct SharedBasisStore {
    inner: Arc<RwLock<Inner>>,
}

impl Clone for SharedBasisStore {
    fn clone(&self) -> Self {
        SharedBasisStore { inner: Arc::clone(&self.inner) }
    }
}

impl std::fmt::Debug for SharedBasisStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.read();
        f.debug_struct("SharedBasisStore")
            .field("generation", &inner.generation)
            .field("bases_per_column", &inner.store.bases_per_column())
            .field("handles", &Arc::strong_count(&self.inner))
            .finish()
    }
}

impl SharedBasisStore {
    /// A fresh (cold) shared store with one shard per output column.
    pub fn new(n_cols: usize, cfg: &JigsawConfig, family: Arc<dyn MappingFamily>) -> Self {
        Self::from_store(ShardedBasisStore::new(n_cols, cfg, family))
    }

    /// Wrap an existing store (e.g. one loaded from a snapshot) for sharing.
    pub fn from_store(store: ShardedBasisStore) -> Self {
        store_obs().stores_created.inc();
        SharedBasisStore { inner: Arc::new(RwLock::new(Inner { generation: 0, store })) }
    }

    /// Number of live handles to this store (sessions attached + registry).
    pub fn handles(&self) -> usize {
        Arc::strong_count(&self.inner)
    }

    /// The replacement generation: bumped by [`Self::replace`], never by
    /// ordinary inserts/refinements. Attachments use it to notice wholesale
    /// store swaps that invalidate their cached `BasisId`s.
    pub fn generation(&self) -> u64 {
        self.read().generation
    }

    /// Number of shards (output columns).
    pub fn n_shards(&self) -> usize {
        self.read().store.n_shards()
    }

    /// Basis count per column.
    pub fn bases_per_column(&self) -> Vec<usize> {
        self.read().store.bases_per_column()
    }

    /// Run `f` with shared (read-locked) access to the store.
    pub fn with_store<R>(&self, f: impl FnOnce(&ShardedBasisStore) -> R) -> R {
        f(&self.read().store)
    }

    /// Like [`Self::with_store`], but `f` also receives the generation
    /// observed **under the same lock acquisition** as the store reference.
    /// Holders of long-lived `BasisId`s must use this (not a separate
    /// [`Self::generation`] call, which races with [`Self::replace`]) to
    /// decide whether their cached ids still refer to this store.
    pub fn with_store_versioned<R>(&self, f: impl FnOnce(u64, &ShardedBasisStore) -> R) -> R {
        let inner = self.read();
        f(inner.generation, &inner.store)
    }

    /// Like [`Self::with_store_mut`], but with the generation observed
    /// under the same lock acquisition (see [`Self::with_store_versioned`]).
    pub fn with_store_mut_versioned<R>(
        &self,
        f: impl FnOnce(u64, &mut ShardedBasisStore) -> R,
    ) -> R {
        let mut inner = self.write();
        let generation = inner.generation;
        let out = f(generation, &mut inner.store);
        publish_bases(&inner.store);
        out
    }

    /// Run `f` with exclusive (write-locked) access to the store. Session
    /// bookkeeping (resolve/insert/refine) should keep world evaluation
    /// outside the closure; a full sweep deliberately runs inside it — see
    /// the module docs on why that serialization is load-bearing.
    pub fn with_store_mut<R>(&self, f: impl FnOnce(&mut ShardedBasisStore) -> R) -> R {
        let mut inner = self.write();
        let out = f(&mut inner.store);
        publish_bases(&inner.store);
        out
    }

    /// Replace the store wholesale (snapshot `LOAD`), returning the previous
    /// contents. Bumps the generation so attached sessions drop their now-
    /// dangling basis links instead of dereferencing them.
    pub fn replace(&self, store: ShardedBasisStore) -> ShardedBasisStore {
        let mut inner = self.write();
        inner.generation += 1;
        let old = std::mem::replace(&mut inner.store, store);
        store_obs().replacements.inc();
        publish_bases(&inner.store);
        jigsaw_obs::event!("store.replace", generation = inner.generation);
        old
    }

    /// Serialize the current contents (see
    /// [`ShardedBasisStore::to_snapshot_bytes`]) under a read lock.
    pub fn to_snapshot_bytes(
        &self,
        cfg: &JigsawConfig,
        family_name: &str,
    ) -> Result<Vec<u8>, SnapshotError> {
        let t0 = std::time::Instant::now();
        let bytes = self.read().store.to_snapshot_bytes(cfg, family_name)?;
        let obs = store_obs();
        obs.snapshot_save_us.record_duration(t0.elapsed());
        obs.snapshot_save_bytes.record(bytes.len() as u64);
        Ok(bytes)
    }

    /// Reclaim exclusive ownership of the store. Fails (returning the
    /// handle) while any other handle is alive.
    pub fn try_into_store(self) -> Result<ShardedBasisStore, SharedBasisStore> {
        match Arc::try_unwrap(self.inner) {
            Ok(lock) => Ok(lock.into_inner().expect("shared basis store lock poisoned").store),
            Err(inner) => Err(SharedBasisStore { inner }),
        }
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Inner> {
        self.inner.read().expect("shared basis store lock poisoned")
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, Inner> {
        self.inner.write().expect("shared basis store lock poisoned")
    }
}

/// Identity of one shared store in a [`StoreRegistry`].
///
/// `scope` names *what* the bases describe (for the session server: the
/// catalog name plus a hash of the compiled scenario, since bases are only
/// meaningful for the simulation that produced them); `config_fp` is the
/// basis-identity [`config_fingerprint`](crate::basis::config_fingerprint),
/// so sessions under different matching regimes never share.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StoreKey {
    /// Caller-defined scope (catalog + scenario identity).
    pub scope: String,
    /// Basis-identity config fingerprint.
    pub config_fp: u64,
}

/// A concurrent map from [`StoreKey`] to the one [`SharedBasisStore`] for
/// that key — the server-side registry that lets every client of a scenario
/// ride the same warm store.
#[derive(Default)]
pub struct StoreRegistry {
    entries: RwLock<HashMap<StoreKey, SharedBasisStore>>,
}

impl StoreRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The store for `key`, if one exists.
    pub fn get(&self, key: &StoreKey) -> Option<SharedBasisStore> {
        self.entries.read().expect("store registry lock poisoned").get(key).cloned()
    }

    /// The store for `key`, creating it with `init` on first use. Two
    /// concurrent callers with the same key always receive handles to the
    /// same store.
    pub fn get_or_create(
        &self,
        key: StoreKey,
        init: impl FnOnce() -> SharedBasisStore,
    ) -> SharedBasisStore {
        if let Some(found) = self.get(&key) {
            return found;
        }
        let mut entries = self.entries.write().expect("store registry lock poisoned");
        entries.entry(key).or_insert_with(init).clone()
    }

    /// Number of registered stores.
    pub fn len(&self) -> usize {
        self.entries.read().expect("store registry lock poisoned").len()
    }

    /// True when no store is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The registered keys (unordered).
    pub fn keys(&self) -> Vec<StoreKey> {
        self.entries.read().expect("store registry lock poisoned").keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::Fingerprint;
    use crate::mapping::AffineFamily;
    use jigsaw_pdb::OutputMetrics;

    fn cfg() -> JigsawConfig {
        JigsawConfig::paper().with_fingerprint_len(4).with_n_samples(8)
    }

    fn insert_basis(shared: &SharedBasisStore, col: usize, v: &[f64]) {
        shared.with_store_mut(|s| {
            s.shard_mut(col)
                .insert(Fingerprint::new(v.to_vec()), OutputMetrics::from_samples(v.to_vec()));
        });
    }

    #[test]
    fn clones_share_one_store() {
        let c = cfg();
        let a = SharedBasisStore::new(1, &c, Arc::new(AffineFamily));
        let b = a.clone();
        insert_basis(&a, 0, &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(b.bases_per_column(), vec![1], "clone must see the insert");
        assert_eq!(a.handles(), 2);
    }

    #[test]
    fn replace_bumps_generation_and_returns_old() {
        let c = cfg();
        let shared = SharedBasisStore::new(2, &c, Arc::new(AffineFamily));
        insert_basis(&shared, 0, &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(shared.generation(), 0);
        let old = shared.replace(ShardedBasisStore::new(2, &c, Arc::new(AffineFamily)));
        assert_eq!(old.bases_per_column(), vec![1, 0]);
        assert_eq!(shared.generation(), 1);
        assert_eq!(shared.bases_per_column(), vec![0, 0]);
    }

    #[test]
    fn inserts_do_not_bump_generation() {
        let c = cfg();
        let shared = SharedBasisStore::new(1, &c, Arc::new(AffineFamily));
        insert_basis(&shared, 0, &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(shared.generation(), 0);
    }

    #[test]
    fn try_into_store_needs_exclusivity() {
        let c = cfg();
        let a = SharedBasisStore::new(1, &c, Arc::new(AffineFamily));
        let b = a.clone();
        let a = match a.try_into_store() {
            Err(handle) => handle,
            Ok(_) => panic!("b is still alive; unwrap must fail"),
        };
        drop(b);
        match a.try_into_store() {
            Ok(store) => assert_eq!(store.n_shards(), 1),
            Err(_) => panic!("exclusive handle must unwrap"),
        }
    }

    #[test]
    fn snapshot_bytes_roundtrip_through_shared_handle() {
        let c = cfg();
        let shared = SharedBasisStore::new(1, &c, Arc::new(AffineFamily));
        insert_basis(&shared, 0, &[0.5, 1.5, 2.5, 3.5]);
        let bytes = shared.to_snapshot_bytes(&c, "affine").unwrap();
        let loaded =
            ShardedBasisStore::from_snapshot_bytes(&bytes, &c, Arc::new(AffineFamily), 1).unwrap();
        assert_eq!(loaded.bases_per_column(), vec![1]);
    }

    #[test]
    fn registry_shares_per_key_and_isolates_across_keys() {
        let c = cfg();
        let reg = StoreRegistry::new();
        let key = |scope: &str| StoreKey { scope: scope.into(), config_fp: 7 };
        let a =
            reg.get_or_create(key("s1"), || SharedBasisStore::new(1, &c, Arc::new(AffineFamily)));
        let b = reg.get_or_create(key("s1"), || panic!("must reuse the existing store"));
        insert_basis(&a, 0, &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(b.bases_per_column(), vec![1], "same key shares one store");
        let other =
            reg.get_or_create(key("s2"), || SharedBasisStore::new(1, &c, Arc::new(AffineFamily)));
        assert_eq!(other.bases_per_column(), vec![0], "different scope is cold");
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
        assert!(reg.get(&key("s3")).is_none());
        let mut scopes: Vec<String> = reg.keys().into_iter().map(|k| k.scope).collect();
        scopes.sort();
        assert_eq!(scopes, vec!["s1", "s2"]);
    }

    #[test]
    fn concurrent_attachments_land_every_insert() {
        let c = cfg();
        let shared = SharedBasisStore::new(1, &c, Arc::new(AffineFamily));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let handle = shared.clone();
                scope.spawn(move || {
                    // Distinct non-affine shapes so nothing matches anything.
                    let v = [0.0, 1.0, (t * t) as f64 + 2.0, (t * t * t) as f64 + 9.0];
                    insert_basis(&handle, 0, &v);
                });
            }
        });
        assert_eq!(shared.bases_per_column(), vec![4]);
    }
}
