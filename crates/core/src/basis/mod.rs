//! Basis distributions and the basis store.
//!
//! "During execution, Jigsaw incrementally maintains a set of basis
//! distributions. Each basis distribution is a tuple (θ_i, o_i), implying
//! that Jigsaw has already computed the output metrics o_i for some F(P_i)
//! with fingerprint θ_i." (paper §3.1)
//!
//! [`BasisStore::find_match`] is the paper's Algorithm 3 (`FindMatch`): the
//! index proposes candidates, the mapping family validates them, and the
//! first validated mapping wins.
//!
//! ## Wave execution split
//!
//! The batch-synchronous executor (`optimizer::executor`) splits the store's
//! lifecycle per wave into a **frozen resolve path** and a **batched commit
//! path**:
//!
//! * [`FrozenBasisView`] is an immutable snapshot handle: it answers
//!   `find_match` without mutating anything (candidate counting is returned,
//!   not accumulated), so it can be consulted from parallel workers.
//! * [`BasisStore::stage`] registers a new basis *fingerprint* the moment a
//!   miss is discovered — later points in the same wave can match against it
//!   — while its metrics stay pending until the completion simulations
//!   finish and [`BasisStore::commit_staged`] lands them, in enumeration
//!   order, at the wave barrier.
//!
//! Because candidates are proposed in deterministic (insertion) order and
//! staging happens in enumeration order, a wave replay is bit-identical to
//! the fully sequential point loop for any thread count.
//!
//! ## Cross-sweep persistence
//!
//! The [`snapshot`] module serializes committed shards to a versioned,
//! checksummed binary format so later sweeps and interactive sessions can
//! warm-start from a prior session's basis sets instead of rebuilding them
//! from scratch.
//!
//! ## In-process sharing
//!
//! The [`shared`] module wraps one store in a lock for concurrent use by
//! many sweeps and sessions ([`SharedBasisStore`]) and maps scenario
//! identities to their one warm store ([`StoreRegistry`]) — the substrate
//! of the session server's multi-client reuse.

pub mod shared;
pub mod snapshot;

pub use shared::{SharedBasisStore, StoreKey, StoreRegistry};
pub use snapshot::{config_fingerprint, content_hash64, SnapshotError, FORMAT_VERSION};

use std::sync::Arc;

use jigsaw_pdb::OutputMetrics;

use crate::config::{IndexStrategy, JigsawConfig};
use crate::fingerprint::Fingerprint;
use crate::index::{make_index, FingerprintIndex};
use crate::mapping::{AffineMap, MappingFamily};

/// Identifier of a basis distribution within a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BasisId(pub usize);

/// One memoized simulation: fingerprint plus computed output metrics.
#[derive(Debug, Clone)]
pub struct BasisDistribution {
    /// Store-local id.
    pub id: BasisId,
    /// The fingerprint `θ_i`.
    pub fingerprint: Fingerprint,
    /// The output metrics `o_i` (empty while the basis is only staged).
    pub metrics: OutputMetrics,
}

/// The incrementally-maintained set of basis distributions for one output
/// column of one simulation.
pub struct BasisStore {
    bases: Vec<BasisDistribution>,
    index: Box<dyn FingerprintIndex>,
    family: Arc<dyn MappingFamily>,
    tolerance: f64,
    /// Bases staged (fingerprint registered, metrics pending commit).
    staged: usize,
    /// Mapping validations attempted (candidate pairings tested) — the
    /// quantity indexing exists to minimize (Figures 10/11).
    pub pairings_tested: u64,
}

impl BasisStore {
    /// Create a store with the configured index strategy and mapping family.
    pub fn new(cfg: &JigsawConfig, family: Arc<dyn MappingFamily>) -> Self {
        Self::with_strategy(cfg.index, cfg.tolerance, family)
    }

    /// Convenience constructor with explicit strategy.
    pub fn with_strategy(
        strategy: IndexStrategy,
        tolerance: f64,
        family: Arc<dyn MappingFamily>,
    ) -> Self {
        BasisStore {
            bases: Vec::new(),
            index: make_index(strategy, tolerance),
            family,
            tolerance,
            staged: 0,
            pairings_tested: 0,
        }
    }

    /// Number of basis distributions (committed and staged).
    pub fn len(&self) -> usize {
        self.bases.len()
    }

    /// True when no basis has been recorded.
    pub fn is_empty(&self) -> bool {
        self.bases.is_empty()
    }

    /// Number of staged bases whose metrics are still pending.
    pub fn staged(&self) -> usize {
        self.staged
    }

    /// The bases (for reporting).
    pub fn bases(&self) -> &[BasisDistribution] {
        &self.bases
    }

    /// Fetch a basis by id.
    pub fn get(&self, id: BasisId) -> &BasisDistribution {
        &self.bases[id.0]
    }

    /// Fetch a basis by id, or `None` when the id is out of range — for
    /// holders of long-lived ids (interactive sessions on a shared store)
    /// whose store may have been replaced underneath them.
    pub fn try_get(&self, id: BasisId) -> Option<&BasisDistribution> {
        self.bases.get(id.0)
    }

    /// An immutable resolve view over the current contents.
    pub fn freeze(&self) -> FrozenBasisView<'_> {
        FrozenBasisView { store: self }
    }

    /// Algorithm 3: find a basis and mapping such that
    /// `M(basis.fingerprint) ≈ fp`. Accumulates `pairings_tested`.
    pub fn find_match(&mut self, fp: &Fingerprint) -> Option<(BasisId, AffineMap)> {
        let (hit, pairings) = self.freeze().find_match(fp);
        self.pairings_tested += pairings;
        hit
    }

    /// Record a new basis distribution (after a full simulation).
    pub fn insert(&mut self, fingerprint: Fingerprint, metrics: OutputMetrics) -> BasisId {
        let id = self.stage(fingerprint);
        self.commit_staged(id, metrics);
        id
    }

    /// Register a basis fingerprint immediately, with metrics pending.
    ///
    /// The fingerprint becomes matchable at once (so later points of the
    /// same wave reuse it exactly as the sequential loop would), but its
    /// metrics must not be read until [`Self::commit_staged`] lands them.
    pub fn stage(&mut self, fingerprint: Fingerprint) -> BasisId {
        let id = BasisId(self.bases.len());
        self.index.insert(id.0, &fingerprint);
        self.bases.push(BasisDistribution {
            id,
            fingerprint,
            metrics: OutputMetrics::from_samples(Vec::new()),
        });
        self.staged += 1;
        id
    }

    /// Land the metrics of a staged basis (the batched commit path; called
    /// in enumeration order at the wave barrier).
    pub fn commit_staged(&mut self, id: BasisId, metrics: OutputMetrics) {
        debug_assert!(self.staged > 0, "no staged basis to commit");
        debug_assert_eq!(self.bases[id.0].metrics.n(), 0, "basis {id:?} committed twice");
        self.bases[id.0].metrics = metrics;
        self.staged -= 1;
    }

    /// Resolve metrics for a fingerprint: reuse through a mapping when one
    /// exists. Returns `(metrics, Some(basis))` on reuse, `None` on miss.
    pub fn resolve(&mut self, fp: &Fingerprint) -> Option<(OutputMetrics, BasisId)> {
        let (id, m) = self.find_match(fp)?;
        Some((m.apply_metrics(&self.get(id).metrics), id))
    }

    /// Fold additional samples into a basis (interactive refinement).
    pub fn refine(&mut self, id: BasisId, samples: &[f64]) {
        self.bases[id.0].metrics.extend(samples);
    }
}

/// A read-only resolve view over a [`BasisStore`] — the frozen half of the
/// wave split. All lookups are side-effect free; the number of candidate
/// pairings tested is *returned* so the caller can fold it into telemetry
/// deterministically.
pub struct FrozenBasisView<'a> {
    store: &'a BasisStore,
}

impl FrozenBasisView<'_> {
    /// Number of bases visible to this view.
    pub fn len(&self) -> usize {
        self.store.bases.len()
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.store.bases.is_empty()
    }

    /// Fetch a basis by id.
    pub fn get(&self, id: BasisId) -> &BasisDistribution {
        self.store.get(id)
    }

    /// Algorithm 3 without side effects: the first candidate (in the
    /// index's deterministic proposal order) validated by the mapping
    /// family wins. Returns the hit and the number of pairings tested.
    pub fn find_match(&self, fp: &Fingerprint) -> (Option<(BasisId, AffineMap)>, u64) {
        let candidates = self.store.index.candidates(fp);
        let mut pairings = 0u64;
        for cid in candidates {
            pairings += 1;
            let basis = &self.store.bases[cid];
            if let Some(m) = self.store.family.find(&basis.fingerprint, fp, self.store.tolerance) {
                return (Some((basis.id, m)), pairings);
            }
        }
        (None, pairings)
    }

    /// Resolve mapped metrics for a fingerprint without mutating the store.
    /// The matched basis must be committed (metrics landed).
    pub fn resolve(&self, fp: &Fingerprint) -> (Option<(OutputMetrics, BasisId)>, u64) {
        let (hit, pairings) = self.find_match(fp);
        (hit.map(|(id, m)| (m.apply_metrics(&self.get(id).metrics), id)), pairings)
    }
}

/// Per-column basis shards for one simulation — output column `c` is shard
/// `c`. Columns never share bases (their output distributions are unrelated
/// random variables), so the sweep executor freezes, probes, and commits
/// each shard independently.
pub struct ShardedBasisStore {
    shards: Vec<BasisStore>,
}

impl ShardedBasisStore {
    /// One shard per output column, all with the same configuration.
    pub fn new(n_cols: usize, cfg: &JigsawConfig, family: Arc<dyn MappingFamily>) -> Self {
        ShardedBasisStore {
            shards: (0..n_cols).map(|_| BasisStore::new(cfg, family.clone())).collect(),
        }
    }

    /// Assemble from pre-built per-column stores (snapshot loading and
    /// interactive-session handoff).
    pub fn from_shards(shards: Vec<BasisStore>) -> Self {
        ShardedBasisStore { shards }
    }

    /// Decompose into the per-column stores (handoff to an
    /// [`crate::interactive::InteractiveSession`]).
    pub fn into_shards(self) -> Vec<BasisStore> {
        self.shards
    }

    /// Number of shards (output columns).
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shared access to a column's store.
    pub fn shard(&self, col: usize) -> &BasisStore {
        &self.shards[col]
    }

    /// Exclusive access to a column's store.
    pub fn shard_mut(&mut self, col: usize) -> &mut BasisStore {
        &mut self.shards[col]
    }

    /// Basis count per column (the `bases_per_column` telemetry vector).
    pub fn bases_per_column(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.len()).collect()
    }

    /// Total mapping validations attempted across all shards.
    pub fn pairings_total(&self) -> u64 {
        self.shards.iter().map(|s| s.pairings_tested).sum()
    }

    /// Total staged-but-uncommitted bases (must be zero at a wave barrier's
    /// end; asserted by the executor in debug builds).
    pub fn staged_total(&self) -> usize {
        self.shards.iter().map(|s| s.staged()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::AffineFamily;

    fn store(strategy: IndexStrategy) -> BasisStore {
        BasisStore::with_strategy(strategy, 1e-9, Arc::new(AffineFamily))
    }

    fn fp(v: &[f64]) -> Fingerprint {
        Fingerprint::new(v.to_vec())
    }

    fn metrics(v: &[f64]) -> OutputMetrics {
        OutputMetrics::from_samples(v.to_vec())
    }

    #[test]
    fn miss_then_hit() {
        let mut s = store(IndexStrategy::Normalization);
        let base_fp = fp(&[1.0, 2.0, 3.0, 1.5]);
        assert!(s.find_match(&base_fp).is_none());
        let id = s.insert(base_fp.clone(), metrics(&[1.0, 2.0, 3.0, 1.5]));
        // An affine image must match with the recovered map.
        let image = fp(&[3.0, 5.0, 7.0, 4.0]); // 2x + 1
        let (got, m) = s.find_match(&image).expect("hit");
        assert_eq!(got, id);
        assert!((m.alpha - 2.0).abs() < 1e-9);
        assert!((m.beta - 1.0).abs() < 1e-9);
    }

    #[test]
    fn resolve_maps_metrics() {
        let mut s = store(IndexStrategy::Array);
        s.insert(fp(&[0.0, 1.0, 2.0]), metrics(&[0.0, 1.0, 2.0, 0.5, 1.5]));
        let (m, _) = s.resolve(&fp(&[10.0, 12.0, 14.0])).expect("reuse");
        // 2x + 10 applied to mean 1.0 → 12.0.
        assert!((m.expectation() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn unrelated_shapes_accumulate_bases() {
        let mut s = store(IndexStrategy::Normalization);
        s.insert(fp(&[0.0, 1.0, 2.0, 3.0]), metrics(&[0.0]));
        assert!(s.find_match(&fp(&[0.0, 1.0, 4.0, 9.0])).is_none());
        s.insert(fp(&[0.0, 1.0, 4.0, 9.0]), metrics(&[0.0]));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn all_strategies_agree_on_affine_hits() {
        let base = fp(&[0.3, 1.7, 0.9, 2.4, -0.5]);
        let image = fp([0.3f64, 1.7, 0.9, 2.4, -0.5].map(|x| -1.5 * x + 2.0).as_ref());
        for strat in [IndexStrategy::Array, IndexStrategy::Normalization, IndexStrategy::SortedSid]
        {
            let mut s = store(strat);
            let id = s.insert(base.clone(), metrics(&[1.0, 2.0]));
            let (got, _) =
                s.find_match(&image).unwrap_or_else(|| panic!("{strat:?} missed an affine image"));
            assert_eq!(got, id);
        }
    }

    #[test]
    fn pairings_tested_reflects_index_quality() {
        // With 20 non-mappable bases, the array index tests every pairing;
        // normalization tests none (different buckets).
        let shapes: Vec<Fingerprint> = (0..20)
            .map(|c| {
                fp(&(0..6)
                    .map(|k| {
                        let z = k as f64 - 2.5;
                        z + c as f64 * z * z
                    })
                    .collect::<Vec<_>>())
            })
            .collect();
        let probe = fp(&(0..6)
            .map(|k| {
                let z = k as f64 - 2.5;
                z + 99.0 * z * z * z // unrelated shape
            })
            .collect::<Vec<_>>());

        let mut arr = store(IndexStrategy::Array);
        let mut norm = store(IndexStrategy::Normalization);
        for (i, s) in shapes.iter().enumerate() {
            arr.insert(s.clone(), metrics(&[i as f64]));
            norm.insert(s.clone(), metrics(&[i as f64]));
        }
        assert!(arr.find_match(&probe).is_none());
        assert!(norm.find_match(&probe).is_none());
        assert_eq!(arr.pairings_tested, 20);
        assert_eq!(norm.pairings_tested, 0);
    }

    #[test]
    fn refine_grows_basis_metrics() {
        let mut s = store(IndexStrategy::Array);
        let id = s.insert(fp(&[1.0, 2.0]), metrics(&[1.0, 2.0]));
        s.refine(id, &[3.0, 4.0]);
        assert_eq!(s.get(id).metrics.n(), 4);
    }

    #[test]
    fn frozen_view_matches_without_mutation() {
        let mut s = store(IndexStrategy::Normalization);
        let id = s.insert(fp(&[0.0, 1.0, 2.0]), metrics(&[0.0, 1.0, 2.0]));
        let before = s.pairings_tested;
        {
            let view = s.freeze();
            let (hit, pairings) = view.find_match(&fp(&[1.0, 3.0, 5.0]));
            assert_eq!(hit.map(|(i, _)| i), Some(id));
            assert_eq!(pairings, 1);
            let (resolved, _) = view.resolve(&fp(&[1.0, 3.0, 5.0]));
            let (m, _) = resolved.expect("hit");
            assert!((m.expectation() - 3.0).abs() < 1e-9); // 2x+1 over mean 1
        }
        assert_eq!(s.pairings_tested, before, "frozen view must not mutate counters");
    }

    #[test]
    fn staged_basis_is_matchable_before_commit() {
        let mut s = store(IndexStrategy::Normalization);
        let id = s.stage(fp(&[0.0, 1.0, 2.0]));
        assert_eq!(s.staged(), 1);
        // The fingerprint participates in matching immediately…
        let (got, map) = s.find_match(&fp(&[0.0, 2.0, 4.0])).expect("staged fp must match");
        assert_eq!(got, id);
        assert!((map.alpha - 2.0).abs() < 1e-12);
        // …and the metrics land later, in commit order.
        s.commit_staged(id, metrics(&[0.0, 1.0, 2.0, 1.0]));
        assert_eq!(s.staged(), 0);
        assert_eq!(s.get(id).metrics.n(), 4);
    }

    #[test]
    fn stage_commit_equals_insert() {
        let mut a = store(IndexStrategy::SortedSid);
        let mut b = store(IndexStrategy::SortedSid);
        let id_a = a.insert(fp(&[1.0, 2.0, 4.0]), metrics(&[7.0, 8.0]));
        let id_b = b.stage(fp(&[1.0, 2.0, 4.0]));
        b.commit_staged(id_b, metrics(&[7.0, 8.0]));
        assert_eq!(id_a, id_b);
        let probe = fp(&[2.0, 4.0, 8.0]);
        assert_eq!(
            a.find_match(&probe).map(|(i, _)| i),
            b.find_match(&probe).map(|(i, _)| i),
            "staged-then-committed store must behave like direct insert"
        );
    }

    #[test]
    fn sharded_store_tracks_per_column_state() {
        let cfg = JigsawConfig::paper();
        let mut shards = ShardedBasisStore::new(2, &cfg, Arc::new(AffineFamily));
        assert_eq!(shards.n_shards(), 2);
        shards.shard_mut(0).insert(fp(&[0.0, 1.0]), metrics(&[0.0]));
        let staged = shards.shard_mut(1).stage(fp(&[5.0, 6.0, 9.0]));
        assert_eq!(shards.bases_per_column(), vec![1, 1]);
        assert_eq!(shards.staged_total(), 1);
        shards.shard_mut(1).commit_staged(staged, metrics(&[1.0]));
        assert_eq!(shards.staged_total(), 0);
        assert!(shards.pairings_total() <= 2);
    }
}
