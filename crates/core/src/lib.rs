//! # jigsaw-core — fingerprint-accelerated optimization over uncertain data
//!
//! The primary contribution of *"Jigsaw: Efficient Optimization Over
//! Uncertain Enterprise Data"* (Kennedy & Nath, SIGMOD 2011): treat the
//! entire Monte Carlo simulation at a parameter point as a stochastic
//! black-box function, summarize it by its **fingerprint** — its outputs
//! under a fixed global seed vector — and reuse work across parameter
//! points (and Markov-chain steps) whenever fingerprints are related by a
//! closed-form mapping function.
//!
//! * [`fingerprint`] — fingerprints over the global seed set (§3.1);
//! * [`mapping`] — mapping functions, `FindLinearMapping` (Algorithm 2),
//!   composition algebra for symbolic post-processing (§6.2);
//! * [`index`] — candidate lookup: array scan, normalization, sorted-SID
//!   (§3.2);
//! * [`basis`] — the basis-distribution store and `FindMatch`
//!   (Algorithm 3);
//! * [`optimizer`] — the batch sweep (Figure 3) and the `OPTIMIZE`
//!   selector;
//! * [`markov`] — Markov-jump evaluation and estimator synthesis
//!   (§4, Algorithm 4);
//! * [`interactive`] — the online what-if event loop (§5, Algorithm 5) and
//!   `GRAPH` rendering.

#![warn(missing_docs)]

pub mod basis;
pub mod config;
pub mod fingerprint;
pub mod index;
pub mod interactive;
pub mod mapping;
pub mod markov;
pub mod optimizer;
pub mod telemetry;

pub use basis::{
    config_fingerprint, BasisDistribution, BasisId, BasisStore, FrozenBasisView, ShardedBasisStore,
    SharedBasisStore, SnapshotError, StoreKey, StoreRegistry,
};
pub use config::{IndexStrategy, JigsawConfig};
pub use fingerprint::Fingerprint;
pub use interactive::{InteractiveSession, SessionConfig};
pub use mapping::{AffineFamily, AffineMap, IdentityFamily, MappingFamily, PureScaleFamily};
pub use markov::{BasisRetention, MarkovJumpConfig, MarkovJumpResult, MarkovJumpRunner};
pub use optimizer::{
    OptimizeGoal, PersistentPool, PointResult, ScopedPool, SweepResult, SweepRunner, WorkerPool,
};
pub use telemetry::{MarkovStats, PhaseTimings, SweepCounters, SweepStats, WaveReuse};
