//! The batch-synchronous parallel sweep executor.
//!
//! The parameter space is processed in deterministic **waves**. Each wave
//! runs four phases:
//!
//! 1. **Fingerprint** (parallel) — worlds `0..m` are evaluated for every
//!    point of the wave. World `k` always runs under the global seed `σ_k`,
//!    so each evaluation is a pure function of `(point, k)` and the phase is
//!    embarrassingly parallel.
//! 2. **Resolve** (sequential, at the barrier) — walking the wave in
//!    enumeration order, each column's fingerprint is matched against its
//!    [`BasisStore`] shard. Misses *stage* a new basis immediately
//!    (fingerprint registered, metrics pending), so later points of the
//!    same wave match against it exactly as the sequential point loop
//!    would. This phase touches no simulation worlds; it is cheap O(m)
//!    float work per candidate.
//! 3. **Completion** (parallel) — points with at least one missed column
//!    evaluate worlds `m..n`. Jobs are split into world chunks so a handful
//!    of misses still saturates the thread budget; chunks stitch back in
//!    window order, which composes bit-identically (worlds are
//!    seed-addressed).
//! 4. **Commit** (sequential, at the barrier) — in enumeration order,
//!    missed columns assemble their `0..n` sample vectors, land their
//!    staged metrics, and reused columns map their matched basis's
//!    (by-now-committed) metrics.
//!
//! Because phases 2 and 4 replay the exact decision sequence of the
//! sequential loop — same store contents at every probe, same candidate
//! order (see [`crate::index::FingerprintIndex::candidates`]'s ordering
//! contract), same commit order — the sweep result, the basis set, and the
//! telemetry counters are **bit-identical for any thread count and any wave
//! size**. Threads and waves are pure performance knobs.
//!
//! ## Warm starts
//!
//! With [`JigsawConfig::basis_load`] set, the sweep begins from a
//! snapshot's committed bases instead of an empty store
//! ([`crate::basis::snapshot`]); resolves against loaded bases are counted
//! as `warm_hits`, distinct from intra-sweep `reused`. With
//! [`JigsawConfig::basis_save`] set, the committed store is re-saved after
//! the final wave barrier. A warm-started sweep over the same scenario
//! produces bit-identical results and final basis sets to its cold
//! counterpart — only the cost counters (worlds evaluated, full
//! simulations) shrink.
//!
//! ## Sketch-then-refine
//!
//! With [`JigsawConfig::sketch_budget`] set, [`execute_sketch_refine`]
//! wraps the wave loop in two passes: a coarse sweep of the whole space at
//! the sketch budget, then a full-budget re-run of only the surviving
//! frontier (see [`sketch_frontier`] for the pruning rule). Both passes
//! are the same wave machinery, so the two-phase sweep inherits the
//! bit-identity guarantee wholesale.
//!
//! [`BasisStore`]: crate::basis::BasisStore

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use jigsaw_obs::span;
use jigsaw_pdb::{OutputMetrics, Result, Simulation, WorldBatch};

use crate::basis::{BasisId, ShardedBasisStore};
use crate::config::JigsawConfig;
use crate::fingerprint::Fingerprint;
use crate::mapping::{AffineMap, MappingFamily};
use crate::optimizer::selector::sketch_frontier;
use crate::optimizer::{PointResult, SweepResult};
use crate::telemetry::{SweepStats, WaveReuse};

/// Executes batches of independent tasks under a thread budget — the seam
/// between the executor's *scheduling* (which is fixed and deterministic)
/// and its *thread provisioning* (which is pluggable).
///
/// The executor hands a pool `n_tasks` independent jobs per parallel phase;
/// the pool must invoke `run(t)` exactly once for every `t in 0..n_tasks`,
/// from at most `threads` concurrent workers. Which worker runs which task
/// — and in what order — is entirely the pool's business: callers stitch
/// results back by task index, so any faithful pool produces bit-identical
/// output. The default [`ScopedPool`] spawns scoped threads per phase; a
/// long-lived server can substitute a persistent pool that keeps workers
/// alive across waves without touching the executor.
pub trait WorkerPool: Send + Sync {
    /// Run `run(t)` for every `t in 0..n_tasks`, using at most `threads`
    /// concurrent workers. Must not return before every task has run.
    fn scatter(&self, threads: usize, n_tasks: usize, run: &(dyn Fn(usize) + Sync));
}

/// The default pool: scoped worker threads spawned per phase, pulling task
/// indices off a shared cursor (load-balanced, amortized by large waves).
#[derive(Debug, Clone, Copy, Default)]
pub struct ScopedPool;

impl WorkerPool for ScopedPool {
    fn scatter(&self, threads: usize, n_tasks: usize, run: &(dyn Fn(usize) + Sync)) {
        if threads <= 1 || n_tasks <= 1 {
            for t in 0..n_tasks {
                run(t);
            }
            return;
        }
        let cursor = AtomicUsize::new(0);
        let workers = threads.min(n_tasks);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let cursor = &cursor;
                scope.spawn(move || loop {
                    let t = cursor.fetch_add(1, Ordering::Relaxed);
                    if t >= n_tasks {
                        break;
                    }
                    run(t);
                });
            }
        });
    }
}

/// Handles to the executor's global instruments, registered once; every
/// update afterwards is lock-free (see `jigsaw_obs`). Purely
/// observational: nothing here feeds back into scheduling or results.
struct ExecObs {
    waves: jigsaw_obs::Counter,
    points: jigsaw_obs::Counter,
    worlds: jigsaw_obs::Counter,
    fingerprint_us: jigsaw_obs::Histogram,
    resolve_us: jigsaw_obs::Histogram,
    completion_us: jigsaw_obs::Histogram,
    commit_us: jigsaw_obs::Histogram,
}

fn exec_obs() -> &'static ExecObs {
    static OBS: OnceLock<ExecObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let g = jigsaw_obs::global();
        let phase = |p| g.histogram("jigsaw_exec_phase_us", &[("phase", p)]);
        ExecObs {
            waves: g.counter("jigsaw_exec_waves_total", &[]),
            points: g.counter("jigsaw_exec_points_total", &[]),
            worlds: g.counter("jigsaw_exec_worlds_total", &[]),
            fingerprint_us: phase("fingerprint"),
            resolve_us: phase("resolve"),
            completion_us: phase("completion"),
            commit_us: phase("commit"),
        }
    })
}

/// How one column of one wave slot obtains its metrics at commit time.
enum ColPlan {
    /// Mapped reuse from a matched basis (possibly staged earlier in the
    /// same wave; committed by the time this slot commits).
    Reuse(BasisId, AffineMap),
    /// Fresh metrics from this point's own `0..n` samples.
    Fresh(FreshSource),
}

/// Where a fresh column's `0..m` sample prefix lives.
enum FreshSource {
    /// In the staged basis's fingerprint (normal reuse-enabled operation).
    Staged(BasisId),
    /// Carried inline (reuse disabled: nothing is staged).
    Inline(Vec<f64>),
}

/// One point of the current wave, between resolve and commit.
struct Slot {
    point_idx: usize,
    point: Vec<f64>,
    cols: Vec<ColPlan>,
    needs_tail: bool,
}

/// A world-evaluation job: `count` worlds from `start` at `point`.
struct EvalJob<'a> {
    point: &'a [f64],
    start: usize,
    count: usize,
}

/// One job's evaluated worlds as a columnar [`WorldBatch`]. Worker panics
/// surface here as [`jigsaw_pdb::PdbError::WorkerPanic`] — they are caught
/// at the evaluation boundary, never unwound through the pool.
type JobOutput = Result<WorldBatch>;

/// Fingerprint heads (worlds `0..m`) cached per `point_idx`, carried from
/// a sketch pass to its refine pass. Worlds are seed-addressed, so a
/// cached head is byte-identical to what re-evaluation would produce — the
/// refine pass skips those evaluations without perturbing any result bit.
pub(crate) type HeadCache = Vec<Option<WorldBatch>>;

/// Point-selection and head-cache plumbing for one executor pass.
#[derive(Default)]
struct PassPlan<'a> {
    /// Point indices to sweep, ascending; `None` = the whole space.
    subset: Option<&'a [usize]>,
    /// Fingerprint heads from an earlier pass, indexed by `point_idx`;
    /// cached points skip phase-1 evaluation.
    head_cache: Option<&'a HeadCache>,
    /// Collect this pass's fingerprint heads for a later pass.
    export_heads: Option<&'a mut HeadCache>,
}

/// The batch-synchronous wave executor: sweep `sim`'s whole parameter space
/// against an existing store under `pool`'s thread provisioning.
///
/// Bases already present when the sweep starts count resolves as
/// `warm_hits` (exactly as snapshot-loaded bases do in
/// [`crate::optimizer::SweepRunner::run`], which owns the snapshot
/// load/save path around this function);
/// bases created by this sweep count as intra-sweep `reused`. The store is
/// fully committed on return (the wave-barrier invariant), so the caller
/// may snapshot it immediately. (No mapping family is taken: basis identity
/// is pinned by the family the store was created with.)
pub(crate) fn execute(
    cfg: &JigsawConfig,
    disable_reuse: bool,
    sim: &dyn Simulation,
    stores: &mut ShardedBasisStore,
    pool: &dyn WorkerPool,
) -> Result<SweepResult> {
    execute_pass(cfg, disable_reuse, sim, stores, pool, PassPlan::default())
}

/// One executor pass over `plan.subset` (default: the whole space) — the
/// wave loop shared by exhaustive sweeps and both halves of a
/// sketch-then-refine sweep.
fn execute_pass(
    cfg: &JigsawConfig,
    disable_reuse: bool,
    sim: &dyn Simulation,
    stores: &mut ShardedBasisStore,
    pool: &dyn WorkerPool,
    mut plan: PassPlan<'_>,
) -> Result<SweepResult> {
    cfg.validate();
    let space = sim.space();
    let n_cols = sim.columns().len();
    assert_eq!(stores.n_shards(), n_cols, "store must have one shard per output column");
    let m = cfg.fingerprint_len;
    let n = cfg.n_samples;
    let threads = cfg.effective_threads();
    let wave_size = cfg.effective_wave_size().max(1);
    let start = Instant::now();

    let owned_order: Vec<usize>;
    let order: &[usize] = match plan.subset {
        Some(subset) => subset,
        None => {
            owned_order = (0..space.len()).collect();
            &owned_order
        }
    };
    let obs = exec_obs();
    let preloaded = stores.bases_per_column();
    let total = order.len();
    let mut points: Vec<PointResult> = Vec::with_capacity(total);
    let mut stats = SweepStats { threads, ..Default::default() };

    let mut wave_start = 0usize;
    while wave_start < total {
        let wave_len = wave_size.min(total - wave_start);
        stats.waves += 1;

        // Phase 1 — fingerprints for the whole wave, in parallel. Points
        // with a cached head (refine pass over sketch survivors) skip the
        // evaluation: worlds are seed-addressed, so the cached bytes are
        // exactly what re-running worlds `0..m` would produce.
        let t0 = Instant::now();
        let span_fp = span!("wave.fingerprint", wave = stats.waves, points = wave_len);
        let wave_idx = &order[wave_start..wave_start + wave_len];
        let wave_points: Vec<Vec<f64>> = wave_idx.iter().map(|&i| space.point_at(i)).collect();
        let mut heads: Vec<Option<JobOutput>> = Vec::with_capacity(wave_len);
        heads.resize_with(wave_len, || None);
        let mut fresh: Vec<usize> = Vec::with_capacity(wave_len);
        for (offset, &pi) in wave_idx.iter().enumerate() {
            match plan.head_cache.and_then(|cache| cache[pi].as_ref()) {
                Some(head) => heads[offset] = Some(Ok(head.clone())),
                None => fresh.push(offset),
            }
        }
        let fp_jobs: Vec<EvalJob<'_>> = fresh
            .iter()
            .map(|&offset| EvalJob { point: &wave_points[offset], start: 0, count: m })
            .collect();
        let evaluated = run_jobs(sim, &fp_jobs, threads, pool);
        drop(fp_jobs);
        stats.worlds_evaluated += (fresh.len() * m) as u64;
        for (&offset, head) in fresh.iter().zip(evaluated) {
            heads[offset] = Some(head);
        }
        if let Some(exported) = plan.export_heads.as_deref_mut() {
            for (offset, &pi) in wave_idx.iter().enumerate() {
                if let Some(Ok(head)) = heads[offset].as_ref() {
                    exported[pi] = Some(head.clone());
                }
            }
        }
        drop(span_fp);
        let dt_fp = t0.elapsed();
        obs.fingerprint_us.record_duration(dt_fp);
        stats.phase.fingerprint += dt_fp;

        // Phase 2 — sequential resolve/stage in enumeration order.
        let t1 = Instant::now();
        let span_rs = span!("wave.resolve", wave = stats.waves);
        let mut slots: Vec<Slot> = Vec::with_capacity(wave_len);
        for (offset, (point, head)) in wave_points.into_iter().zip(heads).enumerate() {
            let head = head.expect("phase 1 filled every head")?;
            let mut cols = Vec::with_capacity(n_cols);
            let mut needs_tail = false;
            for (c, samples) in head.into_columns().into_iter().enumerate() {
                if disable_reuse {
                    needs_tail = true;
                    cols.push(ColPlan::Fresh(FreshSource::Inline(samples)));
                    continue;
                }
                // The head samples move straight into the fingerprint —
                // no per-miss double copy.
                let fp = Fingerprint::new(samples);
                let store = stores.shard_mut(c);
                match store.find_match(&fp) {
                    Some((id, map)) => cols.push(ColPlan::Reuse(id, map)),
                    None => {
                        needs_tail = true;
                        cols.push(ColPlan::Fresh(FreshSource::Staged(store.stage(fp))));
                    }
                }
            }
            slots.push(Slot { point_idx: wave_idx[offset], point, cols, needs_tail });
        }
        drop(span_rs);
        let dt_rs = t1.elapsed();
        obs.resolve_us.record_duration(dt_rs);
        stats.phase.resolve += dt_rs;

        // Phase 3 — completion simulations for the misses, in parallel.
        let t2 = Instant::now();
        let span_cp = span!("wave.completion", wave = stats.waves);
        let tail_count = n - m;
        let miss_slots: Vec<usize> =
            slots.iter().enumerate().filter(|(_, s)| s.needs_tail).map(|(i, _)| i).collect();
        let tail_jobs: Vec<EvalJob<'_>> = miss_slots
            .iter()
            .map(|&i| EvalJob { point: &slots[i].point, start: m, count: tail_count })
            .collect();
        let tails = run_jobs(sim, &tail_jobs, threads, pool);
        drop(tail_jobs);
        let mut tails_by_slot: Vec<Option<JobOutput>> = Vec::with_capacity(wave_len);
        tails_by_slot.resize_with(wave_len, || None);
        for (&slot_i, tail) in miss_slots.iter().zip(tails) {
            tails_by_slot[slot_i] = Some(tail);
        }
        drop(span_cp);
        let dt_cp = t2.elapsed();
        obs.completion_us.record_duration(dt_cp);
        stats.phase.completion += dt_cp;

        // Phase 4 — commit in enumeration order at the wave barrier.
        let t3 = Instant::now();
        let span_cm = span!("wave.commit", wave = stats.waves);
        let mut wave_reuse = WaveReuse { points: wave_len, ..Default::default() };
        for (slot_i, slot) in slots.into_iter().enumerate() {
            let Slot { point_idx, point, cols, needs_tail } = slot;
            let mut tail_cols: Vec<Vec<f64>> = if needs_tail {
                stats.full_simulations += 1;
                wave_reuse.full_simulations += 1;
                stats.worlds_evaluated += tail_count as u64;
                tails_by_slot[slot_i].take().expect("tail evaluated for miss")?.into_columns()
            } else {
                // Fully reused point: a *warm* hit when every column matched
                // a snapshot-loaded basis, intra-sweep reuse otherwise.
                let warm = cols.iter().enumerate().all(|(c, plan)| match plan {
                    ColPlan::Reuse(id, _) => id.0 < preloaded[c],
                    ColPlan::Fresh(_) => false,
                });
                if warm {
                    stats.warm_hits += 1;
                    wave_reuse.warm_hits += 1;
                } else {
                    stats.reused += 1;
                    wave_reuse.reused += 1;
                }
                Vec::new()
            };
            let mut metrics = Vec::with_capacity(n_cols);
            let mut reused_from = Vec::with_capacity(n_cols);
            for (c, plan) in cols.into_iter().enumerate() {
                match plan {
                    ColPlan::Reuse(id, map) => {
                        // The basis is committed by now even if it was
                        // staged this very wave (commits run in order).
                        metrics.push(map.apply_metrics(&stores.shard(c).get(id).metrics));
                        reused_from.push(Some(id));
                    }
                    ColPlan::Fresh(source) => {
                        let mut tail = std::mem::take(&mut tail_cols[c]);
                        let om = match source {
                            FreshSource::Staged(id) => {
                                let mut samples = Vec::with_capacity(n);
                                samples.extend_from_slice(
                                    stores.shard(c).get(id).fingerprint.entries(),
                                );
                                samples.append(&mut tail);
                                let om = OutputMetrics::from_samples(samples);
                                stores.shard_mut(c).commit_staged(id, om.clone());
                                om
                            }
                            FreshSource::Inline(mut head) => {
                                head.reserve_exact(tail.len());
                                head.append(&mut tail);
                                OutputMetrics::from_samples(head)
                            }
                        };
                        metrics.push(om);
                        reused_from.push(None);
                    }
                }
            }
            points.push(PointResult { point_idx, point, metrics, reused_from, coarse: false });
        }
        debug_assert_eq!(stores.staged_total(), 0, "wave barrier left staged bases behind");
        stats.wave_reuse.push(wave_reuse);
        drop(span_cm);
        let dt_cm = t3.elapsed();
        obs.commit_us.record_duration(dt_cm);
        stats.phase.commit += dt_cm;
        obs.waves.inc();
        wave_start += wave_len;
    }

    stats.points = total;
    stats.bases_per_column = stores.bases_per_column();
    stats.pairings_tested = stores.pairings_total();
    stats.elapsed = start.elapsed();
    obs.points.add(total as u64);
    obs.worlds.add(stats.worlds_evaluated);
    Ok(SweepResult { points, stats })
}

/// The two-phase sketch-then-refine sweep (`cfg.sketch_budget > 0`).
///
/// **Sketch**: the whole space is swept at the coarse budget
/// `s = cfg.sketch_budget` against its own ephemeral store — coarse
/// metrics are single-fidelity and must never enter the caller's
/// full-budget store. The full wave/reuse machinery runs, just cheaper.
///
/// **Prune**: [`sketch_frontier`] picks the survivors — a pure function of
/// (config, coarse results) with `total_cmp` tie breaks, so survival is
/// bit-identical per (config, seed) across thread counts, wave sizes, and
/// pool backends.
///
/// **Refine**: only the survivors re-run at full budget on `stores`,
/// reusing the sketch's fingerprint heads (worlds `0..m` are
/// seed-addressed, so skipping their re-evaluation changes no bit). With
/// `refine_top_k >= |space|` everything survives and this degenerates to
/// [`execute`] bit-for-bit — including `worlds_evaluated` when
/// `sketch_budget == fingerprint_len`.
///
/// The stitched result covers the whole space in enumeration order:
/// survivors carry full-budget metrics, pruned points keep their coarse
/// sketch metrics (flagged [`PointResult::coarse`], basis attribution
/// cleared — their bases lived in the discarded sketch store). The stats'
/// store ledger (`full_simulations`, `reused`, `warm_hits`,
/// `bases_per_column`, `pairings_tested`, waves) describes the refine
/// pass; the sketch pass's aggregate cost is in `sketch_points` /
/// `sketch_worlds`, and `worlds_evaluated` totals both passes.
pub(crate) fn execute_sketch_refine(
    cfg: &JigsawConfig,
    disable_reuse: bool,
    sim: &dyn Simulation,
    stores: &mut ShardedBasisStore,
    pool: &dyn WorkerPool,
    family: Arc<dyn MappingFamily>,
) -> Result<SweepResult> {
    cfg.validate();
    debug_assert!(cfg.sketch_enabled());
    let start = Instant::now();
    let space_len = sim.space().len();
    let n_cols = sim.columns().len();

    let mut sketch_cfg = cfg.clone();
    sketch_cfg.n_samples = cfg.sketch_budget;
    sketch_cfg.sketch_budget = 0;
    sketch_cfg.refine_top_k = 0;
    sketch_cfg.basis_load = None;
    sketch_cfg.basis_save = None;

    let mut sketch_store = ShardedBasisStore::new(n_cols, &sketch_cfg, family);
    let mut heads: HeadCache = Vec::with_capacity(space_len);
    heads.resize_with(space_len, || None);
    let sketch = execute_pass(
        &sketch_cfg,
        disable_reuse,
        sim,
        &mut sketch_store,
        pool,
        PassPlan { export_heads: Some(&mut heads), ..Default::default() },
    )?;
    drop(sketch_store);

    let survivors = sketch_frontier(cfg.refine_top_k, &sketch.points);

    let refine = execute_pass(
        cfg,
        disable_reuse,
        sim,
        stores,
        pool,
        PassPlan { subset: Some(&survivors), head_cache: Some(&heads), ..Default::default() },
    )?;

    // Stitch in enumeration order. Both passes emit points ascending by
    // `point_idx` and the survivors are a subset of the sketch table, so a
    // single merge pass pairs them up.
    let mut refined = refine.points.into_iter().peekable();
    let mut stats = refine.stats;
    let mut points: Vec<PointResult> = Vec::with_capacity(space_len);
    for coarse_point in sketch.points {
        if refined.peek().map(|r| r.point_idx) == Some(coarse_point.point_idx) {
            points.push(refined.next().expect("peeked"));
        } else {
            stats.pruned_points += 1;
            points.push(PointResult {
                coarse: true,
                reused_from: vec![None; n_cols],
                ..coarse_point
            });
        }
    }
    debug_assert!(refined.next().is_none(), "refine pass emitted a non-survivor");

    stats.points = space_len;
    stats.sketch_points = sketch.stats.points;
    stats.sketch_worlds = sketch.stats.worlds_evaluated;
    stats.refined_points = survivors.len();
    stats.worlds_evaluated += sketch.stats.worlds_evaluated;
    stats.phase.fingerprint += sketch.stats.phase.fingerprint;
    stats.phase.resolve += sketch.stats.phase.resolve;
    stats.phase.completion += sketch.stats.phase.completion;
    stats.phase.commit += sketch.stats.phase.commit;
    stats.elapsed = start.elapsed();
    Ok(SweepResult { points, stats })
}

/// Evaluate a batch of world-window jobs with up to `threads` workers,
/// returning each job's columnar [`WorldBatch`] in job order.
///
/// Jobs are split into world chunks handed to the [`WorkerPool`], so the
/// schedule is load-balanced; results stitch back in `(job, window)` order,
/// making the output independent of which worker ran what. Each chunk is
/// evaluated through [`jigsaw_pdb::eval_window`], which follows the
/// process-wide [`jigsaw_pdb::EvalPath`] (columnar by default, per-world
/// oracle under `JIGSAW_EVAL_PATH=oracle`) and converts worker panics into
/// typed errors inside the task, so nothing unwinds through the pool.
fn run_jobs(
    sim: &dyn Simulation,
    jobs: &[EvalJob<'_>],
    threads: usize,
    pool: &dyn WorkerPool,
) -> Vec<JobOutput> {
    if jobs.is_empty() {
        return Vec::new();
    }
    // Tiny batches are not worth a dispatch round; the cutoff is a pure
    // performance heuristic (results are identical either way).
    if threads <= 1 || jobs.iter().map(|j| j.count).sum::<usize>() <= 32 {
        return jobs
            .iter()
            .map(|j| jigsaw_pdb::eval_window(sim, j.point, j.start, j.count))
            .collect();
    }

    struct Task {
        job: usize,
        lo: usize,
        hi: usize,
    }
    // Aim for a few chunks per worker even when only one or two jobs miss.
    let mut tasks: Vec<Task> = Vec::new();
    for (ji, j) in jobs.iter().enumerate() {
        if j.count == 0 {
            tasks.push(Task { job: ji, lo: j.start, hi: j.start });
            continue;
        }
        let chunks_per_job = (threads * 2).div_ceil(jobs.len()).clamp(1, j.count);
        let chunk = j.count.div_ceil(chunks_per_job);
        let mut lo = j.start;
        while lo < j.start + j.count {
            let hi = (j.start + j.count).min(lo + chunk);
            tasks.push(Task { job: ji, lo, hi });
            lo = hi;
        }
    }

    // One write-once slot per task; whichever worker the pool assigns a
    // task fills its slot, and stitching below goes purely by task index.
    let mut slots: Vec<OnceLock<JobOutput>> = Vec::with_capacity(tasks.len());
    slots.resize_with(tasks.len(), OnceLock::new);
    pool.scatter(threads, tasks.len(), &|t| {
        let task = &tasks[t];
        let j = &jobs[task.job];
        let r = jigsaw_pdb::eval_window(sim, j.point, task.lo, task.hi - task.lo);
        slots[t].set(r).expect("pool ran a task twice");
    });

    // Stitch chunks back per job. Tasks were emitted job-contiguously and in
    // window order, so a linear pass reassembles everything; a job's first
    // erroring chunk (in window order) becomes the job's error.
    let n_cols = sim.columns().len();
    let mut out: Vec<JobOutput> = Vec::with_capacity(jobs.len());
    let mut ti = 0usize;
    for (ji, j) in jobs.iter().enumerate() {
        let mut acc = WorldBatch::with_capacity(n_cols, j.count);
        let mut err = None;
        while ti < tasks.len() && tasks[ti].job == ji {
            let r = slots[ti].take().expect("pool ran every task");
            ti += 1;
            if err.is_some() {
                continue;
            }
            match r {
                Ok(part) => acc.extend(part),
                Err(e) => err = Some(e),
            }
        }
        out.push(match err {
            Some(e) => Err(e),
            None => Ok(acc),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::SweepRunner;
    use jigsaw_blackbox::models::{Demand, SynthBasis};
    use jigsaw_blackbox::{FnBlackBox, ParamDecl, ParamSpace};
    use jigsaw_pdb::{BlackBoxSim, Catalog, DirectEngine, Expr, Plan, PlanSim};
    use jigsaw_prng::SeedSet;
    use std::sync::Arc;

    fn cfg() -> JigsawConfig {
        JigsawConfig::paper().with_n_samples(120)
    }

    fn demand_sim() -> BlackBoxSim {
        let space = ParamSpace::new(vec![
            ParamDecl::range("week", 0, 24, 1),
            ParamDecl::set("feature", vec![5, 12]),
        ]);
        BlackBoxSim::new(Arc::new(Demand::paper()), space, SeedSet::new(2024))
    }

    fn assert_identical(a: &SweepResult, b: &SweepResult, what: &str) {
        assert_eq!(a.points.len(), b.points.len(), "{what}: point count");
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(x, y, "{what}: point {} diverged", x.point_idx);
        }
        assert_eq!(a.stats.counters(), b.stats.counters(), "{what}: counters");
    }

    #[test]
    fn thread_count_does_not_change_anything() {
        let sim = demand_sim();
        let base = SweepRunner::new(cfg().with_threads(1)).run(&sim).unwrap();
        for threads in [2usize, 3, 8] {
            let par = SweepRunner::new(cfg().with_threads(threads)).run(&sim).unwrap();
            assert_identical(&base, &par, &format!("threads={threads}"));
        }
    }

    #[test]
    fn wave_size_does_not_change_anything() {
        let sim = demand_sim();
        let base = SweepRunner::new(cfg().with_wave_size(1)).run(&sim).unwrap();
        for wave in [2usize, 7, 16, 10_000] {
            let r = SweepRunner::new(cfg().with_wave_size(wave).with_threads(4)).run(&sim).unwrap();
            assert_identical(&base, &r, &format!("wave={wave}"));
        }
        // wave_size 1 degenerates to the sequential point loop; its wave
        // telemetry must show one point per wave.
        assert_eq!(base.stats.waves, base.stats.points);
    }

    #[test]
    fn synth_basis_counts_survive_parallelism() {
        for n_bases in [1usize, 4] {
            let space = ParamSpace::new(vec![ParamDecl::range("p", 0, 48, 1)]);
            let sim = BlackBoxSim::new(Arc::new(SynthBasis::new(n_bases)), space, SeedSet::new(7));
            for threads in [1usize, 4] {
                let r = SweepRunner::new(cfg().with_threads(threads)).run(&sim).unwrap();
                assert_eq!(
                    r.stats.bases_per_column[0], n_bases,
                    "threads={threads}: SynthBasis({n_bases}) basis count"
                );
            }
        }
    }

    #[test]
    fn wave_telemetry_accounts_every_point() {
        let sim = demand_sim();
        let r = SweepRunner::new(cfg().with_wave_size(8).with_threads(2)).run(&sim).unwrap();
        assert_eq!(r.stats.waves, r.stats.wave_reuse.len());
        let pts: usize = r.stats.wave_reuse.iter().map(|w| w.points).sum();
        let reused: usize = r.stats.wave_reuse.iter().map(|w| w.reused).sum();
        let warm: usize = r.stats.wave_reuse.iter().map(|w| w.warm_hits).sum();
        let full: usize = r.stats.wave_reuse.iter().map(|w| w.full_simulations).sum();
        assert_eq!(pts, r.stats.points);
        assert_eq!(reused, r.stats.reused);
        assert_eq!(warm, r.stats.warm_hits);
        assert_eq!(full, r.stats.full_simulations);
        assert_eq!(warm, 0, "no snapshot loaded, so no warm hits");
        for w in &r.stats.wave_reuse {
            assert_eq!(w.points, w.reused + w.warm_hits + w.full_simulations);
        }
    }

    #[test]
    fn warm_start_replays_cold_results_and_counts_warm_hits() {
        let sim = demand_sim();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("jigsaw-exec-warm-{}.snap", std::process::id()));
        let cold = SweepRunner::new(cfg().with_basis_save(&path)).run(&sim).unwrap();
        assert_eq!(cold.stats.warm_hits, 0);
        let warm = SweepRunner::new(cfg().with_basis_load(&path)).run(&sim).unwrap();
        // Same scenario: every point resolves against a loaded basis.
        assert_eq!(warm.stats.warm_hits, warm.stats.points);
        assert_eq!(warm.stats.reused, 0);
        assert_eq!(warm.stats.full_simulations, 0);
        // Results and final basis sets are bit-identical to the cold sweep.
        assert_eq!(warm.stats.bases_per_column, cold.stats.bases_per_column);
        for (c, w) in cold.points.iter().zip(&warm.points) {
            assert_eq!(c.point_idx, w.point_idx);
            assert_eq!(c.point, w.point);
            for (mc, mw) in c.metrics.iter().zip(&w.metrics) {
                assert_eq!(mc.samples(), mw.samples());
                assert_eq!(mc.expectation().to_bits(), mw.expectation().to_bits());
                assert_eq!(mc.std_dev().to_bits(), mw.std_dev().to_bits());
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn warm_start_resave_is_byte_identical() {
        let sim = demand_sim();
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let cold_path = dir.join(format!("jigsaw-exec-resave-cold-{pid}.snap"));
        let warm_path = dir.join(format!("jigsaw-exec-resave-warm-{pid}.snap"));
        SweepRunner::new(cfg().with_basis_save(&cold_path)).run(&sim).unwrap();
        SweepRunner::new(cfg().with_basis_load(&cold_path).with_basis_save(&warm_path))
            .run(&sim)
            .unwrap();
        let a = std::fs::read(&cold_path).unwrap();
        let b = std::fs::read(&warm_path).unwrap();
        assert_eq!(a, b, "warm re-save must reproduce the cold snapshot byte for byte");
        std::fs::remove_file(&cold_path).ok();
        std::fs::remove_file(&warm_path).ok();
    }

    #[test]
    fn config_mismatch_fails_the_sweep_with_typed_error() {
        let sim = demand_sim();
        let path =
            std::env::temp_dir().join(format!("jigsaw-exec-mismatch-{}.snap", std::process::id()));
        SweepRunner::new(cfg().with_basis_save(&path)).run(&sim).unwrap();
        let err =
            match SweepRunner::new(cfg().with_tolerance(1e-6).with_basis_load(&path)).run(&sim) {
                Err(e) => e,
                Ok(_) => panic!("mismatched snapshot must not load"),
            };
        assert!(
            err.to_string().contains("basis snapshot"),
            "expected a snapshot error, got: {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    /// An intentionally awkward pool: runs every task serially in *reverse*
    /// index order. Any faithful [`WorkerPool`] must yield bit-identical
    /// sweeps, because the executor stitches results by task index.
    struct ReversePool;
    impl WorkerPool for ReversePool {
        fn scatter(&self, _threads: usize, n_tasks: usize, run: &(dyn Fn(usize) + Sync)) {
            for t in (0..n_tasks).rev() {
                run(t);
            }
        }
    }

    #[test]
    fn custom_worker_pool_is_bit_identical() {
        let sim = demand_sim();
        let base = SweepRunner::new(cfg().with_threads(1)).run(&sim).unwrap();
        let rev =
            SweepRunner::new(cfg().with_threads(4)).pool(Arc::new(ReversePool)).run(&sim).unwrap();
        assert_identical(&base, &rev, "reverse-order pool");
    }

    #[test]
    fn run_on_counts_preexisting_bases_as_warm_hits() {
        let sim = demand_sim();
        let c = cfg();
        let mut stores =
            ShardedBasisStore::new(sim.columns().len(), &c, Arc::new(crate::mapping::AffineFamily));
        let mut runner = SweepRunner::new(c.clone()).store(&mut stores);
        // First sweep on the empty store: pays the cold ramp.
        let cold = runner.run(&sim).unwrap();
        assert_eq!(cold.stats.warm_hits, 0);
        assert!(cold.stats.full_simulations > 0);
        // Second sweep on the *same* store: every point rides bases the
        // first sweep built — all warm hits, zero completions, and results
        // bit-identical to the cold leg.
        let warm = runner.run(&sim).unwrap();
        assert_eq!(warm.stats.warm_hits, warm.stats.points);
        assert_eq!(warm.stats.full_simulations, 0);
        assert_eq!(warm.stats.bases_per_column, cold.stats.bases_per_column);
        for (a, b) in cold.points.iter().zip(&warm.points) {
            assert_eq!(a.point, b.point);
            for (ma, mb) in a.metrics.iter().zip(&b.metrics) {
                assert_eq!(ma.samples(), mb.samples());
            }
        }
    }

    #[test]
    fn naive_mode_parallel_equals_sequential() {
        let sim = demand_sim();
        let base = SweepRunner::naive(cfg().with_threads(1)).run(&sim).unwrap();
        let par = SweepRunner::naive(cfg().with_threads(8)).run(&sim).unwrap();
        assert_identical(&base, &par, "naive");
        assert_eq!(par.stats.bases_per_column, vec![0]);
        assert_eq!(par.stats.full_simulations, par.stats.points);
    }

    /// Two-column plan: column `a` is affine across points (one basis),
    /// column `b` never maps (its shape changes per point) — every point
    /// exercises the mixed resolve-and-miss path.
    fn mixed_plan_sim() -> PlanSim {
        use jigsaw_prng::{dist::Normal, Xoshiro256pp};
        let mut cat = Catalog::new();
        cat.add_function(Arc::new(FnBlackBox::new("Affine", 1, |p: &[f64], s| {
            let mut rng = Xoshiro256pp::seeded(s);
            p[0] + Normal::standard(&mut rng)
        })));
        cat.add_function(Arc::new(FnBlackBox::new("Wild", 1, |p: &[f64], s| {
            let mut rng = Xoshiro256pp::seeded(s);
            let z = Normal::standard(&mut rng);
            z + (1.0 + p[0]) * z * z * z
        })));
        let cat = Arc::new(cat);
        let plan = Plan::OneRow
            .project(vec![
                ("a", Expr::call("Affine", vec![Expr::param("p")])),
                ("b", Expr::call("Wild", vec![Expr::param("p")])),
            ])
            .bind(&cat, &["p".to_string()])
            .unwrap();
        let space = ParamSpace::new(vec![ParamDecl::range("p", 0, 11, 1)]);
        PlanSim::new(Arc::new(DirectEngine::new()), plan, cat, space, SeedSet::new(99))
    }

    #[test]
    fn mixed_column_reuse_is_thread_invariant() {
        let sim = mixed_plan_sim();
        let base = SweepRunner::new(cfg().with_threads(1)).run(&sim).unwrap();
        // Column a collapses to one basis; column b gets one per point.
        assert_eq!(base.stats.bases_per_column[0], 1);
        assert_eq!(base.stats.bases_per_column[1], base.stats.points);
        // Every point after the first reuses a but misses b: a full
        // simulation with a recorded per-column reuse.
        assert_eq!(base.stats.full_simulations, base.stats.points);
        assert!(base.points[1..].iter().all(|p| p.reused_from[0].is_some()));
        assert!(base.points.iter().all(|p| p.reused_from[1].is_none()));
        for threads in [2usize, 8] {
            let par = SweepRunner::new(cfg().with_threads(threads)).run(&sim).unwrap();
            assert_identical(&base, &par, &format!("mixed threads={threads}"));
        }
    }

    #[test]
    fn n_equals_m_edge_case() {
        // Completion windows of zero worlds: every miss's samples are just
        // the fingerprint.
        let sim = demand_sim();
        let c = JigsawConfig::paper().with_fingerprint_len(10).with_n_samples(10);
        let base = SweepRunner::new(c.clone().with_threads(1)).run(&sim).unwrap();
        let par = SweepRunner::new(c.with_threads(4)).run(&sim).unwrap();
        assert_identical(&base, &par, "n==m");
        for p in &base.points {
            assert_eq!(p.metrics[0].n(), 10);
        }
    }

    /// Reuse-hostile black box over one parameter: a distinct cubic shape
    /// at every point, so every point needs its own basis and the
    /// exhaustive sweep pays full budget everywhere.
    fn no_reuse_sim(points: i64) -> BlackBoxSim {
        use jigsaw_prng::{dist::Normal, Xoshiro256pp};
        let space = ParamSpace::new(vec![ParamDecl::range("p", 0, points - 1, 1)]);
        let bb = FnBlackBox::new("wild", 1, |p: &[f64], s| {
            let mut rng = Xoshiro256pp::seeded(s);
            let z = Normal::standard(&mut rng);
            p[0] * 0.01 + z + (1.0 + p[0]) * z * z * z * 0.05
        });
        BlackBoxSim::new(Arc::new(bb), space, SeedSet::new(41))
    }

    #[test]
    fn sketch_degenerates_to_exhaustive_bit_for_bit() {
        let sim = demand_sim();
        let exhaustive = SweepRunner::new(cfg()).run(&sim).unwrap();
        // refine_top_k >= |space| keeps everything; with sketch_budget == m
        // the cached heads make even the world count match exactly.
        let sketchy = SweepRunner::new(cfg().with_sketch(10, 10_000)).run(&sim).unwrap();
        assert_eq!(exhaustive.points.len(), sketchy.points.len());
        for (a, b) in exhaustive.points.iter().zip(&sketchy.points) {
            assert_eq!(a, b, "point {} diverged from exhaustive", a.point_idx);
        }
        let (e, s) = (&exhaustive.stats, &sketchy.stats);
        assert_eq!(e.full_simulations, s.full_simulations);
        assert_eq!(e.reused, s.reused);
        assert_eq!(e.bases_per_column, s.bases_per_column);
        assert_eq!(e.pairings_tested, s.pairings_tested);
        assert_eq!(e.worlds_evaluated, s.worlds_evaluated);
        assert_eq!(s.refined_points, s.points);
        assert_eq!(s.pruned_points, 0);
        assert_eq!(s.sketch_points, s.points);
    }

    #[test]
    fn sketch_prunes_and_keeps_coarse_metrics() {
        let sim = no_reuse_sim(40);
        let c = cfg().with_sketch(20, 3);
        let sketchy = SweepRunner::new(c.clone()).run(&sim).unwrap();
        let exhaustive = SweepRunner::new(cfg()).run(&sim).unwrap();
        let st = &sketchy.stats;
        assert_eq!(st.points, 40);
        assert_eq!(st.refined_points + st.pruned_points, st.points);
        assert!(st.pruned_points > 0, "K=3 over 40 reuse-hostile points must prune");
        assert_eq!(st.sketch_points, 40);
        assert_eq!(st.sketch_worlds, 40 * 20);
        assert!(
            st.worlds_evaluated < exhaustive.stats.worlds_evaluated,
            "sketch {} vs exhaustive {}",
            st.worlds_evaluated,
            exhaustive.stats.worlds_evaluated
        );
        for p in &sketchy.points {
            if p.coarse {
                assert_eq!(p.metrics[0].n(), 20, "pruned points carry coarse metrics");
                assert!(p.reused_from.iter().all(Option::is_none));
            } else {
                assert_eq!(p.metrics[0].n(), 120, "refined points carry full metrics");
                // Refined metrics are bit-identical to the exhaustive sweep:
                // same store decisions, same seed-addressed worlds.
                let e = &exhaustive.points[p.point_idx];
                assert_eq!(p.metrics[0].samples(), e.metrics[0].samples());
            }
        }
    }

    #[test]
    fn sketch_refine_warms_the_attached_store() {
        let sim = no_reuse_sim(30);
        let c = cfg().with_sketch(10, 4);
        let mut stores =
            ShardedBasisStore::new(sim.columns().len(), &c, Arc::new(crate::mapping::AffineFamily));
        let mut runner = SweepRunner::new(c).store(&mut stores);
        let cold = runner.run(&sim).unwrap();
        assert_eq!(cold.stats.warm_hits, 0);
        assert!(cold.stats.full_simulations > 0);
        // Second sweep on the same store: every survivor rides the bases the
        // first refine pass committed, and the results replay bit-for-bit.
        let warm = runner.run(&sim).unwrap();
        assert_eq!(warm.stats.full_simulations, 0);
        assert_eq!(warm.stats.warm_hits, warm.stats.refined_points);
        assert_eq!(warm.stats.bases_per_column, cold.stats.bases_per_column);
        for (a, b) in cold.points.iter().zip(&warm.points) {
            assert_eq!(a.coarse, b.coarse);
            for (ma, mb) in a.metrics.iter().zip(&b.metrics) {
                assert_eq!(ma.samples(), mb.samples());
            }
        }
    }

    #[test]
    fn empty_space_yields_empty_sweep() {
        let space = ParamSpace::new(vec![ParamDecl::range("p", 5, 4, 1)]);
        let sim = BlackBoxSim::new(Arc::new(Demand::paper()), space, SeedSet::new(1));
        let r = SweepRunner::new(cfg().with_threads(4)).run(&sim).unwrap();
        assert!(r.points.is_empty());
        assert_eq!(r.stats.points, 0);
        assert_eq!(r.stats.waves, 0);
        assert_eq!(r.stats.bases_per_column, vec![0]);
        // Sketch mode over an empty space is equally empty.
        let s = SweepRunner::new(cfg().with_sketch(10, 2)).run(&sim).unwrap();
        assert!(s.points.is_empty());
        assert_eq!(s.stats.refined_points, 0);
        assert_eq!(s.stats.pruned_points, 0);
    }
}
