//! A persistent worker pool: threads spawned once, surviving across waves,
//! sweeps, and requests.
//!
//! [`ScopedPool`](super::executor::ScopedPool) spawns fresh OS threads for
//! every parallel phase — fine for one batch sweep, pure churn for a
//! long-lived session server that runs thousands of small scatters against
//! warm stores. [`PersistentPool`] moves provisioning out of the hot path:
//! workers are created in [`PersistentPool::new`] and parked on a condvar;
//! each [`scatter`](super::executor::WorkerPool::scatter) publishes one
//! *job* (an atomic task cursor plus a completion counter), wakes the
//! workers, participates from the calling thread, and returns when the
//! counter says every task ran. Which worker runs which task is — as the
//! [`WorkerPool`] contract requires — irrelevant: the executor stitches by
//! task index, so sweeps through a `PersistentPool` are **bit-identical**
//! to `ScopedPool` sweeps at every thread budget.
//!
//! Scatters are serialized by an internal gate (one job slot, one worker
//! set); concurrent callers — e.g. two server connections sweeping
//! different scenarios — queue rather than oversubscribe the budget.
//! Nested scatters from inside a task would deadlock on that gate; the
//! executor never does this.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use super::executor::WorkerPool;

/// The borrowed task closure, erased to a raw pointer so parked worker
/// threads (which are `'static`) can carry it.
///
/// # Safety
///
/// The pointee is only ever dereferenced for a task index claimed from the
/// job's cursor while the index is `< n_tasks`. Every such index is claimed
/// exactly once, and `scatter` does not return until the completion counter
/// says all `n_tasks` claimed tasks have *finished* — so every dereference
/// happens-before `scatter` returns, i.e. strictly inside the closure's
/// real lifetime. Workers that wake late observe an exhausted cursor and
/// never touch the pointer.
#[derive(Clone, Copy)]
struct TaskFn(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls are fine) and the pointer is
// only dereferenced within the window described on [`TaskFn`].
unsafe impl Send for TaskFn {}
unsafe impl Sync for TaskFn {}

/// One scatter's work order, shared between the caller and the workers.
#[derive(Clone)]
struct Job {
    run: TaskFn,
    /// Next task index to claim (claims past `n_tasks` are no-ops).
    cursor: Arc<AtomicUsize>,
    /// Tasks that have *finished* running.
    finished: Arc<AtomicUsize>,
    n_tasks: usize,
    /// Seats taken by pool workers; beyond `seat_limit` a worker re-parks
    /// without touching the job (enforces the scatter's thread budget).
    seats: Arc<AtomicUsize>,
    seat_limit: usize,
}

#[derive(Default)]
struct PoolState {
    /// Bumped once per published job; workers use it to tell a fresh job
    /// from the one they already served.
    epoch: u64,
    job: Option<Job>,
    /// Worker threads that have started (the constructor's startup barrier,
    /// which is what makes [`PersistentPool::spawned_workers`] exact).
    started: usize,
    shutdown: bool,
}

#[derive(Default)]
struct Shared {
    state: Mutex<PoolState>,
    /// Workers park here between jobs.
    work: Condvar,
    /// The scattering caller parks here until the job completes (also used
    /// once at construction for the startup barrier).
    done: Condvar,
}

/// A [`WorkerPool`] whose worker threads are spawned **once** — at
/// construction — and survive across waves, sweeps, and requests, parked on
/// a condvar between jobs.
///
/// `PersistentPool::new(threads)` spawns `threads - 1` workers; the thread
/// calling `scatter` always participates as the final seat, so a budget-`t`
/// scatter runs on at most `t` concurrent threads exactly like
/// [`ScopedPool`](super::executor::ScopedPool) — and, because the executor
/// stitches by task index, with bit-identical results. Scatters with a
/// smaller budget than the pool simply seat fewer workers.
///
/// Dropping the pool parks no one: workers are flagged down, woken, and
/// joined.
pub struct PersistentPool {
    shared: Arc<Shared>,
    /// Serializes scatters: one job slot, one worker set.
    gate: Mutex<()>,
    workers: Vec<JoinHandle<()>>,
    /// Threads ever created by this pool — stays at `workers.len()` for the
    /// pool's whole lifetime (the property the reuse tests pin).
    spawn_count: usize,
}

impl PersistentPool {
    /// Spawn a pool for a thread budget of `threads` (`threads - 1` parked
    /// workers plus the scattering caller). Budgets of 0 or 1 spawn no
    /// workers; every scatter then runs inline on the caller.
    ///
    /// Returns once every worker thread has actually started, so
    /// [`Self::spawned_workers`] is exact from the moment of construction.
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(Shared::default());
        let n_workers = threads.saturating_sub(1);
        let workers: Vec<JoinHandle<()>> = (0..n_workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        // Startup barrier: wait until all workers are inside their loop.
        let mut st = shared.state.lock().expect("pool state poisoned");
        while st.started < n_workers {
            st = shared.done.wait(st).expect("pool state poisoned");
        }
        drop(st);
        pool_obs().workers.add(n_workers as i64);
        PersistentPool { shared, gate: Mutex::new(()), workers, spawn_count: n_workers }
    }

    /// Total worker threads this pool has ever spawned. Constant for the
    /// pool's lifetime (`threads - 1` from [`Self::new`]): scatters reuse
    /// workers, they never create threads.
    pub fn spawned_workers(&self) -> usize {
        self.spawn_count
    }
}

impl std::fmt::Debug for PersistentPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistentPool").field("workers", &self.workers.len()).finish()
    }
}

/// Handles to the pool's global instruments (see `jigsaw_obs`);
/// registered once, lock-free to update, purely observational.
struct PoolObs {
    parks: jigsaw_obs::Counter,
    wakes: jigsaw_obs::Counter,
    scatters: jigsaw_obs::Counter,
    tasks: jigsaw_obs::Histogram,
    workers: jigsaw_obs::Gauge,
}

fn pool_obs() -> &'static PoolObs {
    static OBS: std::sync::OnceLock<PoolObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| {
        let g = jigsaw_obs::global();
        PoolObs {
            parks: g.counter("jigsaw_pool_parks_total", &[]),
            wakes: g.counter("jigsaw_pool_wakes_total", &[]),
            scatters: g.counter("jigsaw_pool_scatters_total", &[]),
            tasks: g.histogram("jigsaw_pool_tasks_per_scatter", &[]),
            workers: g.gauge("jigsaw_pool_workers", &[]),
        }
    })
}

fn worker_loop(shared: &Shared) {
    // Announce startup (releases the constructor's barrier).
    {
        let mut st = shared.state.lock().expect("pool state poisoned");
        st.started += 1;
        shared.done.notify_all();
    }
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool state poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    // The job may already be retired (scatter finished
                    // before this worker woke); then just park again.
                    if let Some(job) = st.job.clone() {
                        pool_obs().wakes.inc();
                        break job;
                    }
                }
                pool_obs().parks.inc();
                st = shared.work.wait(st).expect("pool state poisoned");
            }
        };
        if job.seats.fetch_add(1, Ordering::AcqRel) < job.seat_limit {
            // SAFETY: scatter is still blocked in its completion wait (the
            // job was cloned out of the live slot), so the closure behind
            // the pointer outlives every dereference; see [`TaskFn`].
            let run = unsafe { &*job.run.0 };
            drain(&job, run, shared);
        }
    }
}

/// Claim and run tasks off the job's cursor until it is exhausted,
/// signalling the completion condvar when the last task finishes.
fn drain(job: &Job, run: &(dyn Fn(usize) + Sync), shared: &Shared) {
    loop {
        let t = job.cursor.fetch_add(1, Ordering::Relaxed);
        if t >= job.n_tasks {
            return;
        }
        run(t);
        if job.finished.fetch_add(1, Ordering::AcqRel) + 1 == job.n_tasks {
            // Touch the lock before notifying so the wakeup cannot slip
            // between the caller's counter check and its wait.
            drop(shared.state.lock().expect("pool state poisoned"));
            shared.done.notify_all();
        }
    }
}

impl WorkerPool for PersistentPool {
    fn scatter(&self, threads: usize, n_tasks: usize, run: &(dyn Fn(usize) + Sync)) {
        // Inline fast path: nothing to parallelize (this also covers the
        // zero-task scatter — no job is published, no worker wakes).
        if threads <= 1 || n_tasks <= 1 || self.workers.is_empty() {
            for t in 0..n_tasks {
                run(t);
            }
            return;
        }
        let _gate = self.gate.lock().expect("pool gate poisoned");
        let obs = pool_obs();
        obs.scatters.inc();
        obs.tasks.record(n_tasks as u64);
        // SAFETY: pure lifetime erasure (`&'a dyn …` → `&'static dyn …`) so
        // the borrow can ride in the `'static` job slot. The pointer is
        // retired from that slot before this function — and with it the real
        // borrow — ends; see [`TaskFn`] for the full argument.
        let run_erased: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(run) };
        let job = Job {
            run: TaskFn(run_erased as *const _),
            cursor: Arc::new(AtomicUsize::new(0)),
            finished: Arc::new(AtomicUsize::new(0)),
            n_tasks,
            seats: Arc::new(AtomicUsize::new(0)),
            // The caller takes one seat itself.
            seat_limit: threads - 1,
        };
        {
            let mut st = self.shared.state.lock().expect("pool state poisoned");
            st.epoch += 1;
            st.job = Some(job.clone());
        }
        self.shared.work.notify_all();
        // Participate from the calling thread, then wait out the stragglers.
        drain(&job, run, &self.shared);
        let mut st = self.shared.state.lock().expect("pool state poisoned");
        while job.finished.load(Ordering::Acquire) < n_tasks {
            st = self.shared.done.wait(st).expect("pool state poisoned");
        }
        // Retire the job before `run`'s borrow ends: after this, no worker
        // can clone (and thus ever dereference) the erased pointer.
        st.job = None;
    }
}

impl Drop for PersistentPool {
    fn drop(&mut self) {
        pool_obs().workers.add(-(self.spawn_count as i64));
        self.shared.state.lock().expect("pool state poisoned").shutdown = true;
        self.shared.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::ShardedBasisStore;
    use crate::config::JigsawConfig;
    use crate::mapping::AffineFamily;
    use crate::optimizer::{executor::ScopedPool, SweepResult, SweepRunner};
    use jigsaw_blackbox::models::{Demand, SynthBasis};
    use jigsaw_blackbox::{ParamDecl, ParamSpace};
    use jigsaw_pdb::{BlackBoxSim, Simulation};
    use jigsaw_prng::SeedSet;
    use std::collections::HashSet;

    #[test]
    fn scatter_runs_every_task_exactly_once() {
        let pool = PersistentPool::new(4);
        for n_tasks in [0usize, 1, 2, 7, 64, 1000] {
            let hits: Vec<AtomicUsize> = (0..n_tasks).map(|_| AtomicUsize::new(0)).collect();
            pool.scatter(4, n_tasks, &|t| {
                hits[t].fetch_add(1, Ordering::SeqCst);
            });
            for (t, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::SeqCst), 1, "task {t} of {n_tasks}");
            }
        }
    }

    #[test]
    fn zero_task_scatter_is_a_clean_no_op_and_drop_parks_cleanly() {
        let pool = PersistentPool::new(4);
        assert_eq!(pool.spawned_workers(), 3);
        // A zero-task scatter must neither run anything nor wedge a worker.
        pool.scatter(4, 0, &|_| panic!("no tasks to run"));
        // Workers are still parked and reusable afterwards…
        let ran = AtomicUsize::new(0);
        pool.scatter(4, 16, &|_| {
            ran.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ran.load(Ordering::SeqCst), 16);
        assert_eq!(pool.spawned_workers(), 3, "reuse, not respawn");
        // …and drop joins them without hanging.
        drop(pool);
    }

    #[test]
    fn budget_one_runs_inline() {
        let pool = PersistentPool::new(1);
        assert_eq!(pool.spawned_workers(), 0);
        let main = std::thread::current().id();
        pool.scatter(1, 8, &|_| assert_eq!(std::thread::current().id(), main));
    }

    #[test]
    fn seat_limit_caps_concurrency_below_pool_size() {
        // An 8-thread pool given budget-2 scatters must run at most 2
        // tasks concurrently (1 worker + the caller).
        let pool = PersistentPool::new(8);
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let (live2, peak2) = (Arc::clone(&live), Arc::clone(&peak));
        pool.scatter(2, 64, &move |_| {
            let now = live2.fetch_add(1, Ordering::SeqCst) + 1;
            peak2.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_micros(200));
            live2.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(peak.load(Ordering::SeqCst) <= 2, "peak {}", peak.load(Ordering::SeqCst));
    }

    fn demand_sim() -> BlackBoxSim {
        let space = ParamSpace::new(vec![
            ParamDecl::range("week", 0, 24, 1),
            ParamDecl::set("feature", vec![5, 12]),
        ]);
        BlackBoxSim::new(Arc::new(Demand::paper()), space, SeedSet::new(2024))
    }

    fn synth_sim(n_bases: usize) -> BlackBoxSim {
        let space = ParamSpace::new(vec![ParamDecl::range("p", 0, 48, 1)]);
        BlackBoxSim::new(Arc::new(SynthBasis::new(n_bases)), space, SeedSet::new(7))
    }

    fn cfg(threads: usize) -> JigsawConfig {
        JigsawConfig::paper().with_n_samples(120).with_threads(threads)
    }

    fn assert_identical(a: &SweepResult, b: &SweepResult, what: &str) {
        assert_eq!(a.points.len(), b.points.len(), "{what}: point count");
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(x, y, "{what}: point {} diverged", x.point_idx);
        }
        assert_eq!(a.stats.counters(), b.stats.counters(), "{what}: counters");
    }

    /// Sweep `sim` on `pool`, returning the result plus the store's exact
    /// snapshot bytes — the strongest equality we can ask for.
    fn sweep_bytes(
        sim: &dyn jigsaw_pdb::Simulation,
        threads: usize,
        pool: Arc<dyn WorkerPool>,
    ) -> (SweepResult, Vec<u8>) {
        let c = cfg(threads);
        let mut stores = ShardedBasisStore::new(sim.columns().len(), &c, Arc::new(AffineFamily));
        let r = SweepRunner::new(c.clone()).pool(pool).store(&mut stores).run(sim).unwrap();
        let bytes = stores.to_snapshot_bytes(&c, "affine").unwrap();
        (r, bytes)
    }

    #[test]
    fn sweeps_are_bit_identical_to_scoped_pool() {
        for (name, sim) in [
            ("Demand", demand_sim()),
            ("SynthBasis(1)", synth_sim(1)),
            ("SynthBasis(4)", synth_sim(4)),
        ] {
            for threads in [1usize, 4] {
                let (scoped, scoped_bytes) = sweep_bytes(&sim, threads, Arc::new(ScopedPool));
                let (persist, persist_bytes) =
                    sweep_bytes(&sim, threads, Arc::new(PersistentPool::new(threads)));
                let what = format!("{name} threads={threads}");
                assert_identical(&scoped, &persist, &what);
                assert_eq!(scoped_bytes, persist_bytes, "{what}: snapshot bytes diverged");
            }
        }
    }

    #[test]
    fn workers_survive_across_consecutive_sweeps() {
        let sim = demand_sim();
        let pool = Arc::new(PersistentPool::new(4));
        assert_eq!(pool.spawned_workers(), 3, "workers spawned once, at construction");
        let c = cfg(4);
        let mut stores = ShardedBasisStore::new(sim.columns().len(), &c, Arc::new(AffineFamily));
        let mut runner = SweepRunner::new(c.clone())
            .pool(pool.clone() as Arc<dyn WorkerPool>)
            .store(&mut stores);
        let cold = runner.run(&sim).unwrap();
        assert!(cold.stats.full_simulations > 0);
        let warm = runner.run(&sim).unwrap();
        assert_eq!(warm.stats.warm_hits, warm.stats.points, "second sweep rides warm bases");
        // The whole point of the pool: two sweeps, zero new thread spawns.
        assert_eq!(pool.spawned_workers(), 3, "sweeps must reuse workers, never respawn");
    }

    #[test]
    fn tasks_run_on_reused_worker_threads() {
        let pool = PersistentPool::new(4);
        let grab = || {
            let ids = Mutex::new(HashSet::new());
            pool.scatter(4, 256, &|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_micros(20));
            });
            ids.into_inner().unwrap()
        };
        let first = grab();
        let second = grab();
        assert!(first.len() > 1, "scatter actually fanned out");
        // Every thread of the second scatter already served the first (the
        // caller plus parked workers) — nothing was spawned in between.
        assert!(second.is_subset(&first), "workers were reused, not respawned");
        assert_eq!(pool.spawned_workers(), 3);
    }
}
