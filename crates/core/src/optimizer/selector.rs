//! The Selector: applying `OPTIMIZE` goals to sweep results.
//!
//! The paper's Figure 1 batch query:
//!
//! ```sql
//! OPTIMIZE SELECT @feature_release, @purchase1, @purchase2
//! FROM results
//! WHERE MAX(EXPECT overload) < 0.01
//! GROUP BY feature_release, purchase1, purchase2
//! FOR MAX @purchase1, MAX @purchase2
//! ```
//!
//! Semantics: partition the parameter space by the *decision parameters*
//! (the `GROUP BY` list); within each group, fold the chosen metric of the
//! chosen column over the remaining ("scenario") dimensions with the outer
//! aggregate (`MAX` above); keep groups satisfying the comparison; among
//! survivors pick the lexicographic best under the `FOR` objectives.
//! "Finally, the Selector component selects the parameter value, along with
//! its output distribution, that satisfies the optimization goal." (§2.3)

use std::collections::BTreeSet;

use jigsaw_blackbox::ParamSpace;
use jigsaw_pdb::{Metric, PdbError, Result};

use super::{PointResult, SweepResult};

/// The sketch-then-refine survival rule: which coarse-swept points the
/// refine pass re-runs at full budget.
///
/// A pure function of the coarse sweep table and `refine_top_k` — no wave
/// layout, thread count, or pool backend enters — so survival is
/// bit-stable for a given (config, seed). Three deterministic families
/// survive, unioned:
///
/// 1. **Representatives**: every `⌈N/K⌉`-th point in enumeration order,
///    plus the last point (coverage of every region of the space).
/// 2. **Per-column top frontier**: the `K` highest coarse expectations of
///    each output column.
/// 3. **Per-column bottom frontier**: the `K` lowest, so both optimization
///    directions keep their extremes.
///
/// Ranking uses [`f64::total_cmp`] with ascending `point_idx` as the tie
/// break, so equal coarse expectations (and NaNs) order identically on
/// every run. `refine_top_k >= N` keeps everything — the refine pass then
/// degenerates to the exhaustive sweep.
///
/// Returns surviving `point_idx` values, ascending and deduplicated.
pub fn sketch_frontier(refine_top_k: usize, coarse: &[PointResult]) -> Vec<usize> {
    let n = coarse.len();
    if n == 0 {
        return Vec::new();
    }
    if refine_top_k >= n {
        return coarse.iter().map(|p| p.point_idx).collect();
    }
    let mut keep: BTreeSet<usize> = BTreeSet::new();
    let stride = n.div_ceil(refine_top_k);
    for i in (0..n).step_by(stride) {
        keep.insert(coarse[i].point_idx);
    }
    keep.insert(coarse[n - 1].point_idx);
    let n_cols = coarse[0].metrics.len();
    for c in 0..n_cols {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            coarse[a].metrics[c]
                .expectation()
                .total_cmp(&coarse[b].metrics[c].expectation())
                .then(coarse[a].point_idx.cmp(&coarse[b].point_idx))
        });
        for &i in order.iter().take(refine_top_k) {
            keep.insert(coarse[i].point_idx);
        }
        for &i in order.iter().rev().take(refine_top_k) {
            keep.insert(coarse[i].point_idx);
        }
    }
    keep.into_iter().collect()
}

/// Fold applied across the non-decision dimensions of a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OuterAgg {
    /// Worst case (`MAX(EXPECT …)`).
    Max,
    /// Best case.
    Min,
    /// Average case.
    Avg,
}

impl OuterAgg {
    fn fold(&self, xs: impl Iterator<Item = f64>) -> f64 {
        match self {
            OuterAgg::Max => xs.fold(f64::NEG_INFINITY, f64::max),
            OuterAgg::Min => xs.fold(f64::INFINITY, f64::min),
            OuterAgg::Avg => {
                let mut n = 0usize;
                let mut acc = 0.0;
                for x in xs {
                    acc += x;
                    n += 1;
                }
                if n == 0 {
                    f64::NAN
                } else {
                    acc / n as f64
                }
            }
        }
    }
}

/// Comparison in the `WHERE` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Comparison {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl Comparison {
    fn test(&self, lhs: f64, rhs: f64) -> bool {
        match self {
            Comparison::Lt => lhs < rhs,
            Comparison::Le => lhs <= rhs,
            Comparison::Gt => lhs > rhs,
            Comparison::Ge => lhs >= rhs,
        }
    }
}

/// The constraint: `OUTER(METRIC(column)) CMP threshold`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Output column name.
    pub column: String,
    /// Per-point metric.
    pub metric: Metric,
    /// Fold across scenario dimensions.
    pub outer: OuterAgg,
    /// Comparison operator.
    pub cmp: Comparison,
    /// Right-hand side.
    pub threshold: f64,
}

/// Optimization direction for one decision parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `FOR MAX @p`.
    Max,
    /// `FOR MIN @p`.
    Min,
}

/// One `FOR` objective.
#[derive(Debug, Clone)]
pub struct Objective {
    /// Decision parameter name.
    pub param: String,
    /// Direction.
    pub direction: Direction,
}

/// A complete `OPTIMIZE` goal.
#[derive(Debug, Clone)]
pub struct OptimizeGoal {
    /// `GROUP BY` parameters (decision variables).
    pub decision_params: Vec<String>,
    /// Constraints (conjunctive).
    pub constraints: Vec<Constraint>,
    /// Lexicographic objectives.
    pub objectives: Vec<Objective>,
}

/// The winning decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// `(param name, value)` for each decision parameter.
    pub assignment: Vec<(String, f64)>,
    /// Constraint left-hand sides for the winning group, in constraint
    /// order (e.g. the achieved worst-case overload risk).
    pub achieved: Vec<f64>,
    /// Point indices belonging to the winning group.
    pub member_points: Vec<usize>,
}

/// Strict lexicographic "greater" under `total_cmp` — the objective-key
/// comparison. `Vec<f64>`'s derived `PartialOrd` returns `false` on any
/// NaN comparison, which would silently *keep the incumbent* instead of
/// surfacing the bad key; `total_cmp` has no such trapdoor.
fn lex_gt(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        match x.total_cmp(y) {
            std::cmp::Ordering::Greater => return true,
            std::cmp::Ordering::Less => return false,
            std::cmp::Ordering::Equal => {}
        }
    }
    false
}

/// Apply an `OPTIMIZE` goal to sweep results.
///
/// Returns `Ok(None)` when no group satisfies the constraints. Returns
/// [`PdbError::NanMetric`] when a constraint metric evaluates to NaN for
/// any point of any group: `f64::max`/`min` silently *drop* NaN operands,
/// so without this check a point with an undefined metric (e.g.
/// [`Metric::ProbOver`] over zero samples) would neither fail the
/// constraint nor surface an error — it would just vanish from the fold
/// and let an unvalidated group win.
pub fn select(
    space: &ParamSpace,
    sweep: &SweepResult,
    goal: &OptimizeGoal,
    columns: &[String],
) -> Result<Option<Selection>> {
    let decision_dims: Vec<usize> = goal
        .decision_params
        .iter()
        .map(|p| space.index_of(p).unwrap_or_else(|| panic!("unknown decision parameter @{p}")))
        .collect();
    let col_idx: Vec<usize> = goal
        .constraints
        .iter()
        .map(|c| {
            columns
                .iter()
                .position(|n| *n == c.column)
                .unwrap_or_else(|| panic!("unknown output column `{}`", c.column))
        })
        .collect();

    // Group points by decision-parameter values.
    use std::collections::HashMap;
    let mut groups: HashMap<Vec<u64>, (Vec<f64>, Vec<usize>)> = HashMap::new();
    for (i, pr) in sweep.points.iter().enumerate() {
        let vals: Vec<f64> = decision_dims.iter().map(|&d| pr.point[d]).collect();
        let key: Vec<u64> = vals.iter().map(|v| v.to_bits()).collect();
        groups.entry(key).or_insert_with(|| (vals, Vec::new())).1.push(i);
    }

    // Deterministic group order: HashMap iteration order varies per map
    // instance, and `FOR` objectives need not cover every decision
    // parameter, so equally-good groups can tie. Sorting by the decision
    // values (numeric order, total_cmp) breaks ties toward the smallest
    // unconstrained values and keeps the winner identical across engines
    // and runs.
    let mut ordered: Vec<_> = groups.into_iter().collect();
    ordered.sort_by(|(_, (a, _)), (_, (b, _))| {
        a.iter()
            .zip(b)
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| o.is_ne())
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut best: Option<(Vec<f64>, Selection)> = None;
    for (_, (vals, members)) in ordered {
        // Evaluate each constraint's outer fold over the group.
        let mut achieved = Vec::with_capacity(goal.constraints.len());
        let mut ok = true;
        for (c, &ci) in goal.constraints.iter().zip(&col_idx) {
            // NaN-check every operand *before* the fold: f64::max/min keep
            // the non-NaN operand, so a poisoned point would otherwise be
            // dropped silently instead of reported.
            let mut values = Vec::with_capacity(members.len());
            for &i in &members {
                let x = c.metric.of(&sweep.points[i].metrics[ci]);
                if x.is_nan() {
                    return Err(PdbError::NanMetric(format!(
                        "{:?} of column `{}` at point {} is NaN",
                        c.metric, c.column, sweep.points[i].point_idx
                    )));
                }
                values.push(x);
            }
            let lhs = c.outer.fold(values.into_iter());
            achieved.push(lhs);
            if !c.cmp.test(lhs, c.threshold) {
                ok = false;
                break;
            }
        }
        if !ok {
            continue;
        }
        // Lexicographic objective key (negated for MIN so larger = better).
        let key: Vec<f64> =
            goal.objectives
                .iter()
                .map(|o| {
                    let d = goal.decision_params.iter().position(|p| *p == o.param).unwrap_or_else(
                        || panic!("objective @{} not a decision parameter", o.param),
                    );
                    match o.direction {
                        Direction::Max => vals[d],
                        Direction::Min => -vals[d],
                    }
                })
                .collect();
        let candidate = Selection {
            assignment: goal.decision_params.iter().cloned().zip(vals.iter().copied()).collect(),
            achieved,
            member_points: members,
        };
        match &best {
            None => best = Some((key, candidate)),
            Some((bk, _)) if lex_gt(&key, bk) => best = Some((key, candidate)),
            _ => {}
        }
    }
    Ok(best.map(|(_, s)| s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::JigsawConfig;
    use crate::optimizer::SweepRunner;
    use jigsaw_blackbox::{FnBlackBox, ParamDecl, ParamSpace};
    use jigsaw_pdb::BlackBoxSim;
    use jigsaw_prng::SeedSet;
    use std::sync::Arc;

    /// Deterministic "risk" surface: risk = week/100 unless the purchase
    /// happened at or before week 20, in which case risk collapses to 0.
    fn sim() -> (BlackBoxSim, ParamSpace) {
        let space = ParamSpace::new(vec![
            ParamDecl::range("week", 0, 49, 1),
            ParamDecl::range("purchase", 0, 40, 10),
        ]);
        let bb = FnBlackBox::new("risk", 2, |p: &[f64], _s| {
            let (week, purchase) = (p[0], p[1]);
            if purchase <= 20.0 {
                0.0
            } else if week >= purchase {
                week / 100.0
            } else {
                0.001
            }
        });
        (BlackBoxSim::new(Arc::new(bb), space.clone(), SeedSet::new(5)), space)
    }

    fn goal() -> OptimizeGoal {
        OptimizeGoal {
            decision_params: vec!["purchase".into()],
            constraints: vec![Constraint {
                column: "risk".into(),
                metric: jigsaw_pdb::Metric::Expect,
                outer: OuterAgg::Max,
                cmp: Comparison::Lt,
                threshold: 0.01,
            }],
            objectives: vec![Objective { param: "purchase".into(), direction: Direction::Max }],
        }
    }

    #[test]
    fn picks_latest_safe_purchase() {
        let (sim, space) = sim();
        let cfg = JigsawConfig::paper().with_n_samples(20);
        let sweep = SweepRunner::new(cfg).run(&sim).unwrap();
        let sel =
            select(&space, &sweep, &goal(), &["risk".to_string()]).unwrap().expect("feasible");
        // purchases 0,10,20 are safe; 30,40 breach the threshold for late
        // weeks. FOR MAX @purchase → 20.
        assert_eq!(sel.assignment, vec![("purchase".to_string(), 20.0)]);
        assert!(sel.achieved[0] < 0.01);
        assert_eq!(sel.member_points.len(), 50, "one per week");
    }

    #[test]
    fn infeasible_goal_returns_none() {
        let (sim, space) = sim();
        let cfg = JigsawConfig::paper().with_n_samples(20);
        let sweep = SweepRunner::new(cfg).run(&sim).unwrap();
        let mut g = goal();
        g.constraints[0].threshold = -1.0; // impossible
        assert!(select(&space, &sweep, &g, &["risk".to_string()]).unwrap().is_none());
    }

    #[test]
    fn min_direction_flips_choice() {
        let (sim, space) = sim();
        let cfg = JigsawConfig::paper().with_n_samples(20);
        let sweep = SweepRunner::new(cfg).run(&sim).unwrap();
        let mut g = goal();
        g.objectives[0].direction = Direction::Min;
        let sel = select(&space, &sweep, &g, &["risk".to_string()]).unwrap().unwrap();
        assert_eq!(sel.assignment[0].1, 0.0);
    }

    #[test]
    fn nan_metric_is_a_typed_error_not_a_silent_win() {
        let (sim, space) = sim();
        let cfg = JigsawConfig::paper().with_n_samples(20);
        let mut sweep = SweepRunner::new(cfg).run(&sim).unwrap();
        // Poison one point's metric: ProbOver over zero samples is NaN,
        // exactly the shape an empty-metrics bug upstream would produce.
        sweep.points[7].metrics[0] = jigsaw_pdb::OutputMetrics::from_samples(Vec::new());
        let mut g = goal();
        g.constraints[0].metric = jigsaw_pdb::Metric::ProbOver(0.005);
        let err = select(&space, &sweep, &g, &["risk".to_string()]).unwrap_err();
        match err {
            jigsaw_pdb::PdbError::NanMetric(msg) => {
                assert!(msg.contains("risk"), "names the column: {msg}");
            }
            other => panic!("expected NanMetric, got {other:?}"),
        }
    }

    #[test]
    fn outer_agg_folds() {
        assert_eq!(OuterAgg::Max.fold([1.0, 3.0, 2.0].into_iter()), 3.0);
        assert_eq!(OuterAgg::Min.fold([1.0, 3.0, 2.0].into_iter()), 1.0);
        assert!((OuterAgg::Avg.fold([1.0, 3.0, 2.0].into_iter()) - 2.0).abs() < 1e-12);
        assert!(OuterAgg::Avg.fold(std::iter::empty()).is_nan());
    }

    #[test]
    fn comparisons() {
        assert!(Comparison::Lt.test(1.0, 2.0));
        assert!(!Comparison::Lt.test(2.0, 2.0));
        assert!(Comparison::Le.test(2.0, 2.0));
        assert!(Comparison::Gt.test(3.0, 2.0));
        assert!(Comparison::Ge.test(2.0, 2.0));
    }

    fn coarse_table(expectations: &[f64]) -> Vec<PointResult> {
        expectations
            .iter()
            .enumerate()
            .map(|(i, &e)| PointResult {
                point_idx: i,
                point: vec![i as f64],
                metrics: vec![jigsaw_pdb::OutputMetrics::from_samples(vec![e])],
                reused_from: vec![None],
                coarse: true,
            })
            .collect()
    }

    #[test]
    fn sketch_frontier_keeps_extremes_and_representatives() {
        // 10 points, expectations 0..9 scrambled; K = 2.
        let table = coarse_table(&[4.0, 9.0, 1.0, 7.0, 0.0, 3.0, 8.0, 2.0, 6.0, 5.0]);
        let kept = sketch_frontier(2, &table);
        // Representatives (stride ⌈10/2⌉ = 5): 0, 5, plus last point 9.
        // Bottom 2 by expectation: points 4 (0.0), 2 (1.0).
        // Top 2: points 1 (9.0), 6 (8.0).
        assert_eq!(kept, vec![0, 1, 2, 4, 5, 6, 9]);
    }

    #[test]
    fn sketch_frontier_is_order_independent_and_tie_stable() {
        let table = coarse_table(&[5.0, 5.0, 5.0, 5.0, 5.0, 5.0]);
        let kept = sketch_frontier(2, &table);
        // All expectations tie: ranking falls back to ascending point_idx,
        // so the bottom frontier is {0, 1} and the top frontier {4, 5};
        // representatives (stride 3) add {0, 3} and the last point 5.
        assert_eq!(kept, vec![0, 1, 3, 4, 5]);
        // Shuffling the table rows must not change survival: the rule keys
        // on point_idx and metric values, never on row order.
        let mut shuffled = table.clone();
        shuffled.reverse();
        // Representatives stride over enumeration order, so restore it.
        shuffled.sort_by_key(|p| p.point_idx);
        assert_eq!(sketch_frontier(2, &shuffled), kept);
    }

    #[test]
    fn sketch_frontier_degenerates_to_everything() {
        let table = coarse_table(&[3.0, 1.0, 2.0]);
        assert_eq!(sketch_frontier(3, &table), vec![0, 1, 2]);
        assert_eq!(sketch_frontier(100, &table), vec![0, 1, 2]);
        assert_eq!(sketch_frontier(5, &[]), Vec::<usize>::new());
    }

    #[test]
    fn sketch_frontier_orders_nan_deterministically() {
        let table = coarse_table(&[1.0, f64::NAN, 2.0, f64::NAN, 0.5]);
        let a = sketch_frontier(1, &table);
        let b = sketch_frontier(1, &table);
        // total_cmp sorts NaN above +inf: the top frontier is a NaN point,
        // picked identically on every call.
        assert_eq!(a, b);
        assert!(a.contains(&3), "highest-ranked NaN (larger idx wins rev order): {a:?}");
        assert!(a.contains(&4), "lowest expectation survives: {a:?}");
    }
}
