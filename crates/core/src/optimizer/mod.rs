//! The batch optimizer: Figure 3's pipeline with fingerprint memoization.
//!
//! `Parameter Enumerator → [fingerprint → FindMatch → (reuse | complete
//! simulation)] → Estimator → Selector`.
//!
//! [`SweepRunner`] evaluates a [`Simulation`] over its whole parameter
//! space. At every point it first computes the fingerprint (the first `m`
//! Monte Carlo rounds), probes the per-column basis-store shards, and either
//! reuses a mapped basis or completes the remaining `n − m` rounds. The
//! runner itself is a thin configuration facade: execution lives in the
//! batch-synchronous parallel [`executor`], whose output is bit-identical
//! for every thread count and wave size. The [`selector`] module then
//! applies the `OPTIMIZE` goal to the sweep results.

pub mod executor;
pub mod pool;
pub mod selector;

use std::sync::Arc;

use jigsaw_pdb::{OutputMetrics, Result, Simulation};

use crate::basis::BasisId;
use crate::config::JigsawConfig;
use crate::mapping::{AffineFamily, MappingFamily};
use crate::telemetry::SweepStats;

pub use executor::{ScopedPool, WorkerPool};
pub use pool::PersistentPool;
pub use selector::{
    sketch_frontier, Comparison, Constraint, Direction, Objective, OptimizeGoal, OuterAgg,
    Selection,
};

/// Result for one parameter point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointResult {
    /// Point index within the parameter space.
    pub point_idx: usize,
    /// The materialized parameter values.
    pub point: Vec<f64>,
    /// Per-output-column metrics, aligned with `Simulation::columns()`.
    pub metrics: Vec<OutputMetrics>,
    /// Bases reused per column (`None` = full simulation for that column).
    pub reused_from: Vec<Option<BasisId>>,
    /// `true` when the metrics are coarse sketch estimates — the point was
    /// pruned by a sketch-then-refine sweep and never re-ran at full
    /// budget. Always `false` for exhaustive sweeps and refined points.
    pub coarse: bool,
}

/// Outcome of a full parameter-space sweep.
pub struct SweepResult {
    /// Per-point results, in enumeration order.
    pub points: Vec<PointResult>,
    /// Execution statistics.
    pub stats: SweepStats,
}

impl SweepResult {
    /// Look up the metrics of column `col` at point `idx`.
    pub fn metrics_at(&self, idx: usize, col: usize) -> &OutputMetrics {
        &self.points[idx].metrics[col]
    }
}

/// Fluent sweep builder and executor facade — the single entry point for
/// both the self-contained sweep (snapshot load/save handled for you) and
/// the store-attached sweep the session server drives.
///
/// ```ignore
/// // Self-contained: cfg.basis_load / basis_save drive persistence.
/// let result = SweepRunner::new(cfg).run(&sim)?;
///
/// // Attached to a borrowed store, on a long-lived pool:
/// let mut runner = SweepRunner::new(cfg)
///     .pool(Arc::new(PersistentPool::new(4)))
///     .store(&mut stores);
/// let cold = runner.run(&sim)?;
/// let warm = runner.run(&sim)?; // same store: all warm hits
/// ```
///
/// The configuration is held behind an [`Arc`], so cloning a runner — or
/// constructing many runners over one configuration (benchmark loops, the
/// session server's per-`SWEEP` runners) — never deep-copies the config.
/// The lifetime parameter is `'static` until [`SweepRunner::store`]
/// attaches a borrowed store.
pub struct SweepRunner<'s> {
    cfg: Arc<JigsawConfig>,
    family: Arc<dyn MappingFamily>,
    pool: Arc<dyn executor::WorkerPool>,
    store: Option<&'s mut crate::basis::ShardedBasisStore>,
    /// Disable fingerprint reuse entirely (the "Full Evaluation" baseline of
    /// Figure 8).
    pub disable_reuse: bool,
}

impl SweepRunner<'static> {
    /// Runner with the paper's affine mapping family. Accepts an owned
    /// [`JigsawConfig`] or an `Arc` to one (shared, not cloned).
    pub fn new(cfg: impl Into<Arc<JigsawConfig>>) -> Self {
        let cfg = cfg.into();
        cfg.validate();
        SweepRunner {
            cfg,
            family: Arc::new(AffineFamily),
            pool: Arc::new(executor::ScopedPool),
            store: None,
            disable_reuse: false,
        }
    }

    /// Runner with a custom mapping family.
    pub fn with_family(cfg: impl Into<Arc<JigsawConfig>>, family: Arc<dyn MappingFamily>) -> Self {
        let mut r = Self::new(cfg);
        r.family = family;
        r
    }

    /// The naive baseline: every point fully simulated.
    pub fn naive(cfg: impl Into<Arc<JigsawConfig>>) -> Self {
        let mut r = Self::new(cfg);
        r.disable_reuse = true;
        r
    }
}

impl<'s> SweepRunner<'s> {
    /// Substitute the worker pool the parallel phases run on (default:
    /// per-phase scoped threads; a long-lived process wants a
    /// [`PersistentPool`]). Any faithful [`executor::WorkerPool`] yields
    /// bit-identical sweeps; this is a pure provisioning knob.
    pub fn pool(mut self, pool: Arc<dyn executor::WorkerPool>) -> Self {
        self.pool = pool;
        self
    }

    /// Attach an existing store (warm or cold) for [`SweepRunner::run`] to
    /// sweep against, leaving snapshot persistence to the caller — the
    /// entry point the session server drives with a store borrowed out of
    /// a [`crate::basis::SharedBasisStore`]. Bases already present count
    /// resolves as `warm_hits`.
    pub fn store<'t>(self, stores: &'t mut crate::basis::ShardedBasisStore) -> SweepRunner<'t> {
        SweepRunner {
            cfg: self.cfg,
            family: self.family,
            pool: self.pool,
            store: Some(stores),
            disable_reuse: self.disable_reuse,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &JigsawConfig {
        &self.cfg
    }

    /// Run the sweep over the simulation's entire parameter space.
    ///
    /// With a store attached via [`SweepRunner::store`], the sweep runs
    /// against that store and the caller owns persistence; without one, the
    /// runner builds its own store honoring `cfg.basis_load` /
    /// `cfg.basis_save`. Either way execution is the batch-synchronous
    /// [`executor`]: with `threads = 1` this replays the sequential point
    /// loop exactly, and any other thread budget produces bit-identical
    /// output faster. `&mut self` only threads the store borrow — repeat
    /// runs on one runner warm-start against the bases earlier runs built.
    pub fn run(&mut self, sim: &dyn Simulation) -> Result<SweepResult> {
        if let Some(stores) = self.store.as_deref_mut() {
            return Self::dispatch(
                &self.cfg,
                self.disable_reuse,
                sim,
                stores,
                &*self.pool,
                &self.family,
            );
        }
        let n_cols = sim.columns().len();
        let mut stores = match &self.cfg.basis_load {
            Some(path) => crate::basis::ShardedBasisStore::load_snapshot(
                path,
                &self.cfg,
                self.family.clone(),
                n_cols,
            )?,
            None => crate::basis::ShardedBasisStore::new(n_cols, &self.cfg, self.family.clone()),
        };
        let result = Self::dispatch(
            &self.cfg,
            self.disable_reuse,
            sim,
            &mut stores,
            &*self.pool,
            &self.family,
        )?;
        if let Some(path) = &self.cfg.basis_save {
            stores.save_snapshot(&self.cfg, self.family.name(), path)?;
        }
        Ok(result)
    }

    /// Exhaustive wave sweep, or the two-phase sketch-then-refine sweep
    /// when `cfg.sketch_budget` asks for one.
    fn dispatch(
        cfg: &JigsawConfig,
        disable_reuse: bool,
        sim: &dyn Simulation,
        stores: &mut crate::basis::ShardedBasisStore,
        pool: &dyn executor::WorkerPool,
        family: &Arc<dyn MappingFamily>,
    ) -> Result<SweepResult> {
        if cfg.sketch_enabled() {
            executor::execute_sketch_refine(cfg, disable_reuse, sim, stores, pool, family.clone())
        } else {
            executor::execute(cfg, disable_reuse, sim, stores, pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexStrategy;
    use jigsaw_blackbox::models::{Demand, SynthBasis};
    use jigsaw_blackbox::{BlackBox, ParamDecl, ParamSpace};
    use jigsaw_pdb::BlackBoxSim;
    use jigsaw_prng::SeedSet;

    fn cfg() -> JigsawConfig {
        JigsawConfig::paper().with_n_samples(200)
    }

    fn demand_sim() -> BlackBoxSim {
        let space = ParamSpace::new(vec![
            ParamDecl::range("week", 0, 19, 1),
            ParamDecl::set("feature", vec![5, 12]),
        ]);
        BlackBoxSim::new(Arc::new(Demand::paper()), space, SeedSet::new(2024))
    }

    #[test]
    fn demand_needs_very_few_bases() {
        // Paper §6.2: "the extremely simplistic Demand model requires only
        // one basis distribution for its entire parameter space". Week 0 is
        // a point mass (its own constant basis), so at most 2 here.
        let r = SweepRunner::new(cfg()).run(&demand_sim()).unwrap();
        assert!(r.stats.bases_per_column[0] <= 2, "bases: {:?}", r.stats.bases_per_column);
        assert!(r.stats.reuse_rate() > 0.9, "reuse rate {}", r.stats.reuse_rate());
    }

    #[test]
    fn jigsaw_equals_naive_exactly() {
        // The paper's correctness claim (§6.2): "outputs of Jigsaw are
        // equivalent to full simulation for each possible parameter value."
        let sim = demand_sim();
        let fast = SweepRunner::new(cfg()).run(&sim).unwrap();
        let slow = SweepRunner::naive(cfg()).run(&sim).unwrap();
        assert_eq!(fast.points.len(), slow.points.len());
        for (f, s) in fast.points.iter().zip(&slow.points) {
            let (fm, sm) = (&f.metrics[0], &s.metrics[0]);
            assert!(
                (fm.expectation() - sm.expectation()).abs()
                    <= 1e-9 * sm.expectation().abs().max(1.0),
                "point {}: {} vs {}",
                f.point_idx,
                fm.expectation(),
                sm.expectation()
            );
            assert!(
                (fm.std_dev() - sm.std_dev()).abs() <= 1e-9 * sm.std_dev().abs().max(1.0),
                "point {}: sd {} vs {}",
                f.point_idx,
                fm.std_dev(),
                sm.std_dev()
            );
        }
    }

    #[test]
    fn naive_runner_never_reuses() {
        let r = SweepRunner::naive(cfg()).run(&demand_sim()).unwrap();
        assert_eq!(r.stats.reused, 0);
        assert_eq!(r.stats.full_simulations, r.stats.points);
        assert_eq!(r.stats.bases_per_column, vec![0]);
    }

    #[test]
    fn synth_basis_generates_exact_basis_count() {
        for n_bases in [1usize, 3, 7] {
            let space = ParamSpace::new(vec![ParamDecl::range("p", 0, 48, 1)]);
            let sim = BlackBoxSim::new(Arc::new(SynthBasis::new(n_bases)), space, SeedSet::new(7));
            let r = SweepRunner::new(cfg()).run(&sim).unwrap();
            assert_eq!(
                r.stats.bases_per_column[0], n_bases,
                "SynthBasis({n_bases}) must create exactly {n_bases} bases"
            );
        }
    }

    #[test]
    fn worlds_evaluated_accounts_fingerprints_and_completions() {
        let r = SweepRunner::new(cfg()).run(&demand_sim()).unwrap();
        let m = 10u64;
        let n = 200u64;
        let expect = r.stats.points as u64 * m + r.stats.full_simulations as u64 * (n - m);
        assert_eq!(r.stats.worlds_evaluated, expect);
        // And the reused points save essentially all completion work.
        assert!(r.stats.worlds_evaluated < r.stats.points as u64 * n / 2);
    }

    #[test]
    fn all_index_strategies_agree_on_results() {
        let sim = demand_sim();
        let base = SweepRunner::new(cfg().with_index(IndexStrategy::Array)).run(&sim).unwrap();
        for strat in [IndexStrategy::Normalization, IndexStrategy::SortedSid] {
            let other = SweepRunner::new(cfg().with_index(strat)).run(&sim).unwrap();
            for (a, b) in base.points.iter().zip(&other.points) {
                assert!(
                    (a.metrics[0].expectation() - b.metrics[0].expectation()).abs() < 1e-9,
                    "{strat:?} disagrees at point {}",
                    a.point_idx
                );
            }
        }
    }

    #[test]
    fn reused_points_record_their_basis() {
        let r = SweepRunner::new(cfg()).run(&demand_sim()).unwrap();
        let reused: Vec<_> = r.points.iter().filter(|p| p.reused_from[0].is_some()).collect();
        assert!(!reused.is_empty());
        // Every reused basis id must be valid.
        for p in reused {
            let id = p.reused_from[0].unwrap();
            assert!(id.0 < r.stats.bases_per_column[0]);
        }
    }

    /// A deliberately non-reusable black box: distinct non-affine shape at
    /// every point (cubic coefficient varies).
    struct NoReuse;
    impl BlackBox for NoReuse {
        fn name(&self) -> &str {
            "NoReuse"
        }
        fn arity(&self) -> usize {
            1
        }
        fn eval(&self, p: &[f64], seed: jigsaw_prng::Seed) -> f64 {
            use jigsaw_prng::{dist::Normal, Xoshiro256pp};
            let mut rng = Xoshiro256pp::seeded(seed);
            let z = Normal::standard(&mut rng);
            z + (1.0 + p[0]) * z * z * z
        }
    }

    #[test]
    fn adversarial_model_defeats_reuse_gracefully() {
        let space = ParamSpace::new(vec![ParamDecl::range("p", 0, 14, 1)]);
        let sim = BlackBoxSim::new(Arc::new(NoReuse), space, SeedSet::new(3));
        let r = SweepRunner::new(cfg()).run(&sim).unwrap();
        assert_eq!(r.stats.reused, 0);
        assert_eq!(r.stats.bases_per_column[0], 15, "every point its own basis");
    }
}
