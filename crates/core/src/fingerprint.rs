//! Fingerprints of stochastic functions.
//!
//! "The fingerprint of a parameterized stochastic function `F(P_i)`, with
//! respect to a vector of `m` seed values `{σ_k}`, is the vector of size `m`
//! where the k'th entry is the output of `F(P_i)` with `σ_k` as the random
//! seed." (paper §3.1)
//!
//! Because the seed set is global and fixed, a fingerprint is a
//! *deterministic* signature of the function's output distribution: two
//! parameter points whose distributions are related by a mapping function
//! produce fingerprints related by the same mapping, entry by entry.

use std::fmt;

/// A fingerprint: the function's outputs under the global seed vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Fingerprint(Vec<f64>);

impl Fingerprint {
    /// Wrap raw outputs (entry `k` must correspond to seed `σ_k`).
    pub fn new(entries: Vec<f64>) -> Self {
        assert!(!entries.is_empty(), "fingerprints must be non-empty");
        assert!(entries.iter().all(|x| x.is_finite()), "fingerprint entries must be finite");
        Fingerprint(entries)
    }

    /// The entries.
    pub fn entries(&self) -> &[f64] {
        &self.0
    }

    /// Fingerprint length `m`.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Never true (constructor rejects empty).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Index of the first entry distinct from entry `i0` under relative
    /// tolerance `tol`, scanning forward.
    pub fn first_distinct_pair(&self, tol: f64) -> Option<(usize, usize)> {
        let a = self.0[0];
        for (j, &b) in self.0.iter().enumerate().skip(1) {
            if !approx_eq(a, b, tol) {
                return Some((0, j));
            }
        }
        None
    }

    /// True when every entry equals every other within tolerance.
    pub fn is_constant(&self, tol: f64) -> bool {
        self.first_distinct_pair(tol).is_none()
    }

    /// Elementwise approximate equality.
    pub fn approx_eq(&self, other: &Fingerprint, tol: f64) -> bool {
        self.0.len() == other.0.len()
            && self.0.iter().zip(&other.0).all(|(&a, &b)| approx_eq(a, b, tol))
    }
}

/// Relative-tolerance scalar comparison: `|a − b| ≤ tol · max(1, |a|, |b|)`.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}

/// Validate `α·from[k] + β ≈ to[k]` for every `k` — the mapping-discovery
/// inner loop (Algorithm 2's witness scan), run over the two contiguous
/// fingerprint columns at once. The per-entry predicate is exactly
/// [`approx_eq`], so match decisions are bit-identical to the scalar loop;
/// the slice form exists so the candidate-probe hot path reads straight
/// through both columns without touching `Fingerprint` accessors per entry.
#[inline]
pub fn affine_fits(from: &[f64], to: &[f64], alpha: f64, beta: f64, tol: f64) -> bool {
    from.len() == to.len()
        && from.iter().zip(to).all(|(&x, &y)| approx_eq(alpha * x + beta, y, tol))
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, x) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:.6}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_pair_detection() {
        let fp = Fingerprint::new(vec![2.0, 2.0, 2.0, 5.0, 7.0]);
        assert_eq!(fp.first_distinct_pair(1e-9), Some((0, 3)));
        let c = Fingerprint::new(vec![3.0; 4]);
        assert_eq!(c.first_distinct_pair(1e-9), None);
        assert!(c.is_constant(1e-9));
    }

    #[test]
    fn approx_eq_relative_scaling() {
        // Near zero, tolerance is absolute.
        assert!(approx_eq(0.0, 1e-12, 1e-9));
        // At magnitude 1e9, the same relative tolerance admits ~1 absolute.
        assert!(approx_eq(1e9, 1e9 + 0.5, 1e-9));
        assert!(!approx_eq(1e9, 1e9 + 10.0, 1e-9));
        assert!(!approx_eq(1.0, 1.001, 1e-9));
    }

    #[test]
    fn fingerprint_approx_eq() {
        let a = Fingerprint::new(vec![1.0, 2.0, 3.0]);
        let b = Fingerprint::new(vec![1.0 + 1e-12, 2.0, 3.0 - 1e-12]);
        assert!(a.approx_eq(&b, 1e-9));
        let c = Fingerprint::new(vec![1.0, 2.0]);
        assert!(!a.approx_eq(&c, 1e-9), "length mismatch");
        let d = Fingerprint::new(vec![1.0, 2.0, 4.0]);
        assert!(!a.approx_eq(&d, 1e-9));
    }

    #[test]
    fn display_is_compact() {
        let fp = Fingerprint::new(vec![1.0, 2.5]);
        assert_eq!(fp.to_string(), "[1.000000, 2.500000]");
    }

    #[test]
    fn affine_fits_matches_per_entry_approx_eq() {
        let from = [1.0, 2.0, 3.0, 4.0];
        let to: Vec<f64> = from.iter().map(|&x| 2.0 * x - 1.0).collect();
        assert!(affine_fits(&from, &to, 2.0, -1.0, 1e-9));
        assert!(!affine_fits(&from, &to, 2.0, -1.001, 1e-9));
        let mut off = to.clone();
        off[3] += 0.01;
        assert!(!affine_fits(&from, &off, 2.0, -1.0, 1e-9));
        assert!(!affine_fits(&from, &to[..3], 2.0, -1.0, 1e-9), "length mismatch");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_rejected() {
        let _ = Fingerprint::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        let _ = Fingerprint::new(vec![1.0, f64::NAN]);
    }
}
