//! Terminal rendering of `GRAPH OVER` output (paper §2.2, Figure 2).
//!
//! The interactive query names an X-axis parameter and styles per series:
//!
//! ```sql
//! GRAPH OVER @current_week
//!     EXPECT overload WITH bold red,
//!     EXPECT capacity WITH blue y2;
//! ```
//!
//! The GUI of the original is a dashboard; here the same specification is
//! rendered as an ASCII chart, which the `interactive_dashboard` example
//! animates as estimates refine.

/// Visual style tokens accepted after `WITH` (rendering hints; the ASCII
/// backend maps each series to a distinct glyph and notes the hints in the
/// legend).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SeriesStyle {
    /// Style words (`bold`, `red`, `y2`, …) in query order.
    pub hints: Vec<String>,
}

/// One series of a `GRAPH OVER` specification.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSpec {
    /// Series label (e.g. `EXPECT overload`).
    pub label: String,
    /// Y values, aligned with the X axis points (NaN = not yet estimated).
    pub values: Vec<f64>,
    /// Style hints.
    pub style: SeriesStyle,
}

/// Render series as a fixed-size ASCII chart with a legend.
///
/// All series share one Y scale (min..max over finite values). Returns the
/// chart as a string; callers print or diff it.
pub fn render_series(x_label: &str, series: &[GraphSpec], width: usize, height: usize) -> String {
    assert!(width >= 8 && height >= 3, "chart too small");
    let glyphs = ['*', '+', 'o', 'x', '#', '@'];
    let finite: Vec<f64> =
        series.iter().flat_map(|s| s.values.iter().copied()).filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return format!("(no data yet over {x_label})\n");
    }
    let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = if hi > lo { hi - lo } else { 1.0 };
    let n_points = series.iter().map(|s| s.values.len()).max().unwrap_or(0);

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = glyphs[si % glyphs.len()];
        for (i, &v) in s.values.iter().enumerate() {
            if !v.is_finite() {
                continue;
            }
            let x = if n_points <= 1 { 0 } else { i * (width - 1) / (n_points - 1) };
            let y_frac = (v - lo) / span;
            let y = ((1.0 - y_frac) * (height - 1) as f64).round() as usize;
            grid[y.min(height - 1)][x.min(width - 1)] = glyph;
        }
    }

    let mut out = String::new();
    out.push_str(&format!("{hi:>10.2} ┤"));
    out.push_str(&grid[0].iter().collect::<String>());
    out.push('\n');
    for row in &grid[1..height - 1] {
        out.push_str("           │");
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&format!("{lo:>10.2} ┤"));
    out.push_str(&grid[height - 1].iter().collect::<String>());
    out.push('\n');
    out.push_str(&format!("           └{}\n", "─".repeat(width)));
    out.push_str(&format!("            {x_label}\n"));
    for (si, s) in series.iter().enumerate() {
        let hints = if s.style.hints.is_empty() {
            String::new()
        } else {
            format!(" ({})", s.style.hints.join(" "))
        };
        out.push_str(&format!("            {} {}{}\n", glyphs[si % glyphs.len()], s.label, hints));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(label: &str, values: Vec<f64>) -> GraphSpec {
        GraphSpec { label: label.into(), values, style: SeriesStyle::default() }
    }

    #[test]
    fn renders_legend_and_bounds() {
        let g = render_series("week", &[spec("EXPECT demand", vec![0.0, 5.0, 10.0])], 24, 6);
        assert!(g.contains("EXPECT demand"));
        assert!(g.contains("10.00"));
        assert!(g.contains("0.00"));
        assert!(g.contains("week"));
    }

    #[test]
    fn empty_series_have_placeholder() {
        let g = render_series("week", &[spec("a", vec![f64::NAN, f64::NAN])], 24, 6);
        assert!(g.contains("no data yet"));
    }

    #[test]
    fn multiple_series_use_distinct_glyphs() {
        let g =
            render_series("week", &[spec("a", vec![0.0, 1.0]), spec("b", vec![1.0, 0.0])], 16, 5);
        assert!(g.contains('*'));
        assert!(g.contains('+'));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let g = render_series("week", &[spec("flat", vec![3.0, 3.0, 3.0])], 16, 4);
        assert!(g.contains("flat"));
    }

    #[test]
    fn style_hints_in_legend() {
        let s = GraphSpec {
            label: "EXPECT overload".into(),
            values: vec![0.1, 0.2],
            style: SeriesStyle { hints: vec!["bold".into(), "red".into()] },
        };
        let g = render_series("week", &[s], 16, 4);
        assert!(g.contains("(bold red)"));
    }

    #[test]
    #[should_panic(expected = "chart too small")]
    fn tiny_chart_rejected() {
        let _ = render_series("x", &[], 2, 2);
    }
}
