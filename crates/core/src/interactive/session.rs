//! The interactive event loop (paper Algorithm 5).

use std::collections::HashMap;
use std::sync::Arc;

use jigsaw_pdb::{OutputMetrics, PdbError, Result, Simulation};

use crate::basis::{BasisId, ShardedBasisStore, SharedBasisStore};
use crate::config::JigsawConfig;
use crate::fingerprint::Fingerprint;
use crate::mapping::{AffineFamily, AffineMap};

/// Which processing task a tick performed (paper §5's three categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// More samples for the focused point.
    Refinement,
    /// Re-generate fingerprint-extending samples to validate the mapping.
    Validation,
    /// Pre-warm a neighboring point.
    Exploration,
}

/// Tunables for an interactive session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionConfig {
    /// Samples generated per tick (paper: `PickAtRandom(10, …)`).
    pub batch: usize,
    /// Initial fingerprint size for first contact with a point.
    pub fingerprint_len: usize,
    /// Matching tolerance.
    pub tolerance: f64,
    /// Cap on samples per point (refinement stops there).
    pub n_target: usize,
    /// Thread budget for world evaluation. Ticks go through the same
    /// budgeted [`jigsaw_pdb::eval_batch`] entry point as the sweep
    /// executor, so refinement batches parallelize with bit-identical
    /// results for any value (`0` = all cores).
    pub threads: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            batch: 10,
            fingerprint_len: 10,
            tolerance: 1e-9,
            n_target: 1000,
            threads: 1,
        }
    }
}

impl SessionConfig {
    /// Override the thread budget.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Derive a session configuration compatible with a sweep
    /// configuration: same fingerprint length and tolerance (so the
    /// session's fingerprints match bases a sweep built), `n_target` capped
    /// at the sweep's sample count (so refining a point never outgrows —
    /// and therefore never mutates — a sweep-built basis), and the same
    /// thread budget. The session server attaches every client this way.
    pub fn from_jigsaw(cfg: &JigsawConfig) -> Self {
        SessionConfig {
            batch: 10,
            fingerprint_len: cfg.fingerprint_len,
            tolerance: cfg.tolerance,
            n_target: cfg.n_samples,
            threads: cfg.threads,
        }
    }
}

/// Where an estimate's numbers come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimateSource {
    /// Mapped from a matched basis distribution (cheap, immediate).
    MappedBasis,
    /// Directly simulated samples only.
    Direct,
}

/// The `z` multiplier behind every anytime bound: `mean ± z·sd/√n` with
/// `z = 3` (a ~99.7% normal interval). One fixed constant keeps the bound
/// a pure function of the sample state, which the determinism contract
/// (converged `SUBSCRIBE` ≡ blocking `ESTIMATE`, bit for bit) relies on.
pub const BOUND_Z: f64 = 3.0;

/// A progressively-refined estimate for one point and column.
#[derive(Debug, Clone)]
pub struct Estimate {
    /// Point index in the parameter space.
    pub point_idx: usize,
    /// Expectation of the output column.
    pub expectation: f64,
    /// Standard deviation of the output column.
    pub std_dev: f64,
    /// Lower edge of the anytime bound on the true expectation (tier 0+).
    /// `-∞` when one sample cannot bound the spread; NaN only when the
    /// expectation itself is NaN (never served over the wire — see
    /// [`InteractiveSession::estimate_now`]).
    pub lo: f64,
    /// Upper edge of the anytime bound (see `lo`).
    pub hi: f64,
    /// Samples backing the estimate.
    pub n_samples: usize,
    /// Provenance.
    pub source: EstimateSource,
}

impl Estimate {
    /// Width of the anytime bound (`hi - lo`; `+∞`/NaN propagate).
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// A bounded estimate: the result of refining until the anytime interval
/// is at most `eps` wide or the sample budget runs out.
#[derive(Debug, Clone)]
pub struct BoundedEstimate {
    /// The final estimate (its `lo`/`hi` carry the achieved bound).
    pub estimate: Estimate,
    /// Whether `width ≤ eps` was reached (false = budget exhausted first).
    pub converged: bool,
    /// Refinement steps taken after the initial tier-0 answer.
    pub steps: usize,
}

/// Per-(point, column) progress.
struct PointColState {
    /// Samples generated directly at this point (sample ids `0..n_direct`).
    n_direct: usize,
    /// Direct samples (for metric extraction and basis refinement).
    metrics: OutputMetrics,
    /// Matched basis and mapping, if any.
    basis: Option<(BasisId, AffineMap)>,
    /// Running intersection of every raw CLT bound observed for this
    /// (point, column). Raw `mean ± z·sd/√n` intervals are *not*
    /// monotone — one outlier can widen them — but each contains the true
    /// mean w.h.p., so their intersection does too and can only shrink.
    /// This is what makes the streamed `INTERVAL` sequence non-widening.
    bound: Option<(f64, f64)>,
}

/// Fold a fresh raw bound into the running intersection. A drifting mean
/// can empty the intersection; in that case keep the last consistent
/// interval (skipping the update) rather than inverting or re-widening.
fn tighten_bound(stored: &mut Option<(f64, f64)>, raw: Option<(f64, f64)>) {
    let Some((rlo, rhi)) = raw else { return };
    match stored {
        None => *stored = Some((rlo, rhi)),
        Some((slo, shi)) => {
            let lo = slo.max(rlo);
            let hi = shi.min(rhi);
            if lo <= hi {
                *stored = Some((lo, hi));
            }
        }
    }
}

/// The interval `estimate()` reports: the stored running intersection
/// narrowed by the current raw bound (read-only — `&self` cannot persist
/// the tightening; the next mutating op will). `(NaN, NaN)` only when no
/// bound exists at all, which implies a NaN expectation.
fn effective_bound(stored: Option<(f64, f64)>, raw: Option<(f64, f64)>) -> (f64, f64) {
    match (stored, raw) {
        (Some((slo, shi)), Some((rlo, rhi))) => {
            let lo = slo.max(rlo);
            let hi = shi.min(rhi);
            if lo <= hi {
                (lo, hi)
            } else {
                (slo, shi)
            }
        }
        (Some(s), None) => s,
        (None, Some(r)) => r,
        (None, None) => (f64::NAN, f64::NAN),
    }
}

/// State for one point across all output columns.
struct PointState {
    cols: Vec<PointColState>,
}

/// An interactive what-if session over one simulation.
///
/// The session owns its per-point progress but only *borrows into* a
/// [`SharedBasisStore`]: created standalone ([`Self::new`] /
/// [`Self::with_store`]) the store has a single attachment, while
/// [`Self::attach`] joins an existing shared store so several sessions (and
/// sweeps) amortize one warm basis set. Touches fully served by bases the
/// session did not itself create are counted in [`Self::warm_hits`].
///
/// The simulation is shared via [`Arc`], so a session is `'static` and can
/// be owned by long-lived infrastructure (the server's event-driven
/// connections) alongside the simulation it runs.
pub struct InteractiveSession {
    sim: Arc<dyn Simulation>,
    cfg: SessionConfig,
    store: SharedBasisStore,
    /// Basis ids (per column) this session inserted itself. Matches against
    /// any *other* basis are warm hits: work someone else — another
    /// session, a sweep, a loaded snapshot — already paid for.
    own: Vec<std::collections::HashSet<usize>>,
    /// Store generation last observed; a mismatch means the store was
    /// replaced wholesale and every cached basis link is stale.
    seen_generation: u64,
    points: HashMap<usize, PointState>,
    focus: usize,
    tick: u64,
    /// Worlds evaluated so far (the online cost metric).
    pub worlds_evaluated: u64,
    /// Points whose first touch was fully served by bases this session did
    /// not itself create (cross-session / cross-sweep warm reuse).
    pub warm_hits: u64,
}

/// Handles to the session-layer global instruments (see `jigsaw_obs`);
/// registered once, lock-free to update, purely observational.
struct SessionObs {
    touches: jigsaw_obs::Counter,
    warm_hits: jigsaw_obs::Counter,
    tier0: jigsaw_obs::Counter,
    refined: jigsaw_obs::Counter,
}

fn session_obs() -> &'static SessionObs {
    static OBS: std::sync::OnceLock<SessionObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| {
        let g = jigsaw_obs::global();
        SessionObs {
            touches: g.counter("jigsaw_session_touches_total", &[]),
            warm_hits: g.counter("jigsaw_session_warm_hits_total", &[]),
            tier0: g.counter("jigsaw_session_estimates_total", &[("tier", "tier0")]),
            refined: g.counter("jigsaw_session_estimates_total", &[("tier", "refined")]),
        }
    })
}

impl InteractiveSession {
    /// Start a session focused on point 0, with empty (cold) basis stores.
    pub fn new(sim: Arc<dyn Simulation>, cfg: SessionConfig) -> Self {
        let jcfg = JigsawConfig::paper()
            .with_fingerprint_len(cfg.fingerprint_len)
            .with_n_samples(cfg.n_target.max(cfg.fingerprint_len))
            .with_tolerance(cfg.tolerance);
        let store = SharedBasisStore::new(sim.columns().len(), &jcfg, Arc::new(AffineFamily));
        Self::attach(sim, cfg, store)
    }

    /// Start a session from a pre-populated basis store — e.g. one loaded
    /// from a snapshot of an earlier sweep or session over the same
    /// scenario (see [`crate::basis::snapshot`]), so the first touches of
    /// familiar points resolve immediately instead of ramping up cold.
    ///
    /// The store must have one shard per output column of `sim`.
    pub fn with_store(
        sim: Arc<dyn Simulation>,
        cfg: SessionConfig,
        store: ShardedBasisStore,
    ) -> Self {
        Self::attach(sim, cfg, SharedBasisStore::from_store(store))
    }

    /// Attach to a *shared* basis store: the session reads and grows the
    /// same store every other attachment uses, so its first touches of
    /// points other clients already explored resolve warm. Matches against
    /// bases the session did not itself create count toward
    /// [`Self::warm_hits`].
    ///
    /// The store must have one shard per output column of `sim`.
    pub fn attach(sim: Arc<dyn Simulation>, cfg: SessionConfig, store: SharedBasisStore) -> Self {
        assert!(cfg.batch > 0 && cfg.fingerprint_len >= 2);
        assert_eq!(
            store.n_shards(),
            sim.columns().len(),
            "warm store must have one shard per output column"
        );
        let seen_generation = store.generation();
        let n_cols = sim.columns().len();
        InteractiveSession {
            sim,
            cfg,
            store,
            own: vec![std::collections::HashSet::new(); n_cols],
            seen_generation,
            points: HashMap::new(),
            focus: 0,
            tick: 0,
            worlds_evaluated: 0,
            warm_hits: 0,
        }
    }

    /// End the session and reclaim its basis store (for snapshotting — the
    /// dual of [`Self::with_store`]).
    ///
    /// Panics if other attachments to the store are still alive; a session
    /// on a shared store snapshots through
    /// [`SharedBasisStore::to_snapshot_bytes`] instead.
    pub fn into_store(self) -> ShardedBasisStore {
        self.store
            .try_into_store()
            .unwrap_or_else(|_| panic!("cannot reclaim a basis store other sessions still share"))
    }

    /// The shared store this session is attached to.
    pub fn shared_store(&self) -> SharedBasisStore {
        self.store.clone()
    }

    /// Move the user's focus to a new point (e.g. a slider change).
    pub fn set_focus(&mut self, point_idx: usize) {
        assert!(point_idx < self.sim.space().len(), "focus out of range");
        self.focus = point_idx;
    }

    /// The current focus.
    pub fn focus(&self) -> usize {
        self.focus
    }

    /// Notice a wholesale store replacement (the server's snapshot `LOAD`):
    /// every cached basis link and ownership record is stale, so drop them
    /// all — the new contents count as someone else's work.
    ///
    /// `generation` must have been observed **under the same lock
    /// acquisition** that the caller is about to dereference ids in
    /// ([`SharedBasisStore::with_store_mut_versioned`]); a racing `replace`
    /// between a standalone generation read and the dereference would
    /// otherwise let a stale id alias an unrelated basis at the same index.
    fn drop_stale_links(
        seen: &mut u64,
        generation: u64,
        own: &mut [std::collections::HashSet<usize>],
        points: &mut HashMap<usize, PointState>,
    ) {
        if generation == *seen {
            return;
        }
        *seen = generation;
        for set in own.iter_mut() {
            set.clear();
        }
        for state in points.values_mut() {
            for col in &mut state.cols {
                col.basis = None;
                // The running bound partly reflects the replaced store's
                // basis metrics; drop it so post-LOAD estimates are a pure
                // function of the new store (same bits as a fresh session).
                col.bound = None;
            }
        }
    }

    /// The paper's `TaskHeuristic`: rotate refinement / validation /
    /// exploration, weighted toward refinement of the focused point.
    fn task_heuristic(&self) -> TaskKind {
        match self.tick % 4 {
            0 | 1 => TaskKind::Refinement,
            2 => TaskKind::Validation,
            _ => TaskKind::Exploration,
        }
    }

    /// The paper's `ExploreHeuristic`: nearest unexplored neighbor of the
    /// focus (alternating sides, growing radius).
    fn explore_heuristic(&self) -> usize {
        let len = self.sim.space().len();
        for radius in 1..len {
            for candidate in [
                self.focus.checked_add(radius).filter(|&c| c < len),
                self.focus.checked_sub(radius),
            ]
            .into_iter()
            .flatten()
            {
                let unexplored = self
                    .points
                    .get(&candidate)
                    .map(|p| p.cols.iter().all(|c| c.n_direct == 0))
                    .unwrap_or(true);
                if unexplored {
                    return candidate;
                }
            }
        }
        self.focus
    }

    /// First contact with a point: generate its fingerprint and try to match
    /// a basis; on miss, seed a new basis with the fingerprint samples.
    ///
    /// (Already-touched points return immediately: their cached links are
    /// guarded at every dereference site by a generation check under the
    /// store lock, so no eager sync is needed here.)
    fn touch(&mut self, point_idx: usize) -> Result<()> {
        if self.points.contains_key(&point_idx) {
            return Ok(());
        }
        let m = self.cfg.fingerprint_len;
        let point = self.sim.space().point_at(point_idx);
        // Monte Carlo work happens outside the store lock; only the
        // resolve/insert bookkeeping below holds it.
        let head =
            jigsaw_pdb::eval_batch(&*self.sim, &point, 0, m, self.cfg.threads)?.into_columns();
        self.worlds_evaluated += m as u64;
        let own = &mut self.own;
        let points = &mut self.points;
        let seen = &mut self.seen_generation;
        let (cols, warm) = self.store.with_store_mut_versioned(|generation, stores| {
            Self::drop_stale_links(seen, generation, own, points);
            let mut cols = Vec::with_capacity(head.len());
            let mut warm = !head.is_empty();
            for samples in head {
                let c = cols.len();
                let metrics = OutputMetrics::from_samples(samples);
                let fp = Fingerprint::new(metrics.samples().to_vec());
                let store = stores.shard_mut(c);
                // On a miss the point seeds a new basis and keeps an identity
                // mapping to it, so its own refinements grow the shared basis
                // (paper §5: refinement "improves the accuracy of the basis
                // distribution's precomputed metrics").
                let basis = match store.find_match(&fp) {
                    Some(hit) => {
                        warm &= !own[c].contains(&hit.0 .0);
                        Some(hit)
                    }
                    None => {
                        warm = false;
                        let id = store.insert(fp, metrics.clone());
                        own[c].insert(id.0);
                        Some((id, AffineMap::IDENTITY))
                    }
                };
                // Tier-0 bound: whatever the richer of (mapped basis,
                // fingerprint head) already supports, without any further
                // simulation.
                let raw = match &basis {
                    Some((id, map)) => {
                        let b = store.get(*id);
                        if b.metrics.n() > metrics.n() {
                            map.apply_metrics(&b.metrics).expectation_interval(BOUND_Z)
                        } else {
                            metrics.expectation_interval(BOUND_Z)
                        }
                    }
                    None => metrics.expectation_interval(BOUND_Z),
                };
                let mut bound = None;
                tighten_bound(&mut bound, raw);
                cols.push(PointColState { n_direct: m, metrics, basis, bound });
            }
            (cols, warm)
        });
        if warm {
            self.warm_hits += 1;
            session_obs().warm_hits.inc();
        }
        session_obs().touches.inc();
        self.points.insert(point_idx, PointState { cols });
        Ok(())
    }

    /// Generate `batch` fresh samples for a point and fold them into its
    /// direct metrics, its basis (through the inverse mapping, paper §5),
    /// and the progressive fingerprint validation.
    fn generate_batch(&mut self, point_idx: usize) -> Result<()> {
        let point = self.sim.space().point_at(point_idx);
        let tolerance = self.cfg.tolerance;
        let start = {
            let state = self.points.get(&point_idx).expect("touched");
            state.cols.iter().map(|c| c.n_direct).min().unwrap_or(0)
        };
        if start >= self.cfg.n_target {
            return Ok(());
        }
        // Clamp the last batch to the refinement ceiling: sample ids must
        // never pass `n_target`, or the fold-back below would extend — i.e.
        // mutate — a basis that a sweep built with exactly `n_target`
        // samples (the invariant [`SessionConfig::from_jigsaw`] documents).
        let batch = self.cfg.batch.min(self.cfg.n_target - start);
        let out = jigsaw_pdb::eval_batch(&*self.sim, &point, start, batch, self.cfg.threads)?;
        self.worlds_evaluated += batch as u64;
        let own = &mut self.own;
        let points = &mut self.points;
        let seen = &mut self.seen_generation;
        self.store.with_store_mut_versioned(|generation, stores| {
            // The stale-link check and every id dereference below share one
            // lock acquisition: a concurrent store replacement can never
            // slip between them and let a stale id alias (and refine!) an
            // unrelated basis at the same index.
            Self::drop_stale_links(seen, generation, own, points);
            let state = points.get_mut(&point_idx).expect("touched");
            for (c, samples) in out.columns().iter().enumerate() {
                let col = &mut state.cols[c];
                col.metrics.extend(samples);
                col.n_direct = start + batch;
                if let Some((id, map)) = col.basis {
                    // Validate the mapping on the fresh samples: the basis
                    // predicts M(basis_sample_k) for the same sample ids.
                    let store = stores.shard_mut(c);
                    let basis = store.get(id);
                    let basis_samples = basis.metrics.samples();
                    let consistent = samples.iter().enumerate().all(|(i, &x)| {
                        let k = start + i;
                        basis_samples
                            .get(k)
                            .map(|&b| crate::fingerprint::approx_eq(map.apply(b), x, tolerance))
                            // Sample id beyond basis coverage: fold it back
                            // through the inverse mapping instead.
                            .unwrap_or(true)
                    });
                    if consistent {
                        if let Some(inv) = map.invert() {
                            let back: Vec<f64> = samples
                                .iter()
                                .enumerate()
                                .filter(|(i, _)| start + i >= basis_samples.len())
                                .map(|(_, &x)| inv.apply(x))
                                .collect();
                            if !back.is_empty() {
                                store.refine(id, &back);
                            }
                        }
                    } else {
                        // Mapping refuted by new evidence: detach and fall
                        // back to direct estimation (Algorithm 5's
                        // FindMatch-on-mismatch).
                        col.basis = None;
                    }
                }
                // Tighten the running bound with the raw interval of
                // whichever source `estimate()` will now serve.
                let raw = match col.basis {
                    Some((id, map)) => {
                        let basis = stores.shard_mut(c).get(id);
                        if basis.metrics.n() > col.metrics.n() {
                            map.apply_metrics(&basis.metrics).expectation_interval(BOUND_Z)
                        } else {
                            col.metrics.expectation_interval(BOUND_Z)
                        }
                    }
                    None => col.metrics.expectation_interval(BOUND_Z),
                };
                tighten_bound(&mut col.bound, raw);
            }
        });
        Ok(())
    }

    /// Execute one event-loop iteration. Returns the task performed.
    pub fn tick(&mut self) -> Result<TaskKind> {
        let task = self.task_heuristic();
        self.tick += 1;
        let target = match task {
            TaskKind::Refinement | TaskKind::Validation => self.focus,
            TaskKind::Exploration => self.explore_heuristic(),
        };
        self.touch(target)?;
        match task {
            TaskKind::Refinement | TaskKind::Exploration => self.generate_batch(target)?,
            TaskKind::Validation => self.generate_batch(target)?,
        }
        Ok(task)
    }

    /// The current estimate for a column of a point, if the point has been
    /// touched. Prefers the richer of (mapped basis, direct samples).
    pub fn estimate(&self, point_idx: usize, col: usize) -> Option<Estimate> {
        let state = self.points.get(&point_idx)?;
        let c = &state.cols[col];
        if let Some((id, map)) = c.basis {
            // `&self` cannot drop stale links, but it can refuse to follow
            // them: if the store was replaced since this session last
            // synced (generation observed under the same lock as the
            // dereference), the cached id may alias an unrelated basis at
            // the same index — fall back to the direct samples instead.
            let mapped = self.store.with_store_versioned(|generation, stores| {
                if generation != self.seen_generation {
                    return None;
                }
                stores
                    .shard(col)
                    .try_get(id)
                    .filter(|basis| basis.metrics.n() > c.metrics.n())
                    .map(|basis| map.apply_metrics(&basis.metrics))
            });
            if let Some(mapped) = mapped {
                let (lo, hi) = effective_bound(c.bound, mapped.expectation_interval(BOUND_Z));
                return Some(Estimate {
                    point_idx,
                    expectation: mapped.expectation(),
                    std_dev: mapped.std_dev(),
                    lo,
                    hi,
                    n_samples: mapped.n(),
                    source: EstimateSource::MappedBasis,
                });
            }
        }
        let (lo, hi) = effective_bound(c.bound, c.metrics.expectation_interval(BOUND_Z));
        Some(Estimate {
            point_idx,
            expectation: c.metrics.expectation(),
            std_dev: c.metrics.std_dev(),
            lo,
            hi,
            n_samples: c.metrics.n(),
            source: EstimateSource::Direct,
        })
    }

    /// Typed bounds check for client-supplied indices: long-lived hosts
    /// answer `ERR` and keep serving (the `WorkerPanic` contract), so a
    /// malformed `ESTIMATE 999999999 0` must not reach an `assert!`.
    fn check_range(&self, point_idx: usize, col: usize) -> Result<()> {
        let n_points = self.sim.space().len();
        if point_idx >= n_points {
            return Err(PdbError::OutOfRange(format!("point {point_idx} of {n_points}")));
        }
        let n_cols = self.sim.columns().len();
        if col >= n_cols {
            return Err(PdbError::OutOfRange(format!("column {col} of {n_cols}")));
        }
        Ok(())
    }

    /// Refuse to put NaN on the wire: an estimate backed by zero samples
    /// (or whose mean/bound is NaN) is a typed error, consistent with the
    /// `NanMetric` policy at the `OPTIMIZE` selector, not a silent
    /// `7ff8…` bit pattern the client must know to sniff for.
    fn wire_safe(est: Estimate) -> Result<Estimate> {
        if est.n_samples == 0 || est.expectation.is_nan() || est.lo.is_nan() || est.hi.is_nan() {
            return Err(PdbError::NanMetric(format!(
                "estimate for point {} has no usable samples (n = {})",
                est.point_idx, est.n_samples
            )));
        }
        Ok(est)
    }

    /// Touch `point_idx` (fingerprint + match, if this is first contact)
    /// and return the resulting estimate for `col` — the one-shot what-if
    /// probe the session server's `ESTIMATE` command performs.
    pub fn estimate_now(&mut self, point_idx: usize, col: usize) -> Result<Estimate> {
        let _span = jigsaw_obs::span!("session.estimate", point = point_idx, col = col);
        self.check_range(point_idx, col)?;
        self.touch(point_idx)?;
        let est = Self::wire_safe(self.estimate(point_idx, col).expect("point touched above"))?;
        self.count_tier(point_idx, col);
        Ok(est)
    }

    /// One anytime refinement step for `(point_idx, col)`. First contact
    /// pays only the fingerprint head (the tier-0 analytic answer); each
    /// further call folds exactly one direct batch into the point and
    /// tightens the running bound. This bypasses the tick rotation so the
    /// server can drive one subscription deterministically; sample ids
    /// address the same worlds any other schedule would evaluate, so the
    /// results are bit-identical to a blocking session reaching the same
    /// sample count.
    pub fn refine_once(&mut self, point_idx: usize, col: usize) -> Result<Estimate> {
        let _span = jigsaw_obs::span!("session.refine", point = point_idx, col = col);
        self.check_range(point_idx, col)?;
        if self.points.contains_key(&point_idx) {
            self.generate_batch(point_idx)?;
        } else {
            self.touch(point_idx)?;
        }
        let est = Self::wire_safe(self.estimate(point_idx, col).expect("point touched above"))?;
        self.count_tier(point_idx, col);
        Ok(est)
    }

    /// The blocking form of the anytime contract: refine `(point_idx,
    /// col)` until the bound is at most `eps` wide or the per-point sample
    /// budget (`n_target`) is exhausted, and report which it was. A
    /// converged `SUBSCRIBE` stream ends with exactly the bits this
    /// returns for the same (config, seed, budget) — both paths run the
    /// same refine steps in the same order.
    pub fn estimate_bounded(
        &mut self,
        point_idx: usize,
        col: usize,
        eps: f64,
    ) -> Result<BoundedEstimate> {
        if !(eps.is_finite() && eps > 0.0) {
            return Err(PdbError::OutOfRange(format!(
                "eps must be positive and finite, got {eps}"
            )));
        }
        self.check_range(point_idx, col)?;
        self.touch(point_idx)?;
        let mut est = Self::wire_safe(self.estimate(point_idx, col).expect("touched"))?;
        let mut steps = 0usize;
        while est.width() > eps {
            let before = self.worlds_evaluated;
            self.generate_batch(point_idx)?;
            if self.worlds_evaluated == before {
                // n_target reached with the bound still wider than eps.
                return Ok(BoundedEstimate { estimate: est, converged: false, steps });
            }
            steps += 1;
            est = Self::wire_safe(self.estimate(point_idx, col).expect("touched"))?;
        }
        Ok(BoundedEstimate { estimate: est, converged: true, steps })
    }

    /// Count a served estimate as tier-0 (answered from the fingerprint
    /// head / mapped basis alone — no refinement batches folded into the
    /// column yet) or refined, for the `jigsaw_session_estimates_total`
    /// instrument. Purely observational.
    fn count_tier(&self, point_idx: usize, col: usize) {
        let obs = session_obs();
        match self.points.get(&point_idx) {
            Some(state) if state.cols[col].n_direct <= self.cfg.fingerprint_len => obs.tier0.inc(),
            _ => obs.refined.inc(),
        }
    }

    /// Number of basis distributions per column.
    pub fn basis_counts(&self) -> Vec<usize> {
        self.store.bases_per_column()
    }

    /// Number of touched points.
    pub fn touched_points(&self) -> usize {
        self.points.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jigsaw_blackbox::models::Demand;
    use jigsaw_blackbox::{ParamDecl, ParamSpace};
    use jigsaw_pdb::BlackBoxSim;
    use jigsaw_prng::SeedSet;
    use std::sync::Arc;

    fn sim() -> Arc<BlackBoxSim> {
        let space = ParamSpace::new(vec![
            ParamDecl::range("week", 1, 30, 1),
            ParamDecl::set("feature", vec![50]),
        ]);
        Arc::new(BlackBoxSim::new(Arc::new(Demand::paper()), space, SeedSet::new(77)))
    }

    #[test]
    fn ticks_rotate_tasks() {
        let s = sim();
        let mut session = InteractiveSession::new(s.clone(), SessionConfig::default());
        let tasks: Vec<TaskKind> = (0..8).map(|_| session.tick().unwrap()).collect();
        assert_eq!(
            tasks,
            vec![
                TaskKind::Refinement,
                TaskKind::Refinement,
                TaskKind::Validation,
                TaskKind::Exploration,
                TaskKind::Refinement,
                TaskKind::Refinement,
                TaskKind::Validation,
                TaskKind::Exploration,
            ]
        );
    }

    #[test]
    fn estimates_improve_with_ticks() {
        let s = sim();
        let mut session = InteractiveSession::new(s.clone(), SessionConfig::default());
        session.set_focus(9); // week 10
        session.tick().unwrap();
        let early = session.estimate(9, 0).expect("touched");
        for _ in 0..40 {
            session.tick().unwrap();
        }
        let late = session.estimate(9, 0).unwrap();
        assert!(late.n_samples > early.n_samples);
        // Week 10 demand has mean 10.
        assert!((late.expectation - 10.0).abs() < 1.0, "estimate {}", late.expectation);
    }

    #[test]
    fn second_point_starts_from_mapped_basis() {
        let s = sim();
        let mut session = InteractiveSession::new(s.clone(), SessionConfig::default());
        session.set_focus(9);
        for _ in 0..30 {
            session.tick().unwrap();
        }
        // Move focus to a fresh affine-related point: its very first
        // estimate should already carry the basis's sample mass.
        session.set_focus(19); // week 20
        session.tick().unwrap();
        let est = session.estimate(19, 0).expect("touched");
        assert_eq!(est.source, EstimateSource::MappedBasis);
        assert!(est.n_samples > SessionConfig::default().fingerprint_len);
        assert!((est.expectation - 20.0).abs() < 2.0, "estimate {}", est.expectation);
    }

    #[test]
    fn exploration_prewarms_neighbors() {
        let s = sim();
        let mut session = InteractiveSession::new(s.clone(), SessionConfig::default());
        session.set_focus(10);
        for _ in 0..12 {
            session.tick().unwrap();
        }
        assert!(session.touched_points() >= 3, "focus plus explored neighbors");
        // Neighbors of the focus must be among the touched points.
        assert!(session.estimate(11, 0).is_some() || session.estimate(9, 0).is_some());
    }

    #[test]
    fn basis_store_stays_small_for_affine_model() {
        let s = sim();
        let mut session = InteractiveSession::new(s.clone(), SessionConfig::default());
        for f in [5usize, 10, 15, 20, 25] {
            session.set_focus(f);
            for _ in 0..8 {
                session.tick().unwrap();
            }
        }
        let bases = session.basis_counts();
        assert!(bases[0] <= 2, "affine Demand should share bases, got {bases:?}");
    }

    #[test]
    fn thread_budget_does_not_change_estimates() {
        let s = sim();
        let mut seq = InteractiveSession::new(s.clone(), SessionConfig::default());
        let mut par = InteractiveSession::new(s.clone(), SessionConfig::default().with_threads(4));
        for session in [&mut seq, &mut par] {
            session.set_focus(9);
            for _ in 0..20 {
                session.tick().unwrap();
            }
        }
        assert_eq!(seq.worlds_evaluated, par.worlds_evaluated);
        assert_eq!(seq.basis_counts(), par.basis_counts());
        for p in [8usize, 9, 10] {
            match (seq.estimate(p, 0), par.estimate(p, 0)) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.expectation, b.expectation, "point {p}");
                    assert_eq!(a.std_dev, b.std_dev, "point {p}");
                    assert_eq!(a.n_samples, b.n_samples, "point {p}");
                    assert_eq!(a.source, b.source, "point {p}");
                }
                (a, b) => panic!("point {p}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn warm_store_skips_the_cold_ramp() {
        let s = sim();
        // Warm up a session, export its store, and start a new one from it.
        let mut warmup = InteractiveSession::new(s.clone(), SessionConfig::default());
        warmup.set_focus(9);
        for _ in 0..30 {
            warmup.tick().unwrap();
        }
        let store = warmup.into_store();
        assert!(store.bases_per_column()[0] >= 1);
        let mut warm = InteractiveSession::with_store(s.clone(), SessionConfig::default(), store);
        warm.set_focus(9);
        warm.tick().unwrap();
        let est = warm.estimate(9, 0).unwrap();
        // The very first estimate already rides the warmed basis…
        assert_eq!(est.source, EstimateSource::MappedBasis);
        // …and is counted as a warm hit: the session didn't pay for it.
        assert_eq!(warm.warm_hits, 1);
        // …and carries more sample mass than a cold session's first tick.
        let mut cold = InteractiveSession::new(s.clone(), SessionConfig::default());
        cold.set_focus(9);
        cold.tick().unwrap();
        let cold_est = cold.estimate(9, 0).unwrap();
        assert_eq!(cold.warm_hits, 0, "cold session pays for its own bases");
        assert!(
            est.n_samples > cold_est.n_samples,
            "warm {} vs cold {}",
            est.n_samples,
            cold_est.n_samples
        );
    }

    #[test]
    fn attached_sessions_share_one_store() {
        let s = sim();
        let jcfg = JigsawConfig::paper().with_n_samples(1000);
        let shared =
            SharedBasisStore::new(s.columns().len(), &jcfg, std::sync::Arc::new(AffineFamily));
        // Session A pays the cold ramp.
        let mut a = InteractiveSession::attach(s.clone(), SessionConfig::default(), shared.clone());
        a.set_focus(9);
        for _ in 0..30 {
            a.tick().unwrap();
        }
        assert_eq!(a.warm_hits, 0, "first session has nobody to ride on");
        let bases_after_a = shared.bases_per_column();
        assert!(bases_after_a[0] >= 1);
        // Session B attaches to the same store: its first touch of a
        // related point rides A's basis and is counted as a warm hit.
        let mut b = InteractiveSession::attach(s.clone(), SessionConfig::default(), shared.clone());
        b.set_focus(19);
        b.tick().unwrap();
        assert_eq!(b.warm_hits, 1, "B's first touch rides A's basis");
        let est = b.estimate(19, 0).unwrap();
        assert_eq!(est.source, EstimateSource::MappedBasis);
        assert!(est.n_samples > SessionConfig::default().fingerprint_len);
        // Both sessions observe the same store.
        assert_eq!(a.basis_counts(), b.basis_counts());
        // And the store cannot be reclaimed while both are attached.
        assert!(shared.handles() >= 3);
    }

    #[test]
    fn refinement_never_passes_n_target() {
        // (n_target - fingerprint_len) deliberately not a multiple of
        // `batch`: the last batch must clamp, or the fold-back would push
        // samples past the ceiling and grow the basis beyond what a sweep
        // with the same config would have built.
        let s = sim();
        let cfg = SessionConfig { n_target: 25, ..SessionConfig::default() };
        let mut session = InteractiveSession::new(s.clone(), cfg);
        session.set_focus(9);
        for _ in 0..12 {
            session.tick().unwrap();
        }
        let est = session.estimate(9, 0).unwrap();
        assert_eq!(est.n_samples, 25, "refinement stops exactly at n_target");
        let store = session.into_store();
        for basis in store.shard(0).bases() {
            assert!(
                basis.metrics.n() <= 25,
                "basis grew past n_target: {} samples",
                basis.metrics.n()
            );
        }
    }

    #[test]
    fn estimate_now_touches_and_estimates() {
        let s = sim();
        let mut session = InteractiveSession::new(s.clone(), SessionConfig::default());
        assert!(session.estimate(9, 0).is_none(), "untouched point has no estimate");
        let est = session.estimate_now(9, 0).unwrap();
        assert_eq!(est.point_idx, 9);
        assert_eq!(est.n_samples, SessionConfig::default().fingerprint_len);
        assert_eq!(session.touched_points(), 1);
        // A second probe reuses the touch (no extra worlds).
        let worlds = session.worlds_evaluated;
        session.estimate_now(9, 0).unwrap();
        assert_eq!(session.worlds_evaluated, worlds);
    }

    #[test]
    fn estimate_now_out_of_range_is_typed_error() {
        let s = sim();
        let mut session = InteractiveSession::new(s.clone(), SessionConfig::default());
        match session.estimate_now(999_999_999, 0) {
            Err(jigsaw_pdb::PdbError::OutOfRange(msg)) => assert!(msg.contains("point")),
            other => panic!("expected OutOfRange, got {other:?}"),
        }
        match session.estimate_now(0, 99) {
            Err(jigsaw_pdb::PdbError::OutOfRange(msg)) => assert!(msg.contains("column")),
            other => panic!("expected OutOfRange, got {other:?}"),
        }
        // The session survives the bad probes and keeps serving.
        assert!(session.estimate_now(9, 0).is_ok());
    }

    #[test]
    fn anytime_bound_brackets_and_never_widens() {
        let s = sim();
        let mut session = InteractiveSession::new(s.clone(), SessionConfig::default());
        session.set_focus(9);
        let first = session.estimate_now(9, 0).unwrap();
        assert!(first.lo <= first.expectation && first.expectation <= first.hi);
        let mut prev = (first.lo, first.hi);
        for _ in 0..40 {
            session.tick().unwrap();
            let est = session.estimate(9, 0).unwrap();
            assert!(est.lo <= est.expectation && est.expectation <= est.hi);
            assert!(est.lo >= prev.0, "lower edge widened: {} < {}", est.lo, prev.0);
            assert!(est.hi <= prev.1, "upper edge widened: {} > {}", est.hi, prev.1);
            prev = (est.lo, est.hi);
        }
        // The converged expectation sits inside every interval streamed on
        // the way (the running intersection is exactly the final interval).
        let converged = session.estimate(9, 0).unwrap();
        assert!(prev.0 <= converged.expectation && converged.expectation <= prev.1);
        // Week 10 demand has mean 10; the 3σ bound should bracket it.
        assert!(converged.lo <= 10.0 && 10.0 <= converged.hi, "{converged:?}");
    }

    #[test]
    fn estimate_bounded_converges_and_matches_blocking_estimate() {
        let s = sim();
        let mut session = InteractiveSession::new(s.clone(), SessionConfig::default());
        let bounded = session.estimate_bounded(9, 0, 0.5).unwrap();
        assert!(bounded.converged);
        assert!(bounded.estimate.width() <= 0.5);
        assert!(bounded.steps > 0, "a cold point needs refinement to reach eps");
        // The determinism contract: a blocking probe on the same state
        // returns the exact same bits.
        let blocking = session.estimate_now(9, 0).unwrap();
        assert_eq!(blocking.expectation.to_bits(), bounded.estimate.expectation.to_bits());
        assert_eq!(blocking.std_dev.to_bits(), bounded.estimate.std_dev.to_bits());
        assert_eq!(blocking.lo.to_bits(), bounded.estimate.lo.to_bits());
        assert_eq!(blocking.hi.to_bits(), bounded.estimate.hi.to_bits());
        assert_eq!(blocking.n_samples, bounded.estimate.n_samples);
    }

    #[test]
    fn estimate_bounded_reports_budget_exhaustion() {
        let s = sim();
        let cfg = SessionConfig { n_target: 20, ..SessionConfig::default() };
        let mut session = InteractiveSession::new(s.clone(), cfg);
        // An absurdly tight bound cannot be met with 20 samples.
        let bounded = session.estimate_bounded(9, 0, 1e-12).unwrap();
        assert!(!bounded.converged);
        assert!(bounded.estimate.width() > 1e-12);
        assert_eq!(bounded.estimate.n_samples, 20, "refined to the cap before giving up");
    }

    #[test]
    fn estimate_bounded_rejects_bad_eps() {
        let s = sim();
        let mut session = InteractiveSession::new(s.clone(), SessionConfig::default());
        for eps in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            match session.estimate_bounded(9, 0, eps) {
                Err(jigsaw_pdb::PdbError::OutOfRange(msg)) => assert!(msg.contains("eps")),
                other => panic!("eps {eps}: expected OutOfRange, got {other:?}"),
            }
        }
    }

    #[test]
    fn refine_once_stream_matches_estimate_bounded() {
        let s = sim();
        let eps = 0.5;
        // Path A: the blocking loop.
        let mut blocking = InteractiveSession::new(s.clone(), SessionConfig::default());
        let bounded = blocking.estimate_bounded(9, 0, eps).unwrap();
        // Path B: the server's per-pump stepping — touch, then refine one
        // batch at a time until the width crosses eps.
        let mut streaming = InteractiveSession::new(s.clone(), SessionConfig::default());
        let mut est = streaming.refine_once(9, 0).unwrap();
        while est.width() > eps {
            let before = streaming.worlds_evaluated;
            est = streaming.refine_once(9, 0).unwrap();
            assert!(streaming.worlds_evaluated > before, "refinement must progress");
        }
        assert_eq!(est.expectation.to_bits(), bounded.estimate.expectation.to_bits());
        assert_eq!(est.lo.to_bits(), bounded.estimate.lo.to_bits());
        assert_eq!(est.hi.to_bits(), bounded.estimate.hi.to_bits());
        assert_eq!(est.n_samples, bounded.estimate.n_samples);
        assert_eq!(streaming.worlds_evaluated, blocking.worlds_evaluated);
    }

    #[test]
    fn store_replacement_detaches_stale_links() {
        let s = sim();
        let jcfg = JigsawConfig::paper().with_n_samples(1000);
        let shared =
            SharedBasisStore::new(s.columns().len(), &jcfg, std::sync::Arc::new(AffineFamily));
        // Warm the store with one session, then attach a second whose
        // estimates genuinely ride the shared basis (mapped source).
        let mut warmup =
            InteractiveSession::attach(s.clone(), SessionConfig::default(), shared.clone());
        warmup.set_focus(9);
        for _ in 0..30 {
            warmup.tick().unwrap();
        }
        drop(warmup);
        let mut session =
            InteractiveSession::attach(s.clone(), SessionConfig::default(), shared.clone());
        session.set_focus(9);
        session.tick().unwrap();
        assert_eq!(session.estimate(9, 0).unwrap().source, EstimateSource::MappedBasis);
        // Replace the store wholesale (the server's LOAD): stale basis
        // links must never be followed — estimate() refuses them via the
        // generation check even before any mutating op re-syncs…
        shared.replace(crate::basis::ShardedBasisStore::new(
            s.columns().len(),
            &jcfg,
            std::sync::Arc::new(AffineFamily),
        ));
        let est = session.estimate(9, 0).unwrap();
        assert_eq!(est.source, EstimateSource::Direct, "stale link must not be followed");
        // …and the next mutating op drops every link for good.
        session.tick().unwrap();
        let est = session.estimate(9, 0).unwrap();
        // Direct samples survive; the mapped basis is gone until re-matched.
        assert!(est.n_samples > 0);
    }

    #[test]
    fn warm_store_roundtrips_through_snapshot_bytes() {
        let s = sim();
        let mut warmup = InteractiveSession::new(s.clone(), SessionConfig::default());
        warmup.set_focus(9);
        for _ in 0..20 {
            warmup.tick().unwrap();
        }
        let counts = warmup.basis_counts();
        let jcfg = JigsawConfig::paper();
        let bytes = warmup.into_store().to_snapshot_bytes(&jcfg, "affine").unwrap();
        let store = ShardedBasisStore::from_snapshot_bytes(
            &bytes,
            &jcfg,
            std::sync::Arc::new(AffineFamily),
            1,
        )
        .unwrap();
        assert_eq!(store.bases_per_column(), counts);
        let mut warm = InteractiveSession::with_store(s.clone(), SessionConfig::default(), store);
        warm.set_focus(9);
        warm.tick().unwrap();
        assert_eq!(warm.estimate(9, 0).unwrap().source, EstimateSource::MappedBasis);
    }

    #[test]
    fn session_config_derives_from_jigsaw_config() {
        let jcfg = JigsawConfig::paper()
            .with_fingerprint_len(12)
            .with_n_samples(300)
            .with_tolerance(1e-7)
            .with_threads(4);
        let scfg = SessionConfig::from_jigsaw(&jcfg);
        assert_eq!(scfg.fingerprint_len, 12);
        assert_eq!(scfg.n_target, 300);
        assert_eq!(scfg.tolerance, 1e-7);
        assert_eq!(scfg.threads, 4);
        assert_eq!(scfg.batch, SessionConfig::default().batch);
    }

    #[test]
    #[should_panic(expected = "one shard per output column")]
    fn with_store_checks_shard_count() {
        let s = sim();
        let jcfg = JigsawConfig::paper();
        let store = ShardedBasisStore::new(3, &jcfg, std::sync::Arc::new(AffineFamily));
        let _ = InteractiveSession::with_store(s.clone(), SessionConfig::default(), store);
    }

    #[test]
    #[should_panic(expected = "focus out of range")]
    fn focus_bounds_checked() {
        let s = sim();
        let mut session = InteractiveSession::new(s.clone(), SessionConfig::default());
        session.set_focus(10_000);
    }

    #[test]
    #[should_panic(expected = "other sessions still share")]
    fn into_store_refuses_while_shared() {
        let s = sim();
        let jcfg = JigsawConfig::paper();
        let shared =
            SharedBasisStore::new(s.columns().len(), &jcfg, std::sync::Arc::new(AffineFamily));
        let session =
            InteractiveSession::attach(s.clone(), SessionConfig::default(), shared.clone());
        let _ = session.into_store();
    }
}
