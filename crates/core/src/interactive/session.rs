//! The interactive event loop (paper Algorithm 5).

use std::collections::HashMap;
use std::sync::Mutex;

use jigsaw_pdb::{OutputMetrics, Result, Simulation};

use crate::basis::{BasisId, BasisStore, ShardedBasisStore};
use crate::config::JigsawConfig;
use crate::fingerprint::Fingerprint;
use crate::mapping::{AffineFamily, AffineMap};

/// Which processing task a tick performed (paper §5's three categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// More samples for the focused point.
    Refinement,
    /// Re-generate fingerprint-extending samples to validate the mapping.
    Validation,
    /// Pre-warm a neighboring point.
    Exploration,
}

/// Tunables for an interactive session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionConfig {
    /// Samples generated per tick (paper: `PickAtRandom(10, …)`).
    pub batch: usize,
    /// Initial fingerprint size for first contact with a point.
    pub fingerprint_len: usize,
    /// Matching tolerance.
    pub tolerance: f64,
    /// Cap on samples per point (refinement stops there).
    pub n_target: usize,
    /// Thread budget for world evaluation. Ticks go through the same
    /// budgeted [`jigsaw_pdb::eval_worlds`] entry point as the sweep
    /// executor, so refinement batches parallelize with bit-identical
    /// results for any value (`0` = all cores).
    pub threads: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            batch: 10,
            fingerprint_len: 10,
            tolerance: 1e-9,
            n_target: 1000,
            threads: 1,
        }
    }
}

impl SessionConfig {
    /// Override the thread budget.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Where an estimate's numbers come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimateSource {
    /// Mapped from a matched basis distribution (cheap, immediate).
    MappedBasis,
    /// Directly simulated samples only.
    Direct,
}

/// A progressively-refined estimate for one point and column.
#[derive(Debug, Clone)]
pub struct Estimate {
    /// Point index in the parameter space.
    pub point_idx: usize,
    /// Expectation of the output column.
    pub expectation: f64,
    /// Standard deviation of the output column.
    pub std_dev: f64,
    /// Samples backing the estimate.
    pub n_samples: usize,
    /// Provenance.
    pub source: EstimateSource,
}

/// Per-(point, column) progress.
struct PointColState {
    /// Samples generated directly at this point (sample ids `0..n_direct`).
    n_direct: usize,
    /// Direct samples (for metric extraction and basis refinement).
    metrics: OutputMetrics,
    /// Matched basis and mapping, if any.
    basis: Option<(BasisId, AffineMap)>,
}

/// State for one point across all output columns.
struct PointState {
    cols: Vec<PointColState>,
}

/// An interactive what-if session over one simulation.
pub struct InteractiveSession<'a> {
    sim: &'a dyn Simulation,
    cfg: SessionConfig,
    stores: Vec<Mutex<BasisStore>>,
    points: HashMap<usize, PointState>,
    focus: usize,
    tick: u64,
    /// Worlds evaluated so far (the online cost metric).
    pub worlds_evaluated: u64,
}

impl<'a> InteractiveSession<'a> {
    /// Start a session focused on point 0, with empty (cold) basis stores.
    pub fn new(sim: &'a dyn Simulation, cfg: SessionConfig) -> Self {
        let jcfg = JigsawConfig::paper()
            .with_fingerprint_len(cfg.fingerprint_len)
            .with_n_samples(cfg.n_target.max(cfg.fingerprint_len))
            .with_tolerance(cfg.tolerance);
        let store =
            ShardedBasisStore::new(sim.columns().len(), &jcfg, std::sync::Arc::new(AffineFamily));
        Self::with_store(sim, cfg, store)
    }

    /// Start a session from a pre-populated basis store — e.g. one loaded
    /// from a snapshot of an earlier sweep or session over the same
    /// scenario (see [`crate::basis::snapshot`]), so the first touches of
    /// familiar points resolve immediately instead of ramping up cold.
    ///
    /// The store must have one shard per output column of `sim`.
    pub fn with_store(
        sim: &'a dyn Simulation,
        cfg: SessionConfig,
        store: ShardedBasisStore,
    ) -> Self {
        assert!(cfg.batch > 0 && cfg.fingerprint_len >= 2);
        assert_eq!(
            store.n_shards(),
            sim.columns().len(),
            "warm store must have one shard per output column"
        );
        let stores = store.into_shards().into_iter().map(Mutex::new).collect();
        InteractiveSession {
            sim,
            cfg,
            stores,
            points: HashMap::new(),
            focus: 0,
            tick: 0,
            worlds_evaluated: 0,
        }
    }

    /// End the session and hand back its basis stores (for snapshotting —
    /// the dual of [`Self::with_store`]).
    pub fn into_store(self) -> ShardedBasisStore {
        ShardedBasisStore::from_shards(
            self.stores
                .into_iter()
                .map(|m| m.into_inner().expect("basis store lock poisoned"))
                .collect(),
        )
    }

    /// Move the user's focus to a new point (e.g. a slider change).
    pub fn set_focus(&mut self, point_idx: usize) {
        assert!(point_idx < self.sim.space().len(), "focus out of range");
        self.focus = point_idx;
    }

    /// The current focus.
    pub fn focus(&self) -> usize {
        self.focus
    }

    /// The paper's `TaskHeuristic`: rotate refinement / validation /
    /// exploration, weighted toward refinement of the focused point.
    fn task_heuristic(&self) -> TaskKind {
        match self.tick % 4 {
            0 | 1 => TaskKind::Refinement,
            2 => TaskKind::Validation,
            _ => TaskKind::Exploration,
        }
    }

    /// The paper's `ExploreHeuristic`: nearest unexplored neighbor of the
    /// focus (alternating sides, growing radius).
    fn explore_heuristic(&self) -> usize {
        let len = self.sim.space().len();
        for radius in 1..len {
            for candidate in [
                self.focus.checked_add(radius).filter(|&c| c < len),
                self.focus.checked_sub(radius),
            ]
            .into_iter()
            .flatten()
            {
                let unexplored = self
                    .points
                    .get(&candidate)
                    .map(|p| p.cols.iter().all(|c| c.n_direct == 0))
                    .unwrap_or(true);
                if unexplored {
                    return candidate;
                }
            }
        }
        self.focus
    }

    /// First contact with a point: generate its fingerprint and try to match
    /// a basis; on miss, seed a new basis with the fingerprint samples.
    fn touch(&mut self, point_idx: usize) -> Result<()> {
        if self.points.contains_key(&point_idx) {
            return Ok(());
        }
        let m = self.cfg.fingerprint_len;
        let point = self.sim.space().point_at(point_idx);
        let head = jigsaw_pdb::eval_worlds(self.sim, &point, 0, m, self.cfg.threads)?;
        self.worlds_evaluated += m as u64;
        let mut cols = Vec::with_capacity(head.len());
        for samples in head {
            let c = cols.len();
            let metrics = OutputMetrics::from_samples(samples);
            let fp = Fingerprint::new(metrics.samples().to_vec());
            let mut store = self.stores[c].lock().expect("basis store lock poisoned");
            // On a miss the point seeds a new basis and keeps an identity
            // mapping to it, so its own refinements grow the shared basis
            // (paper §5: refinement "improves the accuracy of the basis
            // distribution's precomputed metrics").
            let basis = match store.find_match(&fp) {
                Some(hit) => Some(hit),
                None => Some((store.insert(fp, metrics.clone()), AffineMap::IDENTITY)),
            };
            cols.push(PointColState { n_direct: m, metrics, basis });
        }
        self.points.insert(point_idx, PointState { cols });
        Ok(())
    }

    /// Generate `batch` fresh samples for a point and fold them into its
    /// direct metrics, its basis (through the inverse mapping, paper §5),
    /// and the progressive fingerprint validation.
    fn generate_batch(&mut self, point_idx: usize) -> Result<()> {
        let point = self.sim.space().point_at(point_idx);
        let batch = self.cfg.batch;
        let state = self.points.get_mut(&point_idx).expect("touched");
        let start = state.cols.iter().map(|c| c.n_direct).min().unwrap_or(0);
        if start >= self.cfg.n_target {
            return Ok(());
        }
        let out = jigsaw_pdb::eval_worlds(self.sim, &point, start, batch, self.cfg.threads)?;
        self.worlds_evaluated += batch as u64;
        for (c, samples) in out.iter().enumerate() {
            let col = &mut state.cols[c];
            col.metrics.extend(samples);
            col.n_direct = start + batch;
            if let Some((id, map)) = col.basis {
                // Validate the mapping on the fresh samples: the basis
                // predicts M(basis_sample_k) for the same sample ids.
                let mut store = self.stores[c].lock().expect("basis store lock poisoned");
                let basis_samples = store.get(id).metrics.samples();
                let consistent = samples.iter().enumerate().all(|(i, &x)| {
                    let k = start + i;
                    basis_samples
                        .get(k)
                        .map(|&b| {
                            crate::fingerprint::approx_eq(map.apply(b), x, self.cfg.tolerance)
                        })
                        // Sample id beyond basis coverage: fold it back
                        // through the inverse mapping instead.
                        .unwrap_or(true)
                });
                if consistent {
                    if let Some(inv) = map.invert() {
                        let back: Vec<f64> = samples
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| start + i >= basis_samples.len())
                            .map(|(_, &x)| inv.apply(x))
                            .collect();
                        if !back.is_empty() {
                            store.refine(id, &back);
                        }
                    }
                } else {
                    // Mapping refuted by new evidence: detach and fall
                    // back to direct estimation (Algorithm 5's
                    // FindMatch-on-mismatch).
                    col.basis = None;
                }
            }
        }
        Ok(())
    }

    /// Execute one event-loop iteration. Returns the task performed.
    pub fn tick(&mut self) -> Result<TaskKind> {
        let task = self.task_heuristic();
        self.tick += 1;
        let target = match task {
            TaskKind::Refinement | TaskKind::Validation => self.focus,
            TaskKind::Exploration => self.explore_heuristic(),
        };
        self.touch(target)?;
        match task {
            TaskKind::Refinement | TaskKind::Exploration => self.generate_batch(target)?,
            TaskKind::Validation => self.generate_batch(target)?,
        }
        Ok(task)
    }

    /// The current estimate for a column of a point, if the point has been
    /// touched. Prefers the richer of (mapped basis, direct samples).
    pub fn estimate(&self, point_idx: usize, col: usize) -> Option<Estimate> {
        let state = self.points.get(&point_idx)?;
        let c = &state.cols[col];
        if let Some((id, map)) = c.basis {
            let store = self.stores[col].lock().expect("basis store lock poisoned");
            let basis = store.get(id);
            if basis.metrics.n() > c.metrics.n() {
                let mapped = map.apply_metrics(&basis.metrics);
                return Some(Estimate {
                    point_idx,
                    expectation: mapped.expectation(),
                    std_dev: mapped.std_dev(),
                    n_samples: mapped.n(),
                    source: EstimateSource::MappedBasis,
                });
            }
        }
        Some(Estimate {
            point_idx,
            expectation: c.metrics.expectation(),
            std_dev: c.metrics.std_dev(),
            n_samples: c.metrics.n(),
            source: EstimateSource::Direct,
        })
    }

    /// Number of basis distributions per column.
    pub fn basis_counts(&self) -> Vec<usize> {
        self.stores.iter().map(|s| s.lock().expect("basis store lock poisoned").len()).collect()
    }

    /// Number of touched points.
    pub fn touched_points(&self) -> usize {
        self.points.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jigsaw_blackbox::models::Demand;
    use jigsaw_blackbox::{ParamDecl, ParamSpace};
    use jigsaw_pdb::BlackBoxSim;
    use jigsaw_prng::SeedSet;
    use std::sync::Arc;

    fn sim() -> BlackBoxSim {
        let space = ParamSpace::new(vec![
            ParamDecl::range("week", 1, 30, 1),
            ParamDecl::set("feature", vec![50]),
        ]);
        BlackBoxSim::new(Arc::new(Demand::paper()), space, SeedSet::new(77))
    }

    #[test]
    fn ticks_rotate_tasks() {
        let s = sim();
        let mut session = InteractiveSession::new(&s, SessionConfig::default());
        let tasks: Vec<TaskKind> = (0..8).map(|_| session.tick().unwrap()).collect();
        assert_eq!(
            tasks,
            vec![
                TaskKind::Refinement,
                TaskKind::Refinement,
                TaskKind::Validation,
                TaskKind::Exploration,
                TaskKind::Refinement,
                TaskKind::Refinement,
                TaskKind::Validation,
                TaskKind::Exploration,
            ]
        );
    }

    #[test]
    fn estimates_improve_with_ticks() {
        let s = sim();
        let mut session = InteractiveSession::new(&s, SessionConfig::default());
        session.set_focus(9); // week 10
        session.tick().unwrap();
        let early = session.estimate(9, 0).expect("touched");
        for _ in 0..40 {
            session.tick().unwrap();
        }
        let late = session.estimate(9, 0).unwrap();
        assert!(late.n_samples > early.n_samples);
        // Week 10 demand has mean 10.
        assert!((late.expectation - 10.0).abs() < 1.0, "estimate {}", late.expectation);
    }

    #[test]
    fn second_point_starts_from_mapped_basis() {
        let s = sim();
        let mut session = InteractiveSession::new(&s, SessionConfig::default());
        session.set_focus(9);
        for _ in 0..30 {
            session.tick().unwrap();
        }
        // Move focus to a fresh affine-related point: its very first
        // estimate should already carry the basis's sample mass.
        session.set_focus(19); // week 20
        session.tick().unwrap();
        let est = session.estimate(19, 0).expect("touched");
        assert_eq!(est.source, EstimateSource::MappedBasis);
        assert!(est.n_samples > SessionConfig::default().fingerprint_len);
        assert!((est.expectation - 20.0).abs() < 2.0, "estimate {}", est.expectation);
    }

    #[test]
    fn exploration_prewarms_neighbors() {
        let s = sim();
        let mut session = InteractiveSession::new(&s, SessionConfig::default());
        session.set_focus(10);
        for _ in 0..12 {
            session.tick().unwrap();
        }
        assert!(session.touched_points() >= 3, "focus plus explored neighbors");
        // Neighbors of the focus must be among the touched points.
        assert!(session.estimate(11, 0).is_some() || session.estimate(9, 0).is_some());
    }

    #[test]
    fn basis_store_stays_small_for_affine_model() {
        let s = sim();
        let mut session = InteractiveSession::new(&s, SessionConfig::default());
        for f in [5usize, 10, 15, 20, 25] {
            session.set_focus(f);
            for _ in 0..8 {
                session.tick().unwrap();
            }
        }
        let bases = session.basis_counts();
        assert!(bases[0] <= 2, "affine Demand should share bases, got {bases:?}");
    }

    #[test]
    fn thread_budget_does_not_change_estimates() {
        let s = sim();
        let mut seq = InteractiveSession::new(&s, SessionConfig::default());
        let mut par = InteractiveSession::new(&s, SessionConfig::default().with_threads(4));
        for session in [&mut seq, &mut par] {
            session.set_focus(9);
            for _ in 0..20 {
                session.tick().unwrap();
            }
        }
        assert_eq!(seq.worlds_evaluated, par.worlds_evaluated);
        assert_eq!(seq.basis_counts(), par.basis_counts());
        for p in [8usize, 9, 10] {
            match (seq.estimate(p, 0), par.estimate(p, 0)) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.expectation, b.expectation, "point {p}");
                    assert_eq!(a.std_dev, b.std_dev, "point {p}");
                    assert_eq!(a.n_samples, b.n_samples, "point {p}");
                    assert_eq!(a.source, b.source, "point {p}");
                }
                (a, b) => panic!("point {p}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn warm_store_skips_the_cold_ramp() {
        let s = sim();
        // Warm up a session, export its store, and start a new one from it.
        let mut warmup = InteractiveSession::new(&s, SessionConfig::default());
        warmup.set_focus(9);
        for _ in 0..30 {
            warmup.tick().unwrap();
        }
        let store = warmup.into_store();
        assert!(store.bases_per_column()[0] >= 1);
        let mut warm = InteractiveSession::with_store(&s, SessionConfig::default(), store);
        warm.set_focus(9);
        warm.tick().unwrap();
        let est = warm.estimate(9, 0).unwrap();
        // The very first estimate already rides the warmed basis…
        assert_eq!(est.source, EstimateSource::MappedBasis);
        // …and carries more sample mass than a cold session's first tick.
        let mut cold = InteractiveSession::new(&s, SessionConfig::default());
        cold.set_focus(9);
        cold.tick().unwrap();
        let cold_est = cold.estimate(9, 0).unwrap();
        assert!(
            est.n_samples > cold_est.n_samples,
            "warm {} vs cold {}",
            est.n_samples,
            cold_est.n_samples
        );
    }

    #[test]
    fn warm_store_roundtrips_through_snapshot_bytes() {
        let s = sim();
        let mut warmup = InteractiveSession::new(&s, SessionConfig::default());
        warmup.set_focus(9);
        for _ in 0..20 {
            warmup.tick().unwrap();
        }
        let counts = warmup.basis_counts();
        let jcfg = JigsawConfig::paper();
        let bytes = warmup.into_store().to_snapshot_bytes(&jcfg, "affine").unwrap();
        let store = ShardedBasisStore::from_snapshot_bytes(
            &bytes,
            &jcfg,
            std::sync::Arc::new(AffineFamily),
            1,
        )
        .unwrap();
        assert_eq!(store.bases_per_column(), counts);
        let mut warm = InteractiveSession::with_store(&s, SessionConfig::default(), store);
        warm.set_focus(9);
        warm.tick().unwrap();
        assert_eq!(warm.estimate(9, 0).unwrap().source, EstimateSource::MappedBasis);
    }

    #[test]
    #[should_panic(expected = "one shard per output column")]
    fn with_store_checks_shard_count() {
        let s = sim();
        let jcfg = JigsawConfig::paper();
        let store = ShardedBasisStore::new(3, &jcfg, std::sync::Arc::new(AffineFamily));
        let _ = InteractiveSession::with_store(&s, SessionConfig::default(), store);
    }

    #[test]
    #[should_panic(expected = "focus out of range")]
    fn focus_bounds_checked() {
        let s = sim();
        let mut session = InteractiveSession::new(&s, SessionConfig::default());
        session.set_focus(10_000);
    }
}
