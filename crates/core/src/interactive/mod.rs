//! Interactive what-if exploration (paper §5 — the "Fuzzy Prophet" engine).
//!
//! "Unlike its offline counterpart, the goal of online Jigsaw is to rapidly
//! produce accurate metrics for a small set of points in the parameter
//! space. Fingerprinting is used primarily to improve the accuracy of
//! Jigsaw's initial guesses; a very small and quickly generated (e.g., of
//! size 10) fingerprint allows Jigsaw to identify a matching basis
//! distribution and reuse metrics precomputed for it."
//!
//! The event loop (Algorithm 5) interleaves three task kinds:
//! * **Refinement** — more samples for the point of interest;
//! * **Validation** — regenerate samples already covered by the basis to
//!   progressively extend the fingerprint and confirm the mapping;
//! * **Exploration** — pre-warm points the user is likely to visit next.

mod graph;
mod session;

pub use graph::{render_series, GraphSpec, SeriesStyle};
pub use session::{
    BoundedEstimate, Estimate, EstimateSource, InteractiveSession, SessionConfig, TaskKind, BOUND_Z,
};
