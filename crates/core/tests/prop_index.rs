//! Property tests for the candidate indexes: completeness over the affine
//! mapping family (the paper's requirement that "the set of fingerprints
//! returned by the index must contain all similar fingerprints").

use std::sync::Arc;

use jigsaw_core::basis::BasisStore;
use jigsaw_core::{AffineFamily, AffineMap, Fingerprint, IndexStrategy};
use jigsaw_pdb::OutputMetrics;
use proptest::prelude::*;

fn fp_strategy() -> impl Strategy<Value = Vec<f64>> {
    // At least two distinct entries so the fingerprint is non-degenerate;
    // magnitudes kept moderate so quantization effects stay representative.
    proptest::collection::vec(-1000.0f64..1000.0, 4..12)
        .prop_filter("needs distinct entries", |v| v.iter().any(|&x| (x - v[0]).abs() > 1e-6))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any affine image of a stored fingerprint must be found again by
    /// every index strategy (no false negatives within the family).
    #[test]
    fn affine_images_are_always_found(
        base in fp_strategy(),
        alpha in prop_oneof![-50.0f64..-0.01, 0.01f64..50.0],
        beta in -100.0f64..100.0,
        strat_pick in 0usize..3,
    ) {
        let strat = [IndexStrategy::Array, IndexStrategy::Normalization, IndexStrategy::SortedSid][strat_pick];
        let mut store = BasisStore::with_strategy(strat, 1e-9, Arc::new(AffineFamily));
        let fp = Fingerprint::new(base.clone());
        let id = store.insert(fp.clone(), OutputMetrics::from_samples(base.clone()));
        let image = AffineMap::new(alpha, beta).apply_fingerprint(&fp);
        let hit = store.find_match(&image);
        prop_assert!(hit.is_some(), "{strat:?} missed an affine image (α={alpha}, β={beta})");
        let (found, map) = hit.unwrap();
        prop_assert_eq!(found, id);
        // The recovered mapping must reproduce the image from the basis.
        for (&x, &y) in base.iter().zip(image.entries()) {
            prop_assert!((map.apply(x) - y).abs() <= 1e-6 * y.abs().max(1.0));
        }
    }

    /// The recovered mapping transports metrics exactly: resolving through
    /// the store equals computing metrics on the mapped samples directly.
    #[test]
    fn resolved_metrics_match_direct_computation(
        base in fp_strategy(),
        alpha in prop_oneof![-20.0f64..-0.1, 0.1f64..20.0],
        beta in -50.0f64..50.0,
    ) {
        let mut store =
            BasisStore::with_strategy(IndexStrategy::Normalization, 1e-9, Arc::new(AffineFamily));
        let samples: Vec<f64> = base.iter().map(|x| x * 1.5).collect();
        store.insert(Fingerprint::new(base.clone()), OutputMetrics::from_samples(samples.clone()));
        let image = AffineMap::new(alpha, beta).apply_fingerprint(&Fingerprint::new(base));
        let (metrics, _) = store.resolve(&image).expect("hit");
        let direct = OutputMetrics::from_samples(
            samples.iter().map(|x| alpha * x + beta).collect(),
        );
        prop_assert!((metrics.expectation() - direct.expectation()).abs()
            <= 1e-6 * direct.expectation().abs().max(1.0));
        prop_assert!((metrics.std_dev() - direct.std_dev()).abs()
            <= 1e-6 * direct.std_dev().abs().max(1.0));
    }

    /// Identity round trip: a fingerprint always matches itself with the
    /// identity mapping, under every strategy.
    #[test]
    fn self_match_is_identity(base in fp_strategy(), strat_pick in 0usize..3) {
        let strat = [IndexStrategy::Array, IndexStrategy::Normalization, IndexStrategy::SortedSid][strat_pick];
        let mut store = BasisStore::with_strategy(strat, 1e-9, Arc::new(AffineFamily));
        let fp = Fingerprint::new(base.clone());
        store.insert(fp.clone(), OutputMetrics::from_samples(base));
        let (_, map) = store.find_match(&fp).expect("self match");
        prop_assert!(map.is_identity(1e-9));
    }
}
