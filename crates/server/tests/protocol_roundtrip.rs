//! Protocol framing properties, mirroring `tests/snapshot_roundtrip.rs`'s
//! corruption-variant style: every request/response variant round-trips
//! through encode → decode, frames round-trip through write → read, and
//! truncated or garbage bytes are rejected with a typed
//! [`ProtocolError`] instead of panicking or silently misparsing.

use jigsaw_core::interactive::EstimateSource;
use jigsaw_server::protocol::{read_frame, valid_snapshot_name, write_frame, MAX_FRAME};
use jigsaw_server::{ErrorCode, ProtocolError, Request, Response};
use proptest::collection::vec;
use proptest::prelude::*;

/// Printable palette for free-text fields (scripts may contain newlines;
/// the length prefix keeps them unambiguous).
const TEXT: &[char] = &[
    'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '\n', ';', ',', '(', ')', '@', '.', '-', '_', '*', 'é',
    '→',
];

/// Single-line palette (error messages; newlines are flattened at encode).
const LINE: &[char] = &['a', 'b', 'z', 'A', 'Z', '0', '9', ' '];

fn text(len: std::ops::Range<usize>) -> impl Strategy<Value = String> {
    vec(0usize..TEXT.len(), len).prop_map(|ix| ix.into_iter().map(|i| TEXT[i]).collect())
}

fn line(len: std::ops::Range<usize>) -> impl Strategy<Value = String> {
    vec(0usize..LINE.len(), len).prop_map(|ix| ix.into_iter().map(|i| LINE[i]).collect())
}

/// Snapshot names: leading alphanumeric, then the full name charset.
fn name() -> impl Strategy<Value = String> {
    const HEAD: &[u8] = b"abcXYZ019";
    const TAIL: &[u8] = b"abcXYZ019-_.";
    (vec(0usize..HEAD.len(), 1..2), vec(0usize..TAIL.len(), 0..12)).prop_map(|(h, t)| {
        let mut s = String::new();
        s.push(HEAD[h[0]] as char);
        s.extend(t.into_iter().map(|i| TAIL[i] as char));
        s
    })
}

/// SQL-ish identifiers (column names on the wire: non-empty, no spaces).
fn ident() -> impl Strategy<Value = String> {
    const CS: &[u8] = b"abcdxyz_09";
    vec(0usize..CS.len(), 1..10).prop_map(|ix| ix.into_iter().map(|i| CS[i] as char).collect())
}

/// Valid `SUBSCRIBE` widths: any positive finite f64, as bits. The wire
/// carries the decimal `Display` form, whose shortest-round-trip contract
/// is exactly what the roundtrip property checks.
fn eps_bits() -> impl Strategy<Value = u64> {
    any::<u64>()
        .prop_map(|b| f64::from_bits(b >> 1)) // clear the sign bit
        .prop_filter("positive finite", |x| x.is_finite() && *x > 0.0)
        .prop_map(|x| x.to_bits())
}

fn request() -> impl Strategy<Value = Request> {
    prop_oneof![
        any::<u32>().prop_map(|version| Request::Hello { version }),
        text(0..60).prop_map(|src| Request::Compile { src }),
        Just(Request::Sweep),
        (0usize..10_000).prop_map(|point| Request::Focus { point }),
        (0usize..10_000, 0usize..8).prop_map(|(point, col)| Request::Estimate { point, col }),
        (0usize..10_000, 0usize..8, eps_bits())
            .prop_map(|(point, col, eps_bits)| Request::Subscribe { point, col, eps_bits }),
        (0u32..100_000).prop_map(|count| Request::Tick { count }),
        Just(Request::Stats),
        name().prop_map(|name| Request::Save { name }),
        name().prop_map(|name| Request::Load { name }),
        Just(Request::Metrics),
        Just(Request::Quit),
    ]
}

fn source() -> impl Strategy<Value = EstimateSource> {
    prop_oneof![Just(EstimateSource::MappedBasis), Just(EstimateSource::Direct)]
}

fn code() -> impl Strategy<Value = ErrorCode> {
    prop_oneof![
        Just(ErrorCode::Malformed),
        Just(ErrorCode::State),
        Just(ErrorCode::Compile),
        Just(ErrorCode::Exec),
        Just(ErrorCode::Snapshot),
        Just(ErrorCode::Unsupported),
    ]
}

fn counts() -> impl Strategy<Value = Vec<usize>> {
    vec(0usize..1_000_000, 0..5)
}

fn response() -> impl Strategy<Value = Response> {
    prop_oneof![
        any::<u32>().prop_map(|version| Response::Welcome { version }),
        (0usize..100_000, vec(ident(), 1..5))
            .prop_map(|(points, columns)| Response::Compiled { points, columns }),
        (
            0usize..100_000,
            any::<u64>(),
            0usize..100_000,
            0usize..100_000,
            0usize..100_000,
            counts()
        )
            .prop_map(|(points, worlds, full_sims, reused, warm_hits, bases)| {
                Response::Swept { points, worlds, full_sims, reused, warm_hits, bases }
            }),
        (0usize..10_000).prop_map(|point| Response::Focused { point }),
        (
            (0usize..10_000, 0usize..8, 0usize..100_000, source()),
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>())
        )
            .prop_map(
                |(
                    (point, col, n_samples, source),
                    (expectation_bits, std_dev_bits, lo_bits, hi_bits),
                )| {
                    Response::Estimated {
                        point,
                        col,
                        n_samples,
                        source,
                        expectation_bits,
                        std_dev_bits,
                        lo_bits,
                        hi_bits,
                    }
                }
            ),
        (0usize..10_000, 0usize..8, 0usize..100_000, any::<u64>(), any::<u64>()).prop_map(
            |(point, col, n_samples, lo_bits, hi_bits)| Response::Interval {
                point,
                col,
                n_samples,
                lo_bits,
                hi_bits
            }
        ),
        (0u32..100_000, any::<u64>())
            .prop_map(|(ticks, worlds)| Response::Ticked { ticks, worlds }),
        (counts(), 0usize..10_000, any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(bases, touched, warm_hits, worlds, generation)| Response::Stats {
                bases,
                touched,
                warm_hits,
                worlds,
                generation
            }
        ),
        (name(), 0usize..1_000_000).prop_map(|(name, bytes)| Response::Saved { name, bytes }),
        (name(), counts()).prop_map(|(name, bases)| Response::Loaded { name, bases }),
        // METRICS is the one response with a body: arbitrary multi-line
        // exposition text (non-empty — a bare verb line has no body).
        text(1..120).prop_map(|text| Response::Metrics { text }),
        Just(Response::Bye),
        (code(), line(0..30)).prop_map(|(code, message)| Response::Error { code, message }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    #[test]
    fn request_encode_decode_roundtrips(req in request()) {
        let wire = req.encode();
        prop_assert!(wire.len() <= MAX_FRAME);
        let back = Request::decode(&wire).expect("own encoding must decode");
        prop_assert_eq!(back, req);
    }

    #[test]
    fn response_encode_decode_roundtrips(resp in response()) {
        let wire = resp.encode();
        prop_assert!(wire.len() <= MAX_FRAME);
        let back = Response::decode(&wire).expect("own encoding must decode");
        prop_assert_eq!(back, resp);
    }

    #[test]
    fn frames_roundtrip_and_reject_every_truncation(req in request()) {
        let mut framed = Vec::new();
        write_frame(&mut framed, &req.encode()).unwrap();
        // Whole frame: reads back exactly, then clean EOF.
        let mut cursor = std::io::Cursor::new(framed.clone());
        prop_assert_eq!(read_frame(&mut cursor).unwrap(), Some(req.encode()));
        prop_assert_eq!(read_frame(&mut cursor).unwrap(), None);
        // Every strict prefix is a clean EOF (0 bytes) or a truncation error
        // — never a successful read, never a panic.
        for cut in 0..framed.len() {
            match read_frame(&mut std::io::Cursor::new(&framed[..cut])) {
                Ok(None) => prop_assert_eq!(cut, 0, "only the empty prefix is a clean EOF"),
                Ok(Some(_)) => panic!("prefix of {cut}/{} bytes must not parse", framed.len()),
                Err(ProtocolError::Truncated) => {}
                Err(e) => panic!("unexpected error at cut {cut}: {e}"),
            }
        }
    }

    #[test]
    fn garbage_payloads_are_rejected_not_panicked(noise in text(0..40)) {
        // Arbitrary text never crashes the decoders; anything that decodes
        // must re-encode canonically (decode is a partial inverse of encode).
        match Request::decode(&noise) {
            Ok(req) => prop_assert_eq!(Request::decode(&req.encode()).unwrap(), req),
            Err(ProtocolError::Malformed(_)) => {}
            Err(e) => panic!("decoding garbage must yield Malformed, got {e}"),
        }
        match Response::decode(&noise) {
            Ok(resp) => prop_assert_eq!(Response::decode(&resp.encode()).unwrap(), resp),
            Err(ProtocolError::Malformed(_)) => {}
            Err(e) => panic!("decoding garbage must yield Malformed, got {e}"),
        }
    }

    #[test]
    fn malformed_estimate_and_subscribe_are_rejected_not_panicked(
        point in 0usize..10_000,
        col in 0usize..8,
        junk in line(1..8),
        bad_eps in prop_oneof![
            Just("0"), Just("-0"), Just("-1.5"), Just("NaN"), Just("-NaN"),
            Just("inf"), Just("-inf"), Just("1e999"), Just("eps"), Just("0x1"),
        ],
    ) {
        // Wrong arity, non-numeric indices, and bad eps all come back as
        // Malformed; none of them panic or slip through as a request.
        for wire in [
            format!("ESTIMATE {point}"),
            format!("ESTIMATE {point} {col} extra"),
            format!("ESTIMATE {junk} {col}"),
            format!("SUBSCRIBE {point} {col}"),
            format!("SUBSCRIBE {point} {col} {bad_eps}"),
            format!("SUBSCRIBE {point} {junk} 0.5"),
            format!("SUBSCRIBE {point} {col} 0.5 extra"),
        ] {
            match Request::decode(&wire) {
                Err(ProtocolError::Malformed(_)) => {}
                Ok(req) => {
                    // `junk` can be a plain number, making the line valid —
                    // but then it must round-trip canonically.
                    prop_assert_eq!(Request::decode(&req.encode()).unwrap(), req);
                }
                Err(e) => panic!("`{wire}` must yield Malformed, got {e}"),
            }
        }
    }

    #[test]
    fn garbage_bytes_after_a_frame_do_not_parse_as_one(
        req in request(),
        junk in vec(any::<u8>(), 1..4),
    ) {
        // A valid frame followed by a few trailing junk bytes: the first
        // read succeeds, the next is a truncation (junk is shorter than a
        // length prefix), never a parsed frame.
        let mut framed = Vec::new();
        write_frame(&mut framed, &req.encode()).unwrap();
        framed.extend_from_slice(&junk);
        let mut cursor = std::io::Cursor::new(framed);
        prop_assert!(read_frame(&mut cursor).unwrap().is_some());
        match read_frame(&mut cursor) {
            Err(ProtocolError::Truncated) => {}
            other => panic!("trailing junk must truncate, got {other:?}"),
        }
    }
}

#[test]
fn snapshot_name_validation_blocks_path_escapes() {
    for good in ["a", "basis-1", "run_2.snap", "X9"] {
        assert!(valid_snapshot_name(good), "{good}");
    }
    for bad in ["", ".", "..", ".hidden", "a/b", "..\\up", "a b", "caf\u{e9}"] {
        assert!(!valid_snapshot_name(bad), "{bad}");
    }
}
