//! `jigsaw-server` — run a session server over the default model catalog.
//!
//! ```text
//! jigsaw-server [--addr HOST:PORT] [--threads N] [--n-samples N]
//!               [--fingerprint-len M] [--seed N] [--snapshot-dir DIR]
//!               [--pool scoped|persistent] [--conn-threads N]
//!               [--sketch-budget S] [--refine-top-k K]
//!               [--trace] [--metrics-dump SECS]
//! ```
//!
//! Binds (default `127.0.0.1:0`, i.e. an ephemeral loopback port), prints
//! one `LISTENING <addr>` line to stdout, and serves until killed. The CI
//! smoke job scrapes that line, replays a scripted `jigsaw-client` session
//! against it (under both `--pool` backends), and byte-diffs the
//! transcript against a golden file.

use std::path::PathBuf;
use std::sync::Arc;

use jigsaw_core::{ScopedPool, WorkerPool};
use jigsaw_server::JigsawServer;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value_of = |flag: &str| -> Option<&String> {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1).unwrap_or_else(|| {
                eprintln!("error: {flag} requires a value");
                std::process::exit(2);
            })
        })
    };
    let parse_num = |flag: &str| -> Option<usize> {
        value_of(flag).map(|s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("error: {flag} requires an integer, got `{s}`");
                std::process::exit(2);
            })
        })
    };

    let addr = value_of("--addr").cloned().unwrap_or_else(|| "127.0.0.1:0".into());
    let mut builder = JigsawServer::builder();
    let mut cfg = jigsaw_core::JigsawConfig::paper();
    if let Some(threads) = parse_num("--threads") {
        cfg = cfg.with_threads(threads);
    }
    if let Some(n) = parse_num("--n-samples") {
        cfg = cfg.with_n_samples(n);
    }
    if let Some(m) = parse_num("--fingerprint-len") {
        cfg = cfg.with_fingerprint_len(m);
    }
    // Sketch-then-refine sweeps: `--sketch-budget S` turns the two-phase
    // mode on for every `SWEEP` this server runs (no wire-protocol change —
    // the executor swap is invisible to clients except for coarse metrics
    // on pruned points). `--refine-top-k` defaults to 4 when only the
    // budget is given.
    if let Some(s) = parse_num("--sketch-budget") {
        cfg = cfg.with_sketch(s, parse_num("--refine-top-k").unwrap_or(4));
    } else if parse_num("--refine-top-k").is_some() {
        eprintln!("error: --refine-top-k requires --sketch-budget");
        std::process::exit(2);
    }
    // The pool must see the final thread budget, so resolve it after all
    // config flags (the builder's default pool is sized the same way).
    match value_of("--pool").map(String::as_str) {
        None | Some("persistent") => {}
        Some("scoped") => {
            builder = builder.pool(Arc::new(ScopedPool) as Arc<dyn WorkerPool>);
        }
        Some(other) => {
            eprintln!("error: --pool must be `scoped` or `persistent`, got `{other}`");
            std::process::exit(2);
        }
    }
    builder = builder.config(cfg);
    if let Some(seed) = parse_num("--seed") {
        builder = builder.master_seed(seed as u64);
    }
    if let Some(dir) = value_of("--snapshot-dir") {
        builder = builder.snapshot_dir(PathBuf::from(dir));
    }
    if let Some(n) = parse_num("--conn-threads") {
        builder = builder.conn_threads(n);
    }
    // `--trace` is the flag form of JIGSAW_TRACE=1: NDJSON span records on
    // stderr. Purely observational — the golden-transcript byte diff holds
    // with it on.
    if args.iter().any(|a| a == "--trace") {
        jigsaw_obs::set_trace(true);
    }
    // `--metrics-dump SECS`: a detached thread writes the full Prometheus
    // snapshot to stderr every SECS seconds, bracketed by marker lines so
    // scrapers (and humans) can split the stream.
    if let Some(secs) = parse_num("--metrics-dump") {
        let period = std::time::Duration::from_secs(secs.max(1) as u64);
        std::thread::Builder::new()
            .name("jigsaw-metrics-dump".into())
            .spawn(move || loop {
                std::thread::sleep(period);
                let text = jigsaw_obs::global().snapshot().render_prometheus();
                let mut stderr = std::io::stderr().lock();
                use std::io::Write as _;
                let _ = writeln!(stderr, "# ---- jigsaw metrics dump ----");
                let _ = stderr.write_all(text.as_bytes());
                let _ = writeln!(stderr, "# ---- end dump ----");
            })
            .expect("spawn metrics dump thread");
    }

    let server = builder.bind(&addr).unwrap_or_else(|e| {
        eprintln!("error: cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    let local = server.local_addr().expect("bound listener has an address");
    // The machine-readable handshake line the smoke job scrapes.
    println!("LISTENING {local}");
    use std::io::Write;
    std::io::stdout().flush().ok();
    match server.serve() {
        Ok(handle) => handle.join(),
        Err(e) => {
            eprintln!("error: server terminated: {e}");
            std::process::exit(1);
        }
    }
}
