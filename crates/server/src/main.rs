//! `jigsaw-server` — run a session server over the default model catalog.
//!
//! ```text
//! jigsaw-server [--addr HOST:PORT] [--threads N] [--n-samples N]
//!               [--fingerprint-len M] [--seed N] [--snapshot-dir DIR]
//! ```
//!
//! Binds (default `127.0.0.1:0`, i.e. an ephemeral loopback port), prints
//! one `LISTENING <addr>` line to stdout, and serves until killed. The CI
//! smoke job scrapes that line, replays a scripted `jigsaw-client` session
//! against it, and byte-diffs the transcript against a golden file.

use std::path::PathBuf;

use jigsaw_server::{default_catalog, JigsawServer, ServerConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value_of = |flag: &str| -> Option<&String> {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1).unwrap_or_else(|| {
                eprintln!("error: {flag} requires a value");
                std::process::exit(2);
            })
        })
    };
    let parse_num = |flag: &str| -> Option<usize> {
        value_of(flag).map(|s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("error: {flag} requires an integer, got `{s}`");
                std::process::exit(2);
            })
        })
    };

    let addr = value_of("--addr").cloned().unwrap_or_else(|| "127.0.0.1:0".into());
    let mut config = ServerConfig::default();
    if let Some(threads) = parse_num("--threads") {
        config.cfg = config.cfg.with_threads(threads);
    }
    if let Some(n) = parse_num("--n-samples") {
        config.cfg = config.cfg.with_n_samples(n);
    }
    if let Some(m) = parse_num("--fingerprint-len") {
        config.cfg = config.cfg.with_fingerprint_len(m);
    }
    if let Some(seed) = parse_num("--seed") {
        config.master_seed = seed as u64;
    }
    config.snapshot_dir = value_of("--snapshot-dir").map(PathBuf::from);

    let server = JigsawServer::bind(&addr, default_catalog(), config).unwrap_or_else(|e| {
        eprintln!("error: cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    let local = server.local_addr().expect("bound listener has an address");
    // The machine-readable handshake line the smoke job scrapes.
    println!("LISTENING {local}");
    use std::io::Write;
    std::io::stdout().flush().ok();
    if let Err(e) = server.run() {
        eprintln!("error: server terminated: {e}");
        std::process::exit(1);
    }
}
