//! A minimal client: typed request/response exchange plus the scripted
//! driver behind the `jigsaw-client` binary and the golden-transcript CI
//! gate.

use std::fmt::Write as _;
use std::io::ErrorKind;
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{
    recv_response, send_request, ProtocolError, Request, Response, PROTOCOL_VERSION,
};

/// A connected protocol client.
pub struct Client {
    stream: TcpStream,
    negotiated: u32,
}

impl Client {
    /// Connect to a running session server and perform the `HELLO`
    /// handshake, recording the negotiated protocol version. Disables
    /// Nagle's algorithm: the protocol is strict request/response with
    /// small frames, where write coalescing only adds delayed-ACK latency.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = Client { stream, negotiated: 0 };
        let bad = |m: String| std::io::Error::new(ErrorKind::InvalidData, m);
        match client
            .request(&Request::Hello { version: PROTOCOL_VERSION })
            .map_err(|e| bad(format!("handshake failed: {e}")))?
        {
            Response::Welcome { version } => client.negotiated = version,
            other => return Err(bad(format!("expected WELCOME, got `{}`", other.encode()))),
        }
        Ok(client)
    }

    /// The protocol version agreed during [`Client::connect`]'s handshake:
    /// the minimum of this client's [`PROTOCOL_VERSION`] and the server's.
    pub fn negotiated_version(&self) -> u32 {
        self.negotiated
    }

    /// Send one request and wait for its response. The protocol is strictly
    /// request/response (`SUBSCRIBE` excepted — use [`Client::subscribe`]),
    /// so `Err(Truncated)` here means the server went away mid-exchange.
    pub fn request(&mut self, req: &Request) -> Result<Response, ProtocolError> {
        send_request(&mut self.stream, req)?;
        recv_response(&mut self.stream)?.ok_or(ProtocolError::Truncated)
    }

    /// Open a `SUBSCRIBE` stream and hand each frame to `on_frame` as it
    /// arrives: zero or more `INTERVAL`s (or a single `ERR`), closed by
    /// the final `EST`. The callback form lets callers observe *when* each
    /// bound lands — the anytime latency E13 measures.
    pub fn subscribe_each(
        &mut self,
        point: usize,
        col: usize,
        eps: f64,
        mut on_frame: impl FnMut(&Response),
    ) -> Result<(), ProtocolError> {
        send_request(
            &mut self.stream,
            &Request::Subscribe { point, col, eps_bits: eps.to_bits() },
        )?;
        loop {
            let resp = recv_response(&mut self.stream)?.ok_or(ProtocolError::Truncated)?;
            let done = !matches!(resp, Response::Interval { .. });
            on_frame(&resp);
            if done {
                return Ok(());
            }
        }
    }

    /// [`Client::subscribe_each`], collected: returns every streamed frame
    /// in order. The last element is therefore `Estimated` on success and
    /// `Error` on rejection.
    pub fn subscribe(
        &mut self,
        point: usize,
        col: usize,
        eps: f64,
    ) -> Result<Vec<Response>, ProtocolError> {
        let mut frames = Vec::new();
        self.subscribe_each(point, col, eps, |resp| frames.push(resp.clone()))?;
        Ok(frames)
    }

    /// Replay a line-oriented script (blank lines and `#` comments
    /// skipped), returning the canonical transcript: each command echoed
    /// with a `> ` prefix, each response with `< `. A `SUBSCRIBE` command
    /// echoes once and then prints every streamed frame as its own `< `
    /// line. Every response field is deterministic given the server's
    /// scenario and configuration, so the transcript can be byte-diffed
    /// against a golden file.
    pub fn run_script(&mut self, script: &str) -> Result<String, ProtocolError> {
        let mut transcript = String::new();
        for line in script.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let req = Request::from_script_line(line)?;
            let _ = writeln!(transcript, "> {line}");
            if let Request::Subscribe { point, col, eps_bits } = req {
                for resp in self.subscribe(point, col, f64::from_bits(eps_bits))? {
                    let _ = writeln!(transcript, "< {}", resp.encode());
                }
            } else {
                let resp = self.request(&req)?;
                let _ = writeln!(transcript, "< {}", resp.encode());
            }
        }
        Ok(transcript)
    }
}

/// Connect, replay `script`, and return the transcript (the one-call form
/// the `jigsaw-client` binary and the CI smoke job use).
pub fn run_script(addr: impl ToSocketAddrs, script: &str) -> Result<String, ProtocolError> {
    Client::connect(addr)?.run_script(script)
}
