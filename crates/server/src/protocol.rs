//! The session-server wire protocol: length-prefixed UTF-8 line frames.
//!
//! Dependency-free by design (U-relations-style succinctness argues for a
//! compact, self-describing wire format): every message is one **frame** —
//! a little-endian `u32` byte length followed by that many bytes of UTF-8
//! payload. The payload is a single command line (verb + space-separated
//! arguments); only `COMPILE` carries a body (the scenario script) after
//! the first newline, which the length prefix makes unambiguous.
//!
//! ## Grammar
//!
//! Requests:
//!
//! ```text
//! HELLO <version>            negotiate the protocol version (optional)
//! COMPILE\n<script>          compile a scenario; attaches the shared store
//! SWEEP                      run the wave executor over the whole space
//! FOCUS <point>              move the session focus
//! ESTIMATE <point> <col>     touch a point and return its estimate
//! SUBSCRIBE <point> <col> <eps>   stream the anytime bound (v2+)
//! TICK <count>               run <count> event-loop iterations
//! STATS                      session + shared-store telemetry
//! SAVE <name>                snapshot the shared store server-side
//! LOAD <name>                replace the shared store from a snapshot
//! QUIT                       close the connection
//! ```
//!
//! Responses (one per request, in order — except `SUBSCRIBE`, which
//! streams zero or more `INTERVAL` frames before its closing `EST`):
//!
//! ```text
//! WELCOME <version>
//! COMPILED <points> <n_cols> <col>…
//! SWEPT <points> <worlds> <full_sims> <reused> <warm_hits> <bases>
//! FOCUSED <point>
//! EST <point> <col> <n> <basis|direct> <mean_bits> <sd_bits> <lo_bits> <hi_bits>
//! INTERVAL <point> <col> <n> <lo_bits> <hi_bits>
//! TICKED <ticks> <worlds>
//! STATS <bases> <touched> <warm_hits> <worlds> <generation>
//! SAVED <name> <bytes>
//! LOADED <name> <bases>
//! METRICS\n<prometheus-text>
//! BYE
//! ERR <code> <message>
//! ```
//!
//! The handshake is *optional and stateless*: a client may send `HELLO`
//! with the highest version it speaks (in any connection state), and the
//! server answers `WELCOME` with `min(client, server)` — the version both
//! sides then hold to. New *verbs* gate on the negotiated version:
//! `SUBSCRIBE` (version 2) and `METRICS` (version 3) are answered
//! `ERR unsupported` on a connection negotiated below their version.
//! Version 2 also widened `EST` with the anytime bound's
//! `<lo_bits> <hi_bits>`; in-repo client and server always move together
//! (the golden transcripts pin the current shape).
//!
//! `METRICS` is the one response besides `COMPILE`'s request that carries
//! a body: the verb line, a newline, then the process-wide metrics
//! snapshot in Prometheus text exposition format (`jigsaw_obs`). The
//! snapshot is wall-clock telemetry — unlike every other response it is
//! **not** deterministic, so golden-transcript scripts must not use it
//! (CI scrapes it with invariant assertions instead). A snapshot larger
//! than [`MAX_FRAME`] is answered with `ERR exec` through the normal
//! oversized-response substitution.
//!
//! `SUBSCRIBE <eps>` is a decimal f64 (e.g. `0.05`) — Rust's shortest
//! round-trippable `Display`/`parse` keeps it bit-exact on the wire; it
//! must be finite and positive. The stream closes with an `EST` carrying
//! the exact bit patterns a blocking `ESTIMATE` of the same refined state
//! returns — the anytime determinism contract.
//!
//! `<bases>` is a comma-joined per-column basis count (`-` when empty);
//! `<mean_bits>`/`<sd_bits>`/`<lo_bits>`/`<hi_bits>` are the IEEE-754 bit
//! patterns of the estimate in fixed-width hex, so estimates cross the
//! wire **bit-exactly** — the server-vs-local identity tests compare them
//! as integers.

use std::fmt;
use std::io::{Read, Write};

use jigsaw_core::interactive::EstimateSource;
use jigsaw_pdb::PdbError;

/// Upper bound on a frame payload; larger length prefixes are rejected
/// before any allocation is sized from them.
pub const MAX_FRAME: usize = 1 << 20;

/// Highest protocol version this build speaks. Version 1 is the original
/// verb set plus the `HELLO`/`WELCOME` handshake itself; version 2 adds
/// the anytime-estimate surface (`SUBSCRIBE`/`INTERVAL`, and the
/// `lo_bits`/`hi_bits` fields on `EST`); version 3 adds the `METRICS`
/// observability verb.
pub const PROTOCOL_VERSION: u32 = 3;

/// Why a frame or message could not be read, written, or parsed.
#[derive(Debug)]
pub enum ProtocolError {
    /// Underlying socket/file I/O failed.
    Io(std::io::Error),
    /// A frame payload longer than [`MAX_FRAME`] — declared by a length
    /// prefix on read, or composed locally on write. Both directions are
    /// hard errors: a release build must never truncate the length to
    /// `u32` and silently desync the stream.
    Oversized(usize),
    /// The stream ended inside a frame (mid-prefix or mid-payload).
    Truncated,
    /// The payload bytes are not valid UTF-8.
    NotUtf8,
    /// The payload parsed as text but not as a protocol message.
    Malformed(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "frame I/O: {e}"),
            ProtocolError::Oversized(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte limit")
            }
            ProtocolError::Truncated => write!(f, "frame truncated"),
            ProtocolError::NotUtf8 => write!(f, "frame payload is not UTF-8"),
            ProtocolError::Malformed(what) => write!(f, "malformed message: {what}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

impl From<ProtocolError> for PdbError {
    fn from(e: ProtocolError) -> Self {
        PdbError::Protocol(e.to_string())
    }
}

/// Write one frame: `u32` LE payload length, then the payload bytes.
///
/// Prefix and payload go out in a single `write_all` — on a TCP socket,
/// two small writes per frame interact with Nagle + delayed ACK into
/// tens-of-milliseconds round trips ([`TcpStream::set_nodelay`] on both
/// ends guards the same latency; see [`crate::Client::connect`]).
///
/// [`TcpStream::set_nodelay`]: std::net::TcpStream::set_nodelay
pub fn write_frame(w: &mut impl Write, payload: &str) -> Result<(), ProtocolError> {
    // A typed error, not a debug_assert: in release builds the assert
    // would vanish and `payload.len() as u32` would silently truncate the
    // prefix, desyncing every frame after it.
    if payload.len() > MAX_FRAME {
        return Err(ProtocolError::Oversized(payload.len()));
    }
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload.as_bytes());
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Read one frame's payload. `Ok(None)` is a clean end-of-stream (the peer
/// closed between frames); EOF *inside* a frame is [`ProtocolError::Truncated`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<String>, ProtocolError> {
    let mut prefix = [0u8; 4];
    let mut got = 0usize;
    while got < prefix.len() {
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(ProtocolError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(ProtocolError::Oversized(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => ProtocolError::Truncated,
        _ => ProtocolError::Io(e),
    })?;
    String::from_utf8(payload).map(Some).map_err(|_| ProtocolError::NotUtf8)
}

/// A client command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Negotiate the protocol version (optional; any connection state).
    Hello {
        /// Highest protocol version the client speaks.
        version: u32,
    },
    /// Compile a scenario script and attach its shared basis store.
    Compile {
        /// The scenario source (the `DECLARE …; SELECT …;` dialect).
        src: String,
    },
    /// Run the batch sweep over the whole parameter space.
    Sweep,
    /// Move the interactive focus.
    Focus {
        /// Parameter-space point index.
        point: usize,
    },
    /// Touch a point and return its estimate for one column.
    Estimate {
        /// Parameter-space point index.
        point: usize,
        /// Output-column index.
        col: usize,
    },
    /// Stream the anytime bound for one (point, column) until it is at
    /// most `eps` wide or the sample budget runs out (protocol v2+).
    Subscribe {
        /// Parameter-space point index.
        point: usize,
        /// Output-column index.
        col: usize,
        /// `f64::to_bits` of the target width (bits keep the enum `Eq`;
        /// the wire carries the decimal form, which round-trips exactly).
        eps_bits: u64,
    },
    /// Run event-loop iterations.
    Tick {
        /// Number of ticks.
        count: u32,
    },
    /// Session and shared-store telemetry.
    Stats,
    /// Snapshot the shared store server-side under `name`.
    Save {
        /// Snapshot name (restricted charset; no paths).
        name: String,
    },
    /// Replace the shared store from the server-side snapshot `name`.
    Load {
        /// Snapshot name (restricted charset; no paths).
        name: String,
    },
    /// Process-wide metrics snapshot in Prometheus text format (v3+).
    Metrics,
    /// Close the connection.
    Quit,
}

/// True for names safe to embed in the wire format and in server-side
/// snapshot filenames: non-empty ASCII alphanumerics plus `-`/`_`/`.`,
/// never starting with a dot (no hidden files, no traversal).
pub fn valid_snapshot_name(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with('.')
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
}

impl Request {
    /// The wire verb, as a static string usable as a metric label
    /// (`jigsaw_requests_total{verb="ESTIMATE"}`).
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Hello { .. } => "HELLO",
            Request::Compile { .. } => "COMPILE",
            Request::Sweep => "SWEEP",
            Request::Focus { .. } => "FOCUS",
            Request::Estimate { .. } => "ESTIMATE",
            Request::Subscribe { .. } => "SUBSCRIBE",
            Request::Tick { .. } => "TICK",
            Request::Stats => "STATS",
            Request::Save { .. } => "SAVE",
            Request::Load { .. } => "LOAD",
            Request::Metrics => "METRICS",
            Request::Quit => "QUIT",
        }
    }

    /// Serialize to a frame payload.
    pub fn encode(&self) -> String {
        match self {
            Request::Hello { version } => format!("HELLO {version}"),
            Request::Compile { src } => format!("COMPILE\n{src}"),
            Request::Sweep => "SWEEP".into(),
            Request::Focus { point } => format!("FOCUS {point}"),
            Request::Estimate { point, col } => format!("ESTIMATE {point} {col}"),
            Request::Subscribe { point, col, eps_bits } => {
                format!("SUBSCRIBE {point} {col} {}", f64::from_bits(*eps_bits))
            }
            Request::Tick { count } => format!("TICK {count}"),
            Request::Stats => "STATS".into(),
            Request::Save { name } => format!("SAVE {name}"),
            Request::Load { name } => format!("LOAD {name}"),
            Request::Metrics => "METRICS".into(),
            Request::Quit => "QUIT".into(),
        }
    }

    /// Parse a frame payload.
    pub fn decode(payload: &str) -> Result<Request, ProtocolError> {
        let (line, body) = match payload.split_once('\n') {
            Some((line, body)) => (line, Some(body)),
            None => (payload, None),
        };
        let mut words = line.split(' ');
        let verb = words.next().unwrap_or("");
        let args: Vec<&str> = words.collect();
        let arity = |n: usize| -> Result<(), ProtocolError> {
            if args.len() == n {
                Ok(())
            } else {
                Err(ProtocolError::Malformed(format!(
                    "{verb} takes {n} argument(s), got {}",
                    args.len()
                )))
            }
        };
        let parse_num = |what: &str, s: &str| -> Result<usize, ProtocolError> {
            s.parse().map_err(|_| ProtocolError::Malformed(format!("{what} `{s}` is not a number")))
        };
        if body.is_some() && verb != "COMPILE" {
            return Err(ProtocolError::Malformed(format!("{verb} does not take a body")));
        }
        match verb {
            "HELLO" => {
                arity(1)?;
                let version = args[0].parse::<u32>().map_err(|_| {
                    ProtocolError::Malformed(format!("version `{}` is not a u32", args[0]))
                })?;
                Ok(Request::Hello { version })
            }
            "COMPILE" => {
                arity(0)?;
                match body {
                    Some(src) => Ok(Request::Compile { src: src.to_string() }),
                    None => Err(ProtocolError::Malformed("COMPILE requires a script body".into())),
                }
            }
            "SWEEP" => arity(0).map(|()| Request::Sweep),
            "FOCUS" => {
                arity(1)?;
                Ok(Request::Focus { point: parse_num("point", args[0])? })
            }
            "ESTIMATE" => {
                arity(2)?;
                Ok(Request::Estimate {
                    point: parse_num("point", args[0])?,
                    col: parse_num("column", args[1])?,
                })
            }
            "SUBSCRIBE" => {
                arity(3)?;
                let eps = args[2].parse::<f64>().map_err(|_| {
                    ProtocolError::Malformed(format!("eps `{}` is not a number", args[2]))
                })?;
                if !(eps.is_finite() && eps > 0.0) {
                    return Err(ProtocolError::Malformed(format!(
                        "eps `{}` must be positive and finite",
                        args[2]
                    )));
                }
                Ok(Request::Subscribe {
                    point: parse_num("point", args[0])?,
                    col: parse_num("column", args[1])?,
                    eps_bits: eps.to_bits(),
                })
            }
            "TICK" => {
                arity(1)?;
                let count = args[0].parse::<u32>().map_err(|_| {
                    ProtocolError::Malformed(format!("count `{}` is not a u32", args[0]))
                })?;
                Ok(Request::Tick { count })
            }
            "STATS" => arity(0).map(|()| Request::Stats),
            "SAVE" | "LOAD" => {
                arity(1)?;
                let name = args[0].to_string();
                if !valid_snapshot_name(&name) {
                    return Err(ProtocolError::Malformed(format!(
                        "invalid snapshot name `{name}`"
                    )));
                }
                Ok(if verb == "SAVE" { Request::Save { name } } else { Request::Load { name } })
            }
            "METRICS" => arity(0).map(|()| Request::Metrics),
            "QUIT" => arity(0).map(|()| Request::Quit),
            other => Err(ProtocolError::Malformed(format!("unknown request verb `{other}`"))),
        }
    }

    /// Parse one line of a *client script* — the same syntax as the wire
    /// verb line, except `COMPILE` takes the scenario source as the rest of
    /// the line (scripts are line-oriented; the wire format is not).
    pub fn from_script_line(line: &str) -> Result<Request, ProtocolError> {
        match line.split_once(' ') {
            Some(("COMPILE", src)) => Ok(Request::Compile { src: src.to_string() }),
            _ => Request::decode(line),
        }
    }
}

/// Machine-readable failure class of a [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request could not be parsed.
    Malformed,
    /// The request is valid but not in this connection state (e.g. `SWEEP`
    /// before `COMPILE`) or its arguments are out of range.
    State,
    /// Scenario compilation failed.
    Compile,
    /// Sweep or session execution failed.
    Exec,
    /// Snapshot save/load failed.
    Snapshot,
    /// The server is not configured for the operation.
    Unsupported,
}

impl ErrorCode {
    fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::State => "state",
            ErrorCode::Compile => "compile",
            ErrorCode::Exec => "exec",
            ErrorCode::Snapshot => "snapshot",
            ErrorCode::Unsupported => "unsupported",
        }
    }

    fn parse(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "malformed" => ErrorCode::Malformed,
            "state" => ErrorCode::State,
            "compile" => ErrorCode::Compile,
            "exec" => ErrorCode::Exec,
            "snapshot" => ErrorCode::Snapshot,
            "unsupported" => ErrorCode::Unsupported,
            _ => return None,
        })
    }
}

/// A server reply. Every field is deterministic given the scenario and
/// configuration — no wall-clock values cross the wire, so transcripts can
/// be byte-diffed against goldens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Handshake accepted; carries the negotiated version
    /// (`min(client, server)`).
    Welcome {
        /// The protocol version both sides hold to from here on.
        version: u32,
    },
    /// Scenario compiled; session attached to the shared store.
    Compiled {
        /// Parameter-space size.
        points: usize,
        /// Output-column names.
        columns: Vec<String>,
    },
    /// Sweep finished (the deterministic counters of `SweepStats`).
    Swept {
        /// Points swept.
        points: usize,
        /// Simulation worlds evaluated.
        worlds: u64,
        /// Points that ran a completion simulation.
        full_sims: usize,
        /// Points served by intra-sweep reuse.
        reused: usize,
        /// Points served by bases that pre-dated this sweep (paid for by an
        /// earlier sweep — possibly another client's).
        warm_hits: usize,
        /// Basis count per output column after the sweep.
        bases: Vec<usize>,
    },
    /// Focus moved.
    Focused {
        /// The new focus.
        point: usize,
    },
    /// An estimate, bit-exact (IEEE-754 bit patterns).
    Estimated {
        /// Point index.
        point: usize,
        /// Column index.
        col: usize,
        /// Samples backing the estimate.
        n_samples: usize,
        /// Provenance (mapped basis vs direct samples).
        source: EstimateSource,
        /// `f64::to_bits` of the expectation.
        expectation_bits: u64,
        /// `f64::to_bits` of the standard deviation.
        std_dev_bits: u64,
        /// `f64::to_bits` of the anytime bound's lower edge (v2+).
        lo_bits: u64,
        /// `f64::to_bits` of the anytime bound's upper edge (v2+).
        hi_bits: u64,
    },
    /// One step of a `SUBSCRIBE` stream: the current anytime bound (v2+).
    Interval {
        /// Point index.
        point: usize,
        /// Column index.
        col: usize,
        /// Samples backing the bound so far.
        n_samples: usize,
        /// `f64::to_bits` of the bound's lower edge.
        lo_bits: u64,
        /// `f64::to_bits` of the bound's upper edge.
        hi_bits: u64,
    },
    /// Event-loop iterations ran.
    Ticked {
        /// Ticks executed.
        ticks: u32,
        /// Session worlds evaluated so far (cumulative).
        worlds: u64,
    },
    /// Telemetry snapshot.
    Stats {
        /// Shared-store basis count per column.
        bases: Vec<usize>,
        /// Points this session has touched.
        touched: usize,
        /// This session's warm hits (first touches fully served by bases
        /// the session did not itself create).
        warm_hits: u64,
        /// This session's worlds evaluated.
        worlds: u64,
        /// Shared-store replacement generation.
        generation: u64,
    },
    /// Shared store snapshotted server-side.
    Saved {
        /// Snapshot name.
        name: String,
        /// Snapshot size in bytes.
        bytes: usize,
    },
    /// Shared store replaced from a server-side snapshot.
    Loaded {
        /// Snapshot name.
        name: String,
        /// Basis count per column after the load.
        bases: Vec<usize>,
    },
    /// Process-wide metrics snapshot (v3+). The one non-deterministic
    /// response: wall-clock latency histograms and traffic counters.
    Metrics {
        /// The snapshot in Prometheus text exposition format (the body
        /// after the verb line's newline).
        text: String,
    },
    /// Connection closing.
    Bye,
    /// The request failed; the connection stays usable.
    Error {
        /// Failure class.
        code: ErrorCode,
        /// Human-readable detail (single line).
        message: String,
    },
}

/// Join per-column counts for the wire (`-` for a zero-column store).
fn encode_counts(counts: &[usize]) -> String {
    if counts.is_empty() {
        "-".into()
    } else {
        counts.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(",")
    }
}

fn decode_counts(s: &str) -> Result<Vec<usize>, ProtocolError> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|x| {
            x.parse()
                .map_err(|_| ProtocolError::Malformed(format!("basis count `{x}` is not a number")))
        })
        .collect()
}

fn decode_bits(s: &str) -> Result<u64, ProtocolError> {
    u64::from_str_radix(s, 16)
        .map_err(|_| ProtocolError::Malformed(format!("`{s}` is not a hex bit pattern")))
}

impl Response {
    /// Serialize to a frame payload (single line; newlines in error
    /// messages are flattened to spaces).
    pub fn encode(&self) -> String {
        match self {
            Response::Welcome { version } => format!("WELCOME {version}"),
            Response::Compiled { points, columns } => {
                let mut out = format!("COMPILED {points} {}", columns.len());
                for c in columns {
                    out.push(' ');
                    out.push_str(c);
                }
                out
            }
            Response::Swept { points, worlds, full_sims, reused, warm_hits, bases } => format!(
                "SWEPT {points} {worlds} {full_sims} {reused} {warm_hits} {}",
                encode_counts(bases)
            ),
            Response::Focused { point } => format!("FOCUSED {point}"),
            Response::Estimated {
                point,
                col,
                n_samples,
                source,
                expectation_bits,
                std_dev_bits,
                lo_bits,
                hi_bits,
            } => {
                let src = match source {
                    EstimateSource::MappedBasis => "basis",
                    EstimateSource::Direct => "direct",
                };
                format!(
                    "EST {point} {col} {n_samples} {src} {expectation_bits:016x} {std_dev_bits:016x} {lo_bits:016x} {hi_bits:016x}"
                )
            }
            Response::Interval { point, col, n_samples, lo_bits, hi_bits } => {
                format!("INTERVAL {point} {col} {n_samples} {lo_bits:016x} {hi_bits:016x}")
            }
            Response::Ticked { ticks, worlds } => format!("TICKED {ticks} {worlds}"),
            Response::Stats { bases, touched, warm_hits, worlds, generation } => format!(
                "STATS {} {touched} {warm_hits} {worlds} {generation}",
                encode_counts(bases)
            ),
            Response::Saved { name, bytes } => format!("SAVED {name} {bytes}"),
            Response::Loaded { name, bases } => {
                format!("LOADED {name} {}", encode_counts(bases))
            }
            Response::Metrics { text } => format!("METRICS\n{text}"),
            Response::Bye => "BYE".into(),
            Response::Error { code, message } => {
                format!("ERR {} {}", code.as_str(), message.replace('\n', " "))
            }
        }
    }

    /// Parse a frame payload.
    pub fn decode(payload: &str) -> Result<Response, ProtocolError> {
        let (line, body) = match payload.split_once('\n') {
            Some((line, body)) => (line, Some(body)),
            None => (payload, None),
        };
        let mut words = line.split(' ');
        let verb = words.next().unwrap_or("");
        let args: Vec<&str> = match verb {
            // ERR keeps its trailing message verbatim (it may contain spaces).
            "ERR" => Vec::new(),
            _ => words.collect(),
        };
        let arity = |n: usize| -> Result<(), ProtocolError> {
            if args.len() == n {
                Ok(())
            } else {
                Err(ProtocolError::Malformed(format!(
                    "{verb} takes {n} field(s), got {}",
                    args.len()
                )))
            }
        };
        let num = |what: &str, s: &str| -> Result<u64, ProtocolError> {
            s.parse().map_err(|_| ProtocolError::Malformed(format!("{what} `{s}` is not a number")))
        };
        if body.is_some() && verb != "METRICS" {
            return Err(ProtocolError::Malformed(format!("{verb} does not take a body")));
        }
        match verb {
            "WELCOME" => {
                arity(1)?;
                let version = args[0].parse::<u32>().map_err(|_| {
                    ProtocolError::Malformed(format!("version `{}` is not a u32", args[0]))
                })?;
                Ok(Response::Welcome { version })
            }
            "COMPILED" => {
                if args.len() < 2 {
                    return Err(ProtocolError::Malformed("COMPILED needs points + n_cols".into()));
                }
                let points = num("points", args[0])? as usize;
                let n_cols = num("column count", args[1])? as usize;
                if args.len() != 2 + n_cols {
                    return Err(ProtocolError::Malformed(format!(
                        "COMPILED declares {n_cols} column(s) but carries {}",
                        args.len() - 2
                    )));
                }
                let columns = args[2..].iter().map(|s| s.to_string()).collect();
                Ok(Response::Compiled { points, columns })
            }
            "SWEPT" => {
                arity(6)?;
                Ok(Response::Swept {
                    points: num("points", args[0])? as usize,
                    worlds: num("worlds", args[1])?,
                    full_sims: num("full_sims", args[2])? as usize,
                    reused: num("reused", args[3])? as usize,
                    warm_hits: num("warm_hits", args[4])? as usize,
                    bases: decode_counts(args[5])?,
                })
            }
            "FOCUSED" => {
                arity(1)?;
                Ok(Response::Focused { point: num("point", args[0])? as usize })
            }
            "EST" => {
                arity(8)?;
                let source = match args[3] {
                    "basis" => EstimateSource::MappedBasis,
                    "direct" => EstimateSource::Direct,
                    other => {
                        return Err(ProtocolError::Malformed(format!(
                            "unknown estimate source `{other}`"
                        )))
                    }
                };
                Ok(Response::Estimated {
                    point: num("point", args[0])? as usize,
                    col: num("column", args[1])? as usize,
                    n_samples: num("n_samples", args[2])? as usize,
                    source,
                    expectation_bits: decode_bits(args[4])?,
                    std_dev_bits: decode_bits(args[5])?,
                    lo_bits: decode_bits(args[6])?,
                    hi_bits: decode_bits(args[7])?,
                })
            }
            "INTERVAL" => {
                arity(5)?;
                Ok(Response::Interval {
                    point: num("point", args[0])? as usize,
                    col: num("column", args[1])? as usize,
                    n_samples: num("n_samples", args[2])? as usize,
                    lo_bits: decode_bits(args[3])?,
                    hi_bits: decode_bits(args[4])?,
                })
            }
            "TICKED" => {
                arity(2)?;
                let ticks = args[0].parse::<u32>().map_err(|_| {
                    ProtocolError::Malformed(format!("ticks `{}` is not a u32", args[0]))
                })?;
                Ok(Response::Ticked { ticks, worlds: num("worlds", args[1])? })
            }
            "STATS" => {
                arity(5)?;
                Ok(Response::Stats {
                    bases: decode_counts(args[0])?,
                    touched: num("touched", args[1])? as usize,
                    warm_hits: num("warm_hits", args[2])?,
                    worlds: num("worlds", args[3])?,
                    generation: num("generation", args[4])?,
                })
            }
            "SAVED" => {
                arity(2)?;
                Ok(Response::Saved {
                    name: args[0].to_string(),
                    bytes: num("bytes", args[1])? as usize,
                })
            }
            "LOADED" => {
                arity(2)?;
                Ok(Response::Loaded { name: args[0].to_string(), bases: decode_counts(args[1])? })
            }
            "METRICS" => {
                arity(0)?;
                match body {
                    Some(text) => Ok(Response::Metrics { text: text.to_string() }),
                    None => Err(ProtocolError::Malformed("METRICS requires a text body".into())),
                }
            }
            "BYE" => {
                arity(0)?;
                Ok(Response::Bye)
            }
            "ERR" => {
                let rest = payload.strip_prefix("ERR ").ok_or_else(|| {
                    ProtocolError::Malformed("ERR needs a code and message".into())
                })?;
                let (code, message) = rest.split_once(' ').ok_or_else(|| {
                    ProtocolError::Malformed("ERR needs a message after the code".into())
                })?;
                let code = ErrorCode::parse(code).ok_or_else(|| {
                    ProtocolError::Malformed(format!("unknown error code `{code}`"))
                })?;
                Ok(Response::Error { code, message: message.to_string() })
            }
            other => Err(ProtocolError::Malformed(format!("unknown response verb `{other}`"))),
        }
    }
}

/// Send a request as one frame.
pub fn send_request(w: &mut impl Write, req: &Request) -> Result<(), ProtocolError> {
    write_frame(w, &req.encode())
}

/// Send a response as one frame.
pub fn send_response(w: &mut impl Write, resp: &Response) -> Result<(), ProtocolError> {
    write_frame(w, &resp.encode())
}

/// Receive one request; `Ok(None)` is a clean disconnect.
pub fn recv_request(r: &mut impl Read) -> Result<Option<Request>, ProtocolError> {
    match read_frame(r)? {
        Some(payload) => Request::decode(&payload).map(Some),
        None => Ok(None),
    }
}

/// Receive one response; `Ok(None)` is a clean disconnect.
pub fn recv_response(r: &mut impl Read) -> Result<Option<Response>, ProtocolError> {
    match read_frame(r)? {
        Some(payload) => Response::decode(&payload).map(Some),
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "SWEEP").unwrap();
        write_frame(&mut buf, "FOCUS 9").unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("SWEEP"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("FOCUS 9"));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF between frames");
    }

    #[test]
    fn oversized_frame_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let r = read_frame(&mut std::io::Cursor::new(buf));
        assert!(matches!(r, Err(ProtocolError::Oversized(_))));
    }

    #[test]
    fn oversized_frame_rejected_on_write_too() {
        // A payload one byte past MAX_FRAME must be a typed error, not a
        // truncated length prefix: nothing may reach the writer.
        let payload = "x".repeat(MAX_FRAME + 1);
        let mut buf = Vec::new();
        match write_frame(&mut buf, &payload) {
            Err(ProtocolError::Oversized(n)) => assert_eq!(n, MAX_FRAME + 1),
            other => panic!("expected Oversized, got {other:?}"),
        }
        assert!(buf.is_empty(), "no bytes may leak before the size check");
        // At the limit exactly, the frame goes through.
        let fits = "x".repeat(MAX_FRAME);
        write_frame(&mut buf, &fits).unwrap();
        assert_eq!(read_frame(&mut std::io::Cursor::new(buf)).unwrap().as_deref(), Some(&*fits));
    }

    #[test]
    fn non_utf8_payload_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&[0xFF, 0xFE]);
        let r = read_frame(&mut std::io::Cursor::new(buf));
        assert!(matches!(r, Err(ProtocolError::NotUtf8)));
    }

    #[test]
    fn request_wire_forms() {
        let compile = Request::Compile { src: "SELECT D(@x) AS d INTO r;".into() };
        assert!(compile.encode().starts_with("COMPILE\n"));
        assert_eq!(Request::decode(&compile.encode()).unwrap(), compile);
        assert_eq!(
            Request::decode("ESTIMATE 9 0").unwrap(),
            Request::Estimate { point: 9, col: 0 }
        );
        assert!(Request::decode("ESTIMATE 9").is_err());
        assert!(Request::decode("NONSENSE").is_err());
        assert!(Request::decode("SWEEP extra").is_err());
        assert!(Request::decode("SAVE ../etc/passwd").is_err(), "paths are not snapshot names");
        assert!(Request::decode("SAVE .hidden").is_err());
        assert!(Request::decode("FOCUS 9\nbody").is_err(), "only COMPILE takes a body");
    }

    #[test]
    fn hello_welcome_wire_forms() {
        let hello = Request::Hello { version: PROTOCOL_VERSION };
        assert_eq!(hello.encode(), "HELLO 3");
        assert_eq!(Request::decode("HELLO 3").unwrap(), hello);
        assert!(Request::decode("HELLO").is_err());
        assert!(Request::decode("HELLO one").is_err());
        assert!(Request::decode("HELLO 1 2").is_err());
        let welcome = Response::Welcome { version: 1 };
        assert_eq!(welcome.encode(), "WELCOME 1");
        assert_eq!(Response::decode("WELCOME 1").unwrap(), welcome);
        assert!(Response::decode("WELCOME").is_err());
        // A far-future client still roundtrips (the server clamps later).
        let eager = Request::Hello { version: u32::MAX };
        assert_eq!(Request::decode(&eager.encode()).unwrap(), eager);
    }

    #[test]
    fn metrics_wire_forms() {
        assert_eq!(Request::decode("METRICS").unwrap(), Request::Metrics);
        assert_eq!(Request::Metrics.encode(), "METRICS");
        assert!(Request::decode("METRICS 1").is_err());
        let resp = Response::Metrics { text: "# TYPE a counter\na 1\n".into() };
        assert_eq!(resp.encode(), "METRICS\n# TYPE a counter\na 1\n");
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        // The body survives verbatim, newlines and all.
        let round = Response::Metrics { text: "x\n\ny 2".into() };
        assert_eq!(Response::decode(&round.encode()).unwrap(), round);
        assert!(Response::decode("METRICS").is_err(), "the text body is mandatory");
        assert!(Response::decode("WELCOME 1\nbody").is_err(), "only METRICS takes a body");
    }

    #[test]
    fn script_lines_put_compile_source_inline() {
        let req = Request::from_script_line("COMPILE SELECT D(@x) AS d INTO r;").unwrap();
        assert_eq!(req, Request::Compile { src: "SELECT D(@x) AS d INTO r;".into() });
        assert_eq!(Request::from_script_line("TICK 4").unwrap(), Request::Tick { count: 4 });
    }

    #[test]
    fn response_wire_forms() {
        let est = Response::Estimated {
            point: 9,
            col: 0,
            n_samples: 210,
            source: EstimateSource::MappedBasis,
            expectation_bits: 10.03f64.to_bits(),
            std_dev_bits: 1.5f64.to_bits(),
            lo_bits: 9.7f64.to_bits(),
            hi_bits: 10.4f64.to_bits(),
        };
        let wire = est.encode();
        assert!(wire.starts_with("EST 9 0 210 basis "), "{wire}");
        assert_eq!(Response::decode(&wire).unwrap(), est);
        let err =
            Response::Error { code: ErrorCode::State, message: "compile a scenario first".into() };
        assert_eq!(Response::decode(&err.encode()).unwrap(), err);
        assert!(Response::decode("EST 9 0 210 basis xyz 0 0 0").is_err());
        assert!(
            Response::decode("EST 9 0 210 basis 4024000000000000 3ff8000000000000").is_err(),
            "the v1 six-field EST is no longer a valid frame"
        );
        assert!(Response::decode("COMPILED 10 2 one").is_err(), "column count must match");
        assert!(Response::decode("BONKERS").is_err());
    }

    #[test]
    fn subscribe_wire_forms() {
        let sub = Request::Subscribe { point: 9, col: 0, eps_bits: 0.05f64.to_bits() };
        assert_eq!(sub.encode(), "SUBSCRIBE 9 0 0.05");
        assert_eq!(Request::decode("SUBSCRIBE 9 0 0.05").unwrap(), sub);
        // eps must be a positive finite number.
        assert!(Request::decode("SUBSCRIBE 9 0").is_err());
        assert!(Request::decode("SUBSCRIBE 9 0 zero").is_err());
        assert!(Request::decode("SUBSCRIBE 9 0 0").is_err());
        assert!(Request::decode("SUBSCRIBE 9 0 -0.5").is_err());
        assert!(Request::decode("SUBSCRIBE 9 0 NaN").is_err());
        assert!(Request::decode("SUBSCRIBE 9 0 inf").is_err());
        assert!(Request::decode("SUBSCRIBE 9 0 0.05 extra").is_err());
        // An awkward decimal survives encode→decode bit-exactly (shortest
        // round-trippable Display).
        let fussy = Request::Subscribe { point: 1, col: 1, eps_bits: 0.1f64.to_bits() };
        assert_eq!(Request::decode(&fussy.encode()).unwrap(), fussy);
    }

    #[test]
    fn interval_wire_forms() {
        let iv = Response::Interval {
            point: 9,
            col: 0,
            n_samples: 40,
            lo_bits: 9.5f64.to_bits(),
            hi_bits: 10.5f64.to_bits(),
        };
        let wire = iv.encode();
        assert!(wire.starts_with("INTERVAL 9 0 40 "), "{wire}");
        assert_eq!(Response::decode(&wire).unwrap(), iv);
        assert!(Response::decode("INTERVAL 9 0 40").is_err());
        assert!(Response::decode("INTERVAL 9 0 40 xyz 0").is_err());
        // ±∞ edges (the one-sample bound) are legitimate bit patterns.
        let open = Response::Interval {
            point: 0,
            col: 0,
            n_samples: 1,
            lo_bits: f64::NEG_INFINITY.to_bits(),
            hi_bits: f64::INFINITY.to_bits(),
        };
        assert_eq!(Response::decode(&open.encode()).unwrap(), open);
    }

    #[test]
    fn empty_bases_vector_roundtrips() {
        let stats =
            Response::Stats { bases: vec![], touched: 0, warm_hits: 0, worlds: 0, generation: 0 };
        assert_eq!(Response::decode(&stats.encode()).unwrap(), stats);
    }
}
