//! The server's model catalog.
//!
//! Black-box models are native code, so they cannot travel over the wire;
//! a server instance exposes a fixed, named catalog and clients reference
//! its functions from their scenario scripts. The default catalog carries
//! the paper's models; embedders pass their own
//! [`Catalog`](jigsaw_pdb::Catalog) to
//! [`JigsawServer::bind`](crate::JigsawServer::bind) for custom workloads.

use std::sync::Arc;

use jigsaw_blackbox::models::{Demand, SynthBasis};
use jigsaw_pdb::Catalog;

/// The paper-model catalog every stock server exposes:
///
/// | Function | Arity | Model |
/// |----------|-------|-------|
/// | `Demand(week, feature)` | 2 | §2's demand model (affine in `week`) |
/// | `DemandEnterprise(week, feature)` | 2 | the enterprise-scaled variant |
/// | `Synth8(p)` | 1 | `SynthBasis` pinned at 8 basis classes |
pub fn default_catalog() -> Catalog {
    let mut catalog = Catalog::new();
    catalog.add_function(Arc::new(Demand::paper()));
    catalog.add_function_as("DemandEnterprise", Arc::new(Demand::enterprise()));
    catalog.add_function_as("Synth8", Arc::new(SynthBasis::new(8)));
    catalog
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_catalog_registers_the_paper_models() {
        let c = default_catalog();
        assert!(c.function("Demand").is_ok());
        assert!(c.function("DemandEnterprise").is_ok());
        assert!(c.function("Synth8").is_ok());
        assert!(c.function("Nope").is_err());
    }
}
