//! Per-connection command handling.
//!
//! A connection is a tiny state machine: before `COMPILE` only compilation
//! (and `QUIT`) is meaningful; after it, the connection owns a compiled
//! scenario, a simulation, and an [`InteractiveSession`] *attached to the
//! shared basis store* for that scenario's registry key. `COMPILE` may be
//! issued again at any time to switch scenarios (the old session detaches,
//! the store stays warm in the registry for the next client).

use std::net::TcpStream;
use std::sync::Arc;

use jigsaw_core::basis::{config_fingerprint, SharedBasisStore, StoreKey};
use jigsaw_core::interactive::{InteractiveSession, SessionConfig};
use jigsaw_core::{AffineFamily, ShardedBasisStore, SweepRunner};
use jigsaw_pdb::{DirectEngine, PlanSim};
use jigsaw_prng::SeedSet;
use jigsaw_sql::{compile, Scenario};

use crate::protocol::{
    recv_request, send_response, ErrorCode, ProtocolError, Request, Response, MAX_FRAME,
};
use crate::server::{fnv64, snapshot_family, snapshot_filename, ServerState, FAMILY};

/// Upper bound on `TICK` counts per request, so one client cannot pin a
/// connection thread indefinitely with a single command.
pub const MAX_TICKS_PER_REQUEST: u32 = 10_000;

/// A compiled scenario and everything hanging off it.
struct Compiled {
    scenario: Scenario,
    sim: PlanSim,
    key: StoreKey,
    shared: SharedBasisStore,
}

/// [`AffineFamily`] under a scenario-scoped name: stores loaded from
/// snapshots carry [`snapshot_family`]'s name so the header check refuses
/// another scenario's file, while matching behaves exactly like affine.
struct ScopedAffine(String);

impl jigsaw_core::MappingFamily for ScopedAffine {
    fn name(&self) -> &str {
        &self.0
    }

    fn find(
        &self,
        from: &jigsaw_core::Fingerprint,
        to: &jigsaw_core::Fingerprint,
        tol: f64,
    ) -> Option<jigsaw_core::AffineMap> {
        jigsaw_core::MappingFamily::find(&AffineFamily, from, to, tol)
    }
}

impl Compiled {
    /// Compile `src` against the server catalog and attach (or create) the
    /// shared store for its `(catalog, scenario, config)` identity.
    fn build(state: &ServerState, src: &str) -> Result<Compiled, Response> {
        if src.len() > MAX_FRAME {
            return Err(err(ErrorCode::Compile, "scenario script too large"));
        }
        let scenario =
            compile(src, &state.catalog).map_err(|e| err(ErrorCode::Compile, &e.to_string()))?;
        let sim = scenario.simulation(
            Arc::new(DirectEngine::new()),
            Arc::clone(&state.catalog),
            SeedSet::new(state.config.master_seed),
        );
        // Bases are only meaningful for the simulation that produced them,
        // so the scope hashes the *parsed* scenario (whitespace-insensitive)
        // alongside the catalog name; the config fingerprint covers every
        // knob that affects basis identity. Clients compiling the same
        // scenario under the same server therefore share one store.
        let key = StoreKey {
            scope: format!(
                "{}:{:016x}",
                state.config.catalog_name,
                fnv64(&format!("{:?}", scenario.script))
            ),
            config_fp: config_fingerprint(&state.cfg, FAMILY),
        };
        let n_cols = scenario.columns.len();
        let cfg = Arc::clone(&state.cfg);
        let shared = state.registry.get_or_create(key.clone(), || {
            SharedBasisStore::new(n_cols, &cfg, Arc::new(AffineFamily))
        });
        Ok(Compiled { scenario, sim, key, shared })
    }
}

fn err(code: ErrorCode, message: &str) -> Response {
    Response::Error { code, message: message.to_string() }
}

/// What the session loop wants the outer loop to do next.
enum Next {
    /// Client sent `QUIT` or closed the stream.
    Done,
    /// Client sent a new `COMPILE`; switch scenarios.
    Recompile(String),
}

/// Serve one client until it quits, disconnects, or breaks framing.
pub(crate) fn serve_client(stream: TcpStream, state: &ServerState) -> Result<(), ProtocolError> {
    let mut reader = stream.try_clone()?;
    let mut writer = stream;
    let mut pending: Option<String> = None;
    loop {
        let req = match pending.take() {
            Some(src) => Request::Compile { src },
            None => match read_or_report(&mut reader, &mut writer)? {
                Some(req) => req,
                None => return Ok(()),
            },
        };
        match req {
            Request::Quit => {
                send_response(&mut writer, &Response::Bye)?;
                return Ok(());
            }
            Request::Compile { src } => match Compiled::build(state, &src) {
                Err(e) => send_response(&mut writer, &e)?,
                Ok(compiled) => {
                    send_response(
                        &mut writer,
                        &Response::Compiled {
                            points: compiled.scenario.space.len(),
                            columns: compiled.scenario.columns.clone(),
                        },
                    )?;
                    match session_loop(&mut reader, &mut writer, state, &compiled)? {
                        Next::Done => return Ok(()),
                        Next::Recompile(src) => pending = Some(src),
                    }
                }
            },
            _ => send_response(
                &mut writer,
                &err(ErrorCode::State, "compile a scenario first (COMPILE <script>)"),
            )?,
        }
    }
}

/// Read one request; malformed-but-framed requests are answered with an
/// `ERR malformed` and skipped (`Ok(Some)` only for well-formed requests is
/// handled by looping), while framing-level failures tear the connection
/// down. `Ok(None)` is a clean disconnect.
fn read_or_report(
    reader: &mut TcpStream,
    writer: &mut TcpStream,
) -> Result<Option<Request>, ProtocolError> {
    loop {
        match recv_request(reader) {
            Ok(req) => return Ok(req),
            Err(ProtocolError::Malformed(m)) => {
                send_response(writer, &err(ErrorCode::Malformed, &m))?;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Drive one scenario's session until quit/disconnect/recompile.
fn session_loop(
    reader: &mut TcpStream,
    writer: &mut TcpStream,
    state: &ServerState,
    compiled: &Compiled,
) -> Result<Next, ProtocolError> {
    let space_len = compiled.scenario.space.len();
    let n_cols = compiled.scenario.columns.len();
    // The session shares the store with every other client of this
    // scenario; SessionConfig::from_jigsaw keeps its fingerprints and
    // refinement ceiling aligned with sweep-built bases.
    let mut session = InteractiveSession::attach(
        &compiled.sim,
        SessionConfig::from_jigsaw(&state.cfg),
        compiled.shared.clone(),
    );
    loop {
        let req = match read_or_report(reader, writer)? {
            Some(req) => req,
            None => return Ok(Next::Done),
        };
        let resp = match req {
            Request::Quit => {
                send_response(writer, &Response::Bye)?;
                return Ok(Next::Done);
            }
            Request::Compile { src } => return Ok(Next::Recompile(src)),
            Request::Sweep => {
                let runner = SweepRunner::new(Arc::clone(&state.cfg));
                // World evaluation dominates a sweep and runs outside any
                // per-shard probe; holding the store lock for the sweep
                // serializes concurrent sweeps of one scenario, which is
                // exactly what makes the second one all warm hits.
                match compiled.shared.with_store_mut(|stores| runner.run_on(&compiled.sim, stores))
                {
                    Ok(result) => Response::Swept {
                        points: result.stats.points,
                        worlds: result.stats.worlds_evaluated,
                        full_sims: result.stats.full_simulations,
                        reused: result.stats.reused,
                        warm_hits: result.stats.warm_hits,
                        bases: result.stats.bases_per_column.clone(),
                    },
                    Err(e) => err(ErrorCode::Exec, &e.to_string()),
                }
            }
            Request::Focus { point } => {
                if point >= space_len {
                    err(ErrorCode::State, &format!("point {point} out of range 0..{space_len}"))
                } else {
                    session.set_focus(point);
                    Response::Focused { point }
                }
            }
            Request::Estimate { point, col } => {
                if point >= space_len {
                    err(ErrorCode::State, &format!("point {point} out of range 0..{space_len}"))
                } else if col >= n_cols {
                    err(ErrorCode::State, &format!("column {col} out of range 0..{n_cols}"))
                } else {
                    match session.estimate_now(point, col) {
                        Ok(est) => Response::Estimated {
                            point,
                            col,
                            n_samples: est.n_samples,
                            source: est.source,
                            expectation_bits: est.expectation.to_bits(),
                            std_dev_bits: est.std_dev.to_bits(),
                        },
                        Err(e) => err(ErrorCode::Exec, &e.to_string()),
                    }
                }
            }
            Request::Tick { count } => {
                if count > MAX_TICKS_PER_REQUEST {
                    err(
                        ErrorCode::State,
                        &format!("tick count {count} exceeds the {MAX_TICKS_PER_REQUEST} cap"),
                    )
                } else {
                    match (0..count).try_for_each(|_| session.tick().map(|_| ())) {
                        Ok(()) => {
                            Response::Ticked { ticks: count, worlds: session.worlds_evaluated }
                        }
                        Err(e) => err(ErrorCode::Exec, &e.to_string()),
                    }
                }
            }
            Request::Stats => Response::Stats {
                bases: session.basis_counts(),
                touched: session.touched_points(),
                warm_hits: session.warm_hits,
                worlds: session.worlds_evaluated,
                generation: compiled.shared.generation(),
            },
            // SAVE/LOAD names are scoped per scenario — both in the
            // filename and in the snapshot header's family string — so one
            // scenario's snapshot can neither clobber nor load into
            // another's store.
            Request::Save { name } => match &state.config.snapshot_dir {
                None => err(ErrorCode::Unsupported, "server has no --snapshot-dir"),
                Some(dir) => {
                    match compiled
                        .shared
                        .to_snapshot_bytes(&state.cfg, &snapshot_family(&compiled.key))
                    {
                        Err(e) => err(ErrorCode::Snapshot, &e.to_string()),
                        Ok(bytes) => {
                            let path = dir.join(snapshot_filename(&name, &compiled.key));
                            match std::fs::write(&path, &bytes) {
                                Err(e) => err(ErrorCode::Snapshot, &e.to_string()),
                                Ok(()) => {
                                    state.mark_persisted(compiled.key.clone(), path);
                                    Response::Saved { name, bytes: bytes.len() }
                                }
                            }
                        }
                    }
                }
            },
            Request::Load { name } => match &state.config.snapshot_dir {
                None => err(ErrorCode::Unsupported, "server has no --snapshot-dir"),
                Some(dir) => {
                    let path = dir.join(snapshot_filename(&name, &compiled.key));
                    match std::fs::read(&path) {
                        Err(e) => err(ErrorCode::Snapshot, &e.to_string()),
                        Ok(bytes) => match ShardedBasisStore::from_snapshot_bytes(
                            &bytes,
                            &state.cfg,
                            Arc::new(ScopedAffine(snapshot_family(&compiled.key))),
                            n_cols,
                        ) {
                            Err(e) => err(ErrorCode::Snapshot, &e.to_string()),
                            Ok(store) => {
                                let bases = store.bases_per_column();
                                // Bumps the store generation: every attached
                                // session drops its stale basis links at its
                                // next touch/tick.
                                compiled.shared.replace(store);
                                state.mark_persisted(compiled.key.clone(), path);
                                Response::Loaded { name, bases }
                            }
                        },
                    }
                }
            },
        };
        send_response(writer, &resp)?;
    }
}
