//! Per-connection buffers, framing, and command state machine.
//!
//! A [`Conn`] is one nonblocking socket plus everything the readiness loop
//! needs to multiplex it: a read buffer that accumulates bytes until whole
//! frames are available, a write buffer that drains as the socket accepts
//! bytes, and the session state machine. Before `COMPILE` only the
//! handshake, compilation, and `QUIT` are meaningful; after it, the
//! connection owns a compiled scenario, a simulation, and an
//! [`InteractiveSession`] *attached to the shared basis store* for that
//! scenario's registry key. `COMPILE` may be issued again at any time to
//! switch scenarios (the old session detaches, the store stays warm in the
//! registry for the next client).
//!
//! Command execution is synchronous on the loop thread — one in-flight
//! command per connection, exactly like the old thread-per-connection
//! server — so per-client request/response ordering, and with it the golden
//! transcript, is preserved verbatim by construction.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use jigsaw_core::basis::{config_fingerprint, SharedBasisStore, StoreKey};
use jigsaw_core::interactive::{InteractiveSession, SessionConfig};
use jigsaw_core::{AffineFamily, ShardedBasisStore, SweepRunner};
use jigsaw_obs::{Counter, Gauge, Histogram};
use jigsaw_pdb::{DirectEngine, PlanSim};
use jigsaw_prng::SeedSet;
use jigsaw_sql::{compile, Scenario};

use crate::protocol::{ErrorCode, ProtocolError, Request, Response, MAX_FRAME, PROTOCOL_VERSION};
use crate::server::{fnv64, snapshot_family, snapshot_filename, ServerState, FAMILY};

/// Upper bound on `TICK` counts per request, so one client cannot pin a
/// connection loop indefinitely with a single command.
pub const MAX_TICKS_PER_REQUEST: u32 = 10_000;

/// Every wire verb, in grammar order — the label space of the per-verb
/// request instruments.
const VERBS: [&str; 12] = [
    "HELLO",
    "COMPILE",
    "SWEEP",
    "FOCUS",
    "ESTIMATE",
    "SUBSCRIBE",
    "TICK",
    "STATS",
    "SAVE",
    "LOAD",
    "METRICS",
    "QUIT",
];

/// Cached handles for the connection layer's instruments (registered once,
/// updated lock-free). The per-verb counter and latency histogram are
/// bumped together at a single site, so
/// `jigsaw_requests_total{verb=V} == jigsaw_request_us_count{verb=V}`
/// holds by construction — a CI-checked invariant.
struct ConnObs {
    /// `(verb, jigsaw_requests_total{verb=}, jigsaw_request_us{verb=})`.
    verbs: Vec<(&'static str, Counter, Histogram)>,
    /// Framed-but-unparseable requests (answered `ERR malformed`, so they
    /// appear in no per-verb series).
    malformed: Counter,
    /// Live `SUBSCRIBE` streams across all connections and loops.
    subs_live: Gauge,
    /// Cumulative points / warm hits / worlds over every server-side sweep.
    sweep_points: Counter,
    sweep_warm_hits: Counter,
    sweep_worlds: Counter,
    /// Snapshot parse+index time on `LOAD` (the save-side twin lives in
    /// the store layer as `jigsaw_store_snapshot_save_us`).
    snapshot_load_us: Histogram,
}

fn conn_obs() -> &'static ConnObs {
    static OBS: OnceLock<ConnObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let g = jigsaw_obs::global();
        ConnObs {
            verbs: VERBS
                .iter()
                .map(|v| {
                    (
                        *v,
                        g.counter("jigsaw_requests_total", &[("verb", v)]),
                        g.histogram("jigsaw_request_us", &[("verb", v)]),
                    )
                })
                .collect(),
            malformed: g.counter("jigsaw_requests_malformed_total", &[]),
            subs_live: g.gauge("jigsaw_subscriptions_live", &[]),
            sweep_points: g.counter("jigsaw_sweep_points_total", &[]),
            sweep_warm_hits: g.counter("jigsaw_sweep_warm_hits_total", &[]),
            sweep_worlds: g.counter("jigsaw_sweep_worlds_total", &[]),
            snapshot_load_us: g.histogram("jigsaw_store_snapshot_load_us", &[]),
        }
    })
}

/// A compiled scenario and everything hanging off it.
struct Compiled {
    scenario: Scenario,
    sim: Arc<PlanSim>,
    key: StoreKey,
    shared: SharedBasisStore,
}

/// [`AffineFamily`] under a scenario-scoped name: stores loaded from
/// snapshots carry [`snapshot_family`]'s name so the header check refuses
/// another scenario's file, while matching behaves exactly like affine.
struct ScopedAffine(String);

impl jigsaw_core::MappingFamily for ScopedAffine {
    fn name(&self) -> &str {
        &self.0
    }

    fn find(
        &self,
        from: &jigsaw_core::Fingerprint,
        to: &jigsaw_core::Fingerprint,
        tol: f64,
    ) -> Option<jigsaw_core::AffineMap> {
        jigsaw_core::MappingFamily::find(&AffineFamily, from, to, tol)
    }
}

impl Compiled {
    /// Compile `src` against the server catalog and attach (or create) the
    /// shared store for its `(catalog, scenario, config)` identity.
    fn build(state: &ServerState, src: &str) -> Result<Compiled, Response> {
        if src.len() > MAX_FRAME {
            return Err(err(ErrorCode::Compile, "scenario script too large"));
        }
        let scenario =
            compile(src, &state.catalog).map_err(|e| err(ErrorCode::Compile, &e.to_string()))?;
        let sim = scenario.simulation(
            Arc::new(DirectEngine::new()),
            Arc::clone(&state.catalog),
            SeedSet::new(state.master_seed),
        );
        // Bases are only meaningful for the simulation that produced them,
        // so the scope hashes the *parsed* scenario (whitespace-insensitive)
        // alongside the catalog name; the config fingerprint covers every
        // knob that affects basis identity. Clients compiling the same
        // scenario under the same server therefore share one store.
        let key = StoreKey {
            scope: format!(
                "{}:{:016x}",
                state.catalog_name,
                fnv64(&format!("{:?}", scenario.script))
            ),
            config_fp: config_fingerprint(&state.cfg, FAMILY),
        };
        let n_cols = scenario.columns.len();
        let cfg = Arc::clone(&state.cfg);
        let shared = state.registry.get_or_create(key.clone(), || {
            SharedBasisStore::new(n_cols, &cfg, Arc::new(AffineFamily))
        });
        Ok(Compiled { scenario, sim: Arc::new(sim), key, shared })
    }
}

fn err(code: ErrorCode, message: &str) -> Response {
    Response::Error { code, message: message.to_string() }
}

/// The wire form of an estimate, bit-exact (including the anytime bound).
fn estimated(point: usize, col: usize, est: &jigsaw_core::interactive::Estimate) -> Response {
    Response::Estimated {
        point,
        col,
        n_samples: est.n_samples,
        source: est.source,
        expectation_bits: est.expectation.to_bits(),
        std_dev_bits: est.std_dev.to_bits(),
        lo_bits: est.lo.to_bits(),
        hi_bits: est.hi.to_bits(),
    }
}

/// A connection's compiled scenario plus the interactive session attached
/// to its shared store. Both own `Arc`s of the simulation, so the pair is
/// `'static` and lives inside the event loop's connection list.
struct Session {
    compiled: Compiled,
    session: InteractiveSession,
}

/// An in-flight `SUBSCRIBE`: the readiness loop advances it one refine
/// step per pump pass, streaming an `INTERVAL` frame each time the bound
/// moves and closing with the final `EST` on convergence or exhaustion.
#[derive(Clone, Copy)]
struct Subscription {
    point: usize,
    col: usize,
    eps: f64,
    /// The last streamed interval `(n, lo_bits, hi_bits)`: refine steps
    /// that do not move the bound emit no frame, so a slow-converging
    /// stream is not a wall of identical `INTERVAL` lines.
    last: (usize, u64, u64),
}

/// What one [`Conn::pump`] pass accomplished.
pub(crate) struct ConnStatus {
    /// Whether any bytes moved or any frame executed (the loop's idle
    /// detector: no progress anywhere → park briefly).
    pub(crate) progressed: bool,
    /// Whether the connection is still alive (false → drop it).
    pub(crate) open: bool,
}

/// Outcome of trying to slice the next frame out of the read buffer.
enum FrameStep {
    /// Not enough buffered bytes yet.
    Need,
    /// Framing violated (oversized prefix, non-UTF-8 payload): the stream
    /// can no longer be trusted, close without a response — exactly the old
    /// blocking server's behavior.
    Dead,
    /// One complete frame payload.
    Frame(String),
}

/// One multiplexed client connection.
pub(crate) struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet parsed (compacted after each parse pass).
    rbuf: Vec<u8>,
    rpos: usize,
    /// Encoded responses not yet accepted by the socket.
    wbuf: Vec<u8>,
    wpos: usize,
    session: Option<Session>,
    /// Negotiated protocol version (1 until the client says `HELLO`).
    /// Version-gated verbs (`SUBSCRIBE` v2+, `METRICS` v3+) check it
    /// before executing.
    version: u32,
    /// Active `SUBSCRIBE` stream, if any. While one is in flight, buffered
    /// request frames are *not* executed — their responses would interleave
    /// into the stream — so per-client ordering stays the blocking
    /// server's.
    subscription: Option<Subscription>,
    /// Flush remaining output, then close (set by `QUIT`, peer EOF, or a
    /// framing violation).
    closing: bool,
}

impl Conn {
    /// Adopt an accepted stream: switch it nonblocking (the readiness
    /// loop's contract) and disable Nagle (small request/response frames
    /// interact with delayed ACK into tens-of-milliseconds round trips).
    pub(crate) fn new(stream: TcpStream) -> std::io::Result<Conn> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(Conn {
            stream,
            rbuf: Vec::new(),
            rpos: 0,
            wbuf: Vec::new(),
            wpos: 0,
            session: None,
            version: 1,
            subscription: None,
            closing: false,
        })
    }

    /// Queue a response frame for the next flush. An oversized payload is
    /// replaced by a short typed error frame — truncating the length
    /// prefix (`len as u32`) would silently desync every frame after it.
    fn queue(&mut self, resp: &Response) {
        let mut payload = resp.encode();
        if payload.len() > MAX_FRAME {
            payload = err(ErrorCode::Exec, "response exceeds the frame size limit").encode();
        }
        self.wbuf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.wbuf.extend_from_slice(payload.as_bytes());
    }

    /// Push buffered output into the socket until it would block.
    fn flush(&mut self) -> (bool, bool) {
        let mut progressed = false;
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return (progressed, false),
                Ok(n) => {
                    self.wpos += n;
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return (progressed, false),
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        }
        (progressed, true)
    }

    /// Slice the next complete frame out of the read buffer.
    fn next_frame(&mut self) -> FrameStep {
        let avail = self.rbuf.len() - self.rpos;
        if avail < 4 {
            return FrameStep::Need;
        }
        let prefix: [u8; 4] = self.rbuf[self.rpos..self.rpos + 4].try_into().expect("4 bytes");
        let len = u32::from_le_bytes(prefix) as usize;
        if len > MAX_FRAME {
            return FrameStep::Dead;
        }
        if avail < 4 + len {
            return FrameStep::Need;
        }
        let start = self.rpos + 4;
        match std::str::from_utf8(&self.rbuf[start..start + len]) {
            Ok(payload) => {
                let payload = payload.to_string();
                self.rpos = start + len;
                FrameStep::Frame(payload)
            }
            Err(_) => FrameStep::Dead,
        }
    }

    /// One readiness pass: flush, read, execute complete frames, flush.
    pub(crate) fn pump(&mut self, state: &ServerState) -> ConnStatus {
        let (mut progressed, open) = self.flush();
        if !open {
            return ConnStatus { progressed, open: false };
        }
        if !self.closing {
            // Fill the read buffer with whatever the socket has.
            let mut eof = false;
            let mut chunk = [0u8; 16 * 1024];
            loop {
                match self.stream.read(&mut chunk) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(n) => {
                        self.rbuf.extend_from_slice(&chunk[..n]);
                        progressed = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        eof = true;
                        break;
                    }
                }
            }
            // Execute every complete frame (commands run inline, one at a
            // time, so per-client ordering is the old blocking server's).
            // A live SUBSCRIBE stream pauses execution — later requests
            // stay buffered until its closing EST goes out.
            while !self.closing && self.subscription.is_none() {
                match self.next_frame() {
                    FrameStep::Need => break,
                    FrameStep::Dead => {
                        self.closing = true;
                        progressed = true;
                    }
                    FrameStep::Frame(payload) => {
                        progressed = true;
                        match Request::decode(&payload) {
                            Ok(req) => {
                                let verb = req.verb();
                                let span = jigsaw_obs::span!("conn.request", verb = verb);
                                let t0 = Instant::now();
                                self.handle(req, state);
                                drop(span);
                                // Counter and histogram move together so the
                                // per-verb count invariant holds exactly.
                                if let Some((_, reqs, lat)) =
                                    conn_obs().verbs.iter().find(|(v, _, _)| *v == verb)
                                {
                                    reqs.inc();
                                    lat.record_duration(t0.elapsed());
                                }
                            }
                            Err(ProtocolError::Malformed(m)) => {
                                // Malformed-but-framed: answer and carry on;
                                // the connection stays usable.
                                conn_obs().malformed.inc();
                                self.queue(&err(ErrorCode::Malformed, &m));
                            }
                            Err(_) => self.closing = true,
                        }
                    }
                }
            }
            if self.rpos > 0 {
                self.rbuf.drain(..self.rpos);
                self.rpos = 0;
            }
            if eof {
                // Peer closed its end: answer what was pipelined, then go.
                self.closing = true;
            }
        }
        if self.closing {
            // Nobody is listening for the stream anymore.
            self.set_subscription(None);
        } else if self.subscription.is_some() {
            // Advance the live stream one refine step per pass. Each step
            // counts as progress, which resets the loop's 50µs→5ms idle
            // backoff — a converging subscription keeps its loop hot.
            self.step_subscription();
            progressed = true;
        }
        let (flushed, open) = self.flush();
        progressed |= flushed;
        if !open {
            return ConnStatus { progressed, open: false };
        }
        if self.closing && self.wbuf.is_empty() {
            let _ = self.stream.shutdown(Shutdown::Both);
            return ConnStatus { progressed: true, open: false };
        }
        ConnStatus { progressed, open: true }
    }

    /// Install or clear the live subscription, keeping the
    /// `jigsaw_subscriptions_live` gauge in step with every Some↔None
    /// transition (the remaining leak path — a connection dying with a
    /// stream open — is covered by [`Conn`]'s `Drop`).
    fn set_subscription(&mut self, sub: Option<Subscription>) {
        match (&self.subscription, &sub) {
            (None, Some(_)) => conn_obs().subs_live.add(1),
            (Some(_), None) => conn_obs().subs_live.add(-1),
            _ => {}
        }
        self.subscription = sub;
    }

    /// Open a `SUBSCRIBE` stream: validate, answer the tier-0 interval
    /// immediately (no simulation beyond the fingerprint head), and either
    /// close with the final `EST` on the spot or leave the subscription for
    /// the pump passes to refine.
    fn handle_subscribe(&mut self, point: usize, col: usize, eps: f64) {
        if self.version < 2 {
            self.queue(&err(
                ErrorCode::Unsupported,
                &format!("SUBSCRIBE requires protocol version 2 (negotiated {})", self.version),
            ));
            return;
        }
        let Some(sess) = &mut self.session else {
            self.queue(&err(ErrorCode::State, "compile a scenario first (COMPILE <script>)"));
            return;
        };
        let space_len = sess.compiled.scenario.space.len();
        let n_cols = sess.compiled.scenario.columns.len();
        if point >= space_len {
            self.queue(&err(
                ErrorCode::State,
                &format!("point {point} out of range 0..{space_len}"),
            ));
            return;
        }
        if col >= n_cols {
            self.queue(&err(ErrorCode::State, &format!("column {col} out of range 0..{n_cols}")));
            return;
        }
        // Tier 0: touch (fingerprint head + basis match) and report the
        // analytic bound before any refinement happens.
        match sess.session.estimate_now(point, col) {
            Err(e) => self.queue(&err(ErrorCode::Exec, &e.to_string())),
            Ok(est) => {
                self.queue(&Response::Interval {
                    point,
                    col,
                    n_samples: est.n_samples,
                    lo_bits: est.lo.to_bits(),
                    hi_bits: est.hi.to_bits(),
                });
                if est.width() <= eps {
                    // Served within ε with zero completion simulations.
                    self.queue(&estimated(point, col, &est));
                } else {
                    let last = (est.n_samples, est.lo.to_bits(), est.hi.to_bits());
                    self.set_subscription(Some(Subscription { point, col, eps, last }));
                }
            }
        }
    }

    /// One refine step of the live subscription; closes the stream with
    /// the final `EST` on convergence, budget exhaustion, or error. The
    /// bits of that `EST` equal a blocking `ESTIMATE` of the same refined
    /// state — both read the same running-intersection bound.
    fn step_subscription(&mut self) {
        let Some(mut sub) = self.subscription else { return };
        let Some(sess) = &mut self.session else {
            self.set_subscription(None);
            return;
        };
        let before = sess.session.worlds_evaluated;
        match sess.session.refine_once(sub.point, sub.col) {
            Err(e) => {
                self.set_subscription(None);
                self.queue(&err(ErrorCode::Exec, &e.to_string()));
            }
            Ok(est) => {
                let exhausted = sess.session.worlds_evaluated == before;
                if est.width() <= sub.eps || exhausted {
                    self.set_subscription(None);
                    self.queue(&estimated(sub.point, sub.col, &est));
                } else {
                    let now = (est.n_samples, est.lo.to_bits(), est.hi.to_bits());
                    if now != sub.last {
                        sub.last = now;
                        self.queue(&Response::Interval {
                            point: sub.point,
                            col: sub.col,
                            n_samples: est.n_samples,
                            lo_bits: est.lo.to_bits(),
                            hi_bits: est.hi.to_bits(),
                        });
                    }
                    self.subscription = Some(sub);
                }
            }
        }
    }

    /// Execute one request, queueing its response.
    fn handle(&mut self, req: Request, state: &ServerState) {
        let resp = match req {
            Request::Hello { version } => {
                self.version = version.min(PROTOCOL_VERSION);
                Response::Welcome { version: self.version }
            }
            Request::Subscribe { point, col, eps_bits } => {
                self.handle_subscribe(point, col, f64::from_bits(eps_bits));
                return;
            }
            Request::Quit => {
                self.queue(&Response::Bye);
                self.closing = true;
                return;
            }
            // Session-independent (no COMPILE needed): the snapshot is
            // process-wide, not per-scenario. An oversized rendering is
            // handled like any other response — `queue` substitutes a
            // typed `ERR exec` frame.
            Request::Metrics => {
                if self.version < 3 {
                    err(
                        ErrorCode::Unsupported,
                        &format!(
                            "METRICS requires protocol version 3 (negotiated {})",
                            self.version
                        ),
                    )
                } else {
                    Response::Metrics { text: jigsaw_obs::global().snapshot().render_prometheus() }
                }
            }
            Request::Compile { src } => match Compiled::build(state, &src) {
                Err(e) => e,
                Ok(compiled) => {
                    let resp = Response::Compiled {
                        points: compiled.scenario.space.len(),
                        columns: compiled.scenario.columns.clone(),
                    };
                    // The session shares the store with every other client
                    // of this scenario; SessionConfig::from_jigsaw keeps its
                    // fingerprints and refinement ceiling aligned with
                    // sweep-built bases.
                    let session = InteractiveSession::attach(
                        Arc::clone(&compiled.sim) as Arc<dyn jigsaw_pdb::Simulation>,
                        SessionConfig::from_jigsaw(&state.cfg),
                        compiled.shared.clone(),
                    );
                    self.session = Some(Session { compiled, session });
                    resp
                }
            },
            other => match &mut self.session {
                None => err(ErrorCode::State, "compile a scenario first (COMPILE <script>)"),
                Some(sess) => handle_session(sess, other, state),
            },
        };
        self.queue(&resp);
    }
}

impl Drop for Conn {
    fn drop(&mut self) {
        // A connection can die mid-stream (socket error, shutdown): keep
        // the live-subscription gauge honest.
        if self.subscription.is_some() {
            conn_obs().subs_live.add(-1);
        }
    }
}

/// Execute a session-scoped request (everything after `COMPILE`).
fn handle_session(sess: &mut Session, req: Request, state: &ServerState) -> Response {
    let compiled = &sess.compiled;
    let session = &mut sess.session;
    let space_len = compiled.scenario.space.len();
    let n_cols = compiled.scenario.columns.len();
    match req {
        Request::Hello { .. }
        | Request::Quit
        | Request::Compile { .. }
        | Request::Subscribe { .. }
        | Request::Metrics => {
            unreachable!("handled before session dispatch")
        }
        Request::Sweep => {
            let cfg = Arc::clone(&state.cfg);
            let pool = Arc::clone(&state.pool);
            let sim = Arc::clone(&compiled.sim);
            // World evaluation dominates a sweep and runs outside any
            // per-shard probe; holding the store lock for the sweep
            // serializes concurrent sweeps of one scenario, which is
            // exactly what makes the second one all warm hits.
            match compiled.shared.with_store_mut(move |stores| {
                SweepRunner::new(cfg).pool(pool).store(stores).run(&*sim)
            }) {
                Ok(result) => {
                    let obs = conn_obs();
                    obs.sweep_points.add(result.stats.points as u64);
                    obs.sweep_warm_hits.add(result.stats.warm_hits as u64);
                    obs.sweep_worlds.add(result.stats.worlds_evaluated);
                    Response::Swept {
                        points: result.stats.points,
                        worlds: result.stats.worlds_evaluated,
                        full_sims: result.stats.full_simulations,
                        reused: result.stats.reused,
                        warm_hits: result.stats.warm_hits,
                        bases: result.stats.bases_per_column.clone(),
                    }
                }
                Err(e) => err(ErrorCode::Exec, &e.to_string()),
            }
        }
        Request::Focus { point } => {
            if point >= space_len {
                err(ErrorCode::State, &format!("point {point} out of range 0..{space_len}"))
            } else {
                session.set_focus(point);
                Response::Focused { point }
            }
        }
        Request::Estimate { point, col } => {
            if point >= space_len {
                err(ErrorCode::State, &format!("point {point} out of range 0..{space_len}"))
            } else if col >= n_cols {
                err(ErrorCode::State, &format!("column {col} out of range 0..{n_cols}"))
            } else {
                match session.estimate_now(point, col) {
                    Ok(est) => estimated(point, col, &est),
                    Err(e) => err(ErrorCode::Exec, &e.to_string()),
                }
            }
        }
        Request::Tick { count } => {
            if count > MAX_TICKS_PER_REQUEST {
                err(
                    ErrorCode::State,
                    &format!("tick count {count} exceeds the {MAX_TICKS_PER_REQUEST} cap"),
                )
            } else {
                match (0..count).try_for_each(|_| session.tick().map(|_| ())) {
                    Ok(()) => Response::Ticked { ticks: count, worlds: session.worlds_evaluated },
                    Err(e) => err(ErrorCode::Exec, &e.to_string()),
                }
            }
        }
        Request::Stats => Response::Stats {
            bases: session.basis_counts(),
            touched: session.touched_points(),
            warm_hits: session.warm_hits,
            worlds: session.worlds_evaluated,
            generation: compiled.shared.generation(),
        },
        // SAVE/LOAD names are scoped per scenario — both in the
        // filename and in the snapshot header's family string — so one
        // scenario's snapshot can neither clobber nor load into
        // another's store.
        Request::Save { name } => match &state.snapshot_dir {
            None => err(ErrorCode::Unsupported, "server has no --snapshot-dir"),
            Some(dir) => {
                match compiled.shared.to_snapshot_bytes(&state.cfg, &snapshot_family(&compiled.key))
                {
                    Err(e) => err(ErrorCode::Snapshot, &e.to_string()),
                    Ok(bytes) => {
                        let path = dir.join(snapshot_filename(&name, &compiled.key));
                        match std::fs::write(&path, &bytes) {
                            Err(e) => err(ErrorCode::Snapshot, &e.to_string()),
                            Ok(()) => {
                                state.mark_persisted(compiled.key.clone(), path);
                                Response::Saved { name, bytes: bytes.len() }
                            }
                        }
                    }
                }
            }
        },
        Request::Load { name } => match &state.snapshot_dir {
            None => err(ErrorCode::Unsupported, "server has no --snapshot-dir"),
            Some(dir) => {
                let path = dir.join(snapshot_filename(&name, &compiled.key));
                match std::fs::read(&path) {
                    Err(e) => err(ErrorCode::Snapshot, &e.to_string()),
                    Ok(bytes) => {
                        let t0 = Instant::now();
                        let parsed = ShardedBasisStore::from_snapshot_bytes(
                            &bytes,
                            &state.cfg,
                            Arc::new(ScopedAffine(snapshot_family(&compiled.key))),
                            n_cols,
                        );
                        conn_obs().snapshot_load_us.record_duration(t0.elapsed());
                        match parsed {
                            Err(e) => err(ErrorCode::Snapshot, &e.to_string()),
                            Ok(store) => {
                                let bases = store.bases_per_column();
                                // Bumps the store generation: every attached
                                // session drops its stale basis links at its
                                // next touch/tick.
                                compiled.shared.replace(store);
                                state.mark_persisted(compiled.key.clone(), path);
                                Response::Loaded { name, bases }
                            }
                        }
                    }
                }
            }
        },
    }
}
