//! The TCP accept loop and shared server state.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use jigsaw_core::basis::{StoreKey, StoreRegistry};
use jigsaw_core::JigsawConfig;
use jigsaw_pdb::Catalog;

use crate::conn::serve_client;

/// The mapping family every server store is built on.
pub(crate) const FAMILY: &str = "affine";

/// FNV-1a 64 over a string (scenario identity inside store keys and
/// snapshot scoping) — the workspace's one content hash.
pub(crate) fn fnv64(s: &str) -> u64 {
    jigsaw_core::basis::content_hash64(s.as_bytes())
}

/// The family name written into (and demanded from) this key's snapshot
/// headers: the base family plus the scenario scope. Bases are only
/// meaningful for the simulation that produced them, so a snapshot saved
/// under one scenario must refuse — with a typed `ConfigMismatch` — to
/// load into another, even if someone copies the file across names.
pub(crate) fn snapshot_family(key: &StoreKey) -> String {
    format!("{FAMILY}+{:016x}", fnv64(&key.scope))
}

/// The on-disk file for a `SAVE`/`LOAD` name under this key. The scope hash
/// in the filename keeps two scenarios' same-named snapshots from
/// clobbering each other (and from being re-snapshotted into one path in
/// arbitrary order at shutdown).
pub(crate) fn snapshot_filename(name: &str, key: &StoreKey) -> String {
    format!("{name}-{:016x}.snap", fnv64(&key.scope))
}

/// Server-wide tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The sweep/session configuration every client runs under. Part of
    /// basis identity: the store registry keys on its
    /// [`config_fingerprint`](jigsaw_core::basis::config_fingerprint), so
    /// all clients of one server share warm stores by construction.
    pub cfg: JigsawConfig,
    /// Master seed for scenario simulations. All clients share it — that
    /// is what makes their Monte Carlo worlds, and therefore their
    /// fingerprints and bases, interchangeable.
    pub master_seed: u64,
    /// Directory for `SAVE`/`LOAD` snapshots; `None` disables both
    /// commands (and the shutdown re-snapshot).
    pub snapshot_dir: Option<PathBuf>,
    /// Catalog name, folded into every store key.
    pub catalog_name: String,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            cfg: JigsawConfig::paper(),
            master_seed: 2024,
            snapshot_dir: None,
            catalog_name: "default".into(),
        }
    }
}

/// State shared by every connection: the catalog, the configuration, and
/// the warm-store registry.
pub struct ServerState {
    pub(crate) catalog: Arc<Catalog>,
    pub(crate) config: ServerConfig,
    pub(crate) cfg: Arc<JigsawConfig>,
    pub(crate) registry: StoreRegistry,
    /// Stores that have been `SAVE`d (or `LOAD`ed), and where — these are
    /// re-snapshotted on shutdown so a restart resumes warm.
    pub(crate) persisted: Mutex<HashMap<StoreKey, PathBuf>>,
    /// Live connections: the handler thread plus a socket handle that
    /// [`ServerHandle::shutdown`] closes to unblock pending reads.
    clients: Mutex<Vec<(JoinHandle<()>, TcpStream)>>,
    shutdown: AtomicBool,
}

impl ServerState {
    fn new(catalog: Catalog, config: ServerConfig) -> Self {
        config.cfg.validate();
        let cfg = Arc::new(config.cfg.clone());
        ServerState {
            catalog: Arc::new(catalog),
            config,
            cfg,
            registry: StoreRegistry::new(),
            persisted: Mutex::new(HashMap::new()),
            clients: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Record that `key`'s store lives at `path` on disk, so shutdown can
    /// re-snapshot it.
    pub(crate) fn mark_persisted(&self, key: StoreKey, path: PathBuf) {
        self.persisted.lock().expect("persisted map poisoned").insert(key, path);
    }

    /// Re-snapshot every store with a recorded on-disk home. Called on
    /// `SAVE` (for the one store) and at shutdown (for all of them), so the
    /// disk copy never lags the warm in-memory store by more than the work
    /// done since the last call.
    pub(crate) fn resnapshot_persisted(&self) -> std::io::Result<()> {
        let persisted = self.persisted.lock().expect("persisted map poisoned");
        for (key, path) in persisted.iter() {
            let Some(store) = self.registry.get(key) else { continue };
            let bytes = store
                .to_snapshot_bytes(&self.cfg, &snapshot_family(key))
                .map_err(|e| std::io::Error::other(e.to_string()))?;
            std::fs::write(path, bytes)?;
        }
        Ok(())
    }
}

/// A bound-but-not-yet-running session server.
pub struct JigsawServer {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl JigsawServer {
    /// Bind to `addr` (use port 0 for an ephemeral loopback port) with the
    /// given model catalog and configuration.
    pub fn bind(
        addr: impl ToSocketAddrs,
        catalog: Catalog,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        if let Some(dir) = &config.snapshot_dir {
            std::fs::create_dir_all(dir)?;
        }
        let listener = TcpListener::bind(addr)?;
        Ok(JigsawServer { listener, state: Arc::new(ServerState::new(catalog, config)) })
    }

    /// The bound address (needed when binding port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve connections on the calling thread until the process exits
    /// (the `jigsaw-server` binary's mode).
    pub fn run(self) -> std::io::Result<()> {
        let state = self.state;
        accept_loop(self.listener, state);
        Ok(())
    }

    /// Serve connections on a background thread; the returned handle stops
    /// the server and re-snapshots persisted stores on
    /// [`ServerHandle::shutdown`].
    pub fn start(self) -> std::io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        let state = Arc::clone(&self.state);
        let listener = self.listener;
        let accept_state = Arc::clone(&state);
        let accept = std::thread::spawn(move || accept_loop(listener, accept_state));
        Ok(ServerHandle { addr, state, accept: Some(accept) })
    }
}

fn accept_loop(listener: TcpListener, state: Arc<ServerState>) {
    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Small request/response frames: Nagle only adds latency here.
        let _ = stream.set_nodelay(true);
        let Ok(socket) = stream.try_clone() else { continue };
        let conn_state = Arc::clone(&state);
        let handle = std::thread::spawn(move || {
            // A connection failing (protocol garbage, dropped socket) only
            // affects that client; the shared stores stay consistent
            // because every mutation happens under their locks.
            let _ = serve_client(stream, &conn_state);
        });
        let mut clients = state.clients.lock().expect("client list poisoned");
        clients.retain(|(h, _)| !h.is_finished());
        clients.push((handle, socket));
    }
}

/// A handle to a running server (see [`JigsawServer::start`]).
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of shared stores currently registered.
    pub fn store_count(&self) -> usize {
        self.state.registry.len()
    }

    /// Stop the server: close every live connection, join all handler
    /// threads and the accept loop, then re-snapshot every store with an
    /// on-disk home (`SAVE`d or `LOAD`ed) so a restart resumes warm.
    pub fn shutdown(mut self) -> std::io::Result<()> {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection, then join it.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Close every connection socket to unblock pending reads, then join
        // the handler threads so no store mutation races the re-snapshot.
        let clients =
            std::mem::take(&mut *self.state.clients.lock().expect("client list poisoned"));
        for (_, socket) in &clients {
            let _ = socket.shutdown(std::net::Shutdown::Both);
        }
        for (handle, _) in clients {
            let _ = handle.join();
        }
        self.state.resnapshot_persisted()
    }
}
