//! Server assembly: the builder, the shared state, and the readiness-driven
//! connection loops.
//!
//! The server runs a small, fixed set of **event-loop threads**
//! ([`ServerBuilder::conn_threads`]), each multiplexing many nonblocking
//! connections instead of dedicating an OS thread per client. Loop 0 also
//! owns the (nonblocking) listener and deals accepted connections round-robin
//! across the loops; every loop then repeatedly *pumps* its connections —
//! flush pending output, read what the socket has, execute any complete
//! frames — and parks only when a full pass made no progress, backing off
//! exponentially from 50µs (invisible next to a single world evaluation)
//! to ~5ms while the quiet spell lasts, and snapping back to the floor on
//! any readiness.
//! Sweeps and ticks execute inline on the loop thread: their parallelism
//! comes from the shared [`PersistentPool`], not from connection threads,
//! and the store lock serializes concurrent sweeps of one scenario anyway
//! (that serialization is exactly what makes the second sweep all warm
//! hits).

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use jigsaw_core::basis::{StoreKey, StoreRegistry};
use jigsaw_core::{JigsawConfig, PersistentPool, WorkerPool};
use jigsaw_obs::event;
use jigsaw_pdb::Catalog;

use crate::conn::Conn;
use crate::default_catalog;

/// The mapping family every server store is built on.
pub(crate) const FAMILY: &str = "affine";

/// FNV-1a 64 over a string (scenario identity inside store keys and
/// snapshot scoping) — the workspace's one content hash.
pub(crate) fn fnv64(s: &str) -> u64 {
    jigsaw_core::basis::content_hash64(s.as_bytes())
}

/// The family name written into (and demanded from) this key's snapshot
/// headers: the base family plus the scenario scope. Bases are only
/// meaningful for the simulation that produced them, so a snapshot saved
/// under one scenario must refuse — with a typed `ConfigMismatch` — to
/// load into another, even if someone copies the file across names.
pub(crate) fn snapshot_family(key: &StoreKey) -> String {
    format!("{FAMILY}+{:016x}", fnv64(&key.scope))
}

/// The on-disk file for a `SAVE`/`LOAD` name under this key. The scope hash
/// in the filename keeps two scenarios' same-named snapshots from
/// clobbering each other (and from being re-snapshotted into one path in
/// arbitrary order at shutdown).
pub(crate) fn snapshot_filename(name: &str, key: &StoreKey) -> String {
    format!("{name}-{:016x}.snap", fnv64(&key.scope))
}

/// State shared by every connection: the catalog, the configuration, the
/// worker pool, and the warm-store registry.
pub struct ServerState {
    pub(crate) catalog: Arc<Catalog>,
    pub(crate) cfg: Arc<JigsawConfig>,
    /// Master seed for scenario simulations. All clients share it — that
    /// is what makes their Monte Carlo worlds, and therefore their
    /// fingerprints and bases, interchangeable.
    pub(crate) master_seed: u64,
    /// Directory for `SAVE`/`LOAD` snapshots; `None` disables both
    /// commands (and the shutdown re-snapshot).
    pub(crate) snapshot_dir: Option<PathBuf>,
    /// Catalog name, folded into every store key.
    pub(crate) catalog_name: String,
    /// The worker pool every sweep scatters on — long-lived, shared by all
    /// connections, so waves never pay thread-spawn churn.
    pub(crate) pool: Arc<dyn WorkerPool>,
    pub(crate) registry: StoreRegistry,
    /// Stores that have been `SAVE`d (or `LOAD`ed), and where — these are
    /// re-snapshotted on shutdown so a restart resumes warm.
    pub(crate) persisted: Mutex<HashMap<StoreKey, PathBuf>>,
    shutdown: AtomicBool,
}

impl ServerState {
    /// Record that `key`'s store lives at `path` on disk, so shutdown can
    /// re-snapshot it.
    pub(crate) fn mark_persisted(&self, key: StoreKey, path: PathBuf) {
        self.persisted.lock().expect("persisted map poisoned").insert(key, path);
    }

    /// Re-snapshot every store with a recorded on-disk home. Called on
    /// `SAVE` (for the one store) and at shutdown (for all of them), so the
    /// disk copy never lags the warm in-memory store by more than the work
    /// done since the last call.
    pub(crate) fn resnapshot_persisted(&self) -> std::io::Result<()> {
        let persisted = self.persisted.lock().expect("persisted map poisoned");
        for (key, path) in persisted.iter() {
            let Some(store) = self.registry.get(key) else { continue };
            let bytes = store
                .to_snapshot_bytes(&self.cfg, &snapshot_family(key))
                .map_err(|e| std::io::Error::other(e.to_string()))?;
            std::fs::write(path, bytes)?;
        }
        Ok(())
    }
}

/// Fluent configuration for a [`JigsawServer`] (start from
/// [`JigsawServer::builder`]). Every knob has a production default; tests
/// and binaries override only what they need:
///
/// ```ignore
/// let handle = JigsawServer::builder()
///     .config(JigsawConfig::paper().with_threads(4))
///     .snapshot_dir("/var/lib/jigsaw")
///     .bind("127.0.0.1:0")?
///     .serve()?;
/// println!("listening on {}", handle.local_addr());
/// handle.shutdown()?;
/// ```
pub struct ServerBuilder {
    cfg: JigsawConfig,
    master_seed: u64,
    snapshot_dir: Option<PathBuf>,
    catalog_name: String,
    catalog: Option<Catalog>,
    pool: Option<Arc<dyn WorkerPool>>,
    conn_threads: usize,
}

impl Default for ServerBuilder {
    fn default() -> Self {
        ServerBuilder {
            cfg: JigsawConfig::paper(),
            master_seed: 2024,
            snapshot_dir: None,
            catalog_name: "default".into(),
            catalog: None,
            pool: None,
            conn_threads: 1,
        }
    }
}

impl ServerBuilder {
    /// The sweep/session configuration every client runs under. Part of
    /// basis identity: the store registry keys on its
    /// [`config_fingerprint`](jigsaw_core::basis::config_fingerprint), so
    /// all clients of one server share warm stores by construction.
    pub fn config(mut self, cfg: JigsawConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Master seed for scenario simulations (default 2024). Shared by all
    /// clients, which is what makes their worlds — and bases —
    /// interchangeable.
    pub fn master_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Enable `SAVE`/`LOAD` (and the shutdown re-snapshot) under this
    /// directory.
    pub fn snapshot_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.snapshot_dir = Some(dir.into());
        self
    }

    /// Catalog name, folded into every store key (default `"default"`).
    pub fn catalog_name(mut self, name: impl Into<String>) -> Self {
        self.catalog_name = name.into();
        self
    }

    /// The model catalog scenarios compile against (default:
    /// [`default_catalog`]).
    pub fn catalog(mut self, catalog: Catalog) -> Self {
        self.catalog = Some(catalog);
        self
    }

    /// The worker pool sweeps scatter on (default: a [`PersistentPool`]
    /// sized to the configuration's thread budget). Any faithful
    /// [`WorkerPool`] yields bit-identical sweeps.
    pub fn pool(mut self, pool: Arc<dyn WorkerPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Number of connection event-loop threads (default 1). Each loop
    /// multiplexes many nonblocking connections; more loops let long
    /// inline commands (sweeps) of one client overlap other clients' I/O.
    pub fn conn_threads(mut self, threads: usize) -> Self {
        self.conn_threads = threads.max(1);
        self
    }

    /// Bind to `addr` (use port 0 for an ephemeral loopback port),
    /// producing a bound-but-not-yet-serving [`JigsawServer`].
    pub fn bind(self, addr: impl ToSocketAddrs) -> std::io::Result<JigsawServer> {
        self.cfg.validate();
        if let Some(dir) = &self.snapshot_dir {
            std::fs::create_dir_all(dir)?;
        }
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let pool = self
            .pool
            .unwrap_or_else(|| Arc::new(PersistentPool::new(self.cfg.effective_threads())));
        let state = ServerState {
            catalog: Arc::new(self.catalog.unwrap_or_else(default_catalog)),
            cfg: Arc::new(self.cfg),
            master_seed: self.master_seed,
            snapshot_dir: self.snapshot_dir,
            catalog_name: self.catalog_name,
            pool,
            registry: StoreRegistry::new(),
            persisted: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
        };
        Ok(JigsawServer { listener, state: Arc::new(state), conn_threads: self.conn_threads })
    }
}

/// A bound-but-not-yet-serving session server (see [`Self::builder`]).
pub struct JigsawServer {
    listener: TcpListener,
    state: Arc<ServerState>,
    conn_threads: usize,
}

impl JigsawServer {
    /// Start configuring a server.
    pub fn builder() -> ServerBuilder {
        ServerBuilder::default()
    }

    /// The bound address (needed when binding port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Spawn the event loops and start serving. The returned handle stops
    /// the server on [`ServerHandle::shutdown`] or waits forever on
    /// [`ServerHandle::join`].
    pub fn serve(self) -> std::io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        let state = self.state;
        let mut loops = Vec::with_capacity(self.conn_threads);
        let mut peers: Vec<Sender<Conn>> = Vec::new();
        for i in 1..self.conn_threads {
            let (tx, rx) = std::sync::mpsc::channel();
            peers.push(tx);
            let st = Arc::clone(&state);
            loops.push(
                std::thread::Builder::new()
                    .name(format!("jigsaw-conn-{i}"))
                    .spawn(move || event_loop(i, None, Vec::new(), Some(rx), &st))?,
            );
        }
        let st = Arc::clone(&state);
        let listener = self.listener;
        loops.insert(
            0,
            std::thread::Builder::new()
                .name("jigsaw-conn-0".into())
                .spawn(move || event_loop(0, Some(listener), peers, None, &st))?,
        );
        Ok(ServerHandle { addr, state, loops })
    }
}

/// One readiness loop: accept (loop 0 only), adopt handed-over connections,
/// pump everything, park briefly when idle.
fn event_loop(
    loop_ix: usize,
    listener: Option<TcpListener>,
    peers: Vec<Sender<Conn>>,
    rx: Option<Receiver<Conn>>,
    state: &ServerState,
) {
    // Loop-layer instruments: accept rate (loop 0 only in practice), the
    // process-wide live-connection gauge, pump-pass latency over non-empty
    // connection lists, and this loop's current idle backoff.
    let g = jigsaw_obs::global();
    let accepts = g.counter("jigsaw_accepts_total", &[]);
    let live = g.gauge("jigsaw_conns_live", &[]);
    let pump_us = g.histogram("jigsaw_pump_pass_us", &[]);
    let backoff = g.gauge("jigsaw_idle_backoff_us", &[("loop", &loop_ix.to_string())]);
    event!("server.loop_start", loop_ix = loop_ix);
    let mut conns: Vec<Conn> = Vec::new();
    // Round-robin seat for the next accepted connection: 0 is this loop,
    // 1..=peers.len() the other loops.
    let mut next_seat = 0usize;
    // Idle backoff: the first idle pass parks 50µs (invisible next to a
    // world evaluation); consecutive idle passes double the park up to
    // ~5ms, so a quiet server costs ~200 wakeups/s per loop instead of
    // 20000. Any readiness resets to the floor, keeping first-byte
    // latency on a busy connection unchanged.
    const IDLE_FLOOR: Duration = Duration::from_micros(50);
    const IDLE_CEIL: Duration = Duration::from_micros(5_000);
    let mut idle_park = IDLE_FLOOR;
    while !state.shutdown.load(Ordering::SeqCst) {
        let mut progress = false;
        if let Some(listener) = &listener {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        progress = true;
                        accepts.inc();
                        live.add(1);
                        event!("server.accept", seat = next_seat);
                        let Ok(conn) = Conn::new(stream) else {
                            live.add(-1);
                            continue;
                        };
                        if next_seat == 0 {
                            conns.push(conn);
                        } else if let Err(back) = peers[next_seat - 1].send(conn) {
                            // Peer already gone (shutdown race): keep it here.
                            conns.push(back.0);
                        }
                        next_seat = (next_seat + 1) % (peers.len() + 1);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }
        if let Some(rx) = &rx {
            while let Ok(conn) = rx.try_recv() {
                conns.push(conn);
                progress = true;
            }
        }
        if !conns.is_empty() {
            // Time only non-empty passes: an idle loop's empty sweeps
            // would otherwise bury the latency signal in zeros.
            let t0 = std::time::Instant::now();
            conns.retain_mut(|conn| {
                let status = conn.pump(state);
                progress |= status.progressed;
                if !status.open {
                    live.add(-1);
                }
                status.open
            });
            pump_us.record_duration(t0.elapsed());
        }
        if !progress {
            // Nothing moved on any connection: park, backing off while the
            // quiet spell lasts.
            std::thread::sleep(idle_park);
            idle_park = (idle_park * 2).min(IDLE_CEIL);
        } else {
            idle_park = IDLE_FLOOR;
        }
        backoff.set(if progress { 0 } else { idle_park.as_micros() as i64 });
    }
    // Shutdown drops whatever connections this loop still held.
    live.add(-(conns.len() as i64));
    event!("server.loop_stop", loop_ix = loop_ix, conns = conns.len());
}

/// A handle to a running server (see [`JigsawServer::serve`]).
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    loops: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of shared stores currently registered.
    pub fn store_count(&self) -> usize {
        self.state.registry.len()
    }

    /// Stop the server gracefully: flag the event loops down (each notices
    /// within one poll pass, closing its connections), join them, then
    /// re-snapshot every store with an on-disk home (`SAVE`d or `LOAD`ed)
    /// so a restart resumes warm.
    pub fn shutdown(mut self) -> std::io::Result<()> {
        event!("server.shutdown");
        self.state.shutdown.store(true, Ordering::SeqCst);
        for handle in self.loops.drain(..) {
            let _ = handle.join();
        }
        self.state.resnapshot_persisted()
    }

    /// Block until the server stops (it only stops on
    /// [`ServerHandle::shutdown`], so this is the serve-forever mode of the
    /// `jigsaw-server` binary).
    pub fn join(mut self) {
        for handle in self.loops.drain(..) {
            let _ = handle.join();
        }
    }
}
