//! # jigsaw-server — multi-client what-if sessions over one warm basis store
//!
//! The single-process optimizer turned into a service: a dependency-free
//! TCP server (std only) that exposes scenario compilation, batch sweeps,
//! and interactive what-if sessions over a length-prefixed line protocol
//! ([`protocol`]). Connections are multiplexed by a small set of
//! readiness-polling event loops over nonblocking sockets, so hundreds of
//! concurrent clients cost a handful of threads rather than one each.
//! Every client connection compiles its scenario against the server's
//! model catalog and attaches to the **one shared warm
//! [`SharedBasisStore`](jigsaw_core::SharedBasisStore)** for that
//! `(catalog, scenario, config-fingerprint)` identity — so the Nth user's
//! queries resolve against Monte Carlo work the first user paid for, and
//! every sweep/session reports how much it rode warm (`warm_hits`).
//!
//! Determinism carries over from the core: all clients share one master
//! seed, worlds are seed-addressed, and store mutations happen under the
//! store lock with world evaluation outside it — so estimates served over
//! the wire are **bit-identical** to a local
//! [`InteractiveSession`](jigsaw_core::InteractiveSession) over the same
//! scenario and warm store (`tests/server_session.rs` enforces this at
//! thread budgets 1 and 4, under both worker pools). `SAVE`/`LOAD` bridge
//! the in-memory registry to PR 4's versioned snapshots: saved stores are
//! re-snapshotted at shutdown, so a restarted server resumes warm.
//!
//! ```no_run
//! use jigsaw_server::JigsawServer;
//!
//! let handle = JigsawServer::builder().bind("127.0.0.1:0").unwrap().serve().unwrap();
//! let transcript = jigsaw_server::client::run_script(
//!     handle.local_addr(),
//!     "COMPILE DECLARE PARAMETER @week AS RANGE 0 TO 9 STEP BY 1; \
//!      SELECT Demand(@week, @week) AS demand INTO results;\nSWEEP\nESTIMATE 3 0\nQUIT",
//! )
//! .unwrap();
//! println!("{transcript}");
//! handle.shutdown().unwrap();
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod client;
mod conn;
pub mod protocol;
mod server;

pub use catalog::default_catalog;
pub use client::Client;
pub use conn::MAX_TICKS_PER_REQUEST;
pub use protocol::{ErrorCode, ProtocolError, Request, Response, PROTOCOL_VERSION};
pub use server::{JigsawServer, ServerBuilder, ServerHandle};
