//! Observability substrate for the Jigsaw workspace: metrics + tracing.
//!
//! Like the `devtools/` proptest and criterion shims, this crate is
//! hand-rolled and dependency-free so the workspace keeps building fully
//! offline. It provides three things:
//!
//! 1. **Metrics** ([`Registry`], [`Counter`], [`Gauge`], [`Histogram`]) — a
//!    registry of atomic instruments whose update paths are lock-free
//!    (registration takes a mutex once; every `inc`/`record` afterwards is a
//!    handful of relaxed atomic ops), cheap enough for the optimizer's wave
//!    hot path. Latency histograms use fixed log2 buckets, so p50/p95/p99
//!    and the exact max are derivable from the buckets without storing
//!    samples.
//! 2. **Tracing** ([`span!`], [`event!`], [`trace`]) — lightweight
//!    structured spans recorded into a bounded ring buffer, with an
//!    env-gated (`JIGSAW_TRACE=1`) NDJSON sink to stderr replacing ad-hoc
//!    `eprintln!` diagnostics.
//! 3. **Exposition** ([`MetricsSnapshot`]) — a point-in-time copy of every
//!    instrument, rendered in Prometheus text format for the server's
//!    `METRICS` verb and `--metrics-dump`.
//!
//! # Determinism contract
//!
//! Everything here is observational: no instrument or span feeds back into
//! any computation, so sweep results, estimates, and wire transcripts are
//! byte-identical whether observability is enabled, disabled, or tracing to
//! stderr. CI enforces this with twin-run diffs under `JIGSAW_TRACE=1`.
//!
//! # Cost model
//!
//! A disabled instrument (after [`set_enabled`]`(false)`) costs one relaxed
//! atomic load and a branch; an enabled counter one `fetch_add`; an enabled
//! histogram three. A span whose sinks are off costs one relaxed load — the
//! field values are never formatted. Experiment E14 in `crates/bench` gates
//! the end-to-end overhead of the enabled instruments at under 2% against
//! this disabled baseline.
//!
//! ```
//! use jigsaw_obs::{global, span};
//!
//! let reqs = global().counter("demo_requests_total", &[("verb", "EST")]);
//! let lat = global().histogram("demo_latency_us", &[]);
//! {
//!     let _span = span!("demo.request", verb = "EST");
//!     reqs.inc();
//!     lat.record(17);
//! }
//! let text = global().snapshot().render_prometheus();
//! assert!(text.contains("demo_requests_total{verb=\"EST\"} 1"));
//! ```

#![warn(missing_docs)]

pub mod hist;
pub mod metrics;
pub mod trace;

pub use hist::{HistogramSnapshot, BUCKETS};
pub use metrics::{Counter, Gauge, Histogram, MetricsSnapshot, Registry};
pub use trace::{
    recent_spans, set_trace, set_trace_ring_only, trace_enabled, SpanGuard, TraceEvent,
    RING_CAPACITY,
};

use std::sync::OnceLock;

/// Enable or disable all recording through the [`global`] registry's
/// instruments. Disabled instruments keep their handles and current
/// values; updates become a single relaxed load + branch. This is the
/// "compiled to no-ops" baseline E14 measures overhead against, without
/// needing two binaries. Registries made with [`Registry::new`] have
/// their own independent switch ([`Registry::set_enabled`]).
pub fn set_enabled(on: bool) {
    global().set_enabled(on);
}

/// Whether recording through the [`global`] registry is enabled.
pub fn enabled() -> bool {
    global().enabled()
}

/// The process-global registry: every layer (executor, pool, basis store,
/// session, server) registers its instruments here so one
/// [`Registry::snapshot`] sees the whole system.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}
