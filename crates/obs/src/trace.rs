//! Lightweight structured tracing: spans and instant events.
//!
//! A span is opened with the [`span!`] macro and records itself when the
//! guard drops: name, formatted fields, wall-clock offset from process
//! start, and duration. Records go to a bounded in-process ring buffer
//! (for tests and post-mortem inspection) and, when the NDJSON sink is on,
//! to stderr as one JSON object per line. The sink is enabled by the
//! `JIGSAW_TRACE` environment variable (any non-empty value other than
//! `0`) or programmatically via [`set_trace`] (the server's `--trace`
//! flag).
//!
//! When tracing is off — the default — a span costs one relaxed atomic
//! load at open and one at drop; the fields are never formatted.

use std::collections::VecDeque;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Capacity of the in-process ring buffer of recent trace events.
pub const RING_CAPACITY: usize = 4096;

/// Tracing switch. 0 = unresolved (consult `JIGSAW_TRACE` on first use),
/// 1 = off, 2 = on.
static TRACE: AtomicU32 = AtomicU32::new(0);

/// Whether the NDJSON sink (not just the ring buffer) is wanted; set
/// together with TRACE, split out so tests can capture the ring without
/// spamming stderr.
static SINK: AtomicBool = AtomicBool::new(true);

/// Whether tracing is enabled (ring buffer recording; NDJSON to stderr
/// unless the sink was turned off by [`set_trace_ring_only`]).
#[inline]
pub fn trace_enabled() -> bool {
    match TRACE.load(Ordering::Relaxed) {
        0 => resolve_from_env(),
        1 => false,
        _ => true,
    }
}

#[cold]
fn resolve_from_env() -> bool {
    let on = match std::env::var("JIGSAW_TRACE") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    };
    TRACE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Turn tracing on or off at runtime, overriding `JIGSAW_TRACE`.
pub fn set_trace(on: bool) {
    SINK.store(true, Ordering::Relaxed);
    TRACE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Turn tracing on but keep it out of stderr: events land in the ring
/// buffer only. Used by tests asserting on recorded spans.
pub fn set_trace_ring_only(on: bool) {
    SINK.store(false, Ordering::Relaxed);
    TRACE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Process start reference for event timestamps (first use wins; only
/// offsets between events are meaningful).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// One recorded span or event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (`layer.verb` by convention, e.g. `wave.fingerprint`).
    pub name: &'static str,
    /// Pre-rendered JSON field fragment (`,"wave":3,"points":40` or empty).
    pub fields: String,
    /// Microseconds from process trace epoch to span open.
    pub start_us: u64,
    /// Span duration in microseconds (0 for instant events).
    pub dur_us: u64,
}

fn ring() -> &'static Mutex<VecDeque<TraceEvent>> {
    static RING: OnceLock<Mutex<VecDeque<TraceEvent>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::with_capacity(RING_CAPACITY)))
}

/// Copy of the ring buffer, oldest first. Empty unless tracing is (or
/// was) enabled.
pub fn recent_spans() -> Vec<TraceEvent> {
    ring().lock().unwrap().iter().cloned().collect()
}

fn record(event: TraceEvent) {
    if SINK.load(Ordering::Relaxed) {
        // One write_all per line keeps concurrent writers line-atomic
        // (stderr is unbuffered and POSIX appends are atomic for small
        // writes); ignore a broken stderr rather than panicking.
        let line = format!(
            "{{\"span\":\"{}\",\"start_us\":{},\"dur_us\":{}{}}}\n",
            event.name, event.start_us, event.dur_us, event.fields
        );
        let _ = std::io::stderr().write_all(line.as_bytes());
    }
    let mut ring = ring().lock().unwrap();
    if ring.len() == RING_CAPACITY {
        ring.pop_front();
    }
    ring.push_back(event);
}

/// A field value in a [`span!`]/[`event!`] invocation, rendered as JSON.
#[derive(Debug, Clone)]
pub enum Field {
    /// Unsigned integers (`u64`, `usize`, ...).
    U64(u64),
    /// Signed integers.
    I64(i64),
    /// Floats (rendered via `Display`; NaN/inf become JSON strings).
    F64(f64),
    /// Strings (escaped minimally: backslash, quote, newline).
    Str(String),
}

impl std::fmt::Display for Field {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Field::U64(v) => write!(f, "{v}"),
            Field::I64(v) => write!(f, "{v}"),
            Field::F64(v) if v.is_finite() => write!(f, "{v}"),
            Field::F64(v) => write!(f, "\"{v}\""),
            Field::Str(s) => {
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '\\' => f.write_str("\\\\")?,
                        '"' => f.write_str("\\\"")?,
                        '\n' => f.write_str("\\n")?,
                        c => std::fmt::Write::write_char(f, c)?,
                    }
                }
                f.write_str("\"")
            }
        }
    }
}

macro_rules! impl_field_from {
    ($($t:ty => $variant:ident as $cast:ty),*) => {$(
        impl From<$t> for Field {
            fn from(v: $t) -> Field {
                Field::$variant(v as $cast)
            }
        }
    )*};
}
impl_field_from!(
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64, i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64,
    i64 => I64 as i64, isize => I64 as i64, f32 => F64 as f64, f64 => F64 as f64
);

impl From<&str> for Field {
    fn from(v: &str) -> Field {
        Field::Str(v.to_string())
    }
}

impl From<String> for Field {
    fn from(v: String) -> Field {
        Field::Str(v)
    }
}

impl From<bool> for Field {
    fn from(v: bool) -> Field {
        Field::U64(v as u64)
    }
}

/// RAII guard for an open span; records a [`TraceEvent`] on drop when
/// tracing is enabled. Construct with [`span!`], not directly.
pub struct SpanGuard {
    state: Option<(TraceEvent, Instant)>,
}

impl SpanGuard {
    /// Open a span. `build` appends the pre-rendered field fragment and is
    /// only invoked when tracing is enabled.
    #[doc(hidden)]
    pub fn new(name: &'static str, build: impl FnOnce(&mut String)) -> SpanGuard {
        if !trace_enabled() {
            return SpanGuard { state: None };
        }
        let now = Instant::now();
        let mut fields = String::new();
        build(&mut fields);
        let start_us = duration_us(now.saturating_duration_since(epoch()));
        SpanGuard { state: Some((TraceEvent { name, fields, start_us, dur_us: 0 }, now)) }
    }

    /// Record an instant event (a span of zero duration).
    #[doc(hidden)]
    pub fn instant(name: &'static str, build: impl FnOnce(&mut String)) {
        if !trace_enabled() {
            return;
        }
        let mut fields = String::new();
        build(&mut fields);
        let start_us = duration_us(Instant::now().saturating_duration_since(epoch()));
        record(TraceEvent { name, fields, start_us, dur_us: 0 });
    }
}

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((mut event, opened)) = self.state.take() {
            event.dur_us = duration_us(opened.elapsed());
            record(event);
        }
    }
}

/// Open a structured span: `span!("wave.fingerprint", wave = i, points = n)`.
/// Binds an RAII guard that records the span (with its duration) when it
/// drops. Field values may be integers, floats, bools, or strings. Costs
/// one atomic load when tracing is disabled.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        $crate::trace::SpanGuard::new($name, |_out| {
            $(
                {
                    use ::std::fmt::Write as _;
                    let _ = ::core::write!(
                        _out,
                        concat!(",\"", stringify!($k), "\":{}"),
                        $crate::trace::Field::from($v)
                    );
                }
            )*
        })
    };
}

/// Record an instant structured event (no duration):
/// `event!("conn.accept", loop_ix = 0)`. The structured replacement for
/// one-off `eprintln!` diagnostics.
#[macro_export]
macro_rules! event {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        $crate::trace::SpanGuard::instant($name, |_out| {
            $(
                {
                    use ::std::fmt::Write as _;
                    let _ = ::core::write!(
                        _out,
                        concat!(",\"", stringify!($k), "\":{}"),
                        $crate::trace::Field::from($v)
                    );
                }
            )*
        })
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All trace tests share one lock: they flip the process-wide switch.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn spans_record_fields_and_duration() {
        let _g = guard();
        set_trace_ring_only(true);
        {
            let _span = span!("test.outer", wave = 3usize, label = "a\"b", ratio = 0.5);
            event!("test.instant", n = -2i64);
        }
        set_trace(false);
        let events = recent_spans();
        let inst = events.iter().rfind(|e| e.name == "test.instant").unwrap();
        assert_eq!(inst.fields, ",\"n\":-2");
        assert_eq!(inst.dur_us, 0);
        let outer = events.iter().rfind(|e| e.name == "test.outer").unwrap();
        assert_eq!(outer.fields, ",\"wave\":3,\"label\":\"a\\\"b\",\"ratio\":0.5");
        // The instant fired inside the span, so the span closed after it.
        assert!(outer.start_us + outer.dur_us >= inst.start_us);
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _g = guard();
        set_trace(false);
        let before = recent_spans().len();
        {
            let _span = span!("test.disabled", x = 1u32);
            event!("test.disabled.instant");
        }
        assert_eq!(recent_spans().len(), before);
    }

    #[test]
    fn ring_buffer_is_bounded() {
        let _g = guard();
        set_trace_ring_only(true);
        for _ in 0..RING_CAPACITY + 10 {
            event!("test.flood");
        }
        set_trace(false);
        assert_eq!(recent_spans().len(), RING_CAPACITY);
    }

    #[test]
    fn field_rendering_covers_every_variant() {
        assert_eq!(Field::from(7u8).to_string(), "7");
        assert_eq!(Field::from(-7isize).to_string(), "-7");
        assert_eq!(Field::from(true).to_string(), "1");
        assert_eq!(Field::from(1.5f32).to_string(), "1.5");
        assert_eq!(Field::from(f64::NAN).to_string(), "\"NaN\"");
        assert_eq!(Field::from("a\\b\nc").to_string(), "\"a\\\\b\\nc\"");
        assert_eq!(Field::from(String::from("s")).to_string(), "\"s\"");
    }
}
