//! Fixed-bucket log2 histograms.
//!
//! A [`HistCore`] is 64 atomic buckets plus exact `count`, `sum`, and `max`
//! registers. Values land in the bucket indexed by their bit length
//! (`64 - leading_zeros`): bucket 0 holds zero, bucket `i` holds
//! `2^(i-1) ..= 2^i - 1`, and everything with 63 or more significant bits
//! saturates into the last bucket. Recording is wait-free (three or four
//! relaxed atomic RMWs); percentiles are reconstructed from the buckets at
//! snapshot time, so the hot path never sorts or stores samples.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets per histogram.
pub const BUCKETS: usize = 64;

/// Bucket index for a recorded value: its bit length, saturated so the top
/// bucket is open-ended.
#[inline]
pub(crate) fn bucket_index(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper edge of bucket `i` (`2^i - 1`); the top bucket has no
/// finite edge and reports the exact observed max instead.
#[inline]
fn bucket_upper_edge(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// The shared mutable core behind a [`crate::Histogram`] handle.
#[derive(Debug)]
pub(crate) struct HistCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistCore {
    pub(crate) fn new() -> HistCore {
        HistCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation. Wait-free; relaxed ordering is enough
    /// because snapshots only need eventual per-instrument consistency.
    pub(crate) fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one histogram, from which percentiles, the
/// mean, and Prometheus `_bucket`/`_sum`/`_count` series are derived.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (bucket `i` = values of bit length `i`).
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (wrapping on overflow, like Prometheus
    /// counters; irrelevant at the microsecond magnitudes recorded here).
    pub sum: u64,
    /// Exact maximum observed value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (used as the merge identity).
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot { buckets: [0; BUCKETS], count: 0, sum: 0, max: 0 }
    }

    /// Pointwise merge of two snapshots, as if every observation had been
    /// recorded into one histogram.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i] + other.buckets[i]),
            count: self.count + other.count,
            sum: self.sum.wrapping_add(other.sum),
            max: self.max.max(other.max),
        }
    }

    /// Upper bound on the `q`-quantile (`0.0 ..= 1.0`): the upper edge of
    /// the first bucket whose cumulative count reaches rank `ceil(q *
    /// count)`. Within-bucket error is at most 2x (log2 buckets); the top
    /// bucket and `q = 1.0` report the exact max. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_edge(i).min(self.max);
            }
        }
        self.max
    }

    /// Median upper bound (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile upper bound.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile upper bound.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Cumulative Prometheus-style `(le, count)` pairs: one per non-empty
    /// prefix boundary actually used, always ending with the `+Inf` total.
    /// Only edges up to the highest occupied bucket are emitted, so idle
    /// histograms stay one line instead of sixty-four.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let top = self.buckets.iter().rposition(|&n| n > 0);
        let mut out = Vec::new();
        let mut cum = 0u64;
        if let Some(top) = top {
            for i in 0..=top.min(62) {
                cum += self.buckets[i];
                out.push((bucket_upper_edge(i), cum));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bucket boundaries: zero gets bucket 0, powers of two open a new
    /// bucket, and `2^i - 1` closes bucket `i`.
    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        for bits in 1..63 {
            let lo = 1u64 << (bits - 1);
            let hi = (1u64 << bits) - 1;
            assert_eq!(bucket_index(lo), bits, "2^{}", bits - 1);
            assert_eq!(bucket_index(hi), bits, "2^{bits}-1");
        }
    }

    /// Everything with 63+ significant bits saturates into the last bucket
    /// instead of indexing out of range, and the exact max survives.
    #[test]
    fn saturation_into_top_bucket() {
        let h = HistCore::new();
        for v in [1u64 << 62, (1u64 << 63) - 1, 1u64 << 63, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets[BUCKETS - 1], 4);
        assert_eq!(s.count, 4);
        assert_eq!(s.max, u64::MAX);
        // The top bucket reports the observed max, not a fake 2^63 edge.
        assert_eq!(s.quantile(1.0), u64::MAX);
    }

    /// Percentiles reconstructed from buckets: exact at bucket edges, at
    /// most one bucket (2x) above the true value inside a bucket.
    #[test]
    fn percentile_extraction() {
        let h = HistCore::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.max, 100);
        // True p50 = 50; bucket edge answer is 63 (bucket 32..=63).
        assert_eq!(s.p50(), 63);
        // True p95 = 95, p99 = 99; both land in bucket 64..=127, whose
        // edge is clamped to the observed max.
        assert_eq!(s.p95(), 100);
        assert_eq!(s.p99(), 100);
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(s.quantile(1.0), 100);
        assert!((s.mean() - 50.5).abs() < 1e-12);
    }

    /// Empty histograms answer 0 everywhere instead of NaN or panicking.
    #[test]
    fn empty_histogram_is_all_zero() {
        let s = HistCore::new().snapshot();
        assert_eq!(s, HistogramSnapshot::empty());
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.cumulative_buckets().is_empty());
    }

    /// Merge behaves as if both observation streams hit one histogram.
    #[test]
    fn merge_matches_combined_recording() {
        let (a, b, both) = (HistCore::new(), HistCore::new(), HistCore::new());
        for v in [0u64, 1, 5, 900, 17] {
            a.record(v);
            both.record(v);
        }
        for v in [2u64, 5, 1 << 40, 0] {
            b.record(v);
            both.record(v);
        }
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged, both.snapshot());
        assert_eq!(merged.merge(&HistogramSnapshot::empty()), merged);
    }

    /// Cumulative buckets are monotone, end at the total count, and stop
    /// at the highest occupied bucket.
    #[test]
    fn cumulative_buckets_are_monotone_and_trimmed() {
        let h = HistCore::new();
        for v in [0u64, 3, 3, 12] {
            h.record(v);
        }
        let s = h.snapshot();
        let cum = s.cumulative_buckets();
        assert_eq!(cum.last().unwrap(), &(15, 4));
        assert_eq!(cum.len(), 5); // edges 0,1,3,7,15 — nothing beyond bucket 4
        for w in cum.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 <= w[1].1);
        }
    }
}
