//! The metrics registry: named atomic counters, gauges, and histograms.
//!
//! Registration (the `counter`/`gauge`/`histogram` constructors) takes a
//! mutex and is meant to happen once per call site — handles are `Clone`
//! and cheap to cache in a struct or a `OnceLock`. Updates through a handle
//! never lock. Instrument identity is `(name, sorted labels)`; asking twice
//! for the same identity returns a handle to the same underlying cell, so
//! independent layers can contribute to one instrument.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::hist::{HistCore, HistogramSnapshot};

/// Instrument identity: metric name plus label pairs, kept sorted so the
/// registry and the rendered exposition are deterministic.
type Key = (String, Vec<(String, String)>);

fn key(name: &str, labels: &[(&str, &str)]) -> Key {
    let mut l: Vec<(String, String)> =
        labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    l.sort();
    (name.to_string(), l)
}

/// A monotonically increasing counter. Updates are a relaxed `fetch_add`
/// when the owning registry is enabled, a load + branch when disabled.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
    enabled: Arc<AtomicBool>,
}

impl Counter {
    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed value (queue depths, live connections, backoff
/// levels).
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
    enabled: Arc<AtomicBool>,
}

impl Gauge {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.store(v, Ordering::Relaxed);
        }
    }

    /// Add `n` (use a negative `n` to decrement).
    #[inline]
    pub fn add(&self, n: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A log2-bucketed histogram handle (see [`crate::hist`]). By convention
/// latency instruments record **microseconds** and carry a `_us` suffix.
#[derive(Debug, Clone)]
pub struct Histogram {
    cell: Arc<HistCore>,
    enabled: Arc<AtomicBool>,
}

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.record(value);
        }
    }

    /// Record a duration in microseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Point-in-time copy of the buckets and registers.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.cell.snapshot()
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<Key, Arc<AtomicU64>>,
    gauges: BTreeMap<Key, Arc<AtomicI64>>,
    histograms: BTreeMap<Key, Arc<HistCore>>,
}

/// A set of named instruments. Most code uses the process-wide
/// [`crate::global`] registry; tests can make private ones.
pub struct Registry {
    inner: Mutex<Inner>,
    enabled: Arc<AtomicBool>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty, enabled registry.
    pub fn new() -> Registry {
        Registry { inner: Mutex::new(Inner::default()), enabled: Arc::new(AtomicBool::new(true)) }
    }

    /// Enable or disable recording through every instrument handed out by
    /// this registry (existing handles included — they share the switch).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether this registry's instruments currently record.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Get or create the counter `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let mut inner = self.inner.lock().unwrap();
        Counter {
            cell: Arc::clone(inner.counters.entry(key(name, labels)).or_default()),
            enabled: Arc::clone(&self.enabled),
        }
    }

    /// Get or create the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let mut inner = self.inner.lock().unwrap();
        Gauge {
            cell: Arc::clone(inner.gauges.entry(key(name, labels)).or_default()),
            enabled: Arc::clone(&self.enabled),
        }
    }

    /// Get or create the histogram `name{labels}`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let mut inner = self.inner.lock().unwrap();
        Histogram {
            cell: Arc::clone(
                inner
                    .histograms
                    .entry(key(name, labels))
                    .or_insert_with(|| Arc::new(HistCore::new())),
            ),
            enabled: Arc::clone(&self.enabled),
        }
    }

    /// Copy every instrument's current value. Per-instrument reads are
    /// atomic; the snapshot as a whole is not a consistent cut (standard
    /// for scrape-based metrics).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            histograms: inner.histograms.iter().map(|(k, v)| (k.clone(), v.snapshot())).collect(),
        }
    }
}

/// A point-in-time copy of a whole [`Registry`], renderable as Prometheus
/// text and inspectable programmatically (tests, CI invariants).
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(identity, value)` per counter, sorted by identity.
    pub counters: Vec<(Key, u64)>,
    /// `(identity, value)` per gauge, sorted by identity.
    pub gauges: Vec<(Key, i64)>,
    /// `(identity, snapshot)` per histogram, sorted by identity.
    pub histograms: Vec<(Key, HistogramSnapshot)>,
}

/// Render `{label="v",...}` (empty string when there are no labels),
/// escaping `\`, `"`, and newlines in values per the exposition format.
fn render_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).chain(extra) {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
}

impl MetricsSnapshot {
    /// Render in Prometheus text exposition format: one `# TYPE` comment
    /// per metric name, then one sample line per instrument; histograms
    /// expand to cumulative `_bucket{le=...}` series plus `_sum`, `_count`,
    /// and a non-standard exact `_max` gauge. Output is deterministic
    /// (sorted) for a given snapshot.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_type_line = String::new();
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            let line = format!("# TYPE {name} {kind}\n");
            if line != last_type_line {
                out.push_str(&line);
                last_type_line = line;
            }
        };
        for ((name, labels), value) in &self.counters {
            type_line(&mut out, name, "counter");
            out.push_str(name);
            render_labels(&mut out, labels, None);
            let _ = writeln!(out, " {value}");
        }
        for ((name, labels), value) in &self.gauges {
            type_line(&mut out, name, "gauge");
            out.push_str(name);
            render_labels(&mut out, labels, None);
            let _ = writeln!(out, " {value}");
        }
        for ((name, labels), h) in &self.histograms {
            type_line(&mut out, name, "histogram");
            for (le, cum) in h.cumulative_buckets() {
                let _ = write!(out, "{name}_bucket");
                render_labels(&mut out, labels, Some(("le", &le.to_string())));
                let _ = writeln!(out, " {cum}");
            }
            let _ = write!(out, "{name}_bucket");
            render_labels(&mut out, labels, Some(("le", "+Inf")));
            let _ = writeln!(out, " {}", h.count);
            for (suffix, value) in [("_sum", h.sum), ("_count", h.count), ("_max", h.max)] {
                let _ = write!(out, "{name}{suffix}");
                render_labels(&mut out, labels, None);
                let _ = writeln!(out, " {value}");
            }
        }
        out
    }

    /// Look up a counter by name and labels (for tests and invariants).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let k = key(name, labels);
        self.counters.iter().find(|(ik, _)| *ik == k).map(|(_, v)| *v)
    }

    /// Look up a gauge by name and labels.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        let k = key(name, labels);
        self.gauges.iter().find(|(ik, _)| *ik == k).map(|(_, v)| *v)
    }

    /// Look up a histogram by name and labels.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        let k = key(name, labels);
        self.histograms.iter().find(|(ik, _)| *ik == k).map(|(_, v)| v)
    }

    /// Sum every histogram series sharing `name` across label sets, as if
    /// all their observations hit one histogram (per-verb totals, CI
    /// invariants).
    pub fn histogram_total(&self, name: &str) -> HistogramSnapshot {
        self.histograms
            .iter()
            .filter(|((n, _), _)| n == name)
            .fold(HistogramSnapshot::empty(), |acc, (_, h)| acc.merge(h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_identity_shares_a_cell_and_label_order_is_canonical() {
        let r = Registry::new();
        let a = r.counter("hits_total", &[("a", "1"), ("b", "2")]);
        let b = r.counter("hits_total", &[("b", "2"), ("a", "1")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.snapshot().counter("hits_total", &[("a", "1"), ("b", "2")]), Some(3));
    }

    #[test]
    fn gauge_set_and_add() {
        let r = Registry::new();
        let g = r.gauge("depth", &[]);
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        assert_eq!(r.snapshot().gauge("depth", &[]), Some(3));
    }

    #[test]
    fn prometheus_rendering_shape() {
        let r = Registry::new();
        r.counter("reqs_total", &[("verb", "EST")]).add(4);
        r.counter("reqs_total", &[("verb", "SWEEP")]).inc();
        r.gauge("live", &[]).set(2);
        let h = r.histogram("lat_us", &[]);
        for v in [1u64, 3, 3, 900] {
            h.record(v);
        }
        let text = r.snapshot().render_prometheus();
        assert!(text.contains("# TYPE reqs_total counter\n"));
        // One TYPE line covers both label sets of the same name.
        assert_eq!(text.matches("# TYPE reqs_total").count(), 1);
        assert!(text.contains("reqs_total{verb=\"EST\"} 4\n"));
        assert!(text.contains("reqs_total{verb=\"SWEEP\"} 1\n"));
        assert!(text.contains("# TYPE live gauge\nlive 2\n"));
        assert!(text.contains("lat_us_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("lat_us_bucket{le=\"3\"} 3\n"));
        assert!(text.contains("lat_us_bucket{le=\"1023\"} 4\n"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("lat_us_sum 907\n"));
        assert!(text.contains("lat_us_count 4\n"));
        assert!(text.contains("lat_us_max 900\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter("c_total", &[("q", "a\"b\\c\nd")]).inc();
        let text = r.snapshot().render_prometheus();
        assert!(text.contains("c_total{q=\"a\\\"b\\\\c\\nd\"} 1"));
    }

    #[test]
    fn disabled_instruments_stop_recording() {
        let r = Registry::new();
        let c = r.counter("toggling_total", &[]);
        let h = r.histogram("toggling_us", &[]);
        c.inc();
        h.record(9);
        r.set_enabled(false);
        c.inc();
        h.record(9);
        r.set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 2);
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn histogram_total_merges_across_label_sets() {
        let r = Registry::new();
        r.histogram("lat_us", &[("verb", "A")]).record(1);
        r.histogram("lat_us", &[("verb", "B")]).record(2);
        r.histogram("other_us", &[]).record(50);
        let total = r.snapshot().histogram_total("lat_us");
        assert_eq!(total.count, 2);
        assert_eq!(total.sum, 3);
    }
}
