//! Counter-based (stateless) stream derivation for Markov simulation.
//!
//! Jigsaw's Markov-jump algorithm (paper §4, Algorithm 4) may evaluate step
//! `t` of sample instance `i` either by stepping the chain normally or by
//! reconstructing state through an estimator and *jumping over* intermediate
//! steps. For fingerprint comparison to remain meaningful, the randomness
//! consumed at `(instance, step)` must be identical in both executions.
//!
//! A stateful generator cannot provide that (the number of draws consumed on
//! the way to step `t` differs between paths), so Markov models draw their
//! per-step randomness from a seed computed *statelessly* from
//! `(master seed, instance, step)` by [`stream_seed`]. This mirrors
//! counter-based RNG designs (Salmon et al., "Parallel random numbers: as
//! easy as 1, 2, 3", SC'11) with SplitMix64's finalizer as the bijection.

use crate::seed::Seed;
use crate::splitmix::mix64;

/// Domain-separation constants so the three key positions cannot alias.
const K_INSTANCE: u64 = 0x853C_49E6_748F_EA9B;
const K_STEP: u64 = 0xD6E8_FEB8_6659_FD93;

/// Derive the seed for `(instance, step)` of a Markov process rooted at
/// `master`.
///
/// Properties (all covered by tests):
/// * deterministic in all three arguments;
/// * changing any one argument changes the result;
/// * instance-major independence: the streams for two instances share no
///   seeds even across different steps.
#[inline]
pub fn stream_seed(master: Seed, instance: usize, step: usize) -> Seed {
    let a = mix64(
        master.0 ^ K_INSTANCE.wrapping_mul(instance as u64 | 1).wrapping_add(instance as u64),
    );
    let b = mix64(a ^ K_STEP.wrapping_mul(step as u64 | 1).wrapping_add(step as u64));
    Seed(mix64(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        assert_eq!(stream_seed(Seed(1), 2, 3), stream_seed(Seed(1), 2, 3));
    }

    #[test]
    fn sensitive_to_each_argument() {
        let base = stream_seed(Seed(1), 2, 3);
        assert_ne!(stream_seed(Seed(2), 2, 3), base);
        assert_ne!(stream_seed(Seed(1), 3, 3), base);
        assert_ne!(stream_seed(Seed(1), 2, 4), base);
    }

    #[test]
    fn instance_and_step_do_not_commute() {
        assert_ne!(stream_seed(Seed(0), 5, 9), stream_seed(Seed(0), 9, 5));
    }

    #[test]
    fn no_collisions_over_grid() {
        let mut seen = HashSet::new();
        for i in 0..200 {
            for t in 0..200 {
                assert!(seen.insert(stream_seed(Seed(42), i, t)), "collision at ({i},{t})");
            }
        }
    }

    #[test]
    fn zero_arguments_are_valid() {
        // instance 0 / step 0 must not degenerate (| 1 guards the multiply).
        let s = stream_seed(Seed(0), 0, 0);
        assert_ne!(s, Seed(0));
        assert_ne!(s, stream_seed(Seed(0), 0, 1));
        assert_ne!(s, stream_seed(Seed(0), 1, 0));
    }
}
