//! Xoshiro256++: the main simulation generator.
//!
//! Xoshiro256++ (Blackman & Vigna, 2019) has 256 bits of state, period
//! 2^256 − 1, passes BigCrush, and costs a handful of ALU ops per draw —
//! appropriate for black boxes that may draw thousands of variates per
//! invocation. State is expanded from a 64-bit [`Seed`] via SplitMix64, the
//! seeding procedure recommended by the algorithm's authors.

use crate::seed::Seed;
use crate::splitmix::SplitMix64;
use crate::Rng;

/// The Xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Construct from a 64-bit seed, expanding state with SplitMix64.
    pub fn seeded(seed: Seed) -> Self {
        let mut sm = SplitMix64::new(seed.0);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // All-zero state is the one invalid state; SplitMix64 output makes it
        // astronomically unlikely, but guard anyway for safety.
        if s == [0, 0, 0, 0] {
            s[0] = crate::splitmix::GOLDEN_GAMMA;
        }
        Xoshiro256pp { s }
    }

    /// Construct directly from raw state words (must not be all zero).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s != [0, 0, 0, 0], "xoshiro256++ state must be nonzero");
        Xoshiro256pp { s }
    }

    /// The 2^128-step jump, for carving one stream into disjoint substreams.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] =
            [0x180EC6D33CFD0ABA, 0xD5A61266F0C9392C, 0xA9582618E03FC9AA, 0x39ABDC4529B1661C];
        let mut acc = [0u64; 4];
        for &word in &JUMP {
            for bit in 0..64 {
                if (word >> bit) & 1 == 1 {
                    for (a, s) in acc.iter_mut().zip(&self.s) {
                        *a ^= s;
                    }
                }
                let _ = self.next_u64();
            }
        }
        self.s = acc;
    }
}

impl Rng for Xoshiro256pp {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_implementation() {
        // Reference: xoshiro256++ from prng.di.unimi.it with state {1,2,3,4}.
        let mut rng = Xoshiro256pp::from_state([1, 2, 3, 4]);
        let expected: [u64; 4] = [41943041, 58720359, 3588806011781223, 3591011842654386];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn seeded_is_deterministic() {
        let mut a = Xoshiro256pp::seeded(Seed(2024));
        let mut b = Xoshiro256pp::seeded(Seed(2024));
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256pp::seeded(Seed(1));
        let mut b = Xoshiro256pp::seeded(Seed(2));
        let agree = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(agree, 0);
    }

    #[test]
    fn jump_produces_disjoint_stream_prefixes() {
        let mut base = Xoshiro256pp::seeded(Seed(9));
        let mut jumped = base.clone();
        jumped.jump();
        let a: Vec<u64> = (0..32).map(|_| base.next_u64()).collect();
        let b: Vec<u64> = (0..32).map(|_| jumped.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_state_rejected() {
        let _ = Xoshiro256pp::from_state([0, 0, 0, 0]);
    }

    #[test]
    fn uniformity_smoke_test() {
        let mut rng = Xoshiro256pp::seeded(Seed(31337));
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        // Standard error of the mean of U(0,1) over 1e5 draws ≈ 0.0009.
        assert!((mean - 0.5).abs() < 0.005, "mean {mean} too far from 0.5");
    }
}
