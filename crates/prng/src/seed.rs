//! Seeds and the global seed set.
//!
//! The paper (§3.1) fixes a vector of `m` seed values `{σ_k}` "randomly
//! generated as part of the initialization process and held constant
//! throughout", and defines the fingerprint of `F(P)` as
//! `{θ_k = F(P, σ_k) | 0 ≤ k < m}`. [`SeedSet`] is that object, generalized
//! so the *same* master seed also addresses the remaining `n − m` Monte
//! Carlo rounds: sample instance `k` of every parameter point always runs
//! under `SeedSet::seed(k)`, making the first `m` rounds double as the
//! fingerprint at zero extra cost.

use crate::splitmix::mix64;

/// An opaque seed for one black-box invocation.
///
/// Newtype over `u64` so that seeds cannot be confused with sample values or
/// indices at API boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Seed(pub u64);

impl Seed {
    /// Derive a sub-seed by mixing in additional key material.
    ///
    /// Used to split one instance seed into independent streams for multiple
    /// models in the same query (e.g. `DemandModel` and `CapacityModel` must
    /// not consume each other's randomness).
    #[inline]
    pub fn derive(self, key: u64) -> Seed {
        // Mixing twice decorrelates (seed, key) pairs that share either half.
        Seed(mix64(self.0 ^ mix64(key ^ 0xA076_1D64_78BD_642F)))
    }
}

impl From<u64> for Seed {
    fn from(v: u64) -> Self {
        Seed(v)
    }
}

/// The global seed set `{σ_k}` of a Jigsaw session.
///
/// Conceptually an infinite sequence of i.i.d. seeds addressed by sample
/// index; materialization is lazy and `O(1)` per access. Two `SeedSet`s with
/// the same master seed are identical, which is what lets independently
/// constructed engine components agree on the randomness of instance `k`.
///
/// Using the *same* seed set across parameter values is deliberate and does
/// not bias results: each `Estimator(P)` still consumes i.i.d. samples; only
/// *comparisons between* parameter points become correlated, and Jigsaw only
/// ever compares (never combines) estimates across points (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSet {
    master: u64,
}

impl SeedSet {
    /// Create the seed set for a session from a master seed.
    pub fn new(master: u64) -> Self {
        SeedSet { master }
    }

    /// The master seed this set was derived from.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// The seed `σ_k` for sample instance `k`.
    #[inline]
    pub fn seed(&self, k: usize) -> Seed {
        // mix64 is a bijection, so distinct k yield distinct seeds.
        Seed(mix64(self.master.wrapping_add(mix64(k as u64 ^ 0x9E6D_62D0_6F6A_9A9B))))
    }

    /// The first `m` seeds — the fingerprint seed vector.
    pub fn fingerprint_seeds(&self, m: usize) -> Vec<Seed> {
        (0..m).map(|k| self.seed(k)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn seed_set_is_deterministic() {
        let a = SeedSet::new(77);
        let b = SeedSet::new(77);
        for k in 0..100 {
            assert_eq!(a.seed(k), b.seed(k));
        }
    }

    #[test]
    fn different_masters_disagree() {
        let a = SeedSet::new(1);
        let b = SeedSet::new(2);
        let same = (0..64).filter(|&k| a.seed(k) == b.seed(k)).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn seeds_are_distinct_within_set() {
        let s = SeedSet::new(123);
        let mut seen = HashSet::new();
        for k in 0..100_000 {
            assert!(seen.insert(s.seed(k)), "duplicate seed at k={k}");
        }
    }

    #[test]
    fn fingerprint_seeds_prefix_property() {
        // The fingerprint seeds must be exactly the first m sample seeds,
        // so fingerprint rounds count toward the full simulation.
        let s = SeedSet::new(5);
        let fp = s.fingerprint_seeds(10);
        for (k, &sigma) in fp.iter().enumerate() {
            assert_eq!(sigma, s.seed(k));
        }
    }

    #[test]
    fn derive_changes_seed_and_is_deterministic() {
        let s = Seed(42);
        assert_ne!(s.derive(0), s);
        assert_ne!(s.derive(1), s.derive(2));
        assert_eq!(s.derive(9), s.derive(9));
    }

    #[test]
    fn derive_is_not_symmetric_in_key_and_seed() {
        assert_ne!(Seed(1).derive(2), Seed(2).derive(1));
    }
}
