//! Streaming (Welford) moment accumulation.

/// Numerically stable streaming accumulator for count / mean / variance /
/// min / max.
///
/// Uses Welford's online algorithm; two accumulators can be merged with
/// [`Moments::merge`] (Chan et al. parallel variant), which the PDB uses to
/// combine per-thread partial aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Moments {
    /// An empty accumulator.
    pub fn new() -> Self {
        Moments { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Accumulate every element of a slice.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut m = Moments::new();
        for &x in xs {
            m.push(x);
        }
        m
    }

    /// Add one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &Moments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (`NaN` for n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population variance (`NaN` when empty).
    pub fn variance_population(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample standard deviation.
    pub fn sd(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Apply the affine transform `x ↦ a·x + b` to the *distribution* these
    /// moments summarize, in closed form.
    ///
    /// This is the `M_est` of the paper (§3): when fingerprints prove
    /// `F(P_j) = a·F(P_i) + b`, the metrics of `F(P_j)` are derived from the
    /// metrics of `F(P_i)` without any further sampling.
    pub fn affine_image(&self, a: f64, b: f64) -> Moments {
        let (lo, hi) = if a >= 0.0 {
            (a * self.min + b, a * self.max + b)
        } else {
            (a * self.max + b, a * self.min + b)
        };
        Moments {
            n: self.n,
            mean: a * self.mean + b,
            m2: a * a * self.m2,
            min: if self.n == 0 { f64::INFINITY } else { lo },
            max: if self.n == 0 { f64::NEG_INFINITY } else { hi },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_batch_formulas() {
        let xs = [1.0, 2.0, 3.0, 4.0, 10.0];
        let m = Moments::from_slice(&xs);
        assert_eq!(m.count(), 5);
        assert!((m.mean() - 4.0).abs() < 1e-12);
        assert!((m.variance() - 12.5).abs() < 1e-12);
        assert_eq!(m.min(), 1.0);
        assert_eq!(m.max(), 10.0);
    }

    #[test]
    fn merge_equals_concatenation() {
        let xs = [1.0, 5.0, 2.0];
        let ys = [9.0, -4.0, 0.5, 3.0];
        let mut a = Moments::from_slice(&xs);
        let b = Moments::from_slice(&ys);
        a.merge(&b);
        let all: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
        let want = Moments::from_slice(&all);
        assert_eq!(a.count(), want.count());
        assert!((a.mean() - want.mean()).abs() < 1e-12);
        assert!((a.variance() - want.variance()).abs() < 1e-12);
        assert_eq!(a.min(), want.min());
        assert_eq!(a.max(), want.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Moments::from_slice(&[1.0, 2.0]);
        let before = a;
        a.merge(&Moments::new());
        assert_eq!(a, before);
        let mut e = Moments::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn affine_image_positive_scale() {
        let m = Moments::from_slice(&[1.0, 2.0, 3.0]);
        let t = m.affine_image(2.0, 5.0);
        let direct = Moments::from_slice(&[7.0, 9.0, 11.0]);
        assert!((t.mean() - direct.mean()).abs() < 1e-12);
        assert!((t.variance() - direct.variance()).abs() < 1e-12);
        assert_eq!(t.min(), direct.min());
        assert_eq!(t.max(), direct.max());
    }

    #[test]
    fn affine_image_negative_scale_swaps_extremes() {
        let m = Moments::from_slice(&[1.0, 3.0]);
        let t = m.affine_image(-1.0, 0.0);
        assert_eq!(t.min(), -3.0);
        assert_eq!(t.max(), -1.0);
        assert!((t.sd() - m.sd()).abs() < 1e-12, "sd must be |a|·sd");
    }

    #[test]
    fn single_observation_variance_is_nan() {
        let m = Moments::from_slice(&[42.0]);
        assert!(m.variance().is_nan());
        assert_eq!(m.mean(), 42.0);
    }

    #[test]
    fn numerical_stability_large_offset() {
        // Classic catastrophic-cancellation scenario for naive sum-of-squares.
        let base = 1e9;
        let xs: Vec<f64> = (0..1000).map(|i| base + (i % 10) as f64).collect();
        let m = Moments::from_slice(&xs);
        let naive_var = 8.258258258258258; // var of {0..9} pattern, n-1 denom
        assert!(
            (m.variance() - naive_var).abs() < 1e-6,
            "variance {} lost precision",
            m.variance()
        );
    }
}
