//! Statistics toolkit: streaming moments, histograms, goodness-of-fit tests.
//!
//! These primitives serve two masters: the PDB's estimators (paper Figure 3,
//! the `Estimator` component that aggregates per-world query results into
//! expectations / standard deviations / histograms) and this workspace's
//! test suite, which validates the distribution implementations.

mod chi2;
mod histogram;
mod ks;
mod moments;

pub use chi2::{chi2_critical_value, chi2_fits, chi2_statistic};
pub use histogram::Histogram;
pub use ks::{ks_critical_value, ks_statistic};
pub use moments::Moments;

/// Sample mean of a slice. Returns `NaN` on empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (n−1 denominator). `NaN` for n < 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation. `NaN` for n < 2.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// The `q`-quantile (0 ≤ q ≤ 1) by linear interpolation of order statistics.
///
/// Sorts a copy; fine for estimator-sized inputs (thousands of samples).
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile q must be in [0,1], got {q}");
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_of_known_data() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_gives_nan() {
        assert!(mean(&[]).is_nan());
        assert!(variance(&[1.0]).is_nan());
        assert!(quantile(&[], 0.5).is_nan());
    }

    #[test]
    fn quantile_endpoints_and_median() {
        let xs = [3.0, 1.0, 2.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 3.0);
        assert_eq!(quantile(&xs, 0.5), 2.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((quantile(&xs, 0.25) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "q must be in [0,1]")]
    fn quantile_rejects_bad_q() {
        let _ = quantile(&[1.0], 1.5);
    }
}
