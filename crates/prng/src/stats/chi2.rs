//! Pearson chi-square goodness-of-fit test for discrete distributions.
//!
//! Complements the KS test (which targets continuous CDFs): the alias-table
//! sampler, Bernoulli/Poisson counts, and boolean query outputs are
//! naturally binned, and chi-square is the appropriate fit test for them.

/// Pearson's statistic `Σ (observed − expected)² / expected`.
///
/// `observed` are bin counts; `expected` are expected counts under the null
/// (same total). Bins with expected count 0 must not appear (classic rule
/// of thumb: merge bins until every expected count is ≥ 5).
pub fn chi2_statistic(observed: &[u64], expected: &[f64]) -> f64 {
    assert_eq!(observed.len(), expected.len(), "bin count mismatch");
    assert!(!observed.is_empty(), "need at least one bin");
    assert!(
        expected.iter().all(|&e| e > 0.0),
        "expected counts must be positive (merge sparse bins)"
    );
    observed
        .iter()
        .zip(expected)
        .map(|(&o, &e)| {
            let d = o as f64 - e;
            d * d / e
        })
        .sum()
}

/// Approximate upper critical value of the chi-square distribution with `k`
/// degrees of freedom at significance `alpha`, via the Wilson–Hilferty cube
/// normal approximation (accurate to a few percent for k ≥ 3, conservative
/// enough for test-suite use below that).
pub fn chi2_critical_value(k: usize, alpha: f64) -> f64 {
    assert!(k >= 1, "need at least one degree of freedom");
    // Standard normal upper quantile for the supported alphas.
    let z = if alpha <= 0.001 {
        3.090
    } else if alpha <= 0.01 {
        2.326
    } else if alpha <= 0.05 {
        1.645
    } else {
        1.282
    };
    let kf = k as f64;
    let t = 1.0 - 2.0 / (9.0 * kf) + z * (2.0 / (9.0 * kf)).sqrt();
    kf * t * t * t
}

/// Convenience: test observed counts against expected proportions; `true`
/// when the fit is *accepted* at significance `alpha` (df = bins − 1).
pub fn chi2_fits(observed: &[u64], proportions: &[f64], alpha: f64) -> bool {
    let total: u64 = observed.iter().sum();
    let psum: f64 = proportions.iter().sum();
    let expected: Vec<f64> = proportions.iter().map(|p| p / psum * total as f64).collect();
    let stat = chi2_statistic(observed, &expected);
    stat < chi2_critical_value(observed.len() - 1, alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Categorical, Distribution, Poisson};
    use crate::{Seed, Xoshiro256pp};

    #[test]
    fn statistic_is_zero_on_perfect_fit() {
        assert_eq!(chi2_statistic(&[10, 20, 30], &[10.0, 20.0, 30.0]), 0.0);
    }

    #[test]
    fn critical_values_are_sane() {
        // Known chi-square 95% quantiles: df=1 → 3.84, df=5 → 11.07,
        // df=10 → 18.31. Wilson–Hilferty should land within ~5%.
        for (k, want) in [(1usize, 3.84f64), (5, 11.07), (10, 18.31)] {
            let got = chi2_critical_value(k, 0.05);
            assert!((got - want).abs() / want < 0.08, "df={k}: {got} vs {want}");
        }
    }

    #[test]
    fn alias_sampler_passes_chi2() {
        let weights = [3.0, 1.0, 4.0, 1.0, 5.0];
        let d = Categorical::new(&weights);
        let mut rng = Xoshiro256pp::seeded(Seed(71));
        let mut counts = [0u64; 5];
        for _ in 0..50_000 {
            counts[d.sample_index(&mut rng)] += 1;
        }
        assert!(chi2_fits(&counts, &weights, 0.01));
    }

    #[test]
    fn skewed_counts_fail_chi2() {
        // Claim uniform, observe skew: must reject.
        let counts = [10_000u64, 12_000, 10_000, 10_000];
        assert!(!chi2_fits(&counts, &[1.0; 4], 0.01));
    }

    #[test]
    fn poisson_pmf_fit() {
        let lambda = 3.0;
        let d = Poisson::new(lambda);
        let mut rng = Xoshiro256pp::seeded(Seed(72));
        // Bins 0..=7 plus an "8+" tail bin.
        let mut counts = [0u64; 9];
        let n = 40_000;
        for _ in 0..n {
            let k = (d.sample(&mut rng) as usize).min(8);
            counts[k] += 1;
        }
        let mut pmf = [0.0f64; 9];
        let mut acc = (-lambda).exp();
        let mut cum = 0.0;
        for (k, slot) in pmf.iter_mut().enumerate().take(8) {
            *slot = acc;
            cum += acc;
            acc *= lambda / (k + 1) as f64;
        }
        pmf[8] = 1.0 - cum;
        assert!(chi2_fits(&counts, &pmf, 0.001));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_expected_rejected() {
        let _ = chi2_statistic(&[1, 2], &[3.0, 0.0]);
    }
}
