//! Fixed-width histograms.
//!
//! PDB query answers are distributions; histograms are one of the output
//! representations the paper lists (§2.1: "this distribution may be
//! represented as an expectation, maximum likelihood, histogram, etc.").

/// An equi-width histogram over `[lo, hi)` with values outside the range
/// collected in underflow/overflow bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Create a histogram with `bins` equal-width buckets over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty, got [{lo}, {hi})");
        Histogram { lo, hi, counts: vec![0; bins], underflow: 0, overflow: 0, total: 0 }
    }

    /// Build from data, sizing the range to the observed min/max.
    ///
    /// Returns a degenerate single-bin histogram when all values coincide.
    pub fn from_data(xs: &[f64], bins: usize) -> Self {
        assert!(!xs.is_empty(), "from_data requires non-empty input");
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let (lo, hi) = if lo == hi { (lo, lo + 1.0) } else { (lo, hi + (hi - lo) * 1e-9) };
        let mut h = Histogram::new(lo, hi, bins);
        for &x in xs {
            h.push(x);
        }
        h
    }

    /// Record one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            // Guard against rounding at the top edge.
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Number of bins (excluding under/overflow).
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Count in bin `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Total observations including under/overflow.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The `[lo, hi)` bounds of bin `i`.
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + width * i as f64, self.lo + width * (i + 1) as f64)
    }

    /// Fraction of in-range mass in bin `i` (`NaN` when empty).
    pub fn density(&self, i: usize) -> f64 {
        self.counts[i] as f64 / self.total as f64
    }

    /// The histogram of `a·X + b` given the histogram of `X`, in closed form
    /// (bin *edges* are transformed; counts are preserved, reversing bin
    /// order when `a < 0`). This is the histogram member of the paper's
    /// mapping-function family.
    pub fn affine_image(&self, a: f64, b: f64) -> Histogram {
        assert!(a != 0.0, "affine_image requires a != 0");
        let (lo, hi) = if a > 0.0 {
            (a * self.lo + b, a * self.hi + b)
        } else {
            (a * self.hi + b, a * self.lo + b)
        };
        let counts =
            if a > 0.0 { self.counts.clone() } else { self.counts.iter().rev().copied().collect() };
        let (underflow, overflow) =
            if a > 0.0 { (self.underflow, self.overflow) } else { (self.overflow, self.underflow) };
        Histogram { lo, hi, counts, underflow, overflow, total: self.total }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_receive_correct_values() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 5.5, 9.99] {
            h.push(x);
        }
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(2), 1);
        assert_eq!(h.count(4), 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn out_of_range_goes_to_flows() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.push(-0.5);
        h.push(1.0); // hi is exclusive
        h.push(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
    }

    #[test]
    fn from_data_covers_extremes() {
        let xs = [3.0, 1.0, 2.0, 4.0];
        let h = Histogram::from_data(&xs, 3);
        assert_eq!(h.underflow() + h.overflow(), 0);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn from_data_degenerate_constant() {
        let h = Histogram::from_data(&[5.0, 5.0, 5.0], 4);
        assert_eq!(h.total(), 3);
        assert_eq!(h.underflow() + h.overflow(), 0);
    }

    #[test]
    fn affine_image_positive_matches_rebuild() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let h = Histogram::from_data(&xs, 4);
        let mapped = h.affine_image(2.0, 1.0);
        let direct: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        // Same counts per (transformed) bin.
        for i in 0..4 {
            let (lo, hi) = mapped.bin_bounds(i);
            let n = direct.iter().filter(|&&x| x >= lo && x < hi).count() as u64;
            // allow edge slop of the epsilon-widened top bin
            assert!(
                mapped.count(i) == n || mapped.count(i) + 1 == n || n + 1 == mapped.count(i),
                "bin {i}: {} vs {n}",
                mapped.count(i)
            );
        }
        assert_eq!(mapped.total(), h.total());
    }

    #[test]
    fn affine_image_negative_reverses_bins() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.push(0.5); // bin 0
        h.push(3.5); // bin 3
        h.push(3.6); // bin 3
        let m = h.affine_image(-1.0, 0.0);
        assert_eq!(m.count(0), 2, "old top bin becomes new bottom bin");
        assert_eq!(m.count(3), 1);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
