//! One-sample Kolmogorov–Smirnov goodness-of-fit test.
//!
//! Used by the test suite to validate the distribution implementations
//! against their analytic CDFs, and available to users for model-validation
//! workflows ("does my VG-function actually produce the distribution I
//! fitted in R?").

/// Compute the KS statistic `D_n = sup_x |F_n(x) − F(x)|` for sorted data
/// against a reference CDF.
///
/// `sorted` must be ascending; this is asserted in debug builds.
pub fn ks_statistic<F: Fn(f64) -> f64>(sorted: &[f64], cdf: F) -> f64 {
    assert!(!sorted.is_empty(), "ks_statistic requires data");
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "ks_statistic input must be sorted");
    let n = sorted.len() as f64;
    let mut d: f64 = 0.0;
    for (i, &x) in sorted.iter().enumerate() {
        let f = cdf(x);
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    d
}

/// Approximate critical value for the KS statistic at significance `alpha`
/// (two-sided), valid for n ≳ 35: `c(α) / sqrt(n)`.
///
/// Supported alphas: 0.10, 0.05, 0.01, 0.001 (nearest is used).
pub fn ks_critical_value(n: usize, alpha: f64) -> f64 {
    let c = if alpha <= 0.001 {
        1.95
    } else if alpha <= 0.01 {
        1.63
    } else if alpha <= 0.05 {
        1.36
    } else {
        1.22
    };
    c / (n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Distribution;
    use crate::{Rng, Seed, Xoshiro256pp};

    #[test]
    fn uniform_samples_pass_against_uniform_cdf() {
        let mut rng = Xoshiro256pp::seeded(Seed(61));
        let mut xs: Vec<f64> = (0..5000).map(|_| rng.next_f64()).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let d = ks_statistic(&xs, |x| x.clamp(0.0, 1.0));
        assert!(d < ks_critical_value(xs.len(), 0.01), "D={d}");
    }

    #[test]
    fn shifted_samples_fail_against_uniform_cdf() {
        let mut rng = Xoshiro256pp::seeded(Seed(62));
        let mut xs: Vec<f64> = (0..5000).map(|_| rng.next_f64() * 0.8).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let d = ks_statistic(&xs, |x| x.clamp(0.0, 1.0));
        assert!(d > ks_critical_value(xs.len(), 0.01), "D={d} should reject");
    }

    #[test]
    fn normal_passes_against_normal_cdf() {
        // CDF via erf-free approximation: use the complementary trick with
        // the logistic approximation is too crude; use numerically integrated
        // CDF via the error-function series is overkill. Abramowitz-Stegun
        // 7.1.26-based CDF is accurate to ~1.5e-7 which is plenty.
        fn phi(x: f64) -> f64 {
            // A&S 26.2.17
            let t = 1.0 / (1.0 + 0.2316419 * x.abs());
            let poly = t
                * (0.319381530
                    + t * (-0.356563782
                        + t * (1.781477937 + t * (-1.821255978 + t * 1.330274429))));
            let pdf = (-x * x / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt();
            let upper = pdf * poly;
            if x >= 0.0 {
                1.0 - upper
            } else {
                upper
            }
        }
        let d = crate::dist::Normal::new(0.0, 1.0);
        let mut rng = Xoshiro256pp::seeded(Seed(63));
        let mut xs = d.sample_n(&mut rng, 5000);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let ks = ks_statistic(&xs, phi);
        assert!(ks < ks_critical_value(xs.len(), 0.01), "D={ks}");
    }

    #[test]
    fn critical_value_shrinks_with_n() {
        assert!(ks_critical_value(10_000, 0.05) < ks_critical_value(100, 0.05));
    }
}
