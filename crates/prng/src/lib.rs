//! # jigsaw-prng — seed-addressable randomness for Jigsaw
//!
//! Jigsaw's fingerprinting technique (Kennedy & Nath, SIGMOD 2011, §3.1)
//! requires that *every* source of randomness inside a stochastic black-box
//! function `F(P, σ)` be driven by a pseudo-random generator seeded with an
//! explicitly supplied seed `σ`. Re-invoking the function with the same seed
//! must reproduce the same draw exactly, and distinct seeds must yield
//! statistically independent streams. This crate provides that substrate:
//!
//! * [`SplitMix64`] — a tiny, fast generator used for seeding and hashing.
//! * [`Xoshiro256pp`] — the workhorse generator backing black-box evaluation.
//! * [`SeedSet`] — the *global seed set* `{σ_k}` the paper fixes at
//!   initialization time and holds constant throughout a session.
//! * [`counter::stream_seed`] — stateless derivation of per-`(instance,
//!   step)` seeds for Markov-chain simulation, so that step *t* of instance
//!   *i* consumes the same randomness no matter how the engine reached it
//!   (simulated stepwise or jumped over, §4).
//! * [`dist`] — the probability distributions used by the paper's model
//!   catalog (normal, exponential, Poisson, gamma, categorical, …).
//! * [`stats`] — streaming moments, histograms and goodness-of-fit tests
//!   used by estimators and by this crate's own test suite.
//!
//! The crate is `no_std`-adjacent in spirit (no I/O, no global state) but
//! uses `std` freely.
//!
//! ## Example
//!
//! ```
//! use jigsaw_prng::{SeedSet, Rng, Xoshiro256pp, dist::{Distribution, Normal}};
//!
//! let seeds = SeedSet::new(42);
//! // Fingerprint entry k of a model is computed under seeds.seed(k):
//! let mut rng = Xoshiro256pp::seeded(seeds.seed(0));
//! let n = Normal::new(0.0, 1.0);
//! let x = n.sample(&mut rng);
//! // Re-seeding reproduces the draw exactly.
//! let mut rng2 = Xoshiro256pp::seeded(seeds.seed(0));
//! assert_eq!(x, n.sample(&mut rng2));
//! ```

#![warn(missing_docs)]

pub mod counter;
pub mod dist;
pub mod seed;
pub mod splitmix;
pub mod stats;
pub mod xoshiro;

pub use counter::stream_seed;
pub use seed::{Seed, SeedSet};
pub use splitmix::SplitMix64;
pub use xoshiro::Xoshiro256pp;

/// A deterministic pseudo-random generator.
///
/// All Jigsaw randomness flows through this trait. Implementations must be
/// *pure state machines*: the sequence of outputs is a function of the seed
/// alone. That property is what turns correlation between black-box outputs
/// into a deterministic, testable relationship (paper §3.1: "It is crucial
/// for both invocations of F to use the same source of randomness").
pub trait Rng {
    /// Produce the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Produce a `f64` uniform on `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; 2^-53 scaling yields [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Produce a `f64` uniform on the *open* interval `(0, 1)`.
    ///
    /// Useful for inverse-CDF methods that must not evaluate at 0.
    #[inline]
    fn next_open_f64(&mut self) -> f64 {
        loop {
            let x = self.next_f64();
            if x > 0.0 {
                return x;
            }
        }
    }

    /// Produce a uniformly distributed integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    #[inline]
    fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_bounded requires bound > 0");
        // Lemire 2019: Fast Random Integer Generation in an Interval.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Flip a coin that comes up `true` with probability `p`.
    #[inline]
    fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FixedRng(Vec<u64>, usize);
    impl Rng for FixedRng {
        fn next_u64(&mut self) -> u64 {
            let v = self.0[self.1 % self.0.len()];
            self.1 += 1;
            v
        }
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = FixedRng(vec![0, u64::MAX, 1 << 63, 12345], 0);
        for _ in 0..8 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn next_f64_zero_bits_gives_zero() {
        let mut rng = FixedRng(vec![0], 0);
        assert_eq!(rng.next_f64(), 0.0);
    }

    #[test]
    fn next_f64_max_bits_is_below_one() {
        let mut rng = FixedRng(vec![u64::MAX], 0);
        let x = rng.next_f64();
        assert!(x < 1.0);
        assert!(x > 0.9999999999999998);
    }

    #[test]
    fn next_bounded_respects_bound() {
        let mut rng = Xoshiro256pp::seeded(Seed(7));
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..100 {
                assert!(rng.next_bounded(bound) < bound);
            }
        }
    }

    #[test]
    fn next_bounded_is_roughly_uniform() {
        let mut rng = Xoshiro256pp::seeded(Seed(11));
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.next_bounded(8) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c} too skewed");
        }
    }

    #[test]
    #[should_panic(expected = "bound > 0")]
    fn next_bounded_zero_panics() {
        let mut rng = Xoshiro256pp::seeded(Seed(1));
        let _ = rng.next_bounded(0);
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = Xoshiro256pp::seeded(Seed(3));
        for _ in 0..100 {
            assert!(!rng.bernoulli(0.0));
            assert!(rng.bernoulli(1.0));
        }
    }
}
