//! SplitMix64: a tiny, statistically solid 64-bit generator.
//!
//! SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) advances a counter by a
//! fixed odd constant and scrambles it with two xor-shift-multiply rounds.
//! Its two roles in Jigsaw:
//!
//! 1. **Seeding**: expanding a single `u64` master seed into the state of
//!    larger generators ([`crate::Xoshiro256pp`]) and into the paper's
//!    global seed set `{σ_k}` ([`crate::SeedSet`]).
//! 2. **Hashing**: [`mix64`] is a high-quality 64-bit finalizer used to
//!    derive independent per-`(instance, step)` streams.

use crate::Rng;

/// The golden-ratio increment used by SplitMix64.
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Apply the SplitMix64 finalizer to a single word.
///
/// This is a bijection on `u64` with excellent avalanche behaviour (every
/// input bit flips every output bit with probability ≈ 1/2), which makes it
/// suitable as a mixing function for composite keys.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The SplitMix64 generator.
///
/// Period 2^64. Not suitable as the main simulation generator (the state is
/// only 64 bits) but ideal for seeding and key mixing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator whose first output is `mix64(seed + γ)`.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Current internal state (the raw counter, not the next output).
    #[inline]
    pub fn state(&self) -> u64 {
        self.state
    }
}

impl Rng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix64(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Reference values produced by the canonical C implementation
        // (Vigna, https://prng.di.unimi.it/splitmix64.c) with seed 1234567.
        let mut rng = SplitMix64::new(1234567);
        let expected: [u64; 5] = [
            6457827717110365317,
            3203168211198807973,
            9817491932198370423,
            4593380528125082431,
            16408922859458223821,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut rng = SplitMix64::new(0);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn mix64_is_injective_on_sample() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)), "collision at {i}");
        }
    }

    #[test]
    fn mix64_avalanche() {
        // Flipping one input bit should flip roughly half the output bits.
        let base = mix64(0xDEADBEEF);
        let mut total = 0u32;
        for bit in 0..64 {
            let flipped = mix64(0xDEADBEEFu64 ^ (1 << bit));
            total += (base ^ flipped).count_ones();
        }
        let avg = total as f64 / 64.0;
        assert!((24.0..40.0).contains(&avg), "weak avalanche: {avg}");
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = SplitMix64::new(99);
        let _ = a.next_u64();
        let mut b = a;
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
